"""Quickstart: profile one video, stream it with SENSEI, compare to baselines.

Deprecated shim: the walk-through now lives in the experiment registry as
the ``quickstart`` demo and runs through the unified CLI —

    python -m repro run quickstart --scale quick

This script remains so existing invocations keep working; it simply
forwards to the CLI (see docs/EXPERIMENTS.md for the migration table).

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import sys

from repro.experiments.cli import main

if __name__ == "__main__":
    sys.exit(main(["run", "quickstart", "--scale", "quick", "--no-save"]))
