"""Quickstart: profile one video, stream it with SENSEI, compare to baselines.

Runs the full SENSEI loop end to end on one catalogue video:

1. profile the video's dynamic quality sensitivity with a (simulated)
   crowdsourcing campaign and inspect the per-chunk weights;
2. embed the weights in a DASH manifest (the wire format SENSEI uses);
3. stream the video over a cellular-like trace with BBA, Fugu and
   SENSEI-Fugu and compare their true QoE.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.abr import BufferBasedABR, FuguABR
from repro.core import SenseiFuguABR, SenseiProfiler
from repro.core.scheduler import SchedulerConfig
from repro.engine import BatchRunner, WorkOrder
from repro.network import TraceBank
from repro.player import SenseiManifest, manifest_to_xml
from repro.qoe import GroundTruthOracle
from repro.video import VideoLibrary


def main() -> None:
    library = VideoLibrary()
    oracle = GroundTruthOracle()
    encoded = library.encoded("soccer1")
    print(f"Video: {encoded.source.name} "
          f"({encoded.num_chunks} chunks x {encoded.chunk_duration_s:.0f}s, "
          f"genre={encoded.source.genre})")

    # 1. Profile dynamic quality sensitivity via a simulated MTurk campaign.
    profiler = SenseiProfiler(
        oracle=oracle,
        scheduler_config=SchedulerConfig(step1_ratings=8, step2_ratings=4),
    )
    profiling = profiler.profile_video(encoded)
    weights = profiling.profile.weights
    print(f"\nProfiling cost: ${profiling.total_cost_usd:.1f} "
          f"(${profiling.cost_per_source_minute_usd:.1f} per source minute, "
          f"{profiling.num_renderings} rendered videos)")
    top_chunks = np.argsort(weights)[-3:][::-1]
    print("Most quality-sensitive chunks:",
          ", ".join(f"#{i} (w={weights[i]:.2f}, "
                    f"{encoded.source.descriptor(int(i)).label})"
                    for i in top_chunks))

    # 2. The weights travel to the player inside the DASH manifest.
    manifest = SenseiManifest.from_encoded(encoded, weights=weights)
    xml = manifest_to_xml(manifest)
    print(f"\nManifest with sensei:weights extension: {len(xml)} bytes of XML")

    # 3. Stream over a cellular-like trace with three ABR algorithms.
    trace = TraceBank(num_traces=6, duration_s=900.0).trace(1)
    print(f"\nStreaming over trace '{trace.name}' "
          f"(mean {trace.mean_mbps:.2f} Mbps)\n")
    print(f"{'ABR':14s} {'true QoE':>9s} {'bitrate':>9s} {'stalls':>7s} {'switches':>9s}")
    orders = [
        WorkOrder(abr=abr, encoded=encoded, trace=trace,
                  chunk_weights=weights if use_weights else None)
        for abr, use_weights in (
            (BufferBasedABR(), False),
            (FuguABR(), False),
            (SenseiFuguABR(), True),
        )
    ]
    # Three short sessions: the serial backend beats pool startup here.
    for order, result in zip(orders, BatchRunner().run_orders(orders)):
        qoe = oracle.true_qoe(result.rendered)
        print(f"{order.abr.name:14s} {qoe:9.3f} "
              f"{result.average_bitrate_kbps:7.0f}kb {result.total_stall_s:6.1f}s "
              f"{result.rendered.num_switches():9d}")


if __name__ == "__main__":
    main()
