"""Train the RL policies end to end: curriculum -> checkpoints -> ABR grid.

A quick-scale walk through the training subsystem (§5.2 of the paper: the
Pensieve variant "must be (re)trained like Pensieve"):

1. build a tiny experiment context and profile its videos' sensitivity
   weights (the same simulated-crowdsourcing pass every figure uses);
2. train a base Pensieve agent (unweighted rewards) and a SENSEI-Pensieve
   agent (weights in state, reweighted rewards) on a scenario curriculum
   spanning the evaluation trace bank plus handover / congestion-onset /
   low-bandwidth-cellular stress regimes;
3. checkpoint both policies to ``checkpoints/``;
4. reload the checkpoints into the experiment context and evaluate the full
   ABR grid (BBA, Fugu, SENSEI-Fugu, Pensieve, SENSEI-Pensieve).

Run with:  make train   (or  PYTHONPATH=src python examples/train_pensieve.py)
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.abr.pensieve import PensieveABR, PensieveConfig
from repro.core.sensei_abr import make_sensei_pensieve
from repro.engine.runner import BatchRunner
from repro.experiments.abr_eval import _evaluate_grid
from repro.experiments.common import ExperimentContext, ExperimentScale
from repro.training import (
    CheckpointStore,
    CurriculumConfig,
    ScenarioCurriculum,
    Trainer,
    TrainerConfig,
    evaluate_policy,
)

CHECKPOINT_ROOT = Path(__file__).resolve().parent.parent / "checkpoints"

#: A deliberately tiny scale so the whole example runs in well under a
#: minute; bump towards ``ExperimentScale.full()`` for real training runs.
TINY_SCALE = ExperimentScale(
    name="tiny",
    num_videos=2,
    num_traces=3,
    step1_ratings=4,
    step2_ratings=2,
    trace_duration_s=400.0,
)

#: Gentle rates: at this tiny scale the default rates can collapse the
#: policy before the curriculum has shown it enough regimes.  The trainer's
#: best-checkpoint selection protects against late-run degradation either
#: way.
TRAINING = TrainerConfig(
    rounds=12,
    episodes_per_round=8,
    eval_every=1,
    eval_episodes=6,
    actor_lr=1e-4,
    critic_lr=5e-4,
    entropy_weight=0.05,
    entropy_decay=0.95,
)


def train_one(name, abr, curriculum, store, runner, oracle):
    """Train one policy, checkpoint it, and report its trajectory."""
    untrained_qoe = evaluate_policy(
        abr, curriculum.holdout_specs(TRAINING.eval_episodes),
        runner=runner, oracle=oracle,
    )
    trainer = Trainer(
        abr, curriculum, runner=runner, store=store, checkpoint_name=name,
        oracle=oracle, config=TRAINING,
    )
    result = trainer.train()
    print(f"\n{name}: untrained held-out QoE {untrained_qoe:.3f}")
    for evaluation in result.evaluations:
        print(f"  round {int(evaluation['round']) + 1:2d}: "
              f"mean QoE {evaluation['mean_qoe']:.3f}")
    print(f"  best {result.best_eval_qoe:.3f} (round {result.best_round + 1})"
          f"{' — stopped early' if result.stopped_early else ''};"
          f" checkpoints: {', '.join(sorted(set(result.checkpoints)))}")
    return result


def main() -> None:
    context = ExperimentContext(scale=TINY_SCALE, seed=7)
    runner = BatchRunner.auto()
    store = CheckpointStore(CHECKPOINT_ROOT)
    print(f"Videos: {', '.join(context.video_ids())}; "
          f"traces: {', '.join(t.name for t in context.traces())}; "
          f"backend: {runner.backend}")

    # Base Pensieve trains on unweighted rewards; SENSEI-Pensieve trains on
    # the same curriculum with sensitivity weights in state and reward.
    plain_curriculum = ScenarioCurriculum(
        context.videos(), context.traces(),
        config=CurriculumConfig(trace_duration_s=400.0, seed=29),
    )
    sensei_curriculum = context.training_curriculum(
        config=CurriculumConfig(trace_duration_s=400.0, seed=31)
    )

    train_one(
        "pensieve", PensieveABR(config=PensieveConfig(seed=41)),
        plain_curriculum, store, runner, context.oracle,
    )
    train_one(
        "sensei-pensieve", make_sensei_pensieve(seed=47),
        sensei_curriculum, store, runner, context.oracle,
    )

    # Round-trip: load the best checkpoints back and run the full ABR grid.
    context.load_trained_agents(
        store, pensieve="pensieve-best", sensei_pensieve="sensei-pensieve-best"
    )
    scores = _evaluate_grid(context, include_pensieve=True, runner=runner)
    print("\nABR grid with checkpointed policies (mean true QoE):")
    for name, cells in scores.items():
        print(f"  {name:16s} {np.mean(list(cells.values())):.3f}")


if __name__ == "__main__":
    main()
