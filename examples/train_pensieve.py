"""Train the RL policies end to end: curriculum -> checkpoints -> ABR grid.

Deprecated shim: the pipeline now lives in
:func:`repro.training.pipeline.train_policies` and runs through the
unified CLI —

    python -m repro train                # tiny scale, checkpoints/ root
    python -m repro train --scale quick  # bigger curricula

This script remains so existing invocations (``make train`` used to point
here) keep working; it simply forwards to the CLI (see docs/EXPERIMENTS.md
for the migration table).

Run with:  make train   (or  PYTHONPATH=src python examples/train_pensieve.py)
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.experiments.cli import main

#: The old script anchored checkpoints at the repo root regardless of the
#: working directory; the shim preserves that.
CHECKPOINT_ROOT = Path(__file__).resolve().parent.parent / "checkpoints"

if __name__ == "__main__":
    sys.exit(main(["train", "--checkpoints", str(CHECKPOINT_ROOT)]))
