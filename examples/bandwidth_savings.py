"""Bandwidth-savings scenario: same QoE with less bandwidth (§7.2, Fig. 12b).

A content provider question: if viewers are equally happy, how much less
bandwidth does sensitivity-aware streaming need?  This example scales one
throughput trace down step by step and reports, for each ABR algorithm, the
average true QoE across a small video mix — then reads off how far SENSEI's
curve can be pushed down before it drops below the baseline's full-bandwidth
QoE.

Run with:  python examples/bandwidth_savings.py
"""

from __future__ import annotations

import numpy as np

from repro.abr import BufferBasedABR, FuguABR
from repro.core import SenseiFuguABR, SenseiProfiler
from repro.core.scheduler import SchedulerConfig
from repro.engine import BatchRunner, WorkOrder
from repro.network import TraceBank
from repro.qoe import GroundTruthOracle
from repro.video import VideoLibrary


def main() -> None:
    library = VideoLibrary()
    oracle = GroundTruthOracle()
    video_ids = ["soccer1", "lava", "fps1"]
    profiler = SenseiProfiler(
        oracle=oracle,
        scheduler_config=SchedulerConfig(step1_ratings=8, step2_ratings=4),
    )
    weights = {
        vid: profiler.profile_video(library.encoded(vid)).profile.weights
        for vid in video_ids
    }

    base_trace = TraceBank(num_traces=6, duration_s=900.0).trace(3)
    ratios = (0.4, 0.55, 0.7, 0.85, 1.0)
    algorithms = {
        "BBA": (lambda: BufferBasedABR(), False),
        "Fugu": (lambda: FuguABR(), False),
        "SENSEI-Fugu": (lambda: SenseiFuguABR(), True),
    }

    print(f"Base trace '{base_trace.name}', mean {base_trace.mean_mbps:.2f} Mbps")
    print(f"\n{'bandwidth scale':>15s} " + " ".join(f"{n:>12s}" for n in algorithms))
    # One work order per (ratio, algorithm, video), dispatched in a single
    # batch so the process backend (on multi-core hosts) pays pool startup
    # exactly once for the whole sweep.
    labels, orders = [], []
    for ratio in ratios:
        trace = base_trace.scaled(ratio)
        for name, (factory, use_weights) in algorithms.items():
            for vid in video_ids:
                labels.append((ratio, name))
                orders.append(WorkOrder(
                    abr=factory(), encoded=library.encoded(vid), trace=trace,
                    chunk_weights=weights[vid] if use_weights else None,
                ))
    results = BatchRunner.auto().run_orders(orders)
    qoe = {label: [] for label in labels}
    for label, result in zip(labels, results):
        qoe[label].append(oracle.true_qoe(result.rendered))
    curves = {name: [] for name in algorithms}
    for ratio in ratios:
        row = f"{ratio:>14.0%} "
        for name in algorithms:
            mean_qoe = float(np.mean(qoe[(ratio, name)]))
            curves[name].append(mean_qoe)
            row += f" {mean_qoe:12.3f}"
        print(row)

    target = curves["Fugu"][-1]
    saving = 0.0
    for ratio, qoe in zip(ratios, curves["SENSEI-Fugu"]):
        if qoe >= target:
            saving = 1.0 - ratio
            break
    print(f"\nFugu's QoE at full bandwidth: {target:.3f}")
    print(f"SENSEI reaches that QoE with ~{saving:.0%} less bandwidth")


if __name__ == "__main__":
    main()
