"""Bandwidth-savings scenario: same QoE with less bandwidth (§7.2, Fig. 12b).

Deprecated shim: the sweep now lives in the experiment registry as the
``bandwidth-savings`` demo and runs through the unified CLI —

    python -m repro run bandwidth-savings --scale quick --backend auto

This script remains so existing invocations keep working; it simply
forwards to the CLI (see docs/EXPERIMENTS.md for the migration table).

Run with:  python examples/bandwidth_savings.py
"""

from __future__ import annotations

import sys

from repro.experiments.cli import main

if __name__ == "__main__":
    sys.exit(main([
        "run", "bandwidth-savings",
        "--scale", "quick", "--backend", "auto", "--no-save",
    ]))
