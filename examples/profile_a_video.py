"""Profiling walk-through: how SENSEI turns crowd ratings into chunk weights.

Deprecated shim: the walk-through now lives in the experiment registry as
the ``profile-video`` demo and runs through the unified CLI —

    python -m repro run profile-video --scale quick

This script remains so existing invocations keep working; it simply
forwards to the CLI (see docs/EXPERIMENTS.md for the migration table).

Run with:  python examples/profile_a_video.py
"""

from __future__ import annotations

import sys

from repro.experiments.cli import main

if __name__ == "__main__":
    sys.exit(main(["run", "profile-video", "--scale", "quick", "--no-save"]))
