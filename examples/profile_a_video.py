"""Profiling walk-through: how SENSEI turns crowd ratings into chunk weights.

This example opens up the profiling pipeline (§4 of the paper) on a short
sports clip so every intermediate artefact is small enough to print:

* the step-1 schedule (one 1-second-stall rendering per chunk),
* the raw MOS the simulated crowd assigns to each rendering,
* the chunks the two-step scheduler re-probes in step 2,
* the final per-chunk weights, compared against the latent sensitivity the
  simulated viewers actually used (which a real deployment never sees).

Run with:  python examples/profile_a_video.py
"""

from __future__ import annotations

import numpy as np

from repro.core.scheduler import SchedulerConfig, TwoStepScheduler
from repro.core.weights import infer_weights
from repro.crowd import CampaignConfig, MTurkCampaign
from repro.qoe import GroundTruthOracle, KSQIModel
from repro.utils import spearman_correlation
from repro.video import SyntheticEncoder, SourceVideo
from repro.video.rendering import render_pristine


def main() -> None:
    oracle = GroundTruthOracle()
    video = SourceVideo.synthesize(
        "demo-match", "sports", duration_s=60.0, chunk_duration_s=4.0, seed=11
    )
    encoded = SyntheticEncoder(seed=12).encode(video)
    print(f"Profiling '{video.name}': {video.num_chunks} chunks, "
          f"labels = {video.chunk_labels()}")

    scheduler = TwoStepScheduler(SchedulerConfig(step1_ratings=10, step2_ratings=5))
    step1 = scheduler.step1_schedule(encoded)
    print(f"\nStep 1 publishes {len(step1.renderings)} renderings "
          f"({step1.ratings_per_rendering} ratings each)")

    campaign = MTurkCampaign(
        oracle=oracle,
        config=CampaignConfig(ratings_per_rendering=step1.ratings_per_rendering),
    )
    result1 = campaign.run(step1.renderings, reference=render_pristine(encoded))
    print(f"Step 1 campaign: {result1.num_participants} participants, "
          f"{result1.rejection_rate():.0%} rejected, "
          f"${result1.total_paid_usd:.1f} paid")

    base_model = KSQIModel()
    rated = [r for r in step1.renderings if r.render_id in result1.mos]
    mos = [result1.mos[r.render_id] for r in rated]
    step1_profile = infer_weights(rated, mos, base_model=base_model)

    reprobe = scheduler.select_chunks_to_reprobe(step1_profile.weights)
    print(f"\nStep 2 re-probes {len(reprobe)} chunks: {list(map(int, reprobe))}")
    step2 = scheduler.step2_schedule(encoded, step1_profile.weights)
    result2 = campaign.run(step2.renderings, reference=render_pristine(encoded))

    all_renderings = rated + [
        r for r in step2.renderings if r.render_id in result2.mos
    ]
    all_mos = mos + [
        result2.mos[r.render_id]
        for r in step2.renderings if r.render_id in result2.mos
    ]
    profile = infer_weights(all_renderings, all_mos, base_model=base_model)

    truth = oracle.normalized_sensitivity(video)
    print("\nchunk  label             weight   latent sensitivity")
    for index in range(video.num_chunks):
        print(f"{index:5d}  {video.chunk_labels()[index]:16s} "
              f"{profile.weights[index]:6.2f}   {truth[index]:6.2f}")
    print(f"\nSpearman correlation(weights, latent sensitivity) = "
          f"{spearman_correlation(profile.weights, truth):.2f}")


if __name__ == "__main__":
    main()
