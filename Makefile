PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH),)

.PHONY: test test-fast bench bench-training train

## Tier-1 verification: the full unit + benchmark suite.
test:
	$(PYTHON) -m pytest -x -q

## Unit tests only, skipping process-pool-backed tests.
test-fast:
	$(PYTHON) -m pytest tests/ -q -m "not slow"

## Perf harness: measures the engine and writes BENCH_engine.json.
bench:
	$(PYTHON) -m pytest benchmarks/test_perf_engine.py -v -s

## Training perf harness: episodes/sec per backend -> BENCH_training.json.
bench-training:
	$(PYTHON) -m pytest benchmarks/test_perf_training.py -v -s

## Quick-scale RL training: curriculum -> checkpoints/ -> ABR grid.
train:
	$(PYTHON) examples/train_pensieve.py
