PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH),)

.PHONY: test test-fast chaos coverage regen-golden bench bench-kernel bench-training train figures list profile serve loadtest

## Tier-1 verification: the full unit + benchmark suite.
test:
	$(PYTHON) -m pytest -x -q

## Unit tests only, skipping process-pool-backed tests.
test-fast:
	$(PYTHON) -m pytest tests/ -q -m "not slow"

## Fault-injection suite (docs/ROBUSTNESS.md): deterministic chaos —
## SIGKILLed workers, shard timeouts, corrupted artifacts — must recover
## bit-identically or fail loudly with a quarantine record.
chaos:
	$(PYTHON) -m pytest tests/test_faults.py -v

## Fast suite with line coverage for the engine + player + ml + training
## packages (requires pytest-cov; CI enforces the floor — docs/TESTING.md).
coverage:
	$(PYTHON) -m pytest tests/ -q -m "not slow" \
	    --cov=repro.engine --cov=repro.player \
	    --cov=repro.ml --cov=repro.training \
	    --cov-report=term --cov-fail-under=80

## Rewrite the golden-master fixtures (tests/golden/) from the serial
## backend.  ONLY after an intentional, reviewed semantic change.
regen-golden:
	$(PYTHON) tests/test_golden.py --regen

## Perf harness: measures the engine and writes BENCH_engine.json.
bench:
	$(PYTHON) -m pytest benchmarks/test_perf_engine.py -v -s

## Kernel microbench: candidates-scored/sec for legacy vs arena f64 vs
## arena f32, arena build amortisation -> "kernel" section of
## BENCH_engine.json (docs/PERFORMANCE.md).
bench-kernel:
	$(PYTHON) -m pytest benchmarks/test_perf_kernel.py -v -s

## Training perf harness: episodes/sec per backend -> BENCH_training.json.
bench-training:
	$(PYTHON) -m pytest benchmarks/test_perf_training.py -v -s

## Phase-level profile of the headline experiment: telemetry on, fresh
## registry, no artifact cache (docs/OBSERVABILITY.md).
profile:
	$(PYTHON) -m repro profile headline --scale quick --backend lockstep

## The experiment catalogue (spec/registry CLI).
list:
	$(PYTHON) -m repro list

## Quick-scale figure sweep through the unified CLI; identical re-runs are
## served from results/ (content-addressed), interrupted grids resume.
figures:
	$(PYTHON) -m repro run fig03 fig04 fig12a fig13 fig14 headline \
	    --scale quick --backend auto --results results

## The always-on decision service behind a JSON-lines TCP front-end
## (docs/SERVICE.md): register/decide/evict/health ops, micro-batched onto
## the lockstep planner kernel.
serve:
	$(PYTHON) -m repro serve --scale tiny --port 7788

## Closed-loop multi-tenant load against an in-process service; writes
## BENCH_service.json (decisions/sec, batch-size distribution, p50/p99
## latency) and verifies online decisions ≡ offline lockstep sweeps.
loadtest:
	$(PYTHON) -m repro loadtest --scale tiny --no-shed --verify \
	    --out BENCH_service.json

## RL training: curriculum -> checkpoints/ -> checkpoint-backed ABR grid.
train:
	$(PYTHON) -m repro train
