"""DASH manifest with SENSEI's per-chunk sensitivity-weight extension.

The paper integrates the per-chunk weights into the DASH protocol by adding
a new XML field under ``Representation`` in the MPD manifest and teaching the
player's ``ManifestLoader`` to parse it (§6).  This module reproduces that
wire format: it builds an MPD-like XML document for an encoded video,
embeds the weight vector in a ``sensei:weights`` element, and parses it back.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.utils.validation import require
from repro.video.chunk import EncodingLadder
from repro.video.encoder import EncodedVideo

#: Namespace used for the SENSEI extension elements.
SENSEI_NAMESPACE = "urn:sensei:qoe:2021"


@dataclass
class SenseiManifest:
    """An MPD-like manifest for one encoded video plus sensitivity weights.

    Attributes
    ----------
    video_id:
        Source video identifier.
    chunk_duration_s:
        Segment duration in seconds.
    bitrates_kbps:
        Ladder bitrates, ascending.
    segment_sizes_bytes:
        (num_chunks, num_levels) matrix of segment sizes.
    weights:
        Per-chunk sensitivity weights (defaults to all ones).
    """

    video_id: str
    chunk_duration_s: float
    bitrates_kbps: List[float]
    segment_sizes_bytes: np.ndarray
    weights: np.ndarray = field(default_factory=lambda: np.array([]))

    def __post_init__(self) -> None:
        sizes = np.asarray(self.segment_sizes_bytes, dtype=float)
        self.segment_sizes_bytes = sizes
        require(sizes.ndim == 2, "segment_sizes_bytes must be 2-D")
        require(
            sizes.shape[1] == len(self.bitrates_kbps),
            "segment sizes must have one column per bitrate",
        )
        if self.weights.size == 0:
            self.weights = np.ones(sizes.shape[0])
        self.weights = np.asarray(self.weights, dtype=float)
        require(
            self.weights.shape == (sizes.shape[0],),
            "weights must have one entry per chunk",
        )
        require(bool(np.all(self.weights > 0)), "weights must be positive")

    @property
    def num_chunks(self) -> int:
        """Number of segments in the manifest."""
        return int(self.segment_sizes_bytes.shape[0])

    @property
    def num_levels(self) -> int:
        """Number of bitrate levels."""
        return len(self.bitrates_kbps)

    @classmethod
    def from_encoded(
        cls, encoded: EncodedVideo, weights: Optional[Sequence[float]] = None
    ) -> "SenseiManifest":
        """Build a manifest from an encoded video and optional weights."""
        weight_arr = (
            np.asarray(list(weights), dtype=float)
            if weights is not None
            else np.ones(encoded.num_chunks)
        )
        return cls(
            video_id=encoded.source.video_id,
            chunk_duration_s=encoded.chunk_duration_s,
            bitrates_kbps=list(encoded.ladder.bitrates_kbps),
            segment_sizes_bytes=encoded.sizes_matrix(),
            weights=weight_arr,
        )

    def ladder(self) -> EncodingLadder:
        """Encoding ladder described by this manifest."""
        return EncodingLadder.from_bitrates(self.bitrates_kbps)


def manifest_to_xml(manifest: SenseiManifest) -> str:
    """Serialise a manifest to an MPD-like XML string with the weight field."""
    root = ET.Element("MPD")
    root.set("xmlns:sensei", SENSEI_NAMESPACE)
    root.set("mediaPresentationDuration",
             f"PT{manifest.num_chunks * manifest.chunk_duration_s:.1f}S")
    period = ET.SubElement(root, "Period")
    adaptation = ET.SubElement(period, "AdaptationSet")
    adaptation.set("contentType", "video")
    adaptation.set("segmentDuration", f"{manifest.chunk_duration_s:g}")
    adaptation.set("videoId", manifest.video_id)

    for level, bitrate in enumerate(manifest.bitrates_kbps):
        representation = ET.SubElement(adaptation, "Representation")
        representation.set("id", str(level))
        representation.set("bandwidth", str(int(bitrate * 1000)))
        segment_list = ET.SubElement(representation, "SegmentList")
        for chunk_index in range(manifest.num_chunks):
            segment = ET.SubElement(segment_list, "SegmentURL")
            segment.set("media", f"{manifest.video_id}_{level}_{chunk_index}.m4s")
            segment.set(
                "sensei:size",
                f"{manifest.segment_sizes_bytes[chunk_index, level]:.0f}",
            )

    # SENSEI extension: the per-chunk sensitivity weights (Figure 7's
    # "weight vector to reveal per-chunk quality sensitivity").
    weights_element = ET.SubElement(adaptation, "sensei:weights")
    weights_element.text = " ".join(f"{w:.6f}" for w in manifest.weights)
    return ET.tostring(root, encoding="unicode")


def manifest_from_xml(xml_text: str) -> SenseiManifest:
    """Parse a manifest produced by :func:`manifest_to_xml`."""
    root = ET.fromstring(xml_text)
    adaptation = root.find("./Period/AdaptationSet")
    require(adaptation is not None, "manifest has no AdaptationSet")
    video_id = adaptation.get("videoId", "unknown")
    chunk_duration = float(adaptation.get("segmentDuration", "4"))

    bitrates: List[float] = []
    size_columns: List[List[float]] = []
    for representation in adaptation.findall("Representation"):
        bitrates.append(float(representation.get("bandwidth", "0")) / 1000.0)
        sizes = [
            float(seg.get(f"{{{SENSEI_NAMESPACE}}}size", seg.get("sensei:size", "0")))
            for seg in representation.findall("./SegmentList/SegmentURL")
        ]
        size_columns.append(sizes)
    require(bool(bitrates), "manifest has no representations")
    num_chunks = len(size_columns[0])
    require(
        all(len(col) == num_chunks for col in size_columns),
        "representations disagree on segment count",
    )
    sizes_matrix = np.array(size_columns, dtype=float).T

    weights_element = adaptation.find(f"{{{SENSEI_NAMESPACE}}}weights")
    if weights_element is None:
        weights_element = adaptation.find("sensei:weights")
    if weights_element is not None and weights_element.text:
        weights = np.array(
            [float(token) for token in weights_element.text.split()], dtype=float
        )
    else:
        weights = np.ones(num_chunks)

    return SenseiManifest(
        video_id=video_id,
        chunk_duration_s=chunk_duration,
        bitrates_kbps=bitrates,
        segment_sizes_bytes=sizes_matrix,
        weights=weights,
    )
