"""Structure-of-arrays player stepping for a shard of lockstep sessions.

:class:`ShardState` is the SoA counterpart of
:class:`~repro.player.session.SessionState`: one array slot per session for
every scalar the session control loop mutates (wall clock, buffer level,
played seconds, pending proactive stall, …), advanced for the whole shard
with numpy elementwise operations instead of a per-session Python loop.

Bit-identity with the scalar path is a hard contract (enforced by the
golden-master fixtures, the hypothesis suite, and the differential fuzz in
``tests/test_lockstep.py``) and rests on three facts:

* elementwise IEEE-754 float64 arithmetic is independent of array shape, so
  adding sessions to an array cannot change any session's values;
* the scalar ``_advance_playback`` while-loop executes at most one pass of
  each kind per chunk step — proactive pause, then either an empty-buffer
  rebuffer or a drain, then (only if the drain ran the buffer dry) a final
  rebuffer — because each pass either exhausts ``remaining`` exactly
  (``x - x == 0.0``) or zeroes the quantity that would trigger it again.
  :meth:`ShardState.step` therefore replays the loop as a fixed sequence of
  masked passes, each applying the same operations to the same operands in
  the same order as the scalar loop iteration it mirrors;
* batched downloads go through
  :meth:`~repro.network.trace.ThroughputTrace.download_times_batch`, the
  elementwise mirror of the scalar integrator.

All sessions of a shard advance chunk-step by chunk-step together, so every
live session is always at the same ``next_chunk``; sessions whose video has
fewer chunks simply leave the live set early (ragged completion), and their
array rows are never touched again.

Timeline records are accumulated as arrays (downloads) and per-session
tuple lists (stall events — rare, appended via the masked passes) and
materialised into the seed's :class:`~repro.player.events.DownloadRecord` /
:class:`~repro.player.events.StallEvent` objects once, at
:meth:`~ShardState.finalize`.
"""

from __future__ import annotations

from time import perf_counter
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.engine.precompute import HistoryMatrix
from repro.obs.trace import TRACE, record_span
from repro.player.events import (
    STALL_PROACTIVE,
    STALL_REBUFFER,
    STALL_STARTUP,
    DownloadRecord,
    LazySessionTimeline,
    SessionTimeline,
    StallEvent,
)
from repro.player.session import (
    MIN_DOWNLOAD_DURATION_S,
    PLAYBACK_EPSILON_S,
    StreamResult,
    StreamingSession,
    observation_from_precompute,
)
from repro.utils.validation import require
from repro.video.rendering import RenderedVideo

#: The buffer-empty threshold (mirrors ``PlaybackBuffer.is_empty``).
_BUFFER_EMPTY_S = 1e-9


class ShardState:
    """SoA state of a shard of streaming sessions sharing one config.

    The protocol mirrors the scalar state machine, batched: call
    :meth:`step` once per chunk step with the live rows and their decided
    (level, proactive stall) arrays until :attr:`live_rows` is empty, then
    :meth:`finalize` each row for its :class:`StreamResult`.
    """

    def __init__(self, sessions: Sequence[StreamingSession]) -> None:
        require(len(sessions) >= 1, "a shard needs at least one session")
        config = sessions[0].config
        require(
            all(session.config == config for session in sessions),
            "shard sessions must share one player config",
        )
        require(
            all(session.use_precompute for session in sessions),
            "SoA stepping requires the precompute fast path",
        )
        n = len(sessions)
        self.num_sessions = n
        self.config = config
        self.encoded = [session.encoded for session in sessions]
        self.traces = [session.trace for session in sessions]
        self.precomputes = [session.precompute for session in sessions]
        self.chunk_weights = [session.chunk_weights for session in sessions]
        self.num_chunks = np.array(
            [session.encoded.num_chunks for session in sessions], dtype=int
        )
        self.num_levels = np.array(
            [session.encoded.ladder.num_levels for session in sessions],
            dtype=int,
        )
        self.chunk_duration = np.array(
            [session.encoded.chunk_duration_s for session in sessions]
        )
        # A shared scalar (when every video agrees) keeps planner kernel
        # broadcasts on the fast ufunc path.
        self.chunk_duration_shared = (
            float(self.chunk_duration[0])
            if bool(np.all(self.chunk_duration == self.chunk_duration[0]))
            else None
        )
        self.buffer_capacity = config.buffer_capacity_s
        self.max_chunks = int(self.num_chunks.max())

        # (session, chunk, level) size matrix, zero-padded on both the chunk
        # axis (shorter videos) and the level axis (narrower ladders); the
        # per-step gather only ever reads (row, current chunk, own-ladder
        # level), which is always in the filled region, and the padded
        # values match nothing the scalar path could read.
        max_levels = int(self.num_levels.max())
        self.sizes_all = np.zeros((n, self.max_chunks, max_levels))
        for index, precompute in enumerate(self.precomputes):
            self.sizes_all[
                index, : precompute.num_chunks, : precompute.num_levels
            ] = precompute.sizes_bytes
        self._quality_all: Optional[np.ndarray] = None
        self._weights_all: Optional[np.ndarray] = None

        # Downloads of a chunk step are dispatched per *trace*: sessions
        # sharing a trace (grid sweeps stream many videos over the same
        # trace bank) resolve their download times in one batched integral.
        groups: dict = {}
        for index, trace in enumerate(self.traces):
            groups.setdefault(id(trace), (trace, []))[1].append(index)
        self.trace_groups = [
            (trace, np.array(rows, dtype=int)) for trace, rows in groups.values()
        ]

        # Dynamic per-session state (the SessionState scalars, as arrays).
        self.step_index = 0
        self.wall_time = np.zeros(n)
        self.played_s = np.zeros(n)
        self.startup_delay = np.zeros(n)
        self.pending_proactive = np.zeros(n)
        self.total_bytes = np.zeros(n)
        self.buffer_s = np.zeros(n)
        self.levels = np.zeros((n, self.max_chunks), dtype=int)
        self.stalls = np.zeros((n, self.max_chunks))

        # Deferred download records, one column per chunk step.
        self.rec_size = np.zeros((n, self.max_chunks))
        self.rec_start = np.zeros((n, self.max_chunks))
        self.rec_duration = np.zeros((n, self.max_chunks))
        self.rec_throughput = np.zeros((n, self.max_chunks))
        self.rec_buffer_before = np.zeros((n, self.max_chunks))
        self.rec_buffer_after = np.zeros((n, self.max_chunks))
        # Stall events, (cause, chunk_index, start_s, duration_s) per entry.
        self.stall_records: List[List[Tuple[str, int, float, float]]] = [
            [] for _ in range(n)
        ]

        history_length = config.history_length
        self.throughput_history = HistoryMatrix(n, history_length)
        self.download_time_history = HistoryMatrix(n, history_length)

    # ------------------------------------------------------------- queries

    @property
    def quality_all(self) -> np.ndarray:
        """(session, chunk, level) quality matrix, padded like
        :attr:`sizes_all`; built on first use (only planner drivers read
        it) and shared by every driver of the shard."""
        if self._quality_all is None:
            self._quality_all = np.zeros_like(self.sizes_all)
            for index, precompute in enumerate(self.precomputes):
                self._quality_all[
                    index, : precompute.num_chunks, : precompute.num_levels
                ] = precompute.quality
        return self._quality_all

    @property
    def weights_all(self) -> np.ndarray:
        """(session, chunk) sensitivity weights, zero-padded past each
        video's end; built on first use and shared across drivers."""
        if self._weights_all is None:
            self._weights_all = np.zeros((self.num_sessions, self.max_chunks))
            for index, weights in enumerate(self.chunk_weights):
                self._weights_all[index, : weights.size] = weights
        return self._weights_all

    @property
    def live_rows(self) -> np.ndarray:
        """Rows still streaming: every session whose video has more chunks
        than the shard has stepped (all rows advance in unison)."""
        return np.flatnonzero(self.num_chunks > self.step_index)

    def last_levels(self, rows: np.ndarray) -> np.ndarray:
        """Previously played level per row (-1 before the first chunk)."""
        if self.step_index == 0:
            return np.full(rows.size, -1, dtype=int)
        return self.levels[rows, self.step_index - 1]

    def observe(self, row: int):
        """The scalar observation for one row — identical to the
        :class:`SessionState` observation of the same session history."""
        if self.step_index == 0:
            last_level = -1
        else:
            last_level = int(self.levels[row, self.step_index - 1])
        return observation_from_precompute(
            precompute=self.precomputes[row],
            config=self.config,
            chunk_weights=self.chunk_weights[row],
            chunk_index=self.step_index,
            buffer_s=float(self.buffer_s[row]),
            last_level=last_level,
            throughput=self.throughput_history.row(row),
            download_times=self.download_time_history.row(row),
        )

    # -------------------------------------------------------------- stepping

    def step(
        self,
        rows: np.ndarray,
        levels: np.ndarray,
        proactive_stall_s: np.ndarray,
    ) -> None:
        """Advance every ``rows`` session by one chunk (SoA ``apply``).

        ``rows`` must be exactly :attr:`live_rows` (ascending); ``levels``
        and ``proactive_stall_s`` align with it.
        """
        # Manual span timing (hot path, no context-manager allocation);
        # single exit at the bottom of the method, so no try/finally.
        if TRACE.enabled:
            _span_t0 = perf_counter()

        chunk = self.step_index
        levels = np.minimum(
            np.maximum(levels, 0), self.num_levels[rows] - 1
        )
        self.levels[rows, chunk] = levels
        scheduled = proactive_stall_s > 0
        if np.any(scheduled):
            self.pending_proactive[rows[scheduled]] += proactive_stall_s[
                scheduled
            ]

        sizes = self.sizes_all[rows, chunk, levels]
        starts = self.wall_time[rows]
        downloads = np.empty(rows.size)
        if len(self.trace_groups) == 1:
            trace, _ = self.trace_groups[0]
            downloads[:] = trace._download_times_batch_unchecked(sizes, starts)
        else:
            for trace, members in self.trace_groups:
                active = members[self.num_chunks[members] > chunk]
                if not active.size:
                    continue
                positions = np.searchsorted(rows, active)
                downloads[positions] = trace._download_times_batch_unchecked(
                    sizes[positions], starts[positions]
                )
        np.maximum(downloads, MIN_DOWNLOAD_DURATION_S, out=downloads)

        buffer_before = self.buffer_s[rows]
        self.total_bytes[rows] += sizes

        if chunk == 0:
            # Startup: every session starts together, the buffer cannot
            # drain before playback begins.
            self.wall_time[rows] = starts + downloads
            self.startup_delay[rows] += downloads
            self.buffer_s[rows] += self.chunk_duration[rows]
            records = self.stall_records
            for position, row in enumerate(rows):
                records[row].append(
                    (
                        STALL_STARTUP,
                        0,
                        float(starts[position]),
                        float(downloads[position]),
                    )
                )
        else:
            self._advance_playback_batch(rows, downloads)
            # Chunk lands in the buffer; an overshoot past capacity plays
            # out (it cannot stall) while the download slot waits.
            buffer = self.buffer_s[rows]
            buffer += self.chunk_duration[rows]
            overshoot = buffer - self.buffer_capacity
            over = np.flatnonzero(overshoot > 0)
            if over.size:
                buffer[over] -= overshoot[over]
                self.played_s[rows[over]] += overshoot[over]
                self.wall_time[rows[over]] += overshoot[over]
            self.buffer_s[rows] = buffer

        throughput = sizes * 8.0 / 1e6 / downloads
        self.rec_size[rows, chunk] = sizes
        self.rec_start[rows, chunk] = starts
        self.rec_duration[rows, chunk] = downloads
        self.rec_throughput[rows, chunk] = throughput
        self.rec_buffer_before[rows, chunk] = buffer_before
        self.rec_buffer_after[rows, chunk] = self.buffer_s[rows]
        self.throughput_history.push_column(rows, throughput)
        self.download_time_history.push_column(rows, downloads)
        self.step_index = chunk + 1

        if TRACE.enabled:
            record_span("player.step", perf_counter() - _span_t0)

    def _advance_playback_batch(
        self, rows: np.ndarray, elapsed_s: np.ndarray
    ) -> None:
        """The scalar ``_advance_playback`` loop as fixed masked passes.

        Pass order per chunk step (each at most once — see the module
        docstring): proactive pause, pre-drain rebuffer (buffer already
        empty), drain, post-drain rebuffer (drain ran the buffer dry).
        Masked rows receive exactly the scalar loop's operations on exactly
        the scalar loop's operands; unmasked rows are untouched.
        """
        remaining = elapsed_s.copy()
        pending = self.pending_proactive[rows]
        buffer = self.buffer_s[rows]
        played = self.played_s[rows]
        wall = self.wall_time[rows].copy()
        durations = self.chunk_duration[rows]
        last_chunk = self.num_chunks[rows] - 1
        records = self.stall_records

        active = remaining > PLAYBACK_EPSILON_S
        pausing = np.flatnonzero(active & (pending > PLAYBACK_EPSILON_S))
        if pausing.size:
            stall_chunks = self._stall_chunks(played, durations, last_chunk)
            pauses = np.minimum(pending[pausing], remaining[pausing])
            self.stalls[rows[pausing], stall_chunks[pausing]] += pauses
            for offset, position in enumerate(pausing):
                records[rows[position]].append(
                    (
                        STALL_PROACTIVE,
                        int(stall_chunks[position]),
                        float(wall[position]),
                        float(pauses[offset]),
                    )
                )
            pending[pausing] -= pauses
            remaining[pausing] -= pauses
            wall[pausing] += pauses

        active = remaining > PLAYBACK_EPSILON_S
        empty = buffer <= _BUFFER_EMPTY_S
        starved = np.flatnonzero(active & empty)
        if starved.size:
            stall_chunks = self._stall_chunks(played, durations, last_chunk)
            self.stalls[rows[starved], stall_chunks[starved]] += remaining[
                starved
            ]
            for position in starved:
                records[rows[position]].append(
                    (
                        STALL_REBUFFER,
                        int(stall_chunks[position]),
                        float(wall[position]),
                        float(remaining[position]),
                    )
                )
            wall[starved] += remaining[starved]
            remaining[starved] = 0.0

        draining = np.flatnonzero(active & ~empty)
        if draining.size:
            drained = np.minimum(buffer[draining], remaining[draining])
            buffer[draining] -= drained
            played[draining] += drained
            wall[draining] += drained
            remaining[draining] -= drained

        # Only a drained row can still have time left, and its buffer is
        # then exactly 0.0 (the drain was the full buffer level).
        starved = np.flatnonzero(remaining > PLAYBACK_EPSILON_S)
        if starved.size:
            stall_chunks = self._stall_chunks(played, durations, last_chunk)
            self.stalls[rows[starved], stall_chunks[starved]] += remaining[
                starved
            ]
            for position in starved:
                records[rows[position]].append(
                    (
                        STALL_REBUFFER,
                        int(stall_chunks[position]),
                        float(wall[position]),
                        float(remaining[position]),
                    )
                )
            wall[starved] += remaining[starved]
            remaining[starved] = 0.0

        self.pending_proactive[rows] = pending
        self.buffer_s[rows] = buffer
        self.played_s[rows] = played
        self.wall_time[rows] = wall

    @staticmethod
    def _stall_chunks(
        played: np.ndarray, durations: np.ndarray, last_chunk: np.ndarray
    ) -> np.ndarray:
        """The chunk a stall is charged to: the one about to play."""
        return np.minimum(
            last_chunk, (played / durations + 1e-9).astype(int)
        )

    # -------------------------------------------------------------- results

    def finalize(self, row: int, abr_name: str = "", trace_name: str = "") -> StreamResult:
        """Play out one finished row and assemble its :class:`StreamResult`.

        Scalar mirror of :meth:`SessionState.finalize`, applied to the
        row's slots (runs once per session, so scalar code is fine here).
        """
        num_chunks = int(self.num_chunks[row])
        require(
            self.step_index >= num_chunks,
            "finalize() before every chunk was downloaded",
        )
        wall = float(self.wall_time[row])
        played = float(self.played_s[row])
        pending = float(self.pending_proactive[row])
        duration = float(self.chunk_duration[row])
        stall_entries = list(self.stall_records[row])
        if pending > 0:
            next_chunk = min(num_chunks - 1, int(played / duration + 1e-9))
            self.stalls[row, next_chunk] += pending
            stall_entries.append((STALL_PROACTIVE, next_chunk, wall, pending))
            wall += pending
        remaining = float(self.buffer_s[row])
        wall += remaining

        # Most consumers only read the rendered video, so the per-chunk
        # record objects are built lazily — from row copies, not the shard
        # (the closure must not pin the whole SoA state in memory).
        download_columns = (
            self.levels[row, :num_chunks].tolist(),
            self.rec_size[row, :num_chunks].tolist(),
            self.rec_start[row, :num_chunks].tolist(),
            self.rec_duration[row, :num_chunks].tolist(),
            self.rec_throughput[row, :num_chunks].tolist(),
            self.rec_buffer_before[row, :num_chunks].tolist(),
            self.rec_buffer_after[row, :num_chunks].tolist(),
        )

        def build_timeline() -> SessionTimeline:
            timeline = SessionTimeline()
            for chunk, (level, size, start, length, tput, before, after) in (
                enumerate(zip(*download_columns))
            ):
                timeline.add_download(
                    DownloadRecord(
                        chunk_index=chunk,
                        level=level,
                        size_bytes=size,
                        start_time_s=start,
                        duration_s=length,
                        throughput_mbps=tput,
                        buffer_before_s=before,
                        buffer_after_s=after,
                    )
                )
            for cause, chunk_index, start, length in stall_entries:
                timeline.add_stall(
                    StallEvent(
                        cause=cause,
                        chunk_index=chunk_index,
                        start_time_s=start,
                        duration_s=length,
                    )
                )
            return timeline

        encoded = self.encoded[row]
        rendered = RenderedVideo(
            encoded=encoded,
            levels=self.levels[row, :num_chunks].copy(),
            stalls_s=self.stalls[row, :num_chunks].copy(),
            startup_delay_s=float(self.startup_delay[row]),
            render_id=(
                f"{encoded.source.video_id}/{abr_name}/{trace_name}"
            ),
        )
        return StreamResult(
            rendered=rendered,
            timeline=LazySessionTimeline(build_timeline),
            total_bytes=float(self.total_bytes[row]),
            session_duration_s=wall,
            abr_name=abr_name,
            trace_name=trace_name,
        )
