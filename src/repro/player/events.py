"""Event records produced by a streaming session.

These are the raw materials for the evaluation: per-chunk download records
(throughput measurements), stall events (rebuffering and proactive stalls)
and a consolidated timeline used by debugging and the examples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.utils.validation import require, require_non_negative

#: Stall causes.
STALL_REBUFFER = "rebuffer"          # buffer ran dry
STALL_PROACTIVE = "proactive"        # deliberately scheduled by the ABR
STALL_STARTUP = "startup"            # initial join delay


@dataclass(frozen=True, slots=True)
class DownloadRecord:
    """One chunk download.

    Attributes
    ----------
    chunk_index: index of the downloaded chunk.
    level: bitrate level downloaded.
    size_bytes: bytes transferred.
    start_time_s / duration_s: wall-clock start and duration of the download.
    throughput_mbps: measured goodput for this download.
    buffer_before_s / buffer_after_s: buffer occupancy around the download.
    """

    chunk_index: int
    level: int
    size_bytes: float
    start_time_s: float
    duration_s: float
    throughput_mbps: float
    buffer_before_s: float
    buffer_after_s: float

    def __post_init__(self) -> None:
        require(self.chunk_index >= 0, "chunk_index must be >= 0")
        require(self.level >= 0, "level must be >= 0")
        require(self.size_bytes > 0, "size_bytes must be positive")
        require_non_negative(self.start_time_s, "start_time_s")
        require(self.duration_s > 0, "duration_s must be positive")
        require(self.throughput_mbps > 0, "throughput must be positive")


@dataclass(frozen=True, slots=True)
class StallEvent:
    """A playback interruption.

    Attributes
    ----------
    cause: ``"rebuffer"``, ``"proactive"`` or ``"startup"``.
    chunk_index: the chunk whose playback the stall preceded.
    start_time_s: wall-clock time the stall began.
    duration_s: stall length in seconds.
    """

    cause: str
    chunk_index: int
    start_time_s: float
    duration_s: float

    def __post_init__(self) -> None:
        require(
            self.cause in (STALL_REBUFFER, STALL_PROACTIVE, STALL_STARTUP),
            f"unknown stall cause {self.cause!r}",
        )
        require(self.chunk_index >= 0, "chunk_index must be >= 0")
        require_non_negative(self.start_time_s, "start_time_s")
        require(self.duration_s > 0, "duration_s must be positive")


@dataclass
class SessionTimeline:
    """Chronological record of everything that happened in a session."""

    downloads: List[DownloadRecord] = field(default_factory=list)
    stalls: List[StallEvent] = field(default_factory=list)

    def add_download(self, record: DownloadRecord) -> None:
        """Append a download record."""
        self.downloads.append(record)

    def add_stall(self, event: StallEvent) -> None:
        """Append a stall event."""
        self.stalls.append(event)

    def total_stall_s(self, include_startup: bool = False) -> float:
        """Total stall time, optionally including the startup delay."""
        total = 0.0
        for stall in self.stalls:
            if stall.cause == STALL_STARTUP and not include_startup:
                continue
            total += stall.duration_s
        return total

    def rebuffer_count(self) -> int:
        """Number of involuntary (buffer-empty) rebuffering events."""
        return sum(1 for s in self.stalls if s.cause == STALL_REBUFFER)

    def proactive_stall_count(self) -> int:
        """Number of SENSEI-style proactive stalls."""
        return sum(1 for s in self.stalls if s.cause == STALL_PROACTIVE)

    def measured_throughputs_mbps(self) -> List[float]:
        """Throughput measurement per downloaded chunk, in order."""
        return [d.throughput_mbps for d in self.downloads]


def _identity(value):
    """Module-level identity (pickle target for :class:`LazySessionTimeline`)."""
    return value


class LazySessionTimeline:
    """A :class:`SessionTimeline` materialised on first access.

    The SoA lockstep engine accumulates per-chunk download data as arrays;
    most consumers (grid sweeps, QoE scoring) only ever read the rendered
    video, so building the thousands of per-chunk :class:`DownloadRecord`
    objects eagerly would be wasted work on the hot path.  This wrapper
    defers that construction: any attribute or method access builds the
    real timeline once and delegates to it from then on, so observable
    values are exactly those of the eager timeline.  Pickling (the process
    backend ships results between workers) materialises and serialises the
    plain :class:`SessionTimeline`.
    """

    __slots__ = ("_build", "_timeline")

    def __init__(self, build) -> None:
        object.__setattr__(self, "_build", build)
        object.__setattr__(self, "_timeline", None)

    def _materialise(self) -> SessionTimeline:
        timeline = object.__getattribute__(self, "_timeline")
        if timeline is None:
            build = object.__getattribute__(self, "_build")
            timeline = build()
            object.__setattr__(self, "_timeline", timeline)
            object.__setattr__(self, "_build", None)
        return timeline

    def __getattr__(self, name: str):
        # Only reached for names not in __slots__: delegate everything the
        # timeline interface exposes (downloads, stalls, methods, ...).
        return getattr(self._materialise(), name)

    def __reduce__(self):
        return (_identity, (self._materialise(),))
