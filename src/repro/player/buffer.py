"""Playback buffer model.

The buffer holds downloaded-but-not-yet-played media, measured in seconds of
playback.  It drains at one second of media per second of wall-clock time
while playback is active and grows by one chunk duration when a chunk
finishes downloading.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.validation import require, require_non_negative, require_positive


@dataclass
class PlaybackBuffer:
    """Seconds-denominated playback buffer with a capacity cap.

    Attributes
    ----------
    capacity_s:
        Maximum occupancy; real players cap their buffer (DASH.js defaults to
        tens of seconds) so that downloads pause when the buffer is full.
    level_s:
        Current occupancy in seconds.
    """

    capacity_s: float = 60.0
    level_s: float = 0.0

    def __post_init__(self) -> None:
        require_positive(self.capacity_s, "capacity_s")
        require_non_negative(self.level_s, "level_s")
        require(self.level_s <= self.capacity_s, "level cannot exceed capacity")

    @property
    def is_empty(self) -> bool:
        """True when there is no media buffered."""
        return self.level_s <= 1e-9

    @property
    def is_full(self) -> bool:
        """True when the buffer is at capacity."""
        return self.level_s >= self.capacity_s - 1e-9

    @property
    def headroom_s(self) -> float:
        """Seconds of media that can still be added before hitting capacity."""
        return max(0.0, self.capacity_s - self.level_s)

    def add_chunk(self, chunk_duration_s: float) -> float:
        """Add one chunk of media; returns the seconds of *overshoot* beyond
        capacity that the caller must wait out before continuing downloads."""
        require_positive(chunk_duration_s, "chunk_duration_s")
        self.level_s += chunk_duration_s
        overshoot = max(0.0, self.level_s - self.capacity_s)
        return overshoot

    def drain(self, seconds: float) -> float:
        """Drain up to ``seconds`` of media; returns the amount actually
        drained (less than requested when the buffer runs dry)."""
        require_non_negative(seconds, "seconds")
        drained = min(self.level_s, seconds)
        self.level_s -= drained
        return drained

    def clamp_to_capacity(self) -> None:
        """Force the level back to capacity after an overshoot wait."""
        self.level_s = min(self.level_s, self.capacity_s)

    def reset(self) -> None:
        """Empty the buffer (start of a session)."""
        self.level_s = 0.0
