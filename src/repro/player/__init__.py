"""Player substrate: a trace-driven DASH-style streaming session simulator.

This replaces the paper's DASH.js + Media Source Extensions testbed with a
discrete-event simulation of the same control loop: download one chunk at a
time at the level chosen by the ABR algorithm, drain the playback buffer in
real time, rebuffer when the buffer empties, and — uniquely to SENSEI —
honour *proactive stalls* scheduled by the ABR algorithm even when the
buffer is not empty (the MSE SourceBufferSink delay described in §6).
"""

from repro.player.buffer import PlaybackBuffer
from repro.player.events import DownloadRecord, StallEvent, SessionTimeline
from repro.player.session import SessionConfig, StreamingSession, StreamResult
from repro.player.simulator import simulate_session, simulate_many
from repro.player.manifest import SenseiManifest, manifest_to_xml, manifest_from_xml

__all__ = [
    "PlaybackBuffer",
    "DownloadRecord",
    "StallEvent",
    "SessionTimeline",
    "SessionConfig",
    "StreamingSession",
    "StreamResult",
    "simulate_session",
    "simulate_many",
    "SenseiManifest",
    "manifest_to_xml",
    "manifest_from_xml",
]
