"""The streaming session: the control loop of a DASH-style player.

The session downloads chunks one at a time.  Before each download it builds
a :class:`~repro.abr.base.PlayerObservation` and asks the ABR algorithm for
a :class:`~repro.abr.base.Decision`.  Playback drains the buffer in real
time during downloads; when the buffer runs dry the player rebuffers; when
the ABR algorithm schedules a *proactive stall* (SENSEI's new action, §5.1),
playback pauses for that long even though the buffer is not empty, letting
the buffer grow so that upcoming high-sensitivity chunks can be fetched at a
higher bitrate without risking an involuntary stall.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.abr.base import ABRAlgorithm, Decision, PlayerObservation
from repro.network.trace import ThroughputTrace
from repro.player.buffer import PlaybackBuffer
from repro.player.events import (
    STALL_PROACTIVE,
    STALL_REBUFFER,
    STALL_STARTUP,
    DownloadRecord,
    SessionTimeline,
    StallEvent,
)
from repro.utils.validation import require, require_positive
from repro.video.encoder import EncodedVideo
from repro.video.rendering import RenderedVideo

#: Floor for download durations when computing measured throughput; a trace
#: that yields a ~0 s download must not produce an infinite throughput
#: sample (or a division-by-zero) in the download record.
MIN_DOWNLOAD_DURATION_S = 1e-9


@dataclass(frozen=True)
class SessionConfig:
    """Player configuration.

    Attributes
    ----------
    buffer_capacity_s:
        Maximum buffer occupancy; downloads pause when it would be exceeded.
    observation_horizon:
        How many upcoming chunks the observation describes (h = 5 in §5.1).
    history_length:
        How many past throughput samples the observation carries.
    """

    buffer_capacity_s: float = 60.0
    observation_horizon: int = 5
    history_length: int = 8

    def __post_init__(self) -> None:
        require_positive(self.buffer_capacity_s, "buffer_capacity_s")
        require(self.observation_horizon >= 1, "observation_horizon must be >= 1")
        require(self.history_length >= 1, "history_length must be >= 1")


@dataclass
class StreamResult:
    """Everything a finished session produced.

    Attributes
    ----------
    rendered:
        The resulting :class:`~repro.video.rendering.RenderedVideo`: per-chunk
        levels, per-chunk stall time and startup delay.  This is what QoE
        models score and what simulated raters watch.
    timeline:
        Chronological download/stall records.
    total_bytes:
        Bytes downloaded across the session.
    session_duration_s:
        Wall-clock time from the first request to the end of playback.
    abr_name:
        Name of the ABR algorithm that drove the session.
    trace_name:
        Name of the throughput trace.
    """

    rendered: RenderedVideo
    timeline: SessionTimeline
    total_bytes: float
    session_duration_s: float
    abr_name: str = ""
    trace_name: str = ""

    @property
    def startup_delay_s(self) -> float:
        """Startup (join) delay in seconds."""
        return self.rendered.startup_delay_s

    @property
    def total_stall_s(self) -> float:
        """Total mid-stream stall time in seconds."""
        return self.rendered.total_stall_s()

    @property
    def average_bitrate_kbps(self) -> float:
        """Mean played bitrate."""
        return self.rendered.average_bitrate_kbps()

    def bandwidth_usage_mbps(self) -> float:
        """Average download rate over the session (bandwidth footprint)."""
        if self.session_duration_s <= 0:
            return 0.0
        return self.total_bytes * 8.0 / 1e6 / self.session_duration_s


class StreamingSession:
    """Runs one ABR algorithm over one encoded video and one trace.

    ``use_precompute`` (default) is the engine/seed switch for the whole
    session fast path: per-chunk observations served as slices of the
    video's cached :class:`~repro.engine.precompute.SessionPrecompute`
    matrices, throughput histories in fixed ring buffers, **and** the
    indexed trace integrator (:meth:`ThroughputTrace.download_time_s`).
    Passing ``False`` selects the seed implementation of all three
    (per-chunk ``np.stack``, growing lists, and the segment-walking
    :meth:`ThroughputTrace.download_time_s_reference`) — retained as the
    baseline the engine perf harness measures speedups against.  Supplying
    an explicit ``precompute`` together with ``use_precompute=False`` is a
    contradiction and rejected.
    """

    def __init__(
        self,
        encoded: EncodedVideo,
        trace: ThroughputTrace,
        abr: ABRAlgorithm,
        config: Optional[SessionConfig] = None,
        chunk_weights: Optional[np.ndarray] = None,
        use_precompute: bool = True,
        precompute: Optional["SessionPrecompute"] = None,
    ) -> None:
        self.encoded = encoded
        self.trace = trace
        self.abr = abr
        self.config = config if config is not None else SessionConfig()
        if chunk_weights is None:
            chunk_weights = np.ones(encoded.num_chunks)
        chunk_weights = np.asarray(chunk_weights, dtype=float)
        require(
            chunk_weights.shape == (encoded.num_chunks,),
            "chunk_weights must have one entry per chunk",
        )
        require(bool(np.all(chunk_weights > 0)), "chunk weights must be positive")
        self.chunk_weights = chunk_weights
        require(
            use_precompute or precompute is None,
            "precompute supplied but use_precompute=False",
        )
        require(
            precompute is None or precompute.encoded is encoded,
            "precompute belongs to a different encoded video",
        )
        self.use_precompute = bool(use_precompute)
        if precompute is None and self.use_precompute:
            # Imported lazily: repro.engine depends on the player package.
            from repro.engine.precompute import SessionPrecompute

            precompute = SessionPrecompute.of(encoded)
        self.precompute = precompute

    # ------------------------------------------------------------------ run

    def run(self) -> StreamResult:
        """Execute the session and return its :class:`StreamResult`."""
        encoded = self.encoded
        num_chunks = encoded.num_chunks
        chunk_duration = encoded.chunk_duration_s

        self.abr.reset()
        buffer = PlaybackBuffer(capacity_s=self.config.buffer_capacity_s)
        timeline = SessionTimeline()

        levels = np.zeros(num_chunks, dtype=int)
        stalls = np.zeros(num_chunks)
        if self.use_precompute:
            from repro.engine.precompute import HistoryRing

            history_len = self.config.history_length
            throughput_history = HistoryRing(history_len)
            download_time_history = HistoryRing(history_len)
        else:
            throughput_history: List[float] = []
            download_time_history: List[float] = []

        wall_time = 0.0
        played_s = 0.0
        startup_delay = 0.0
        pending_proactive_s = 0.0
        total_bytes = 0.0
        playback_started = False

        for chunk_index in range(num_chunks):
            observation = self._build_observation(
                chunk_index,
                buffer.level_s,
                int(levels[chunk_index - 1]) if chunk_index > 0 else -1,
                throughput_history,
                download_time_history,
            )
            decision = self.abr.decide(observation)
            level = ABRAlgorithm.clamp_level(decision.level, encoded.ladder)
            levels[chunk_index] = level
            if decision.proactive_stall_s > 0:
                pending_proactive_s += float(decision.proactive_stall_s)

            if self.use_precompute:
                size_bytes = self.precompute.chunk_size_bytes(chunk_index, level)
                download_s = self.trace.download_time_s(size_bytes, wall_time)
            else:
                size_bytes = encoded.chunk_size_bytes(chunk_index, level)
                download_s = self.trace.download_time_s_reference(
                    size_bytes, wall_time
                )
            # Clamp: a degenerate trace may deliver the chunk in ~0 s, and the
            # measured-throughput division must stay finite.
            download_s = max(download_s, MIN_DOWNLOAD_DURATION_S)
            buffer_before = buffer.level_s
            download_start = wall_time
            total_bytes += size_bytes

            if not playback_started:
                # Startup: the buffer cannot drain before playback begins.
                wall_time += download_s
                startup_delay += download_s
                buffer.add_chunk(chunk_duration)
                playback_started = True
                timeline.add_stall(
                    StallEvent(
                        cause=STALL_STARTUP,
                        chunk_index=0,
                        start_time_s=download_start,
                        duration_s=download_s,
                    )
                )
            else:
                wall_time, played_s, pending_proactive_s = self._advance_playback(
                    elapsed_s=download_s,
                    wall_time=wall_time,
                    played_s=played_s,
                    buffer=buffer,
                    stalls=stalls,
                    timeline=timeline,
                    pending_proactive_s=pending_proactive_s,
                    num_chunks=num_chunks,
                    chunk_duration=chunk_duration,
                )
                overshoot = buffer.add_chunk(chunk_duration)
                if overshoot > 0:
                    # Buffer full: wait until there is room again.  Playback
                    # continues during the wait (it cannot stall: the buffer
                    # is by definition non-empty), so exactly ``overshoot``
                    # seconds drain and the level returns to capacity.
                    drained = buffer.drain(overshoot)
                    played_s += drained
                    wall_time += overshoot

            measured_mbps = size_bytes * 8.0 / 1e6 / download_s
            timeline.add_download(
                DownloadRecord(
                    chunk_index=chunk_index,
                    level=level,
                    size_bytes=size_bytes,
                    start_time_s=download_start,
                    duration_s=download_s,
                    throughput_mbps=measured_mbps,
                    buffer_before_s=buffer_before,
                    buffer_after_s=buffer.level_s,
                )
            )
            throughput_history.append(measured_mbps)
            download_time_history.append(download_s)

        # Any proactive stall still pending applies before the remaining
        # buffered media plays out.
        if pending_proactive_s > 0:
            next_chunk = min(num_chunks - 1, int(played_s / chunk_duration + 1e-9))
            stalls[next_chunk] += pending_proactive_s
            timeline.add_stall(
                StallEvent(
                    cause=STALL_PROACTIVE,
                    chunk_index=next_chunk,
                    start_time_s=wall_time,
                    duration_s=pending_proactive_s,
                )
            )
            wall_time += pending_proactive_s

        # Remaining buffer plays out with no possible stalls.
        remaining = buffer.level_s
        wall_time += remaining
        played_s += remaining
        buffer.reset()

        rendered = RenderedVideo(
            encoded=encoded,
            levels=levels,
            stalls_s=stalls,
            startup_delay_s=startup_delay,
            render_id=(
                f"{encoded.source.video_id}/{self.abr.name}/{self.trace.name}"
            ),
        )
        return StreamResult(
            rendered=rendered,
            timeline=timeline,
            total_bytes=total_bytes,
            session_duration_s=wall_time,
            abr_name=self.abr.name,
            trace_name=self.trace.name,
        )

    # ------------------------------------------------------------ internals

    def _advance_playback(
        self,
        elapsed_s: float,
        wall_time: float,
        played_s: float,
        buffer: PlaybackBuffer,
        stalls: np.ndarray,
        timeline: SessionTimeline,
        pending_proactive_s: float,
        num_chunks: int,
        chunk_duration: float,
    ) -> tuple:
        """Advance wall-clock time by ``elapsed_s`` while playback runs.

        Handles, in order: pending proactive stalls (playback paused, buffer
        preserved), normal draining, and involuntary rebuffering when the
        buffer empties.  Returns updated (wall_time, played_s, pending).
        """
        remaining = elapsed_s
        while remaining > 1e-9:
            next_chunk = min(num_chunks - 1, int(played_s / chunk_duration + 1e-9))
            if pending_proactive_s > 1e-9:
                pause = min(pending_proactive_s, remaining)
                stalls[next_chunk] += pause
                timeline.add_stall(
                    StallEvent(
                        cause=STALL_PROACTIVE,
                        chunk_index=next_chunk,
                        start_time_s=wall_time,
                        duration_s=pause,
                    )
                )
                pending_proactive_s -= pause
                remaining -= pause
                wall_time += pause
                continue
            if buffer.is_empty:
                stalls[next_chunk] += remaining
                timeline.add_stall(
                    StallEvent(
                        cause=STALL_REBUFFER,
                        chunk_index=next_chunk,
                        start_time_s=wall_time,
                        duration_s=remaining,
                    )
                )
                wall_time += remaining
                remaining = 0.0
                continue
            drained = buffer.drain(remaining)
            played_s += drained
            wall_time += drained
            remaining -= drained
        return wall_time, played_s, pending_proactive_s

    def _build_observation(
        self,
        chunk_index: int,
        buffer_s: float,
        last_level: int,
        throughput_history,
        download_time_history,
    ) -> PlayerObservation:
        horizon = min(
            self.config.observation_horizon, self.encoded.num_chunks - chunk_index
        )
        if self.use_precompute:
            # Sliced views of the per-video matrices; ring buffers already
            # hold exactly the last ``history_length`` samples.
            sizes, quality = self.precompute.upcoming(chunk_index, horizon)
            throughput = throughput_history.as_array()
            download_times = download_time_history.as_array()
        else:
            sizes = np.stack(
                [
                    self.encoded.chunks[chunk_index + offset].sizes_bytes
                    for offset in range(horizon)
                ]
            )
            quality = np.stack(
                [
                    self.encoded.chunks[chunk_index + offset].quality
                    for offset in range(horizon)
                ]
            )
            history_len = self.config.history_length
            throughput = np.asarray(
                throughput_history[-history_len:], dtype=float
            )
            download_times = np.asarray(
                download_time_history[-history_len:], dtype=float
            )
        weights = self.chunk_weights[chunk_index : chunk_index + horizon].copy()
        return PlayerObservation(
            chunk_index=chunk_index,
            num_chunks=self.encoded.num_chunks,
            buffer_s=buffer_s,
            last_level=last_level,
            throughput_history_mbps=throughput,
            download_time_history_s=download_times,
            upcoming_sizes_bytes=sizes,
            upcoming_quality=quality,
            upcoming_weights=weights,
            chunk_duration_s=self.encoded.chunk_duration_s,
            ladder=self.encoded.ladder,
            buffer_capacity_s=self.config.buffer_capacity_s,
        )
