"""The streaming session: the control loop of a DASH-style player.

The session downloads chunks one at a time.  Before each download it builds
a :class:`~repro.abr.base.PlayerObservation` and asks the ABR algorithm for
a :class:`~repro.abr.base.Decision`.  Playback drains the buffer in real
time during downloads; when the buffer runs dry the player rebuffers; when
the ABR algorithm schedules a *proactive stall* (SENSEI's new action, §5.1),
playback pauses for that long even though the buffer is not empty, letting
the buffer grow so that upcoming high-sensitivity chunks can be fetched at a
higher bitrate without risking an involuntary stall.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.abr.base import ABRAlgorithm, Decision, PlayerObservation
from repro.network.trace import ThroughputTrace
from repro.player.buffer import PlaybackBuffer
from repro.player.events import (
    STALL_PROACTIVE,
    STALL_REBUFFER,
    STALL_STARTUP,
    DownloadRecord,
    SessionTimeline,
    StallEvent,
)
from repro.utils.validation import require, require_positive
from repro.video.encoder import EncodedVideo
from repro.video.rendering import RenderedVideo

#: Floor for download durations when computing measured throughput; a trace
#: that yields a ~0 s download must not produce an infinite throughput
#: sample (or a division-by-zero) in the download record.
MIN_DOWNLOAD_DURATION_S = 1e-9

#: Threshold below which residual playback time/buffer is treated as zero
#: by the playback-advance loop (seed semantics, shared verbatim by the
#: scalar path here and the SoA path in :mod:`repro.player.shard`).
PLAYBACK_EPSILON_S = 1e-9


def observation_from_precompute(
    *,
    precompute: "SessionPrecompute",
    config: SessionConfig,
    chunk_weights: np.ndarray,
    chunk_index: int,
    buffer_s: float,
    last_level: int,
    throughput: np.ndarray,
    download_times: np.ndarray,
) -> PlayerObservation:
    """The per-chunk observation served from precomputed matrices.

    Shared by :class:`SessionState` (scalar stepping) and
    :class:`~repro.player.shard.ShardState` (SoA stepping) so both paths
    build observations with the exact same code — upcoming sizes/quality as
    zero-copy slices, histories already trimmed to ``history_length``.
    """
    encoded = precompute.encoded
    horizon = min(config.observation_horizon, encoded.num_chunks - chunk_index)
    sizes, quality = precompute.upcoming(chunk_index, horizon)
    weights = chunk_weights[chunk_index : chunk_index + horizon].copy()
    return PlayerObservation(
        chunk_index=chunk_index,
        num_chunks=encoded.num_chunks,
        buffer_s=buffer_s,
        last_level=last_level,
        throughput_history_mbps=throughput,
        download_time_history_s=download_times,
        upcoming_sizes_bytes=sizes,
        upcoming_quality=quality,
        upcoming_weights=weights,
        chunk_duration_s=encoded.chunk_duration_s,
        ladder=encoded.ladder,
        buffer_capacity_s=config.buffer_capacity_s,
    )


@dataclass(frozen=True)
class SessionConfig:
    """Player configuration.

    Attributes
    ----------
    buffer_capacity_s:
        Maximum buffer occupancy; downloads pause when it would be exceeded.
    observation_horizon:
        How many upcoming chunks the observation describes (h = 5 in §5.1).
    history_length:
        How many past throughput samples the observation carries.
    """

    buffer_capacity_s: float = 60.0
    observation_horizon: int = 5
    history_length: int = 8

    def __post_init__(self) -> None:
        require_positive(self.buffer_capacity_s, "buffer_capacity_s")
        require(self.observation_horizon >= 1, "observation_horizon must be >= 1")
        require(self.history_length >= 1, "history_length must be >= 1")


@dataclass
class StreamResult:
    """Everything a finished session produced.

    Attributes
    ----------
    rendered:
        The resulting :class:`~repro.video.rendering.RenderedVideo`: per-chunk
        levels, per-chunk stall time and startup delay.  This is what QoE
        models score and what simulated raters watch.
    timeline:
        Chronological download/stall records.
    total_bytes:
        Bytes downloaded across the session.
    session_duration_s:
        Wall-clock time from the first request to the end of playback.
    abr_name:
        Name of the ABR algorithm that drove the session.
    trace_name:
        Name of the throughput trace.
    """

    rendered: RenderedVideo
    timeline: SessionTimeline
    total_bytes: float
    session_duration_s: float
    abr_name: str = ""
    trace_name: str = ""

    @property
    def startup_delay_s(self) -> float:
        """Startup (join) delay in seconds."""
        return self.rendered.startup_delay_s

    @property
    def total_stall_s(self) -> float:
        """Total mid-stream stall time in seconds."""
        return self.rendered.total_stall_s()

    @property
    def average_bitrate_kbps(self) -> float:
        """Mean played bitrate."""
        return self.rendered.average_bitrate_kbps()

    def bandwidth_usage_mbps(self) -> float:
        """Average download rate over the session (bandwidth footprint)."""
        if self.session_duration_s <= 0:
            return 0.0
        return self.total_bytes * 8.0 / 1e6 / self.session_duration_s


class SessionState:
    """The mutable state of one in-flight streaming session.

    Extracted from :meth:`StreamingSession.run` so that two drivers can step
    it with the *same* code — and therefore the same floating-point
    operation sequence:

    * :class:`StreamingSession` steps one state to completion in a loop
      (observe → ABR decide → apply), reproducing the seed control flow
      exactly;
    * the lockstep engine (:mod:`repro.engine.lockstep`) interleaves many
      states chunk-step by chunk-step, batching the ABR decisions across
      sessions while each state's evolution stays bit-identical to the
      serial run.

    The protocol is ``observe()`` → ``apply(decision)`` once per chunk (in
    chunk order) until :attr:`done`, then ``finalize()`` for the
    :class:`StreamResult`.
    """

    def __init__(
        self,
        encoded: EncodedVideo,
        trace: ThroughputTrace,
        config: SessionConfig,
        chunk_weights: np.ndarray,
        use_precompute: bool = True,
        precompute: Optional["SessionPrecompute"] = None,
    ) -> None:
        self.encoded = encoded
        self.trace = trace
        self.config = config
        self.chunk_weights = chunk_weights
        self.use_precompute = use_precompute
        self.precompute = precompute
        self.num_chunks = encoded.num_chunks
        self.chunk_duration = encoded.chunk_duration_s

        self.buffer = PlaybackBuffer(capacity_s=config.buffer_capacity_s)
        self.timeline = SessionTimeline()
        self.levels = np.zeros(self.num_chunks, dtype=int)
        self.stalls = np.zeros(self.num_chunks)
        if use_precompute:
            from repro.engine.precompute import HistoryRing

            history_len = config.history_length
            self.throughput_history = HistoryRing(history_len)
            self.download_time_history = HistoryRing(history_len)
        else:
            self.throughput_history: List[float] = []
            self.download_time_history: List[float] = []

        self.wall_time = 0.0
        self.played_s = 0.0
        self.startup_delay = 0.0
        self.pending_proactive_s = 0.0
        self.total_bytes = 0.0
        self.playback_started = False
        self.next_chunk = 0

    @property
    def done(self) -> bool:
        """True once every chunk has been downloaded."""
        return self.next_chunk >= self.num_chunks

    @property
    def chunk_index(self) -> int:
        """Index of the chunk the next observe/apply pair concerns."""
        return self.next_chunk

    def observe(self) -> PlayerObservation:
        """The observation for the chunk about to be downloaded."""
        return self._build_observation(
            self.next_chunk,
            self.buffer.level_s,
            self.last_level,
            self.throughput_history,
            self.download_time_history,
        )

    @property
    def last_level(self) -> int:
        """Level of the previously downloaded chunk (-1 before the first)."""
        return int(self.levels[self.next_chunk - 1]) if self.next_chunk > 0 else -1

    def apply(self, decision: Decision) -> None:
        """Download the next chunk at the decided level and advance playback."""
        chunk_index = self.next_chunk
        encoded = self.encoded
        # Inlined ABRAlgorithm.clamp_level — this runs once per chunk of
        # every session of a sweep.
        level = min(max(int(decision.level), 0), encoded.ladder.num_levels - 1)
        self.levels[chunk_index] = level
        if decision.proactive_stall_s > 0:
            self.pending_proactive_s += float(decision.proactive_stall_s)

        if self.use_precompute:
            size_bytes = self.precompute.chunk_size_bytes(chunk_index, level)
            download_s = self.trace.download_time_s(size_bytes, self.wall_time)
        else:
            size_bytes = encoded.chunk_size_bytes(chunk_index, level)
            download_s = self.trace.download_time_s_reference(
                size_bytes, self.wall_time
            )
        # Clamp: a degenerate trace may deliver the chunk in ~0 s, and the
        # measured-throughput division must stay finite.
        download_s = max(download_s, MIN_DOWNLOAD_DURATION_S)
        buffer_before = self.buffer.level_s
        download_start = self.wall_time
        self.total_bytes += size_bytes

        if not self.playback_started:
            # Startup: the buffer cannot drain before playback begins.
            self.wall_time += download_s
            self.startup_delay += download_s
            self.buffer.add_chunk(self.chunk_duration)
            self.playback_started = True
            self.timeline.add_stall(
                StallEvent(
                    cause=STALL_STARTUP,
                    chunk_index=0,
                    start_time_s=download_start,
                    duration_s=download_s,
                )
            )
        else:
            self._advance_playback(download_s)
            overshoot = self.buffer.add_chunk(self.chunk_duration)
            if overshoot > 0:
                # Buffer full: wait until there is room again.  Playback
                # continues during the wait (it cannot stall: the buffer
                # is by definition non-empty), so exactly ``overshoot``
                # seconds drain and the level returns to capacity.
                drained = self.buffer.drain(overshoot)
                self.played_s += drained
                self.wall_time += overshoot

        measured_mbps = size_bytes * 8.0 / 1e6 / download_s
        self.timeline.add_download(
            DownloadRecord(
                chunk_index=chunk_index,
                level=level,
                size_bytes=size_bytes,
                start_time_s=download_start,
                duration_s=download_s,
                throughput_mbps=measured_mbps,
                buffer_before_s=buffer_before,
                buffer_after_s=self.buffer.level_s,
            )
        )
        self.throughput_history.append(measured_mbps)
        self.download_time_history.append(download_s)
        self.next_chunk = chunk_index + 1

    def finalize(self, abr_name: str = "", trace_name: str = "") -> StreamResult:
        """Play out the remaining buffer and assemble the result."""
        require(self.done, "finalize() before every chunk was downloaded")
        # Any proactive stall still pending applies before the remaining
        # buffered media plays out.
        if self.pending_proactive_s > 0:
            next_chunk = min(
                self.num_chunks - 1,
                int(self.played_s / self.chunk_duration + 1e-9),
            )
            self.stalls[next_chunk] += self.pending_proactive_s
            self.timeline.add_stall(
                StallEvent(
                    cause=STALL_PROACTIVE,
                    chunk_index=next_chunk,
                    start_time_s=self.wall_time,
                    duration_s=self.pending_proactive_s,
                )
            )
            self.wall_time += self.pending_proactive_s
            self.pending_proactive_s = 0.0

        # Remaining buffer plays out with no possible stalls.
        remaining = self.buffer.level_s
        self.wall_time += remaining
        self.played_s += remaining
        self.buffer.reset()

        rendered = RenderedVideo(
            encoded=self.encoded,
            levels=self.levels,
            stalls_s=self.stalls,
            startup_delay_s=self.startup_delay,
            render_id=(
                f"{self.encoded.source.video_id}/{abr_name}/{trace_name}"
            ),
        )
        return StreamResult(
            rendered=rendered,
            timeline=self.timeline,
            total_bytes=self.total_bytes,
            session_duration_s=self.wall_time,
            abr_name=abr_name,
            trace_name=trace_name,
        )

    # ------------------------------------------------------------ internals

    def _advance_playback(self, elapsed_s: float) -> None:
        """Advance wall-clock time by ``elapsed_s`` while playback runs.

        Handles, in order: pending proactive stalls (playback paused, buffer
        preserved), normal draining, and involuntary rebuffering when the
        buffer empties.
        """
        remaining = elapsed_s
        while remaining > PLAYBACK_EPSILON_S:
            next_chunk = min(
                self.num_chunks - 1,
                int(self.played_s / self.chunk_duration + 1e-9),
            )
            if self.pending_proactive_s > PLAYBACK_EPSILON_S:
                pause = min(self.pending_proactive_s, remaining)
                self.stalls[next_chunk] += pause
                self.timeline.add_stall(
                    StallEvent(
                        cause=STALL_PROACTIVE,
                        chunk_index=next_chunk,
                        start_time_s=self.wall_time,
                        duration_s=pause,
                    )
                )
                self.pending_proactive_s -= pause
                remaining -= pause
                self.wall_time += pause
                continue
            if self.buffer.is_empty:
                self.stalls[next_chunk] += remaining
                self.timeline.add_stall(
                    StallEvent(
                        cause=STALL_REBUFFER,
                        chunk_index=next_chunk,
                        start_time_s=self.wall_time,
                        duration_s=remaining,
                    )
                )
                self.wall_time += remaining
                remaining = 0.0
                continue
            drained = self.buffer.drain(remaining)
            self.played_s += drained
            self.wall_time += drained
            remaining -= drained

    def _build_observation(
        self,
        chunk_index: int,
        buffer_s: float,
        last_level: int,
        throughput_history,
        download_time_history,
    ) -> PlayerObservation:
        if self.use_precompute:
            # Sliced views of the per-video matrices; ring buffers already
            # hold exactly the last ``history_length`` samples.
            return observation_from_precompute(
                precompute=self.precompute,
                config=self.config,
                chunk_weights=self.chunk_weights,
                chunk_index=chunk_index,
                buffer_s=buffer_s,
                last_level=last_level,
                throughput=throughput_history.as_array(),
                download_times=download_time_history.as_array(),
            )
        # Seed path: per-chunk stacking and unbounded list histories.
        horizon = min(
            self.config.observation_horizon, self.encoded.num_chunks - chunk_index
        )
        sizes = np.stack(
            [
                self.encoded.chunks[chunk_index + offset].sizes_bytes
                for offset in range(horizon)
            ]
        )
        quality = np.stack(
            [
                self.encoded.chunks[chunk_index + offset].quality
                for offset in range(horizon)
            ]
        )
        history_len = self.config.history_length
        throughput = np.asarray(
            throughput_history[-history_len:], dtype=float
        )
        download_times = np.asarray(
            download_time_history[-history_len:], dtype=float
        )
        weights = self.chunk_weights[chunk_index : chunk_index + horizon].copy()
        return PlayerObservation(
            chunk_index=chunk_index,
            num_chunks=self.encoded.num_chunks,
            buffer_s=buffer_s,
            last_level=last_level,
            throughput_history_mbps=throughput,
            download_time_history_s=download_times,
            upcoming_sizes_bytes=sizes,
            upcoming_quality=quality,
            upcoming_weights=weights,
            chunk_duration_s=self.encoded.chunk_duration_s,
            ladder=self.encoded.ladder,
            buffer_capacity_s=self.config.buffer_capacity_s,
        )


class StreamingSession:
    """Runs one ABR algorithm over one encoded video and one trace.

    ``use_precompute`` (default) is the engine/seed switch for the whole
    session fast path: per-chunk observations served as slices of the
    video's cached :class:`~repro.engine.precompute.SessionPrecompute`
    matrices, throughput histories in fixed ring buffers, **and** the
    indexed trace integrator (:meth:`ThroughputTrace.download_time_s`).
    Passing ``False`` selects the seed implementation of all three
    (per-chunk ``np.stack``, growing lists, and the segment-walking
    :meth:`ThroughputTrace.download_time_s_reference`) — retained as the
    baseline the engine perf harness measures speedups against.  Supplying
    an explicit ``precompute`` together with ``use_precompute=False`` is a
    contradiction and rejected.
    """

    def __init__(
        self,
        encoded: EncodedVideo,
        trace: ThroughputTrace,
        abr: ABRAlgorithm,
        config: Optional[SessionConfig] = None,
        chunk_weights: Optional[np.ndarray] = None,
        use_precompute: bool = True,
        precompute: Optional["SessionPrecompute"] = None,
    ) -> None:
        self.encoded = encoded
        self.trace = trace
        self.abr = abr
        self.config = config if config is not None else SessionConfig()
        if chunk_weights is None:
            chunk_weights = np.ones(encoded.num_chunks)
        chunk_weights = np.asarray(chunk_weights, dtype=float)
        require(
            chunk_weights.shape == (encoded.num_chunks,),
            "chunk_weights must have one entry per chunk",
        )
        require(bool(np.all(chunk_weights > 0)), "chunk weights must be positive")
        self.chunk_weights = chunk_weights
        require(
            use_precompute or precompute is None,
            "precompute supplied but use_precompute=False",
        )
        require(
            precompute is None or precompute.encoded is encoded,
            "precompute belongs to a different encoded video",
        )
        self.use_precompute = bool(use_precompute)
        if precompute is None and self.use_precompute:
            # Imported lazily: repro.engine depends on the player package.
            from repro.engine.precompute import SessionPrecompute

            precompute = SessionPrecompute.of(encoded)
        self.precompute = precompute

    # ------------------------------------------------------------------ run

    def make_state(self) -> SessionState:
        """A fresh :class:`SessionState` for this session's parameters.

        Used by the lockstep engine to step many sessions in parallel with
        the exact state-evolution code :meth:`run` uses.
        """
        return SessionState(
            encoded=self.encoded,
            trace=self.trace,
            config=self.config,
            chunk_weights=self.chunk_weights,
            use_precompute=self.use_precompute,
            precompute=self.precompute,
        )

    def run(self) -> StreamResult:
        """Execute the session and return its :class:`StreamResult`."""
        self.abr.reset()
        state = self.make_state()
        while not state.done:
            decision = self.abr.decide(state.observe())
            state.apply(decision)
        return state.finalize(abr_name=self.abr.name, trace_name=self.trace.name)
