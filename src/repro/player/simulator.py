"""Convenience entry points for running streaming sessions.

These wrap :class:`~repro.player.session.StreamingSession` so that the
experiment harness and the examples can simulate an (ABR, video, trace)
combination — or a whole grid of them — in one call.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.abr.base import ABRAlgorithm
from repro.network.trace import ThroughputTrace
from repro.player.session import SessionConfig, StreamingSession, StreamResult
from repro.video.encoder import EncodedVideo


def simulate_session(
    abr: ABRAlgorithm,
    encoded: EncodedVideo,
    trace: ThroughputTrace,
    config: Optional[SessionConfig] = None,
    chunk_weights: Optional[np.ndarray] = None,
) -> StreamResult:
    """Run one streaming session and return its result."""
    session = StreamingSession(
        encoded=encoded,
        trace=trace,
        abr=abr,
        config=config,
        chunk_weights=chunk_weights,
    )
    return session.run()


def simulate_many(
    abrs: Sequence[ABRAlgorithm],
    videos: Sequence[EncodedVideo],
    traces: Sequence[ThroughputTrace],
    config: Optional[SessionConfig] = None,
    weights_by_video: Optional[Dict[str, np.ndarray]] = None,
) -> List[Tuple[str, str, str, StreamResult]]:
    """Simulate every (ABR, video, trace) combination.

    Returns a list of ``(abr_name, video_id, trace_name, result)`` tuples in
    deterministic iteration order.  ``weights_by_video`` optionally supplies
    sensitivity weights per video id (used by SENSEI variants); other videos
    stream with uniform weights.
    """
    results: List[Tuple[str, str, str, StreamResult]] = []
    weights_by_video = weights_by_video or {}
    for abr in abrs:
        for encoded in videos:
            weights = weights_by_video.get(encoded.source.video_id)
            for trace in traces:
                result = simulate_session(
                    abr, encoded, trace, config=config, chunk_weights=weights
                )
                results.append(
                    (abr.name, encoded.source.video_id, trace.name, result)
                )
    return results
