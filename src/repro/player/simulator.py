"""Convenience entry points for running streaming sessions.

These wrap :class:`~repro.player.session.StreamingSession` so that the
experiment harness and the examples can simulate an (ABR, video, trace)
combination — or a whole grid of them — in one call.  Grid sweeps are
delegated to the batch engine (:class:`~repro.engine.runner.BatchRunner`):
the default serial backend reproduces the seed's sequential loop exactly,
while a process-pool runner shards the grid across cores.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.abr.base import ABRAlgorithm
from repro.network.trace import ThroughputTrace
from repro.player.session import SessionConfig, StreamingSession, StreamResult
from repro.video.encoder import EncodedVideo


def simulate_session(
    abr: ABRAlgorithm,
    encoded: EncodedVideo,
    trace: ThroughputTrace,
    config: Optional[SessionConfig] = None,
    chunk_weights: Optional[np.ndarray] = None,
    use_precompute: bool = True,
) -> StreamResult:
    """Run one streaming session and return its result."""
    session = StreamingSession(
        encoded=encoded,
        trace=trace,
        abr=abr,
        config=config,
        chunk_weights=chunk_weights,
        use_precompute=use_precompute,
    )
    return session.run()


def simulate_many(
    abrs: Sequence[ABRAlgorithm],
    videos: Sequence[EncodedVideo],
    traces: Sequence[ThroughputTrace],
    config: Optional[SessionConfig] = None,
    weights_by_video: Optional[Dict[str, np.ndarray]] = None,
    runner: Optional["BatchRunner"] = None,
) -> List[Tuple[str, str, str, StreamResult]]:
    """Simulate every (ABR, video, trace) combination.

    Returns a list of ``(abr_name, video_id, trace_name, result)`` tuples in
    deterministic iteration order.  ``weights_by_video`` optionally supplies
    sensitivity weights per video id (used by SENSEI variants); other videos
    stream with uniform weights.

    ``runner`` selects the execution backend; ``None`` uses the serial
    :class:`~repro.engine.runner.BatchRunner`, which runs the grid in the
    seed's iteration order.  Result ordering is identical for every backend.
    """
    from repro.engine.runner import BatchRunner, orders_for_grid

    runner = runner if runner is not None else BatchRunner()
    keyed_orders = orders_for_grid(
        abrs, videos, traces, config=config, weights_by_video=weights_by_video
    )
    results = runner.run_orders([order for _, order in keyed_orders])
    return [
        (key[0], key[1], key[2], result)
        for (key, _), result in zip(keyed_orders, results)
    ]
