"""Cost accounting for crowdsourcing campaigns.

The paper pays each participant a fixed hourly rate ($10/h, Appendix B)
times the estimated time needed for their survey, which is proportional to
the total length of the videos they watch.  Rejected participants are not
paid.  The headline number the paper reports (Figure 12c, §7.2) is the cost
in USD per minute of *source* video.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import require, require_non_negative, require_positive


@dataclass(frozen=True)
class CostModel:
    """Campaign cost model.

    Attributes
    ----------
    hourly_rate_usd:
        Payment per participant-hour of watching (the paper uses $10/h).
    overhead_factor:
        Multiplier accounting for instructions, the rating page and platform
        fees (> 1).
    """

    hourly_rate_usd: float = 10.0
    overhead_factor: float = 1.3

    def __post_init__(self) -> None:
        require_positive(self.hourly_rate_usd, "hourly_rate_usd")
        require(self.overhead_factor >= 1.0, "overhead_factor must be >= 1")

    def payment_for_watch_time(self, watch_seconds: float) -> float:
        """Payment owed for a given number of watched video-seconds."""
        require_non_negative(watch_seconds, "watch_seconds")
        hours = watch_seconds * self.overhead_factor / 3600.0
        return hours * self.hourly_rate_usd

    def cost_per_source_minute(
        self, total_paid_usd: float, source_duration_s: float
    ) -> float:
        """Campaign cost normalised per minute of source video (Fig. 12c)."""
        require_non_negative(total_paid_usd, "total_paid_usd")
        require_positive(source_duration_s, "source_duration_s")
        return total_paid_usd / (source_duration_s / 60.0)
