"""Simulated crowdsourcing workers (Turkers).

Each worker observes a rendering's *true* QoE (from the ground-truth oracle)
through personal bias and noise, may occasionally not watch the video in
full or answer carelessly, and confirms which quality incident they saw.
"Master" workers (Appendix C) are more reliable and less noisy, matching the
paper's observation that their rejection rate is over 4x lower.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.utils.rand import spawn_rng
from repro.utils.validation import require, require_probability
from repro.video.rendering import RenderedVideo


@dataclass(frozen=True)
class WorkerProfile:
    """Latent characteristics of one simulated worker.

    Attributes
    ----------
    worker_id: stable identifier.
    bias: additive shift of the worker's ratings on the 1–5 scale.
    noise_sigma: standard deviation of per-rating noise (1–5 scale).
    attention: probability of watching a video in full and answering the
        incident-confirmation question correctly.
    is_master: whether the worker belongs to the "master Turker" pool.
    """

    worker_id: str
    bias: float
    noise_sigma: float
    attention: float
    is_master: bool = True

    def __post_init__(self) -> None:
        require(bool(self.worker_id), "worker_id must be non-empty")
        require(self.noise_sigma >= 0, "noise_sigma must be >= 0")
        require_probability(self.attention, "attention")


@dataclass(frozen=True)
class WorkerRating:
    """One worker's response to one rendered video.

    Attributes
    ----------
    worker_id: who rated.
    render_id: which rendering.
    score: the 1–5 Likert rating.
    watched_fully: whether the worker watched the whole video.
    incident_confirmed: whether the post-video incident question was answered
        consistently with the rendering's actual incidents.
    watch_time_s: seconds of video watched (for cost accounting).
    """

    worker_id: str
    render_id: str
    score: float
    watched_fully: bool
    incident_confirmed: bool
    watch_time_s: float


class SimulatedWorker:
    """A worker that turns true QoE into noisy Likert ratings."""

    def __init__(self, profile: WorkerProfile, seed: int = 0) -> None:
        self.profile = profile
        self._rng = spawn_rng(seed, "worker", profile.worker_id)

    def rate(self, rendered: RenderedVideo, true_mos: float) -> WorkerRating:
        """Rate one rendering whose latent true MOS (1–5) is ``true_mos``."""
        require(1.0 <= true_mos <= 5.0, "true_mos must be on the 1-5 scale")
        attentive = bool(self._rng.random() < self.profile.attention)
        watched_fully = attentive or bool(self._rng.random() < 0.5)
        incident_confirmed = attentive or bool(self._rng.random() < 0.3)
        if attentive:
            raw = true_mos + self.profile.bias
            raw += self.profile.noise_sigma * self._rng.standard_normal()
        else:
            # Careless response: weak correlation with the truth.
            raw = 0.3 * true_mos + 0.7 * self._rng.uniform(1.0, 5.0)
        score = float(np.clip(np.round(raw * 2.0) / 2.0, 1.0, 5.0))
        duration = rendered.num_chunks * rendered.chunk_duration_s
        watch_time = duration + rendered.total_stall_s() + rendered.startup_delay_s
        if not watched_fully:
            watch_time *= float(self._rng.uniform(0.3, 0.9))
        return WorkerRating(
            worker_id=self.profile.worker_id,
            render_id=rendered.render_id,
            score=score,
            watched_fully=watched_fully,
            incident_confirmed=incident_confirmed,
            watch_time_s=watch_time,
        )


class WorkerPool:
    """A population of simulated workers to draw survey participants from.

    Parameters
    ----------
    size: number of distinct workers in the pool.
    master_fraction: fraction of master Turkers (more attentive, less noisy).
    seed: base seed for worker characteristics and sampling.
    """

    def __init__(self, size: int = 200, master_fraction: float = 0.8, seed: int = 23) -> None:
        require(size >= 1, "pool size must be >= 1")
        require_probability(master_fraction, "master_fraction")
        self.size = int(size)
        self.master_fraction = float(master_fraction)
        self.seed = int(seed)
        self._profiles = self._build_profiles()
        self._draw_rng = spawn_rng(seed, "pool-draws")

    def _build_profiles(self) -> List[WorkerProfile]:
        rng = spawn_rng(self.seed, "pool-profiles")
        profiles: List[WorkerProfile] = []
        for index in range(self.size):
            is_master = bool(rng.random() < self.master_fraction)
            bias = float(rng.normal(0.0, 0.2 if is_master else 0.45))
            noise = float(abs(rng.normal(0.25 if is_master else 0.6, 0.08)))
            attention = float(
                np.clip(rng.normal(0.985 if is_master else 0.9, 0.015), 0.5, 1.0)
            )
            profiles.append(
                WorkerProfile(
                    worker_id=f"worker-{index:04d}",
                    bias=bias,
                    noise_sigma=noise,
                    attention=attention,
                    is_master=is_master,
                )
            )
        return profiles

    @property
    def profiles(self) -> List[WorkerProfile]:
        """All worker profiles in the pool."""
        return list(self._profiles)

    def sample_workers(
        self, count: int, masters_only: bool = True
    ) -> List[SimulatedWorker]:
        """Sample ``count`` workers (with replacement across calls, without
        replacement within one call when possible)."""
        require(count >= 1, "count must be >= 1")
        candidates = [
            p for p in self._profiles if p.is_master or not masters_only
        ]
        require(bool(candidates), "no eligible workers in the pool")
        replace = count > len(candidates)
        chosen_indices = self._draw_rng.choice(
            len(candidates), size=count, replace=replace
        )
        return [
            SimulatedWorker(candidates[int(i)], seed=self.seed + 1)
            for i in np.atleast_1d(chosen_indices)
        ]
