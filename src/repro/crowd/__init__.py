"""Crowdsourcing substrate: a simulated Amazon MTurk campaign.

The paper elicits MOS ratings from MTurk workers per rendered video (§4.1,
Appendix B/C).  The reproduction simulates the same pipeline: a pool of
workers with individual bias, noise and reliability; surveys of K rendered
videos plus a reference video; rejection rules (rating above the reference,
not watching in full, inconsistent incident confirmation); MOS aggregation;
and cost accounting at an hourly rate proportional to watched video time.
"""

from repro.crowd.worker import WorkerProfile, SimulatedWorker, WorkerPool, WorkerRating
from repro.crowd.survey import Survey, SurveyPlan, build_survey_plan
from repro.crowd.campaign import (
    CampaignConfig,
    CampaignResult,
    MTurkCampaign,
    RatingRecord,
)
from repro.crowd.cost import CostModel

__all__ = [
    "WorkerProfile",
    "SimulatedWorker",
    "WorkerPool",
    "WorkerRating",
    "Survey",
    "SurveyPlan",
    "build_survey_plan",
    "CampaignConfig",
    "CampaignResult",
    "MTurkCampaign",
    "RatingRecord",
    "CostModel",
]
