"""MTurk campaign simulation: run surveys, sanitise ratings, aggregate MOS.

Implements the quality-control measures of §4.1 and Appendix B:

* a pristine reference video is embedded in every survey; a participant who
  rates any other rendering above the reference is rejected;
* participants who do not watch a video in full are rejected;
* participants whose incident confirmation is inconsistent are rejected;
* viewing order is randomised per participant;
* rejected participants are not paid.

The campaign returns the per-rendering MOS over accepted ratings along with
cost and rejection statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.crowd.cost import CostModel
from repro.crowd.survey import Survey, SurveyPlan, build_survey_plan
from repro.crowd.worker import SimulatedWorker, WorkerPool, WorkerRating
from repro.qoe.ground_truth import GroundTruthOracle
from repro.utils.rand import spawn_rng
from repro.utils.validation import require
from repro.video.rendering import RenderedVideo, render_pristine


@dataclass(frozen=True)
class CampaignConfig:
    """Campaign parameters.

    Attributes
    ----------
    ratings_per_rendering:
        How many accepted ratings each rendering should target.
    videos_per_survey:
        Rendered videos per participant (K in §4.1), excluding the reference.
    masters_only:
        Restrict recruitment to master Turkers (Appendix C).
    minimum_ratings:
        Renderings with fewer accepted ratings than this fall back to the
        mean of whatever ratings they have (guards against division by zero).
    seed:
        Seed for order randomisation and participant sampling.
    """

    ratings_per_rendering: int = 10
    videos_per_survey: int = 5
    masters_only: bool = True
    minimum_ratings: int = 1
    seed: int = 31

    def __post_init__(self) -> None:
        require(self.ratings_per_rendering >= 1, "ratings_per_rendering must be >= 1")
        require(self.videos_per_survey >= 1, "videos_per_survey must be >= 1")
        require(self.minimum_ratings >= 1, "minimum_ratings must be >= 1")


@dataclass(frozen=True)
class RatingRecord:
    """One rating together with its acceptance status."""

    rating: WorkerRating
    accepted: bool
    rejection_reason: str = ""


@dataclass
class CampaignResult:
    """Outcome of a campaign.

    Attributes
    ----------
    mos: mean opinion score (1–5) per render_id over accepted ratings.
    normalized_mos: MOS rescaled to [0, 1] per render_id.
    records: every individual rating with its acceptance decision.
    num_participants: surveys answered.
    num_rejected_participants: participants whose ratings were discarded.
    total_paid_usd: total payment to accepted participants.
    total_watch_seconds: video-seconds watched by accepted participants.
    """

    mos: Dict[str, float] = field(default_factory=dict)
    normalized_mos: Dict[str, float] = field(default_factory=dict)
    records: List[RatingRecord] = field(default_factory=list)
    num_participants: int = 0
    num_rejected_participants: int = 0
    total_paid_usd: float = 0.0
    total_watch_seconds: float = 0.0

    def rejection_rate(self) -> float:
        """Fraction of participants rejected."""
        if self.num_participants == 0:
            return 0.0
        return self.num_rejected_participants / self.num_participants

    def ratings_for(self, render_id: str) -> List[float]:
        """Accepted rating scores for one rendering."""
        return [
            record.rating.score
            for record in self.records
            if record.accepted and record.rating.render_id == render_id
        ]


class MTurkCampaign:
    """Simulated MTurk campaign over a set of rendered videos."""

    def __init__(
        self,
        oracle: GroundTruthOracle,
        worker_pool: Optional[WorkerPool] = None,
        cost_model: Optional[CostModel] = None,
        config: Optional[CampaignConfig] = None,
    ) -> None:
        self.oracle = oracle
        self.config = config if config is not None else CampaignConfig()
        self.worker_pool = (
            worker_pool if worker_pool is not None
            else WorkerPool(seed=self.config.seed + 1)
        )
        self.cost_model = cost_model if cost_model is not None else CostModel()

    # ------------------------------------------------------------------ run

    def run(
        self,
        renderings: Sequence[RenderedVideo],
        reference: Optional[RenderedVideo] = None,
    ) -> CampaignResult:
        """Collect ratings for the given renderings and aggregate MOS."""
        require(bool(renderings), "need at least one rendering")
        if reference is None:
            reference = render_pristine(renderings[0].encoded)
        plan = build_survey_plan(
            renderings,
            reference,
            ratings_per_rendering=self.config.ratings_per_rendering,
            videos_per_survey=self.config.videos_per_survey,
            seed=self.config.seed,
        )
        workers = self.worker_pool.sample_workers(
            plan.num_participants(), masters_only=self.config.masters_only
        )
        order_rng = spawn_rng(self.config.seed, "viewing-order")

        result = CampaignResult()
        scores: Dict[str, List[float]] = {r.render_id: [] for r in renderings}
        for survey, worker in zip(plan.surveys, workers):
            records, accepted_participant, watch_seconds = self._run_survey(
                survey, worker, reference, order_rng
            )
            result.records.extend(records)
            result.num_participants += 1
            if accepted_participant:
                result.total_watch_seconds += watch_seconds
                result.total_paid_usd += self.cost_model.payment_for_watch_time(
                    watch_seconds
                )
                for record in records:
                    if record.accepted and record.rating.render_id in scores:
                        scores[record.rating.render_id].append(record.rating.score)
            else:
                result.num_rejected_participants += 1

        for render_id, values in scores.items():
            if len(values) >= self.config.minimum_ratings:
                mos = float(np.mean(values))
            elif values:
                mos = float(np.mean(values))
            else:
                # No accepted ratings at all: fall back to the scale midpoint.
                mos = 3.0
            result.mos[render_id] = mos
            result.normalized_mos[render_id] = (mos - 1.0) / 4.0
        return result

    # ------------------------------------------------------------ internals

    def _run_survey(
        self,
        survey: Survey,
        worker: SimulatedWorker,
        reference: RenderedVideo,
        order_rng: np.random.Generator,
    ):
        """Run one participant through one survey; apply rejection rules."""
        videos = survey.presentation_order(order_rng)
        ratings: List[WorkerRating] = []
        reference_score: Optional[float] = None
        watch_seconds = 0.0
        for video in videos:
            true_mos = self.oracle.true_mos(video)
            rating = worker.rate(video, true_mos)
            watch_seconds += rating.watch_time_s
            if video.render_id == reference.render_id:
                reference_score = rating.score
            ratings.append(rating)

        rejection_reason = ""
        if any(not rating.watched_fully for rating in ratings):
            rejection_reason = "did not watch all videos in full"
        elif any(not rating.incident_confirmed for rating in ratings):
            rejection_reason = "inconsistent incident confirmation"
        elif reference_score is not None and any(
            rating.score >= reference_score + 1.0
            for rating in ratings
            if rating.render_id != reference.render_id
        ):
            rejection_reason = "rated a degraded video well above the reference"

        accepted = rejection_reason == ""
        records = [
            RatingRecord(
                rating=rating,
                accepted=accepted and rating.render_id != reference.render_id,
                rejection_reason=rejection_reason,
            )
            for rating in ratings
        ]
        return records, accepted, watch_seconds
