"""Survey assembly: grouping rendered videos into rateable surveys.

Each survey shows a participant K rendered videos (in randomised order) plus
one pristine *reference* video used for calibration and rejection (Appendix
B).  The plan builder spreads the required number of ratings per rendering
across surveys while respecting the per-participant video limit that the
paper uses to prevent fatigue.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from repro.utils.rand import spawn_rng
from repro.utils.validation import require
from repro.video.rendering import RenderedVideo


@dataclass
class Survey:
    """One participant's assignment: a handful of renderings plus a reference.

    Attributes
    ----------
    survey_id: stable identifier.
    renderings: the rendered videos to rate (reference excluded).
    reference: the pristine reference rendering.
    """

    survey_id: str
    renderings: List[RenderedVideo]
    reference: RenderedVideo

    def __post_init__(self) -> None:
        require(bool(self.renderings), "a survey needs at least one rendering")

    def presentation_order(self, rng: np.random.Generator) -> List[RenderedVideo]:
        """All videos (including the reference) in a randomised viewing order."""
        videos = list(self.renderings) + [self.reference]
        order = rng.permutation(len(videos))
        return [videos[int(i)] for i in order]

    def total_video_seconds(self) -> float:
        """Total length of video a participant watches in this survey."""
        videos = list(self.renderings) + [self.reference]
        return float(
            sum(
                v.num_chunks * v.chunk_duration_s + v.total_stall_s()
                + v.startup_delay_s
                for v in videos
            )
        )


@dataclass
class SurveyPlan:
    """A full campaign plan: surveys plus the required rating multiplicity."""

    surveys: List[Survey] = field(default_factory=list)
    ratings_per_rendering: int = 10

    def num_participants(self) -> int:
        """Each survey is answered by exactly one participant."""
        return len(self.surveys)

    def total_video_seconds(self) -> float:
        """Total video-seconds watched across the whole plan."""
        return float(sum(survey.total_video_seconds() for survey in self.surveys))


def build_survey_plan(
    renderings: Sequence[RenderedVideo],
    reference: RenderedVideo,
    ratings_per_rendering: int,
    videos_per_survey: int = 5,
    seed: int = 29,
) -> SurveyPlan:
    """Spread renderings across surveys so each gets the requested ratings.

    Every rendering appears in exactly ``ratings_per_rendering`` surveys;
    every survey contains at most ``videos_per_survey`` renderings (plus the
    reference video).  Assignment is randomised but seeded.
    """
    require(bool(renderings), "need at least one rendering to rate")
    require(ratings_per_rendering >= 1, "ratings_per_rendering must be >= 1")
    require(videos_per_survey >= 1, "videos_per_survey must be >= 1")
    rng = spawn_rng(seed, "survey-plan", len(renderings), ratings_per_rendering)

    # Build the multiset of rendering slots and shuffle it, then cut into
    # surveys of at most ``videos_per_survey`` slots, avoiding duplicates of
    # the same rendering within one survey where possible.
    slots: List[int] = []
    for index in range(len(renderings)):
        slots.extend([index] * ratings_per_rendering)
    order = rng.permutation(len(slots))
    shuffled = [slots[int(i)] for i in order]

    surveys: List[Survey] = []
    current: List[int] = []
    pending: List[int] = []
    for slot in shuffled:
        if slot in current or len(current) >= videos_per_survey:
            pending.append(slot)
        else:
            current.append(slot)
        if len(current) >= videos_per_survey:
            surveys.append(_make_survey(len(surveys), current, renderings, reference))
            current = []
            # Retry pending slots into the fresh survey.
            still_pending: List[int] = []
            for pending_slot in pending:
                if pending_slot not in current and len(current) < videos_per_survey:
                    current.append(pending_slot)
                else:
                    still_pending.append(pending_slot)
            pending = still_pending
    # Flush leftovers: keep appending surveys until every slot is placed.
    leftovers = current + pending
    while leftovers:
        batch: List[int] = []
        remaining: List[int] = []
        for slot in leftovers:
            if slot not in batch and len(batch) < videos_per_survey:
                batch.append(slot)
            else:
                remaining.append(slot)
        surveys.append(_make_survey(len(surveys), batch, renderings, reference))
        leftovers = remaining

    return SurveyPlan(surveys=surveys, ratings_per_rendering=ratings_per_rendering)


def _make_survey(
    index: int,
    slot_indices: Sequence[int],
    renderings: Sequence[RenderedVideo],
    reference: RenderedVideo,
) -> Survey:
    return Survey(
        survey_id=f"survey-{index:04d}",
        renderings=[renderings[i] for i in slot_indices],
        reference=reference,
    )
