"""repro: a reproduction of SENSEI (NSDI 2021).

SENSEI aligns video streaming quality with *dynamic user sensitivity*: it
profiles, per video, how sensitive viewers are to quality incidents at each
chunk (via crowdsourcing), encodes the result as per-chunk weights, and
feeds those weights to the QoE model and the ABR algorithm so that quality
is spent where viewers care most.

Package layout
--------------
``repro.video``    — source videos, encoding ladder, synthetic encoder, renderings
``repro.network``  — throughput traces and generators
``repro.player``   — trace-driven streaming-session simulator + DASH manifest
``repro.ml``       — from-scratch ML substrate (regression, forest, LSTM, RL)
``repro.qoe``      — ground-truth oracle and baseline QoE models
``repro.crowd``    — simulated MTurk campaigns
``repro.abr``      — baseline ABR algorithms (BBA, MPC, Fugu, Pensieve, ...)
``repro.core``     — SENSEI itself: weights, reweighted QoE, scheduler,
                     profiler, SENSEI-Fugu / SENSEI-Pensieve
``repro.cv``       — CV highlight baselines (Appendix D)
``repro.experiments`` — one module per paper figure/table
"""

__version__ = "1.0.0"

from repro.core import (
    SenseiFuguABR,
    SenseiPensieveABR,
    SenseiProfiler,
    SenseiQoEModel,
    SensitivityProfile,
)
from repro.qoe import GroundTruthOracle, KSQIModel
from repro.video import VideoLibrary
from repro.network import TraceBank

__all__ = [
    "__version__",
    "SenseiFuguABR",
    "SenseiPensieveABR",
    "SenseiProfiler",
    "SenseiQoEModel",
    "SensitivityProfile",
    "GroundTruthOracle",
    "KSQIModel",
    "VideoLibrary",
    "TraceBank",
]
