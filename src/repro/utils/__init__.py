"""Shared utilities: seeded randomness, statistics helpers, validation."""

from repro.utils.rand import rng_from_seed, derive_seed, spawn_rng
from repro.utils.stats import (
    pearson_correlation,
    spearman_correlation,
    discordant_pair_fraction,
    relative_error,
    mean_relative_error,
    harmonic_mean,
    normalize_to_unit,
    cdf_points,
    percentile,
)
from repro.utils.validation import (
    require,
    require_positive,
    require_non_negative,
    require_in_range,
    require_probability,
)

__all__ = [
    "rng_from_seed",
    "derive_seed",
    "spawn_rng",
    "pearson_correlation",
    "spearman_correlation",
    "discordant_pair_fraction",
    "relative_error",
    "mean_relative_error",
    "harmonic_mean",
    "normalize_to_unit",
    "cdf_points",
    "percentile",
    "require",
    "require_positive",
    "require_non_negative",
    "require_in_range",
    "require_probability",
]
