"""Small argument-validation helpers used across the package.

They raise ``ValueError`` with a readable message instead of letting bad
inputs propagate into NumPy where the eventual error is cryptic.
"""

from __future__ import annotations

from typing import Any


def require(condition: bool, message: str) -> None:
    """Raise ``ValueError(message)`` unless ``condition`` holds."""
    if not condition:
        raise ValueError(message)


def require_positive(value: float, name: str) -> float:
    """Validate that ``value`` is strictly positive and return it."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def require_non_negative(value: float, name: str) -> float:
    """Validate that ``value`` is >= 0 and return it."""
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def require_in_range(value: float, low: float, high: float, name: str) -> float:
    """Validate that ``low <= value <= high`` and return it."""
    if not (low <= value <= high):
        raise ValueError(f"{name} must be in [{low}, {high}], got {value!r}")
    return value


def require_probability(value: float, name: str) -> float:
    """Validate that ``value`` is a probability in [0, 1]."""
    return require_in_range(value, 0.0, 1.0, name)


def require_type(value: Any, expected_type: type, name: str) -> Any:
    """Validate that ``value`` is an instance of ``expected_type``."""
    if not isinstance(value, expected_type):
        raise TypeError(
            f"{name} must be {expected_type.__name__}, got {type(value).__name__}"
        )
    return value
