"""Shared pickling policy for objects carrying derived caches.

Several hot objects (encoded videos, throughput traces) cache derived
arrays on themselves under underscore attributes.  Those caches are cheap
to re-derive but roughly double pickle payloads, which matters when the
batch engine's process backend ships thousands of work orders between
processes.  The policy — serialise only the declared (non-underscore)
state — lives here so every class applies the same filter.
"""

from __future__ import annotations


def public_state(obj) -> dict:
    """``__getstate__`` body: the instance dict minus underscore attributes."""
    return {
        key: value
        for key, value in obj.__dict__.items()
        if not key.startswith("_")
    }
