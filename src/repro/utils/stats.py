"""Statistics helpers used by QoE evaluation and the experiment harness.

The correlation metrics mirror the ones reported in the paper:
Pearson's linear correlation coefficient (PLCC), Spearman's rank
correlation coefficient (SRCC), and the fraction of discordant pairs
used in Figure 2.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

import numpy as np

from repro.utils.validation import require


def _as_float_array(values: Iterable[float], name: str) -> np.ndarray:
    arr = np.asarray(list(values), dtype=float)
    require(arr.ndim == 1, f"{name} must be one-dimensional")
    return arr


def pearson_correlation(x: Iterable[float], y: Iterable[float]) -> float:
    """Pearson's linear correlation coefficient (PLCC).

    Returns 0.0 when either input is constant (correlation undefined),
    which keeps downstream aggregation well-behaved.
    """
    xs = _as_float_array(x, "x")
    ys = _as_float_array(y, "y")
    require(xs.size == ys.size, "x and y must have the same length")
    require(xs.size >= 2, "correlation needs at least two points")
    if np.std(xs) == 0 or np.std(ys) == 0:
        return 0.0
    return float(np.corrcoef(xs, ys)[0, 1])


def _rank(values: np.ndarray) -> np.ndarray:
    """Average ranks (1-based) with ties receiving the mean rank."""
    order = np.argsort(values, kind="mergesort")
    ranks = np.empty(values.size, dtype=float)
    ranks[order] = np.arange(1, values.size + 1, dtype=float)
    # Average ranks across ties.
    unique_vals, inverse, counts = np.unique(
        values, return_inverse=True, return_counts=True
    )
    sums = np.zeros(unique_vals.size)
    np.add.at(sums, inverse, ranks)
    return sums[inverse] / counts[inverse]


def spearman_correlation(x: Iterable[float], y: Iterable[float]) -> float:
    """Spearman's rank correlation coefficient (SRCC)."""
    xs = _as_float_array(x, "x")
    ys = _as_float_array(y, "y")
    require(xs.size == ys.size, "x and y must have the same length")
    require(xs.size >= 2, "correlation needs at least two points")
    return pearson_correlation(_rank(xs), _rank(ys))


def discordant_pair_fraction(
    true_values: Sequence[float],
    predicted_values: Sequence[float],
    tie_tolerance: float = 1e-12,
) -> float:
    """Fraction of value pairs whose ordering disagrees between the two lists.

    This is the metric on the y-axis of Figure 2: for every pair of items,
    check whether the predicted ordering matches the true ordering.  Ties in
    the ground truth are skipped; a predicted tie against a true non-tie
    counts as discordant.
    """
    truth = _as_float_array(true_values, "true_values")
    pred = _as_float_array(predicted_values, "predicted_values")
    require(truth.size == pred.size, "inputs must have the same length")
    require(truth.size >= 2, "need at least two items to form pairs")

    discordant = 0
    comparable = 0
    for i in range(truth.size):
        for j in range(i + 1, truth.size):
            true_diff = truth[i] - truth[j]
            if abs(true_diff) <= tie_tolerance:
                continue
            comparable += 1
            pred_diff = pred[i] - pred[j]
            if abs(pred_diff) <= tie_tolerance or (true_diff > 0) != (pred_diff > 0):
                discordant += 1
    if comparable == 0:
        return 0.0
    return discordant / comparable


def relative_error(predicted: float, true: float, epsilon: float = 1e-9) -> float:
    """Relative prediction error ``|predicted - true| / true`` (paper §2.2)."""
    denom = max(abs(true), epsilon)
    return abs(predicted - true) / denom


def mean_relative_error(
    predicted: Iterable[float], true: Iterable[float]
) -> float:
    """Mean relative prediction error over a test set."""
    preds = _as_float_array(predicted, "predicted")
    truth = _as_float_array(true, "true")
    require(preds.size == truth.size, "inputs must have the same length")
    require(preds.size > 0, "need at least one prediction")
    return float(np.mean([relative_error(p, t) for p, t in zip(preds, truth)]))


def harmonic_mean(values: Iterable[float]) -> float:
    """Harmonic mean of positive values (used by throughput predictors)."""
    arr = _as_float_array(values, "values")
    require(arr.size > 0, "harmonic mean of empty sequence")
    require(bool(np.all(arr > 0)), "harmonic mean requires positive values")
    return float(arr.size / np.sum(1.0 / arr))


def normalize_to_unit(values: Iterable[float]) -> np.ndarray:
    """Min-max normalise values to [0, 1]; constant input maps to 0.5."""
    arr = _as_float_array(values, "values")
    lo, hi = float(np.min(arr)), float(np.max(arr))
    if hi - lo < 1e-12:
        return np.full_like(arr, 0.5)
    return (arr - lo) / (hi - lo)


def cdf_points(values: Iterable[float]) -> Tuple[np.ndarray, np.ndarray]:
    """Return (sorted values, empirical CDF) suitable for plotting/reporting."""
    arr = np.sort(_as_float_array(values, "values"))
    require(arr.size > 0, "cdf of empty sequence")
    cdf = np.arange(1, arr.size + 1, dtype=float) / arr.size
    return arr, cdf


def percentile(values: Iterable[float], q: float) -> float:
    """Percentile helper with validation (q in [0, 100])."""
    arr = _as_float_array(values, "values")
    require(arr.size > 0, "percentile of empty sequence")
    require(0.0 <= q <= 100.0, "q must be in [0, 100]")
    return float(np.percentile(arr, q))
