"""Seeded random-number helpers.

Every stochastic component in the reproduction (synthetic videos, traces,
simulated raters, RL training) takes an explicit seed or
``numpy.random.Generator``.  These helpers centralise how seeds are derived
so that independent subsystems remain reproducible yet uncorrelated.
"""

from __future__ import annotations

import hashlib
from typing import Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]

_DEFAULT_SEED = 20210412  # NSDI 2021 camera-ready date; arbitrary but fixed.


def rng_from_seed(seed: SeedLike = None) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` from an int, Generator or None.

    ``None`` maps to a fixed default seed so that library behaviour is
    deterministic unless the caller opts into a specific seed.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = _DEFAULT_SEED
    return np.random.default_rng(int(seed))


def derive_seed(base_seed: int, *labels: object) -> int:
    """Derive a stable child seed from a base seed and a sequence of labels.

    The derivation hashes the labels so that e.g. per-video or per-worker
    seeds do not collide and do not depend on iteration order.
    """
    digest = hashlib.sha256()
    digest.update(str(int(base_seed)).encode("utf-8"))
    for label in labels:
        digest.update(b"\x00")
        digest.update(str(label).encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "little")


def spawn_rng(base_seed: int, *labels: object) -> np.random.Generator:
    """Return a generator seeded with :func:`derive_seed`."""
    return np.random.default_rng(derive_seed(base_seed, *labels))
