"""Pensieve-style ABR: an actor–critic RL agent over player state.

Pensieve (Mao et al., SIGCOMM 2017) trains an A3C agent whose state contains
the throughput history, download-time history, buffer level, next chunk
sizes, last bitrate and the number of chunks remaining, and whose actions
are the bitrate levels.  The reward is the QoE contribution of the chunk.

The reproduction implements a single-worker advantage actor–critic (see
:mod:`repro.ml.rl`) with the same state, action and reward structure.  The
SENSEI augmentation (§5.2) extends the state with the sensitivity weights of
the next ``h`` chunks, adds proactive-rebuffering actions, and reweights the
reward — see :mod:`repro.core.sensei_abr`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.abr.base import ABRAlgorithm, Decision, PlayerObservation, pad_history
from repro.ml.rl import ActorCriticAgent, ActorCriticConfig, EpisodeBuffer
from repro.qoe.ksqi import KSQIModel
from repro.utils.rand import spawn_rng
from repro.utils.validation import require

#: Normalisation constants for state features.
_THROUGHPUT_SCALE_MBPS = 6.0
_BUFFER_SCALE_S = 60.0
_DOWNLOAD_TIME_SCALE_S = 10.0
_CHUNK_SIZE_SCALE_BYTES = 2_000_000.0


@dataclass(frozen=True)
class PensieveConfig:
    """Structure of the Pensieve agent's state and action spaces.

    Attributes
    ----------
    history_length: number of past throughput / download-time samples.
    num_levels: number of bitrate levels (actions without SENSEI).
    weight_horizon: number of future chunk weights in the state (0 = the
        weight-unaware base agent).
    stall_actions_s: proactive-stall actions appended after the bitrate
        actions (empty for the base agent, (1, 2) seconds for SENSEI).
    hidden_dims: policy/value network widths.
    seed: parameter-initialisation and exploration seed.
    """

    history_length: int = 8
    num_levels: int = 5
    weight_horizon: int = 0
    stall_actions_s: Tuple[float, ...] = ()
    hidden_dims: Tuple[int, ...] = (64, 32)
    seed: int = 41

    @property
    def state_dim(self) -> int:
        """Dimensionality of the flattened state vector."""
        return (
            2 * self.history_length  # throughput + download-time history
            + self.num_levels        # next chunk sizes
            + 3                      # buffer, last level, chunks remaining
            + self.weight_horizon    # SENSEI: weights of future chunks
        )

    @property
    def num_actions(self) -> int:
        """Bitrate actions plus (for SENSEI) proactive-stall actions."""
        return self.num_levels + len(self.stall_actions_s)


class PensieveABR(ABRAlgorithm):
    """Actor–critic ABR agent with a Pensieve-style state encoding."""

    name = "Pensieve"
    #: Stable identifier used by the checkpoint store to rebuild the right
    #: policy class on load (see :mod:`repro.training.checkpoint`).
    policy_kind = "pensieve"

    def __init__(
        self,
        config: Optional[PensieveConfig] = None,
        quality_model: Optional[KSQIModel] = None,
        greedy: bool = True,
    ) -> None:
        self.config = config if config is not None else PensieveConfig()
        self.quality_model = quality_model if quality_model is not None else KSQIModel()
        self.greedy = bool(greedy)
        self.agent = ActorCriticAgent(
            ActorCriticConfig(
                state_dim=self.config.state_dim,
                num_actions=self.config.num_actions,
                hidden_dims=self.config.hidden_dims,
                seed=self.config.seed,
            )
        )
        self._trained_episodes = 0
        # Trajectory capture used by the trainer.
        self._capture: Optional[List[Tuple[np.ndarray, int]]] = None

    # -------------------------------------------------------------- encoding

    def encode_state(self, observation: PlayerObservation) -> np.ndarray:
        """Flatten a player observation into the agent's state vector."""
        cfg = self.config
        throughput = pad_history(
            observation.throughput_history_mbps, cfg.history_length
        ) / _THROUGHPUT_SCALE_MBPS
        download_times = pad_history(
            observation.download_time_history_s, cfg.history_length
        ) / _DOWNLOAD_TIME_SCALE_S
        next_sizes = np.zeros(cfg.num_levels)
        available = observation.next_chunk_sizes()
        next_sizes[: available.size] = available / _CHUNK_SIZE_SCALE_BYTES
        buffer_norm = observation.buffer_s / _BUFFER_SCALE_S
        last_level_norm = (
            (observation.last_level + 1) / observation.ladder.num_levels
        )
        remaining_norm = observation.chunks_remaining / max(1, observation.num_chunks)
        parts = [
            throughput,
            download_times,
            next_sizes,
            np.array([buffer_norm, last_level_norm, remaining_norm]),
        ]
        if cfg.weight_horizon > 0:
            weights = np.ones(cfg.weight_horizon)
            available_weights = observation.upcoming_weights[: cfg.weight_horizon]
            weights[: available_weights.size] = available_weights
            parts.append(weights)
        state = np.concatenate(parts)
        require(state.size == cfg.state_dim, "state encoding size mismatch")
        return state

    def action_to_decision(self, action: int) -> Decision:
        """Map a discrete action index to an ABR decision."""
        cfg = self.config
        if action < cfg.num_levels:
            return Decision(level=int(action))
        stall_index = action - cfg.num_levels
        stall_s = cfg.stall_actions_s[stall_index]
        # A stall action keeps the previous level for the next chunk; the
        # level itself is resolved by the caller (lowest safe default here).
        return Decision(level=0, proactive_stall_s=float(stall_s))

    # --------------------------------------------------------------- deciding

    def decide(self, observation: PlayerObservation) -> Decision:
        """Pick an action with the current policy."""
        state = self.encode_state(observation)
        action = self.agent.select_action(state, greedy=self.greedy)
        decision = self.action_to_decision(action)
        if decision.proactive_stall_s > 0:
            # Keep streaming at the previously chosen level during a
            # proactive stall (the paper reruns the ABR after crediting the
            # buffer; keeping the level is the equivalent single-pass form).
            previous = max(observation.last_level, 0)
            decision = Decision(
                level=previous, proactive_stall_s=decision.proactive_stall_s
            )
        if self._capture is not None:
            self._capture.append((state, action))
        return decision

    # --------------------------------------------------------------- training

    def begin_capture(self) -> None:
        """Start recording (state, action) pairs for the trainer."""
        self._capture = []

    def end_capture(self) -> List[Tuple[np.ndarray, int]]:
        """Stop recording and return the captured trajectory."""
        captured = self._capture if self._capture is not None else []
        self._capture = None
        return captured

    def record_training(self, num_episodes: int) -> None:
        """Bookkeeping for how many episodes the agent has been trained on."""
        self._trained_episodes += int(num_episodes)

    @property
    def trained_episodes(self) -> int:
        """Number of training episodes applied to this agent."""
        return self._trained_episodes


class PensieveTrainer:
    """Policy-gradient training loop over simulated streaming sessions."""

    def __init__(
        self,
        abr: PensieveABR,
        quality_model: Optional[KSQIModel] = None,
        seed: int = 43,
    ) -> None:
        self.abr = abr
        self.quality_model = (
            quality_model if quality_model is not None else abr.quality_model
        )
        self.seed = int(seed)

    def train(
        self,
        videos: Sequence,
        traces: Sequence,
        episodes: int = 100,
        weights_by_video: Optional[Dict[str, np.ndarray]] = None,
    ) -> List[Dict[str, float]]:
        """Train for ``episodes`` randomly sampled (video, trace) sessions.

        Returns the per-episode training statistics from the agent.  Sessions
        are simulated with the same player the evaluation uses, so the agent
        is trained exactly on the dynamics it will be evaluated under.
        """
        # Imported here to avoid a circular dependency at module import time
        # (the player imports the ABR base module).
        from repro.player.simulator import simulate_session

        require(bool(videos), "need at least one training video")
        require(bool(traces), "need at least one training trace")
        rng = spawn_rng(self.seed, "pensieve-training")
        weights_by_video = weights_by_video or {}
        history: List[Dict[str, float]] = []

        original_greedy = self.abr.greedy
        self.abr.greedy = False
        try:
            for _ in range(int(episodes)):
                encoded = videos[int(rng.integers(0, len(videos)))]
                trace = traces[int(rng.integers(0, len(traces)))]
                weights = weights_by_video.get(encoded.source.video_id)
                self.abr.begin_capture()
                result = simulate_session(
                    self.abr, encoded, trace, chunk_weights=weights
                )
                trajectory = self.abr.end_capture()
                rewards = self._chunk_rewards(result, weights)
                episode = EpisodeBuffer()
                for (state, action), reward in zip(trajectory, rewards):
                    episode.add(state, action, reward)
                stats = self.abr.agent.train_on_episode(episode)
                history.append(stats)
            self.abr.record_training(int(episodes))
        finally:
            self.abr.greedy = original_greedy
        return history

    def _chunk_rewards(self, result, weights: Optional[np.ndarray]) -> np.ndarray:
        """Per-decision rewards: (weighted) KSQI chunk scores of the outcome."""
        chunk_scores = self.quality_model.chunk_scores(result.rendered)
        if weights is None:
            return chunk_scores
        weights = np.asarray(weights, dtype=float)
        return weights * chunk_scores
