"""ABR interface: what the player tells the algorithm and what it gets back.

Figure 10 of the paper shows the interface SENSEI needs: the traditional
inputs (buffer status, past throughput, next chunk sizes) plus the
*sensitivity weights of future chunks*; and the traditional output (bitrate
selection) plus *rebuffering time selection*.  The reproduction uses one
observation/decision pair for both traditional and SENSEI-augmented
algorithms — traditional algorithms simply ignore the weights and never
request a proactive stall.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.utils.validation import require, require_non_negative
from repro.video.chunk import EncodingLadder


@dataclass(frozen=True)
class PlayerObservation:
    """Everything the player exposes to the ABR algorithm before a download.

    Attributes
    ----------
    chunk_index:
        Index of the chunk about to be downloaded.
    num_chunks:
        Total number of chunks in the video.
    buffer_s:
        Current playback buffer occupancy in seconds.
    last_level:
        Bitrate level of the previously downloaded chunk (-1 before the first).
    throughput_history_mbps:
        Measured download throughputs of past chunks, most recent last.
    download_time_history_s:
        Download durations of past chunks, most recent last.
    upcoming_sizes_bytes:
        (horizon, num_levels) matrix of chunk sizes for the next chunks,
        starting at ``chunk_index``; rows past the end of the video are
        truncated.
    upcoming_quality:
        (horizon, num_levels) matrix of VMAF-like quality for the same chunks.
    upcoming_weights:
        Sensitivity weights of the same chunks (all ones for weight-unaware
        players).
    chunk_duration_s:
        Playback duration of one chunk.
    ladder:
        The encoding ladder.
    buffer_capacity_s:
        Maximum buffer occupancy allowed by the player.
    """

    chunk_index: int
    num_chunks: int
    buffer_s: float
    last_level: int
    throughput_history_mbps: np.ndarray
    download_time_history_s: np.ndarray
    upcoming_sizes_bytes: np.ndarray
    upcoming_quality: np.ndarray
    upcoming_weights: np.ndarray
    chunk_duration_s: float
    ladder: EncodingLadder
    buffer_capacity_s: float = 60.0

    def __post_init__(self) -> None:
        require(0 <= self.chunk_index < self.num_chunks, "chunk_index out of range")
        require_non_negative(self.buffer_s, "buffer_s")
        require(self.upcoming_sizes_bytes.ndim == 2, "upcoming_sizes_bytes must be 2-D")
        require(
            self.upcoming_sizes_bytes.shape == self.upcoming_quality.shape,
            "sizes and quality matrices must align",
        )
        require(
            self.upcoming_weights.shape[0] == self.upcoming_sizes_bytes.shape[0],
            "weights must align with upcoming chunks",
        )

    @property
    def horizon(self) -> int:
        """Number of upcoming chunks described by this observation."""
        return int(self.upcoming_sizes_bytes.shape[0])

    @property
    def chunks_remaining(self) -> int:
        """Chunks left to download, including the current one."""
        return self.num_chunks - self.chunk_index

    def latest_throughput_mbps(self, default: float = 1.0) -> float:
        """Most recent measured throughput, or ``default`` if none yet."""
        if self.throughput_history_mbps.size == 0:
            return float(default)
        return float(self.throughput_history_mbps[-1])

    def next_chunk_sizes(self) -> np.ndarray:
        """Sizes (bytes per level) of the chunk about to be downloaded."""
        return self.upcoming_sizes_bytes[0]


@dataclass(frozen=True)
class Decision:
    """The ABR algorithm's decision for the next chunk.

    Attributes
    ----------
    level:
        Bitrate level to download the next chunk at.
    proactive_stall_s:
        Seconds of playback pause deliberately scheduled before the next
        chunk plays, even though the buffer is not empty (SENSEI's new
        action; 0 for traditional algorithms).
    """

    level: int
    proactive_stall_s: float = 0.0

    def __post_init__(self) -> None:
        require(self.level >= 0, "level must be >= 0")
        require_non_negative(self.proactive_stall_s, "proactive_stall_s")


class ABRAlgorithm(ABC):
    """Base class for ABR algorithms.

    Subclasses implement :meth:`decide`; the streaming session calls it once
    per chunk.  :meth:`reset` is called at the start of every session so
    stateful algorithms (throughput predictors, RL agents with recurrent
    features) can clear per-session state.
    """

    #: Human-readable name used in experiment reports.
    name: str = "abr"

    def reset(self) -> None:
        """Clear per-session state.  Default: nothing to clear."""

    @abstractmethod
    def decide(self, observation: PlayerObservation) -> Decision:
        """Choose the bitrate level (and optional proactive stall) for the
        chunk described by ``observation``."""

    # ------------------------------------------------------------- helpers

    @staticmethod
    def clamp_level(level: int, ladder: EncodingLadder) -> int:
        """Clamp a level index into the ladder's valid range."""
        return min(max(int(level), 0), ladder.num_levels - 1)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


def pad_history(values: Sequence[float], length: int, fill: float = 0.0) -> np.ndarray:
    """Left-pad a history sequence to a fixed length (RL state building)."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size >= length:
        return arr[-length:]
    return np.concatenate([np.full(length - arr.size, fill), arr])
