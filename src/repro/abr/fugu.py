"""Fugu-style ABR: stochastic MPC over a learned throughput-error distribution.

Following the paper's description (§5.2, Eq. 3): before downloading chunk i,
Fugu considers the throughput prediction for the next ``h`` chunks; for every
throughput variation γ (with predicted probability p(γ)) and candidate
bitrate plan it simulates when each chunk would finish downloading,
estimates the per-chunk rebuffering time, and picks the plan maximising the
expected total per-chunk quality ``Σ_γ p(γ) Σ_j q(b_j, t_j(B, γ))``.

The quality model ``q(b, t)`` is KSQI, as in the paper's evaluation setup.
The throughput-error distribution is learned online by
:class:`~repro.abr.throughput.ErrorDistributionPredictor`, standing in for
Fugu's trained transmission-time predictor.
"""

from __future__ import annotations

from typing import Optional

from repro.abr.base import ABRAlgorithm, Decision, PlayerObservation
from repro.abr.planner import enumerate_level_sequences, evaluate_candidates
from repro.abr.throughput import ErrorDistributionPredictor
from repro.qoe.ksqi import KSQIModel
from repro.utils.validation import require


class FuguABR(ABRAlgorithm):
    """Fugu: expectation-over-throughput-variation planning.

    Parameters
    ----------
    horizon:
        Planning horizon in chunks (the paper uses h = 5; the default of 4
        keeps simulation-scale sweeps fast with negligible QoE difference).
    quality_model:
        Per-chunk quality model (KSQI).
    predictor:
        Probabilistic throughput predictor.
    max_level_step:
        Optional per-chunk level-change cap pruning the candidate set.
    use_fast_planner:
        Use the memoised candidate trees and vectorised evaluator (default).
        ``False`` selects the seed reference paths — kept for equivalence
        tests and the engine perf baseline.
    """

    name = "Fugu"

    def __init__(
        self,
        horizon: int = 4,
        quality_model: Optional[KSQIModel] = None,
        predictor: Optional[ErrorDistributionPredictor] = None,
        max_level_step: Optional[int] = 2,
        use_fast_planner: bool = True,
    ) -> None:
        require(horizon >= 1, "horizon must be >= 1")
        self.horizon = int(horizon)
        self.quality_model = quality_model if quality_model is not None else KSQIModel()
        self.predictor = (
            predictor if predictor is not None else ErrorDistributionPredictor()
        )
        self.max_level_step = max_level_step
        self.use_fast_planner = bool(use_fast_planner)

    def reset(self) -> None:
        self.predictor.reset()

    def decide(self, observation: PlayerObservation) -> Decision:
        """Maximise expected plan quality over the throughput distribution."""
        horizon = min(self.horizon, observation.horizon)
        scenarios = self.predictor.predict_distribution(observation)
        candidates = enumerate_level_sequences(
            observation.ladder.num_levels,
            horizon,
            max_step=self.max_level_step,
            start_level=observation.last_level,
            use_cache=self.use_fast_planner,
        )
        evaluation = evaluate_candidates(
            observation,
            candidates,
            throughput_scenarios=scenarios,
            quality_model=self.quality_model,
            vectorized=self.use_fast_planner,
        )
        return Decision(level=evaluation.best_level)
