"""Offline (idealised) ABR with full knowledge of the throughput trace.

Section 2.4 of the paper motivates SENSEI with "an idealistic but clean
experiment": two ABR algorithms that both see the *entire* throughput trace
in advance and pick a bitrate-to-chunk assignment maximising their QoE
model — one optimising a sensitivity-unaware model (KSQI) and one optimising
the sensitivity-aware reweighted model.  Figure 6 compares them across
rescaled traces.

The optimisation here is a beam search over per-chunk choices (bitrate level
plus, for the sensitivity-aware variant, an optional proactive stall).  The
download/playback timing model is exact and shared by both variants, so any
difference between them is attributable to the objective alone — which is
the point of the experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.network.trace import ThroughputTrace
from repro.qoe.ksqi import KSQIModel
from repro.utils.validation import require
from repro.video.encoder import EncodedVideo
from repro.video.rendering import RenderedVideo


@dataclass
class _BeamState:
    """One partial plan in the beam."""

    levels: List[int]
    stalls: List[float]
    download_finish_s: float
    play_cursor_s: float       # wall-clock time at which the previous chunk finished playing
    score: float


class OfflineOptimalABR:
    """Full-trace-knowledge bitrate planner (the idealised ABR of §2.4).

    Parameters
    ----------
    quality_model:
        Per-chunk quality model (KSQI).
    weights:
        Optional per-chunk sensitivity weights; ``None`` gives the
        sensitivity-unaware variant.
    allow_proactive_stalls:
        Whether the planner may schedule deliberate stalls (only meaningful
        for the sensitivity-aware variant).
    stall_options_s:
        Stall durations considered before each chunk.
    beam_width:
        Number of partial plans retained per chunk.
    """

    name = "OfflineOptimal"

    def __init__(
        self,
        quality_model: Optional[KSQIModel] = None,
        weights: Optional[Sequence[float]] = None,
        allow_proactive_stalls: bool = False,
        stall_options_s: Sequence[float] = (0.0, 1.0, 2.0),
        beam_width: int = 64,
    ) -> None:
        require(beam_width >= 1, "beam_width must be >= 1")
        self.quality_model = quality_model if quality_model is not None else KSQIModel()
        self.weights = (
            np.asarray(list(weights), dtype=float) if weights is not None else None
        )
        self.allow_proactive_stalls = bool(allow_proactive_stalls)
        self.stall_options_s = tuple(float(s) for s in stall_options_s)
        self.beam_width = int(beam_width)

    # ------------------------------------------------------------------ plan

    def plan(self, encoded: EncodedVideo, trace: ThroughputTrace) -> RenderedVideo:
        """Plan the whole video and return the resulting rendering."""
        num_chunks = encoded.num_chunks
        chunk_duration = encoded.chunk_duration_s
        weights = self._resolved_weights(num_chunks)
        coeffs = self.quality_model.coefficients
        bitrates = np.asarray(encoded.ladder.bitrates_kbps, dtype=float)
        top_bitrate = bitrates[-1]

        stall_choices = (
            self.stall_options_s if self.allow_proactive_stalls else (0.0,)
        )
        beam: List[_BeamState] = [
            _BeamState(levels=[], stalls=[], download_finish_s=0.0,
                       play_cursor_s=0.0, score=0.0)
        ]
        for chunk_index in range(num_chunks):
            expanded: List[_BeamState] = []
            for state in beam:
                previous_level = state.levels[-1] if state.levels else None
                for level in range(encoded.ladder.num_levels):
                    size = encoded.chunk_size_bytes(chunk_index, level)
                    download_time = trace.download_time_s(
                        size, state.download_finish_s
                    )
                    download_finish = state.download_finish_s + download_time
                    for extra_stall in stall_choices:
                        expanded.append(
                            self._extend(
                                state, chunk_index, level, previous_level,
                                download_finish, extra_stall, chunk_duration,
                                encoded, coeffs, bitrates, top_bitrate, weights,
                            )
                        )
            expanded.sort(key=lambda s: s.score, reverse=True)
            beam = self._deduplicate(expanded)[: self.beam_width]

        best = max(beam, key=lambda s: s.score)
        stalls = np.asarray(best.stalls, dtype=float)
        startup_delay = stalls[0] if stalls.size else 0.0
        stalls = stalls.copy()
        if stalls.size:
            stalls[0] = 0.0  # the first chunk's wait is the startup delay
        return RenderedVideo(
            encoded=encoded,
            levels=np.asarray(best.levels, dtype=int),
            stalls_s=stalls,
            startup_delay_s=float(startup_delay),
            render_id=(
                f"{encoded.source.video_id}/offline-"
                f"{'aware' if self.weights is not None else 'unaware'}/{trace.name}"
            ),
        )

    # ------------------------------------------------------------- internals

    def _resolved_weights(self, num_chunks: int) -> np.ndarray:
        if self.weights is None:
            return np.ones(num_chunks)
        require(
            self.weights.size == num_chunks,
            "weights must have one entry per chunk",
        )
        return self.weights

    def _extend(
        self,
        state: _BeamState,
        chunk_index: int,
        level: int,
        previous_level: Optional[int],
        download_finish: float,
        extra_stall: float,
        chunk_duration: float,
        encoded: EncodedVideo,
        coeffs,
        bitrates: np.ndarray,
        top_bitrate: float,
        weights: np.ndarray,
    ) -> _BeamState:
        """Extend a partial plan with one chunk choice."""
        # The chunk can start playing once the previous chunk finished
        # playing AND it has been downloaded AND any deliberate stall passed.
        earliest_start = max(state.play_cursor_s, download_finish) + extra_stall
        forced_stall = max(0.0, earliest_start - state.play_cursor_s) if chunk_index else earliest_start
        play_start = state.play_cursor_s + forced_stall if chunk_index else earliest_start
        play_end = play_start + chunk_duration

        stall_s = forced_stall
        quality = encoded.chunk_quality(chunk_index, level)
        if previous_level is None:
            switch = 0.0
        else:
            switch = abs(bitrates[level] - bitrates[previous_level]) / top_bitrate
        chunk_score = (
            coeffs.intercept
            + coeffs.quality_weight * quality / 100.0
            - coeffs.rebuffer_weight * (stall_s if chunk_index else stall_s * 0.25)
            - coeffs.switch_weight * switch
        )
        score = state.score + float(weights[chunk_index]) * chunk_score
        return _BeamState(
            levels=state.levels + [level],
            stalls=state.stalls + [stall_s],
            download_finish_s=download_finish,
            play_cursor_s=play_end,
            score=score,
        )

    @staticmethod
    def _deduplicate(states: List[_BeamState]) -> List[_BeamState]:
        """Keep the best-scoring state per (rounded timing, last level) key."""
        seen = {}
        for state in states:
            key = (
                round(state.download_finish_s, 1),
                round(state.play_cursor_s, 1),
                state.levels[-1] if state.levels else -1,
            )
            if key not in seen or state.score > seen[key].score:
                seen[key] = state
        ordered = sorted(seen.values(), key=lambda s: s.score, reverse=True)
        return ordered
