"""Rate-based adaptation: pick the highest bitrate the predicted throughput
can sustain, with a conservative safety margin.

This is the classic throughput-rule family (e.g. the original DASH.js rule,
FESTIVE's rate component).  Included both as a baseline and as the fallback
policy other algorithms use before any throughput measurement exists.
"""

from __future__ import annotations

from typing import Optional

from repro.abr.base import ABRAlgorithm, Decision, PlayerObservation
from repro.abr.throughput import HarmonicMeanPredictor, ThroughputPredictor
from repro.utils.validation import require


class RateBasedABR(ABRAlgorithm):
    """Throughput-rule adaptation with a safety margin.

    Parameters
    ----------
    safety_margin:
        Fraction of the predicted throughput considered usable (0.9 means
        the chosen bitrate must fit within 90% of the prediction).
    predictor:
        Throughput predictor; defaults to a harmonic mean of recent samples.
    """

    name = "RateBased"

    def __init__(
        self,
        safety_margin: float = 0.9,
        predictor: Optional[ThroughputPredictor] = None,
    ) -> None:
        require(0 < safety_margin <= 1, "safety_margin must be in (0, 1]")
        self.safety_margin = float(safety_margin)
        self.predictor = predictor if predictor is not None else HarmonicMeanPredictor()

    def decide(self, observation: PlayerObservation) -> Decision:
        """Choose the highest level whose bitrate fits the predicted rate."""
        predicted_mbps = self.predictor.predict(observation)
        usable_kbps = predicted_mbps * 1000.0 * self.safety_margin
        level = observation.ladder.level_for_bitrate(usable_kbps)
        return Decision(level=level)
