"""Shared lookahead planning machinery for MPC/Fugu-style ABR algorithms.

Both RobustMPC and Fugu enumerate candidate bitrate sequences over a short
horizon, simulate the buffer evolution under a throughput estimate, score
each candidate with a per-chunk quality model, and commit only the first
step.  SENSEI's variants use the same machinery but (a) weight each chunk's
quality by its sensitivity and (b) consider scheduling a proactive stall
before the next chunk.

Two engine-level optimisations keep trace-scale experiments fast:

* the candidate tree depends only on ``(num_levels, horizon, max_step,
  start_level)`` — the same handful of trees is rebuilt at every chunk of
  every session — so :func:`enumerate_level_sequences` memoises them;
* :func:`evaluate_candidates` scores the full (stall option x throughput
  scenario x candidate) cross product as one tensor instead of looping
  over stalls and scenarios in Python.  The seed's loop implementation is
  retained behind ``vectorized=False`` as the reference the vectorised path
  is tested against and the baseline the perf harness measures;
* :func:`evaluate_candidates_batch` stacks a *session* axis in front of that
  tensor — one 4-D ``(session x stall x scenario x candidate)`` evaluation
  scores a whole lockstep shard of sessions at once.  The single-session
  vectorised path is the batch kernel applied to a one-session stack, and
  the kernel deliberately uses only elementwise operations plus explicit
  loops over the small axes (horizon, scenarios, stalls), so adding
  sessions to the stack cannot change any session's floating-point result:
  the lockstep engine's bit-identity guarantee rests on this.
* the batch kernel itself runs over a precomputed per-tree **score arena**
  (:class:`_TreeArena`): gather indices, switch-term rows and preallocated
  workspaces are derived once per (candidate tree, ladder) pair and reused
  by every call, so a batch score is a single pass of in-place elementwise
  ops over contiguous buffers with no per-call temporaries.  The pre-arena
  kernel is retained as the ``legacy`` implementation
  (``REPRO_KERNEL_IMPL=legacy`` / ``kernel_impl="legacy"``) — the arena
  path is required to match it bit for bit and is differentially tested
  against it.  An opt-in float32 arena path (``REPRO_KERNEL_F32=1`` /
  ``kernel_dtype="float32"``) trades the bit-identity contract for speed
  and memory; it is validated against float64 with explicit tolerances.
"""

from __future__ import annotations

import os

from collections import OrderedDict
from dataclasses import dataclass
from functools import lru_cache
from itertools import product
from time import perf_counter
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.abr.base import PlayerObservation
from repro.obs.metrics import register_collector
from repro.obs.trace import TRACE, record_span
from repro.qoe.ksqi import KSQIModel
from repro.utils.validation import require


def _build_level_sequences(
    num_levels: int,
    horizon: int,
    max_step: Optional[int],
    start_level: Optional[int],
) -> np.ndarray:
    """Materialise the candidate matrix (seed enumeration, unmemoised)."""
    if max_step is None:
        return np.array(
            list(product(range(num_levels), repeat=horizon)), dtype=int
        )
    sequences: List[Tuple[int, ...]] = []

    def extend(prefix: Tuple[int, ...]) -> None:
        if len(prefix) == horizon:
            sequences.append(prefix)
            return
        if prefix:
            previous = prefix[-1]
        elif start_level is not None and start_level >= 0:
            previous = start_level
        else:
            previous = None
        for level in range(num_levels):
            if previous is not None and abs(level - previous) > max_step:
                continue
            extend(prefix + (level,))

    extend(())
    require(bool(sequences), "level-change restriction pruned every candidate")
    return np.array(sequences, dtype=int)


@lru_cache(maxsize=4096)
def _cached_level_sequences(
    num_levels: int,
    horizon: int,
    max_step: Optional[int],
    start_level: Optional[int],
) -> np.ndarray:
    candidates = _build_level_sequences(num_levels, horizon, max_step, start_level)
    candidates.setflags(write=False)
    return candidates


def enumerate_level_sequences(num_levels: int, horizon: int,
                              max_step: Optional[int] = None,
                              start_level: Optional[int] = None,
                              use_cache: bool = True) -> np.ndarray:
    """All candidate level sequences of length ``horizon``.

    ``max_step`` optionally restricts consecutive levels to differ by at most
    that many rungs (prunes the search space for long horizons);
    ``start_level`` applies the same restriction to the first chunk relative
    to the previously played level.

    With ``use_cache`` (the default) the result is memoised on the argument
    tuple and returned as a **read-only** array — planners evaluate
    candidates without mutating them, and the same tree is requested at
    every chunk of every session.  Pass ``use_cache=False`` for a fresh,
    writable matrix.
    """
    require(num_levels >= 1, "num_levels must be >= 1")
    require(horizon >= 1, "horizon must be >= 1")
    # Canonicalise the memo key: callers pass a mix of Python ints and numpy
    # integer scalars (e.g. ``observation.last_level`` extracted from an
    # int array in the lockstep engine), and the batch engine relies on one
    # shared read-only tree per (num_levels, horizon, max_step, start_level)
    # signature — never a per-session rebuild.
    num_levels = int(num_levels)
    horizon = int(horizon)
    max_step = None if max_step is None else int(max_step)
    start_level = None if start_level is None else int(start_level)
    if max_step is None:
        start_level = None  # irrelevant without a step restriction
    elif start_level is not None and start_level < 0:
        start_level = None  # "no previous level" — same tree as None
    if use_cache:
        return _cached_level_sequences(num_levels, horizon, max_step, start_level)
    return _build_level_sequences(num_levels, horizon, max_step, start_level)


def plan_tree_key(
    num_levels: int,
    horizon: int,
    max_step: Optional[int],
    start_level: Optional[int],
) -> Tuple[int, int, Optional[int], Optional[int]]:
    """The canonical memo key :func:`enumerate_level_sequences` caches under.

    The lockstep engine groups sessions by this key so that every session in
    a batch shares one memoised candidate tree (sessions whose keys differ —
    e.g. a different previously-played level under a ``max_step``
    restriction — genuinely plan over different trees and are batched
    separately).
    """
    num_levels = int(num_levels)
    horizon = int(horizon)
    max_step = None if max_step is None else int(max_step)
    if max_step is None:
        start_level = None
    else:
        start_level = None if start_level is None else int(start_level)
        if start_level is not None and start_level < 0:
            start_level = None
    return (num_levels, horizon, max_step, start_level)


def clear_plan_cache() -> None:
    """Drop all memoised candidate trees (tests and benchmarks).

    Also drops the derived per-matrix caches (prefix trees, switch-term
    constants): they hold strong references to the candidate matrices, so
    leaving them behind would pin every superseded tree in memory across
    clear/replan cycles.
    """
    _cached_level_sequences.cache_clear()
    _PREFIX_TREES.clear()
    _SWITCH_TERMS.clear()
    _ARENAS.clear()


def plan_cache_info():
    """``lru_cache`` statistics of the candidate-tree memo."""
    return _cached_level_sequences.cache_info()


def _publish_plan_cache(registry) -> None:
    """Snapshot-time collector publishing the candidate-tree memo stats.

    Registered with the metrics registry so every snapshot — bench reports,
    ``python -m repro profile``, JSONL/Prometheus sinks — reads the same
    ``plan_cache.*`` gauges instead of each consumer poking at
    ``lru_cache`` introspection on its own.  Gauges, not counters:
    ``cache_info()`` is already cumulative for the process.
    """
    info = _cached_level_sequences.cache_info()
    registry.gauge("plan_cache.hits").set(info.hits)
    registry.gauge("plan_cache.misses").set(info.misses)
    registry.gauge("plan_cache.currsize").set(info.currsize)


register_collector(_publish_plan_cache)


# --------------------------------------------------------------------------
# Kernel configuration
#
# ``impl`` selects the batch-kernel implementation: the arena path (default)
# or the pre-arena ``legacy`` kernel it must match bit for bit.  ``dtype``
# selects the arena's compute precision: float64 (default, bit-identity
# contract) or the opt-in float32 fast path.  Both have process-wide
# defaults (env-overridable) plus per-call keyword overrides.

_KERNEL_IMPLS = ("arena", "legacy")
_KERNEL_DTYPES = {"float64": np.float64, "float32": np.float32}


def _impl_from_env() -> str:
    impl = os.environ.get("REPRO_KERNEL_IMPL", "arena").strip().lower()
    return impl if impl in _KERNEL_IMPLS else "arena"


def _dtype_from_env() -> str:
    flag = os.environ.get("REPRO_KERNEL_F32", "").strip().lower()
    return "float32" if flag in ("1", "true", "yes", "on") else "float64"


_kernel_impl: str = _impl_from_env()
_kernel_dtype: str = _dtype_from_env()


def set_kernel_impl(impl: Optional[str]) -> str:
    """Set the process-wide kernel implementation (``None`` re-reads env)."""
    global _kernel_impl
    if impl is None:
        _kernel_impl = _impl_from_env()
    else:
        require(impl in _KERNEL_IMPLS, f"unknown kernel impl {impl!r}")
        _kernel_impl = impl
    return _kernel_impl


def set_kernel_dtype(dtype: Optional[str]) -> str:
    """Set the process-wide kernel dtype (``None`` re-reads env)."""
    global _kernel_dtype
    if dtype is None:
        _kernel_dtype = _dtype_from_env()
    else:
        require(dtype in _KERNEL_DTYPES, f"unknown kernel dtype {dtype!r}")
        _kernel_dtype = dtype
    return _kernel_dtype


def kernel_config() -> Tuple[str, str]:
    """The process-wide ``(impl, dtype)`` the batch kernel defaults to."""
    return _kernel_impl, _kernel_dtype


#: Cache-blocked tiling target: the kernel-call working set (arena
#: workspace bytes per session x sessions) is sized to fit this budget —
#: by default one per-core L2's worth.  Overridable for hosts with other
#: cache geometries (``REPRO_KERNEL_L2_BYTES``) or pinned outright
#: (``REPRO_KERNEL_BLOCK`` sessions per call).
_KERNEL_L2_BYTES = max(
    64 * 1024, int(os.environ.get("REPRO_KERNEL_L2_BYTES", str(2 * 1024 * 1024)))
)
_KERNEL_BLOCK_PIN = os.environ.get("REPRO_KERNEL_BLOCK", "").strip()

#: Hard ceiling on sessions per kernel call: beyond this the per-call
#: Python overhead is fully amortised and bigger tiles only grow latency.
_KERNEL_BLOCK_CAP = 64


@lru_cache(maxsize=1024)
def _block_sessions_cached(
    num_levels: int,
    horizon: int,
    max_step: Optional[int],
    num_scenarios: int,
    impl: str,
    dtype_name: str,
    floor: int,
) -> int:
    if impl == "legacy":
        return floor  # pre-arena kernel keeps its pre-arena slice cap
    candidates = enumerate_level_sequences(
        num_levels, horizon, max_step=max_step
    )
    tree = _prefix_tree(candidates)
    num_candidates = candidates.shape[0]
    total_nodes = tree.flat_levels.size
    scenarios = max(1, int(num_scenarios))
    itemsize = np.dtype(_KERNEL_DTYPES[dtype_name]).itemsize
    # per-session arena workspace: the dt table, the (h, C) quality block,
    # seven (N, C) scratch rows, and 4x the tree nodes per scenario (two
    # state planes + gathered dt + shortfall)
    per_session_bytes = itemsize * (
        scenarios * horizon * num_levels
        + horizon * num_candidates
        + 7 * num_candidates
        + 4 * scenarios * total_nodes
    )
    block = _KERNEL_L2_BYTES // max(1, per_session_bytes)
    return int(min(_KERNEL_BLOCK_CAP, max(floor, block)))


def kernel_block_sessions(
    num_levels: int,
    horizon: int,
    max_step: Optional[int],
    num_scenarios: int,
    floor: int = 12,
) -> int:
    """Sessions per kernel call for cache-blocked tiling.

    Chosen so one call's arena working set — states, download times and
    score rows over the ``(session x stall x scenario x candidate)``
    tensor — fits the L2 target, while never dropping below ``floor``
    (the coordinator's pre-arena ``SPLIT_ABOVE`` cap).  Deterministic in
    its arguments and the process-wide kernel config, so lockstep batching
    stays reproducible; the kernel's elementwise contract makes the block
    size invisible in the results either way.
    """
    if _KERNEL_BLOCK_PIN:
        return max(1, int(_KERNEL_BLOCK_PIN))
    return _block_sessions_cached(
        int(num_levels), int(horizon),
        None if max_step is None else int(max_step),
        int(num_scenarios), _kernel_impl, _kernel_dtype, int(floor),
    )


@dataclass(frozen=True)
class PlanEvaluation:
    """Outcome of evaluating candidate plans.

    Attributes
    ----------
    best_level: bitrate level of the best plan's first chunk.
    best_stall_s: proactive stall chosen before the next chunk (0 for
        traditional planners).
    best_score: expected objective value of the best plan.
    expected_rebuffer_s: expected involuntary rebuffering time of the best
        plan over the horizon (useful as a risk signal).
    num_candidates: how many (plan, stall, throughput-scenario) combinations
        were evaluated — i.e. candidates x stall options x scenarios.
    """

    best_level: int
    best_stall_s: float
    best_score: float
    expected_rebuffer_s: float
    num_candidates: int


def evaluate_candidates(
    observation: PlayerObservation,
    candidates: np.ndarray,
    throughput_scenarios: Sequence[Tuple[float, float]],
    quality_model: KSQIModel,
    weights: Optional[np.ndarray] = None,
    stall_options_s: Sequence[float] = (0.0,),
    chunk_duration_s: Optional[float] = None,
    vectorized: bool = True,
) -> PlanEvaluation:
    """Score candidate level sequences and pick the best first action.

    Parameters
    ----------
    observation:
        The player observation (provides buffer level, upcoming sizes/quality
        and the previously played level).
    candidates:
        (num_candidates, horizon) matrix of level sequences.  The horizon
        must not exceed the observation's horizon.
    throughput_scenarios:
        (throughput_mbps, probability) pairs; the plan score is the
        probability-weighted expectation over them (Fugu's Eq. 3/4).
    quality_model:
        The per-chunk quality model ``q(b, t)`` (KSQI in the paper).
    weights:
        Sensitivity weights for the planned chunks (defaults to ones — the
        weight-unaware objective of Eq. 3).
    stall_options_s:
        Proactive-stall durations considered before the next chunk (SENSEI
        considers {0, 1, 2} s; traditional planners only 0).
    chunk_duration_s:
        Chunk playback duration; defaults to the observation's.
    vectorized:
        Score the full (stall x scenario x candidate) tensor in one pass
        (default) or fall back to the seed's Python loops (reference
        implementation used by equivalence tests and the perf baseline).
    """
    require(candidates.ndim == 2, "candidates must be a 2-D matrix")
    horizon = candidates.shape[1]
    require(horizon <= observation.horizon, "candidates exceed observation horizon")
    require(bool(throughput_scenarios), "need at least one throughput scenario")
    chunk_duration = (
        chunk_duration_s if chunk_duration_s is not None
        else observation.chunk_duration_s
    )
    if weights is None:
        weights = np.ones(horizon)
    weights = np.asarray(weights, dtype=float)[:horizon]
    require(weights.size == horizon, "weights must cover the planning horizon")

    if vectorized:
        return _evaluate_vectorized(
            observation, candidates, throughput_scenarios, quality_model,
            weights, stall_options_s, chunk_duration,
        )
    return _evaluate_reference(
        observation, candidates, throughput_scenarios, quality_model,
        weights, stall_options_s, chunk_duration,
    )


def _per_session_or_scalar(value, num_sessions: int):
    """A scalar when every session shares the value, else an (N, 1, 1) view.

    Scalar operands keep the kernel's broadcasts on the fast ufunc path;
    the produced value is numerically identical either way.
    """
    arr = np.asarray(value, dtype=float)
    if arr.ndim == 0:
        return float(arr)
    if arr.size and bool(np.all(arr == arr.flat[0])):
        return float(arr.flat[0])
    return np.broadcast_to(arr, (num_sessions,))[:, None, None]


#: Prefix trees memoised per read-only candidate matrix (the matrices the
#: planner uses come from :func:`_cached_level_sequences`, so there are only
#: a handful of distinct ones per process).  Strong references keep the
#: id()-keys valid.
_PREFIX_TREES: dict = {}

#: Small memo of ``np.arange`` index vectors used by the kernel.
_ARANGE: dict = {}


def _arange(size: int) -> np.ndarray:
    indices = _ARANGE.get(size)
    if indices is None:
        indices = np.arange(size)
        indices.setflags(write=False)
        _ARANGE[size] = indices
    return indices


class _CandidateTree:
    """The candidate prefix tree plus flattened per-node index vectors.

    ``steps`` holds one ``(levels, parents)`` pair per horizon step;
    ``flat_steps`` / ``flat_levels`` concatenate every step's nodes so the
    kernel can gather all node sizes (and divide by the scenario rates) in
    one shot, with ``offsets`` delimiting each step's slice.
    """

    __slots__ = ("steps", "flat_steps", "flat_levels", "offsets")

    def __init__(self, steps) -> None:
        self.steps = steps
        sizes = [levels.size for levels, _ in steps]
        self.offsets = [0]
        for size in sizes:
            self.offsets.append(self.offsets[-1] + size)
        self.flat_steps = np.concatenate(
            [
                np.full(levels.size, step, dtype=int)
                for step, (levels, _) in enumerate(steps)
            ]
        )
        self.flat_levels = np.concatenate([levels for levels, _ in steps])


def _prefix_tree(candidates: np.ndarray) -> _CandidateTree:
    """The candidate prefix tree of a (C, h) level-sequence matrix.

    Candidates sharing a prefix share buffer evolution: the kernel's
    horizon recursion runs over the *unique* prefixes of each length
    instead of every candidate at every step.  Equal prefixes are merged
    only when adjacent — which is always the case for the lexicographic
    trees :func:`enumerate_level_sequences` builds, and merely loses
    sharing (never correctness) for arbitrary matrices.  The final step
    never merges, so leaves map 1:1 onto candidate rows, in order.
    """
    key = id(candidates)
    cached = _PREFIX_TREES.get(key)
    if cached is not None and cached[0] is candidates:
        return cached[1]
    num_candidates, horizon = candidates.shape
    steps = []
    group = None  # previous-level node id per candidate row
    for step in range(horizon):
        if step == horizon - 1:
            steps.append((candidates[:, step].copy(), group))
            break
        boundary = np.ones(num_candidates, dtype=bool)
        boundary[1:] = np.any(
            candidates[1:, : step + 1] != candidates[:-1, : step + 1], axis=1
        )
        ids = np.cumsum(boundary) - 1
        first_rows = np.flatnonzero(boundary)
        parents = group[first_rows] if group is not None else None
        steps.append((candidates[first_rows, step].copy(), parents))
        group = ids
    tree = _CandidateTree(steps)
    if not candidates.flags.writeable:
        _PREFIX_TREES[key] = (candidates, tree)
    return tree


#: Per-(candidates, ladder) derived caches (switch-term constants, score
#: arenas).  Both are LRU-bounded: a long-lived decision service replanning
#: over many distinct ladders would otherwise grow them without limit.
#: Insertion-ordered ``OrderedDict``s with move-to-end on hit; evictions are
#: counted and published as ``planner.arena.*`` gauges.
_DERIVED_CACHE_CAP = max(4, int(os.environ.get("REPRO_KERNEL_CACHE_CAP", "32")))
_SWITCH_TERMS: "OrderedDict" = OrderedDict()
_ARENAS: "OrderedDict" = OrderedDict()
_CACHE_EVICTIONS = {"switch_terms": 0, "arenas": 0}


def _lru_put(cache: "OrderedDict", key, value, counter: str) -> None:
    cache[key] = value
    cache.move_to_end(key)
    while len(cache) > _DERIVED_CACHE_CAP:
        cache.popitem(last=False)
        _CACHE_EVICTIONS[counter] += 1


def _switch_constants(candidates: np.ndarray, bitrates: np.ndarray):
    """(candidate first-step bitrates, per-step later switch terms).

    Both depend only on the candidate matrix and the ladder, so they are
    shared by every kernel call planning over that pair.
    """
    key = (id(candidates), bitrates.tobytes())
    cached = _SWITCH_TERMS.get(key)
    if cached is not None and cached[0] is candidates:
        _SWITCH_TERMS.move_to_end(key)
        return cached[1], cached[2]
    candidate_bitrates = bitrates[candidates]               # (C, h)
    top_bitrate = bitrates[-1]
    first_bitrates = candidate_bitrates[:, 0].copy()
    later_switch = np.abs(
        candidate_bitrates[:, 1:] - candidate_bitrates[:, :-1]
    ) / top_bitrate                                         # (C, h-1)
    if not candidates.flags.writeable:
        _lru_put(
            _SWITCH_TERMS, key, (candidates, first_bitrates, later_switch),
            "switch_terms",
        )
    return first_bitrates, later_switch


def clear_prefix_tree_cache() -> None:
    """Drop memoised prefix trees, switch constants and score arenas."""
    _PREFIX_TREES.clear()
    _SWITCH_TERMS.clear()
    _ARENAS.clear()


class _ArenaWorkspace:
    """Preallocated per-(batch-shape, dtype) buffers for the arena kernel.

    Every array the kernel writes lives here, sized once and reused by every
    call with the same ``(num_sessions, num_scenarios, dtype)`` — the arena
    path performs no per-call array allocation on its hot path.
    """

    __slots__ = (
        "dt_all", "cq", "first_switch", "quality_dot", "switch_dot",
        "static", "weight_total", "step_product", "states", "dt_flat",
        "dt_nodes", "shortfall", "expected", "partial", "rates",
    )

    def __init__(self, arena: "_TreeArena", num_sessions: int,
                 num_scenarios: int, width: int, dtype) -> None:
        C, h = arena.C, arena.h
        N, S = num_sessions, num_scenarios
        self.dt_all = np.empty((N, S, h * width), dtype=dtype)
        self.cq = np.empty((N, h, C), dtype=dtype)
        self.first_switch = np.empty((N, C), dtype=dtype)
        self.quality_dot = np.empty((N, C), dtype=dtype)
        self.switch_dot = np.empty((N, C), dtype=dtype)
        self.static = np.empty((N, C), dtype=dtype)
        self.weight_total = np.empty(N, dtype=dtype)
        self.step_product = np.empty((N, C), dtype=dtype)
        self.states = [
            np.empty((2, N, S, levels.size), dtype=dtype)
            for levels in arena.node_levels
        ]
        # every step's dt nodes in one contiguous buffer filled by a single
        # gather; per-step slices are views delimited by the arena offsets
        self.dt_flat = np.empty((N, S, arena.flat_levels.size), dtype=dtype)
        off = arena.node_offsets
        self.dt_nodes = [
            self.dt_flat[:, :, off[k]:off[k + 1]]
            for k in range(len(arena.node_levels))
        ]
        self.shortfall = [
            np.empty((N, S, levels.size), dtype=dtype)
            for levels in arena.node_levels
        ]
        self.expected = np.empty((N, C), dtype=dtype)
        self.partial = np.empty((N, C), dtype=dtype)
        self.rates = np.empty((N, S), dtype=dtype)

    def nbytes(self) -> int:
        total = 0
        for name in self.__slots__:
            value = getattr(self, name)
            if isinstance(value, np.ndarray):
                total += value.nbytes
            elif name != "dt_nodes":  # views into dt_flat, already counted
                total += sum(a.nbytes for a in value)
        return total


class _TreeArena:
    """Precomputed score arena for one (candidate tree, ladder) pair.

    Everything the batch kernel re-derived per call that depends only on
    the candidate matrix and the bitrate ladder is materialised once here:

    * the prefix-tree evolution order (per-step node levels/parents) and a
      concatenated gather index that pulls every tree node's download time
      out of the per-(session, scenario) dt table in one ``np.take``;
    * the flattened (step, level) quality gather indices, laid out so the
      gathered block is contiguous per step;
    * the switch-term rows: ``previous_bitrate`` takes at most L distinct
      values, so the first-chunk switch row — and, for uniform weights, the
      *entire* accumulated switch dot — collapses to one of L precomputed
      rows (built with the kernel's exact elementwise op sequence, so the
      gathered rows are bit-identical to computing them in the call);
    * per-(shape, dtype) workspaces (:class:`_ArenaWorkspace`), LRU-bounded.

    Constants are built in float64 and cast once per requested dtype.
    """

    __slots__ = (
        "candidates", "C", "h", "L", "node_levels", "node_parents",
        "flat_steps", "flat_levels", "node_offsets", "first_levels",
        "build_seconds", "_consts", "_scaled_rows", "_workspaces",
        "_gather_idx",
    )

    WORKSPACE_CAP = 16

    def __init__(self, candidates: np.ndarray, bitrates: np.ndarray) -> None:
        t0 = perf_counter()
        tree = _prefix_tree(candidates)
        C, h = candidates.shape
        L = bitrates.size
        self.candidates = candidates
        self.C, self.h, self.L = C, h, L
        self.node_levels = [levels for levels, _ in tree.steps]
        self.node_parents = [parents for _, parents in tree.steps]
        self.flat_steps = tree.flat_steps
        self.flat_levels = tree.flat_levels
        self.node_offsets = list(tree.offsets)
        self.first_levels = candidates[:, 0].copy()
        # gather indices depend on the per-session matrices' level width,
        # which can exceed L when mixed-ladder sessions share a shard (the
        # engine pads ``sizes``/``quality`` to the widest ladder); cached
        # per width in ``_gather_idx``
        self._gather_idx = {}

        first_bitrates, later_switch = _switch_constants(candidates, bitrates)
        later_switch_T = np.ascontiguousarray(later_switch.T)  # (h-1, C)
        # first-chunk switch rows per possible previous level, built with
        # the kernel's op sequence (subtract, abs, divide by the top rate)
        rows = np.empty((L, C))
        np.subtract(first_bitrates[None, :], bitrates[:, None], out=rows)
        np.abs(rows, out=rows)
        rows /= bitrates[-1]
        # uniform-weight switch dot: same left-fold order as the kernel loop
        sdot = rows.copy()
        for step in range(1, h):
            sdot += later_switch_T[step - 1][None, :]
        self._consts = {
            "float64": (rows, sdot, later_switch_T),
        }
        self._scaled_rows = {}
        self._workspaces: "OrderedDict" = OrderedDict()
        self.build_seconds = perf_counter() - t0

    def gather_indices(self, width: int):
        """(quality, dt) gather index vectors for level-width ``width``.

        ``q_idx`` gathers the (h, C) candidate quality block out of a
        flattened (N, h*width) quality matrix, transposed so each step's
        row is contiguous; ``dt_idx`` gathers every tree node's download
        time out of the (N, S, h*width) dt table in one ``np.take``.
        """
        cached = self._gather_idx.get(width)
        if cached is None:
            q_idx = (
                np.arange(self.h)[:, None] * width + self.candidates.T
            ).astype(np.intp).reshape(-1)
            dt_idx = (self.flat_steps * width + self.flat_levels).astype(np.intp)
            cached = (q_idx, dt_idx)
            self._gather_idx[width] = cached
        return cached

    def consts(self, dtype_name: str):
        cached = self._consts.get(dtype_name)
        if cached is None:
            dtype = _KERNEL_DTYPES[dtype_name]
            cached = tuple(a.astype(dtype) for a in self._consts["float64"])
            self._consts[dtype_name] = cached
        return cached

    def scaled_switch_rows(self, dtype_name: str,
                           switch_weight: float) -> np.ndarray:
        key = (dtype_name, switch_weight)
        rows = self._scaled_rows.get(key)
        if rows is None:
            rows = switch_weight * self.consts(dtype_name)[1]
            self._scaled_rows[key] = rows
        return rows

    def workspace(self, num_sessions: int, num_scenarios: int,
                  width: int, dtype_name: str) -> _ArenaWorkspace:
        key = (num_sessions, num_scenarios, width, dtype_name)
        ws = self._workspaces.get(key)
        if ws is None:
            ws = _ArenaWorkspace(
                self, num_sessions, num_scenarios, width,
                _KERNEL_DTYPES[dtype_name],
            )
            self._workspaces[key] = ws
            while len(self._workspaces) > self.WORKSPACE_CAP:
                self._workspaces.popitem(last=False)
        else:
            self._workspaces.move_to_end(key)
        return ws

    def workspace_bytes(self) -> int:
        return sum(ws.nbytes() for ws in self._workspaces.values())


_ARENA_BUILDS = {"count": 0, "seconds": 0.0}


def _arena_for(candidates: np.ndarray, bitrates: np.ndarray) -> _TreeArena:
    key = (id(candidates), bitrates.tobytes())
    cached = _ARENAS.get(key)
    if cached is not None and cached[0] is candidates:
        _ARENAS.move_to_end(key)
        return cached[1]
    arena = _TreeArena(candidates, bitrates)
    _ARENA_BUILDS["count"] += 1
    _ARENA_BUILDS["seconds"] += arena.build_seconds
    if not candidates.flags.writeable:
        _lru_put(_ARENAS, key, (candidates, arena), "arenas")
    return arena


def _publish_arena_stats(registry) -> None:
    """Snapshot-time collector for the ``planner.arena.*`` gauges."""
    registry.gauge("planner.arena.cached").set(len(_ARENAS))
    registry.gauge("planner.arena.builds").set(_ARENA_BUILDS["count"])
    registry.gauge("planner.arena.build_seconds").set(
        round(_ARENA_BUILDS["seconds"], 6)
    )
    registry.gauge("planner.arena.workspaces").set(
        sum(len(arena._workspaces) for _, arena in _ARENAS.values())
    )
    registry.gauge("planner.arena.workspace_bytes").set(
        sum(arena.workspace_bytes() for _, arena in _ARENAS.values())
    )
    registry.gauge("planner.arena.evictions").set(_CACHE_EVICTIONS["arenas"])
    registry.gauge("planner.arena.switch_term_evictions").set(
        _CACHE_EVICTIONS["switch_terms"]
    )


register_collector(_publish_arena_stats)


@dataclass(frozen=True)
class BatchPlanEvaluation:
    """Per-session outcome of one batched candidate evaluation.

    Attributes mirror :class:`PlanEvaluation`, with one array entry per
    session in the batch; ``num_candidates`` is the per-session evaluated
    count (candidates x stall options x scenarios — identical across the
    batch by construction).
    """

    best_level: np.ndarray
    best_stall_s: np.ndarray
    best_score: np.ndarray
    expected_rebuffer_s: np.ndarray
    num_candidates: int


def evaluate_candidates_batch(
    candidates: np.ndarray,
    sizes: np.ndarray,
    quality: np.ndarray,
    weights: np.ndarray,
    buffer_s: np.ndarray,
    last_level: np.ndarray,
    scenario_tputs: np.ndarray,
    scenario_probs: np.ndarray,
    bitrates_kbps: np.ndarray,
    quality_model: KSQIModel,
    stall_options_s: Sequence[float],
    chunk_duration_s,
    buffer_capacity_s,
    candidate_mask: Optional[np.ndarray] = None,
    need_expected_rebuffer: bool = True,
    weights_uniform: Optional[bool] = None,
    kernel_impl: Optional[str] = None,
    kernel_dtype: Optional[str] = None,
) -> BatchPlanEvaluation:
    """Score one candidate tree for a whole batch of sessions at once.

    The 4-D ``(session, stall, scenario, candidate)`` generalisation of the
    single-session tensor evaluation.  Every session in the batch must share
    the candidate matrix, the bitrate ladder, the stall options and the
    scenario *count*; everything else (buffer levels, upcoming sizes and
    quality, sensitivity weights, scenario values) is per-session.

    Bit-identity contract: the kernel uses only elementwise array
    operations, gathers, and explicit Python loops over the small axes
    (horizon steps, scenarios, stall options).  Elementwise IEEE-754
    arithmetic is independent of batch shape, so each session's results are
    bitwise equal to evaluating it alone — which is exactly what the serial
    planners do (:func:`evaluate_candidates` routes through this kernel
    with a one-session stack).  Reductions must stay explicit loops: a
    BLAS-backed ``@`` or ``einsum`` may reassociate sums differently for
    different batch shapes.

    ``candidate_mask`` lets sessions whose *own* candidate tree is a
    first-level-filtered subset of ``candidates`` share one call: a
    ``max_step`` tree for a given previous level is exactly the
    unrestricted-start tree filtered on the first level, in the same
    enumeration order, so masking the invalid candidates to ``-inf`` before
    the (first-maximum) selection reproduces the per-session evaluation —
    including tie-breaks — bit for bit.

    Parameters
    ----------
    candidates: (C, h) shared level-sequence matrix.
    sizes / quality: (N, h, L) per-session upcoming-chunk matrices.
    weights: (N, h) per-session sensitivity weights over the horizon.
    buffer_s: (N,) current buffer occupancies.
    last_level: (N,) previously played levels (-1 for none).
    scenario_tputs / scenario_probs: (N, S) throughput scenarios.
    bitrates_kbps: (L,) shared encoding ladder.
    quality_model: shared per-chunk quality model.
    stall_options_s: shared proactive-stall options, in consideration order.
    chunk_duration_s / buffer_capacity_s: scalars or (N,) arrays.
    candidate_mask: optional (N, C) bool — False marks candidates a session
        must not select (each session needs at least one True entry).
    need_expected_rebuffer: skip the rebuffer-expectation accumulation when
        the caller ignores it (``expected_rebuffer_s`` returns zeros); the
        selected levels, stalls and scores are unaffected.
    weights_uniform: pass True only when every weight is exactly 1.0 (skips
        the in-kernel check and the weight multiplies, which are bit-exact
        no-ops then); False always takes the general path, which is also
        correct for uniform weights.  None (default) checks the array.
    kernel_impl: ``"arena"`` (default) or ``"legacy"`` — per-call override
        of the process-wide implementation (see :func:`set_kernel_impl`).
        Both produce bit-identical float64 results; legacy is kept as the
        differential reference and escape hatch.
    kernel_dtype: ``"float64"`` (default) or ``"float32"`` — per-call
        override of the arena compute precision (:func:`set_kernel_dtype`).
        float32 is an opt-in fast path that waives the bit-identity
        contract; outputs are cast back to float64.  The legacy
        implementation ignores it and always computes in float64.
    """
    # Manual span timing (no context manager) on the hottest call site in
    # the engine; the kernels have a single exit, so no try/finally needed.
    if TRACE.enabled:
        _span_t0 = perf_counter()

    impl = _kernel_impl if kernel_impl is None else kernel_impl
    if impl == "legacy":
        result = _evaluate_batch_legacy(
            candidates, sizes, quality, weights, buffer_s, last_level,
            scenario_tputs, scenario_probs, bitrates_kbps, quality_model,
            stall_options_s, chunk_duration_s, buffer_capacity_s,
            candidate_mask, need_expected_rebuffer, weights_uniform,
        )
    else:
        result = _evaluate_batch_arena(
            candidates, sizes, quality, weights, buffer_s, last_level,
            scenario_tputs, scenario_probs, bitrates_kbps, quality_model,
            stall_options_s, chunk_duration_s, buffer_capacity_s,
            candidate_mask, need_expected_rebuffer, weights_uniform,
            _kernel_dtype if kernel_dtype is None else kernel_dtype,
        )

    if TRACE.enabled:
        record_span("planner.kernel", perf_counter() - _span_t0)
    return result


def _evaluate_batch_legacy(
    candidates: np.ndarray,
    sizes: np.ndarray,
    quality: np.ndarray,
    weights: np.ndarray,
    buffer_s: np.ndarray,
    last_level: np.ndarray,
    scenario_tputs: np.ndarray,
    scenario_probs: np.ndarray,
    bitrates_kbps: np.ndarray,
    quality_model: KSQIModel,
    stall_options_s: Sequence[float],
    chunk_duration_s,
    buffer_capacity_s,
    candidate_mask: Optional[np.ndarray],
    need_expected_rebuffer: bool,
    weights_uniform: Optional[bool],
) -> BatchPlanEvaluation:
    """The pre-arena batch kernel (allocating temporaries per call).

    Kept verbatim as the differential reference the arena path must match
    bit for bit, and as a runtime escape hatch (``REPRO_KERNEL_IMPL=legacy``).
    """
    num_sessions, horizon = weights.shape
    num_candidates = candidates.shape[0]
    bitrates = np.asarray(bitrates_kbps, dtype=float)
    top_bitrate = bitrates[-1]
    coeffs = quality_model.coefficients
    previous_bitrate = bitrates[np.maximum(last_level, 0)]  # (N,)

    step_index = _arange(horizon)
    candidate_quality = quality[:, step_index, candidates]  # (N, C, h)
    # Switch terms: only the first step depends on the session (previous
    # level); later steps are per-(candidates, ladder) constants shared by
    # every call over that pair, so they live as (C,)-sized rows broadcast
    # into the accumulation instead of a full (N, C, h) tensor.  Per
    # element the operation sequence (subtract, abs, divide) matches the
    # flat formulation exactly.
    first_bitrates, later_switch = _switch_constants(candidates, bitrates)
    first_switch = np.abs(
        first_bitrates[None, :] - previous_bitrate[:, None]
    )
    first_switch /= top_bitrate                             # (N, C)

    # The quality and switch terms do not depend on the stall or scenario:
    # fold them (and the per-chunk intercept) into one static score per
    # (session, candidate), leaving only the rebuffer term dynamic.  The
    # weight reductions are explicit loops over the horizon (see the
    # bit-identity contract above).
    # Weight-uniform batches (every planner without sensitivity weights)
    # skip the weight multiplies outright: ``x * 1.0 == x`` bit for bit, so
    # the accumulated sums are unchanged.
    uniform_weights = (
        bool(np.all(weights == 1.0))
        if weights_uniform is None else weights_uniform
    )
    weight_total = weights[:, 0].copy()                     # (N,)
    if uniform_weights:
        quality_dot = candidate_quality[:, :, 0].copy()
        switch_dot = first_switch
        for step in range(1, horizon):
            weight_total += weights[:, step]
            quality_dot += candidate_quality[:, :, step]
            switch_dot += later_switch[None, :, step - 1]
    else:
        quality_dot = candidate_quality[:, :, 0] * weights[:, 0, None]
        switch_dot = first_switch * weights[:, 0, None]
        step_product = np.empty_like(quality_dot)
        for step in range(1, horizon):
            weight_total += weights[:, step]
            np.multiply(
                candidate_quality[:, :, step], weights[:, step, None],
                out=step_product,
            )
            quality_dot += step_product
            np.multiply(
                later_switch[None, :, step - 1], weights[:, step, None],
                out=step_product,
            )
            switch_dot += step_product
    static_scores = (
        coeffs.intercept * weight_total[:, None]
        + (coeffs.quality_weight / 100.0) * quality_dot
        - coeffs.switch_weight * switch_dot
    )                                                       # (N, C)

    rates_bytes_per_s = np.maximum(scenario_tputs, 1e-3) * 1e6 / 8.0
    stalls = np.asarray(stall_options_s, dtype=float)
    num_stalls = stalls.size
    num_scenarios = scenario_tputs.shape[1]
    chunk_gain = _per_session_or_scalar(chunk_duration_s, num_sessions)
    capacity = _per_session_or_scalar(buffer_capacity_s, num_sessions)

    # Download times for every tree node at once, shared by every stall
    # option below; each step's slice is a view into the flat tensor.
    tree = _prefix_tree(candidates)
    flat_node_sizes = sizes[:, tree.flat_steps, tree.flat_levels]  # (N, ΣM)
    flat_download_times = (
        flat_node_sizes[:, None, :] / rates_bytes_per_s[:, :, None]
    )                                                       # (N, S, ΣM)
    offsets = tree.offsets
    node_download_times = [
        flat_download_times[:, :, offsets[step]:offsets[step + 1]]
        for step in range(horizon)
    ]                                                       # (N, S, M_k)

    # Selection state, mirroring the reference loop per session: stalls
    # considered in order, the first candidate index wins ties within a
    # stall, and a later stall must *strictly* beat the incumbent.  For the
    # dominant single-stall calls the first iteration's results are adopted
    # directly (every session improves on -inf), skipping the running
    # where-merges.
    session_index = _arange(num_sessions)
    best_score = None
    best_level = None
    best_stall = None
    best_candidate = None

    for stall_index in range(num_stalls):
        # The buffer/rebuffer recursion runs over the candidate *prefix
        # tree*: candidates sharing their first k levels share buffer
        # evolution, so each unique prefix is evolved once and fanned out
        # to its children by a gather.  Per leaf, the adds happen in the
        # same step order with the same operand values as a flat
        # per-candidate recursion, so the result is bit-identical — just
        # without recomputing shared prefixes.
        start_levels = buffer_s + stalls[stall_index]       # (N,)
        state = None  # (2, N, S, M): plane 0 buffers, plane 1 rebuffer
        for step, (node_levels, node_parents) in enumerate(tree.steps):
            dt = node_download_times[step]                  # (N, S, M)
            if step == 0:
                num_nodes = node_levels.size
                state = np.zeros(
                    (2, num_sessions, num_scenarios, num_nodes)
                )
                state[0] = start_levels[:, None, None]
            else:
                # One gather fans both planes out to this step's nodes; it
                # produces a fresh array, so the updates run in place.
                state = state[:, :, :, node_parents]
            parent_buffers = state[0]
            parent_weighted = state[1]
            shortfall = dt - parent_buffers
            np.maximum(shortfall, 0.0, out=shortfall)
            if uniform_weights:
                parent_weighted += shortfall
            else:
                parent_weighted += shortfall * weights[:, step, None, None]
            if step < horizon - 1:
                # The final step's buffer update feeds nothing: skip it (it
                # is also the widest level of the tree).
                np.subtract(parent_buffers, dt, out=parent_buffers)
                np.maximum(parent_buffers, 0.0, out=parent_buffers)
                parent_buffers += chunk_gain
                np.minimum(parent_buffers, capacity, out=parent_buffers)
        weighted_rebuffer = state[1]

        # plan_scores = static - rebuffer_weight * rebuffer - penalty,
        # built in place over the weighted-rebuffer buffer.  The expectation
        # must run over the *scores* (not distribute over the scenario sum):
        # a proactive stall's penalty can offset its rebuffer reduction
        # EXACTLY, and the reference loop resolves such ties towards the
        # earlier stall option — reassociating the algebra would break the
        # tie by one ulp and flip the decision.
        plan_scores = weighted_rebuffer                     # (N, S, C)
        np.multiply(plan_scores, coeffs.rebuffer_weight, out=plan_scores)
        np.subtract(static_scores[:, None, :], plan_scores, out=plan_scores)
        if stalls[stall_index] != 0.0:
            # ``x - 0.0 == x`` bitwise for every finite x (and -0.0), so
            # the zero-stall penalty subtraction is a bit-exact no-op and
            # is skipped on the dominant no-stall calls.
            stall_penalty = (
                coeffs.rebuffer_weight * stalls[stall_index] * weights[:, 0]
            )                                               # (N,)
            np.subtract(
                plan_scores, stall_penalty[:, None, None], out=plan_scores
            )
        expected_scores = scenario_probs[:, 0, None] * plan_scores[:, 0, :]
        partial = np.empty_like(expected_scores)            # (N, C)
        for scenario in range(1, num_scenarios):
            np.multiply(
                scenario_probs[:, scenario, None],
                plan_scores[:, scenario, :],
                out=partial,
            )
            expected_scores += partial

        if candidate_mask is not None:
            # Masked-out candidates never win the (first-maximum)
            # selection, so each session's choice over its own subtree is
            # reproduced exactly.
            expected_scores = np.where(
                candidate_mask, expected_scores, -np.inf
            )

        top = np.argmax(expected_scores, axis=1)
        score = expected_scores[session_index, top]
        if best_score is None:
            # First stall option: adopted outright, exactly as the running
            # merge below would against the -inf initial incumbent.
            best_score = score
            best_level = candidates[top, 0]
            best_stall = np.full(num_sessions, float(stalls[stall_index]))
            best_candidate = top
            continue
        better = score > best_score
        best_score = np.where(better, score, best_score)
        best_level = np.where(better, candidates[top, 0], best_level)
        best_stall = np.where(better, stalls[stall_index], best_stall)
        best_candidate = np.where(better, top, best_candidate)

    if need_expected_rebuffer:
        # The caller only ever reads the rebuffer expectation of the
        # *chosen* plan, so it is recomputed here along each session's
        # single winning path instead of being tracked for every candidate
        # through the main recursion.  Same download times, same buffer
        # recursion, same accumulation order — bit-identical values at a
        # tiny fraction of the traffic.
        path_levels = candidates[best_candidate]            # (N, h)
        path_sizes = sizes[
            session_index[:, None], step_index[None, :], path_levels
        ]                                                   # (N, h)
        path_dt = path_sizes[:, None, :] / rates_bytes_per_s[:, :, None]
        path_gain = (
            chunk_gain if isinstance(chunk_gain, float) else chunk_gain[:, :, 0]
        )
        path_capacity = (
            capacity if isinstance(capacity, float) else capacity[:, :, 0]
        )
        path_buffer = np.empty((num_sessions, num_scenarios))
        path_buffer[:] = (buffer_s + best_stall)[:, None]
        path_total = np.zeros_like(path_buffer)
        for step in range(horizon):
            dt = path_dt[:, :, step]
            shortfall = dt - path_buffer
            np.maximum(shortfall, 0.0, out=shortfall)
            path_total += shortfall
            if step < horizon - 1:
                np.subtract(path_buffer, dt, out=path_buffer)
                np.maximum(path_buffer, 0.0, out=path_buffer)
                path_buffer += path_gain
                np.minimum(path_buffer, path_capacity, out=path_buffer)
        best_rebuffer = scenario_probs[:, 0] * path_total[:, 0]
        for scenario in range(1, num_scenarios):
            best_rebuffer = (
                best_rebuffer
                + scenario_probs[:, scenario] * path_total[:, scenario]
            )
    else:
        best_rebuffer = np.zeros(num_sessions)

    return BatchPlanEvaluation(
        best_level=best_level,
        best_stall_s=best_stall,
        best_score=best_score,
        expected_rebuffer_s=best_rebuffer,
        num_candidates=num_candidates * num_stalls * num_scenarios,
    )


def _evaluate_batch_arena(
    candidates: np.ndarray,
    sizes: np.ndarray,
    quality: np.ndarray,
    weights: np.ndarray,
    buffer_s: np.ndarray,
    last_level: np.ndarray,
    scenario_tputs: np.ndarray,
    scenario_probs: np.ndarray,
    bitrates_kbps: np.ndarray,
    quality_model: KSQIModel,
    stall_options_s: Sequence[float],
    chunk_duration_s,
    buffer_capacity_s,
    candidate_mask: Optional[np.ndarray],
    need_expected_rebuffer: bool,
    weights_uniform: Optional[bool],
    dtype_name: str,
) -> BatchPlanEvaluation:
    """The arena batch kernel: one pass over preallocated contiguous buffers.

    Operation-for-operation the same elementwise sequence as
    :func:`_evaluate_batch_legacy` — same operands, same order, same
    left-fold accumulations — so the float64 path is bit-identical to it
    (differentially enforced by the test suite).  What changes is *where*
    the data lives and how it gets there:

    * all writes land in the arena's preallocated workspace (no per-call
      temporaries, no allocator churn);
    * gathers use precomputed contiguous index vectors (``np.take`` with
      ``mode="clip"`` onto preallocated outputs — clip is never exercised,
      it just selects numpy's unbuffered fast path);
    * download times are h*L divisions per (session, scenario) gathered to
      tree nodes, instead of |nodes| divisions (node dt depends only on the
      (step, level) cell, so gathering the quotient is bit-identical);
    * the switch-term block collapses to one row-gather from the arena's
      precomputed tables (uniform weights), and the final step's shortfall
      is computed in place over the gathered dt nodes (single-stall calls).

    With ``dtype_name="float32"`` the same sequence runs in float32 over
    float32 workspaces (inputs cast once on entry, outputs cast back to
    float64) — faster and half the memory, but *not* bit-identical; callers
    opt in explicitly.
    """
    num_sessions, horizon = weights.shape
    num_scenarios = scenario_tputs.shape[1]
    bitrates = np.asarray(bitrates_kbps, dtype=float)
    coeffs = quality_model.coefficients
    arena = _arena_for(candidates, bitrates)
    C = arena.C
    # sizes/quality may be padded wider than the ladder when mixed-ladder
    # sessions share a shard; candidates only ever index the real levels
    width = sizes.shape[2]
    dtype = _KERNEL_DTYPES[dtype_name]
    ws = arena.workspace(num_sessions, num_scenarios, width, dtype_name)
    first_switch_rows, _, later_switch_T = arena.consts(dtype_name)
    dt_idx_flat = arena.gather_indices(width)[1]

    sizes = np.asarray(sizes, dtype=dtype)
    quality = np.asarray(quality, dtype=dtype)
    weights = np.asarray(weights, dtype=dtype)
    buffer_s = np.asarray(buffer_s, dtype=dtype)
    scenario_tputs = np.asarray(scenario_tputs, dtype=dtype)
    scenario_probs = np.asarray(scenario_probs, dtype=dtype)

    uniform_weights = (
        bool(np.all(weights == 1.0))
        if weights_uniform is None else weights_uniform
    )
    prev_row = np.maximum(last_level, 0)

    # --- static scores: quality + switch terms + intercept ---------------
    q_width = quality.shape[2]
    qflat = quality.reshape(num_sessions, horizon * q_width)
    np.take(qflat, arena.gather_indices(q_width)[0], axis=1,
            out=ws.cq.reshape(num_sessions, horizon * C), mode="clip")
    cq = ws.cq                                              # (N, h, C)
    quality_dot = ws.quality_dot
    static_scores = ws.static
    tmp = ws.step_product                                   # scratch (N, C)
    if uniform_weights:
        # weight_total left-folds 1.0 h times -> exactly float(horizon);
        # the switch dot depends only on last_level -> precomputed row
        quality_dot[:] = cq[:, 0, :]
        for step in range(1, horizon):
            quality_dot += cq[:, step, :]
        np.multiply(quality_dot, coeffs.quality_weight / 100.0,
                    out=static_scores)
        np.add(static_scores, coeffs.intercept * float(horizon),
               out=static_scores)
        scaled_rows = arena.scaled_switch_rows(
            dtype_name, coeffs.switch_weight
        )
        np.take(scaled_rows, prev_row, axis=0, out=tmp, mode="clip")
        np.subtract(static_scores, tmp, out=static_scores)
    else:
        np.take(first_switch_rows, prev_row, axis=0,
                out=ws.first_switch, mode="clip")
        weight_total = ws.weight_total
        weight_total[:] = weights[:, 0]
        switch_dot = ws.switch_dot
        np.multiply(cq[:, 0, :], weights[:, 0, None], out=quality_dot)
        np.multiply(ws.first_switch, weights[:, 0, None], out=switch_dot)
        for step in range(1, horizon):
            weight_total += weights[:, step]
            np.multiply(cq[:, step, :], weights[:, step, None], out=tmp)
            quality_dot += tmp
            np.multiply(later_switch_T[step - 1][None, :],
                        weights[:, step, None], out=tmp)
            switch_dot += tmp
        np.multiply(quality_dot, coeffs.quality_weight / 100.0,
                    out=static_scores)
        np.multiply(weight_total[:, None], coeffs.intercept, out=tmp)
        np.add(tmp, static_scores, out=static_scores)
        np.multiply(switch_dot, coeffs.switch_weight, out=tmp)
        np.subtract(static_scores, tmp, out=static_scores)

    # --- download times for every tree node ------------------------------
    rates = ws.rates
    np.maximum(scenario_tputs, 1e-3, out=rates)
    rates *= 1e6 / 8.0
    stalls = np.asarray(stall_options_s, dtype=float)
    num_stalls = stalls.size
    chunk_gain = _per_session_or_scalar(chunk_duration_s, num_sessions)
    capacity = _per_session_or_scalar(buffer_capacity_s, num_sessions)

    # h*L divisions per (session, scenario), then one concatenated gather
    # fans the quotients out to every tree node
    np.divide(sizes.reshape(num_sessions, 1, horizon * width),
              rates[:, :, None], out=ws.dt_all)
    np.take(ws.dt_all, dt_idx_flat, axis=2, out=ws.dt_flat,
            mode="clip")
    dt_nodes = ws.dt_nodes

    session_index = _arange(num_sessions)
    inv_mask = None if candidate_mask is None else ~candidate_mask
    best_score = None
    best_level = None
    best_stall = None
    best_candidate = None

    node_parents = arena.node_parents
    states = ws.states
    for stall_index in range(num_stalls):
        start_levels = buffer_s + float(stalls[stall_index])
        for step in range(horizon):
            state = states[step]
            dt = dt_nodes[step]
            if step == 0:
                state[0] = start_levels[:, None, None]
                state[1] = 0.0
            else:
                np.take(states[step - 1], node_parents[step], axis=3,
                        out=state, mode="clip")
            parent_buffers = state[0]
            parent_weighted = state[1]
            if step == horizon - 1 and num_stalls == 1:
                # final step, single stall: dt is not reused afterwards, so
                # the shortfall (and its weighting) is computed in place
                # over the gathered dt
                np.subtract(dt, parent_buffers, out=dt)
                np.maximum(dt, 0.0, out=dt)
                if not uniform_weights:
                    dt *= weights[:, step, None, None]
                parent_weighted += dt
                continue
            shortfall = ws.shortfall[step]
            np.subtract(dt, parent_buffers, out=shortfall)
            np.maximum(shortfall, 0.0, out=shortfall)
            if not uniform_weights:
                # same multiply-then-add sequence as the legacy kernel,
                # just landing in the shortfall scratch instead of a fresh
                # temporary (shortfall is dead after this accumulation)
                shortfall *= weights[:, step, None, None]
            parent_weighted += shortfall
            if step < horizon - 1:
                np.subtract(parent_buffers, dt, out=parent_buffers)
                np.maximum(parent_buffers, 0.0, out=parent_buffers)
                parent_buffers += chunk_gain
                np.minimum(parent_buffers, capacity, out=parent_buffers)
        weighted_rebuffer = states[horizon - 1][1]

        plan_scores = weighted_rebuffer                     # (N, S, C)
        np.multiply(plan_scores, coeffs.rebuffer_weight, out=plan_scores)
        np.subtract(static_scores[:, None, :], plan_scores, out=plan_scores)
        if stalls[stall_index] != 0.0:
            stall_penalty = (
                coeffs.rebuffer_weight * stalls[stall_index] * weights[:, 0]
            )
            np.subtract(plan_scores, stall_penalty[:, None, None],
                        out=plan_scores)
        expected_scores = ws.expected
        np.multiply(scenario_probs[:, 0, None], plan_scores[:, 0, :],
                    out=expected_scores)
        partial = ws.partial
        for scenario in range(1, num_scenarios):
            np.multiply(scenario_probs[:, scenario, None],
                        plan_scores[:, scenario, :], out=partial)
            expected_scores += partial

        if inv_mask is not None:
            np.copyto(expected_scores, -np.inf, where=inv_mask)

        top = np.argmax(expected_scores, axis=1)
        score = expected_scores[session_index, top]         # fresh array
        if best_score is None:
            best_score = score
            best_level = arena.first_levels[top]
            best_stall = np.full(num_sessions, float(stalls[stall_index]))
            best_candidate = top
            continue
        better = score > best_score
        best_score = np.where(better, score, best_score)
        best_level = np.where(better, arena.first_levels[top], best_level)
        best_stall = np.where(better, stalls[stall_index], best_stall)
        best_candidate = np.where(better, top, best_candidate)

    if need_expected_rebuffer:
        # recomputed along each session's single winning path; see the
        # legacy kernel for the rationale
        step_index = _arange(horizon)
        path_levels = candidates[best_candidate]            # (N, h)
        path_sizes = sizes[
            session_index[:, None], step_index[None, :], path_levels
        ]                                                   # (N, h)
        path_dt = path_sizes[:, None, :] / rates[:, :, None]
        path_gain = (
            chunk_gain if isinstance(chunk_gain, float) else chunk_gain[:, :, 0]
        )
        path_capacity = (
            capacity if isinstance(capacity, float) else capacity[:, :, 0]
        )
        path_buffer = np.empty((num_sessions, num_scenarios), dtype=dtype)
        path_buffer[:] = (buffer_s + best_stall)[:, None]
        path_total = np.zeros_like(path_buffer)
        for step in range(horizon):
            dt = path_dt[:, :, step]
            shortfall = dt - path_buffer
            np.maximum(shortfall, 0.0, out=shortfall)
            path_total += shortfall
            if step < horizon - 1:
                np.subtract(path_buffer, dt, out=path_buffer)
                np.maximum(path_buffer, 0.0, out=path_buffer)
                path_buffer += path_gain
                np.minimum(path_buffer, path_capacity, out=path_buffer)
        best_rebuffer = scenario_probs[:, 0] * path_total[:, 0]
        for scenario in range(1, num_scenarios):
            best_rebuffer = (
                best_rebuffer
                + scenario_probs[:, scenario] * path_total[:, scenario]
            )
    else:
        best_rebuffer = np.zeros(num_sessions)

    if dtype is not np.float64:
        best_score = np.asarray(best_score, dtype=np.float64)
        best_rebuffer = np.asarray(best_rebuffer, dtype=np.float64)

    return BatchPlanEvaluation(
        best_level=best_level,
        best_stall_s=best_stall,
        best_score=best_score,
        expected_rebuffer_s=best_rebuffer,
        num_candidates=C * num_stalls * num_scenarios,
    )


def _evaluate_vectorized(
    observation: PlayerObservation,
    candidates: np.ndarray,
    throughput_scenarios: Sequence[Tuple[float, float]],
    quality_model: KSQIModel,
    weights: np.ndarray,
    stall_options_s: Sequence[float],
    chunk_duration: float,
) -> PlanEvaluation:
    """The batch kernel applied to a one-session stack.

    Routing the single-session path through :func:`evaluate_candidates_batch`
    is what makes the lockstep engine's results bit-identical to serial
    execution: both run the same kernel, whose per-session arithmetic is
    independent of the batch shape.
    """
    horizon = candidates.shape[1]
    batch = evaluate_candidates_batch(
        candidates=candidates,
        sizes=observation.upcoming_sizes_bytes[:horizon][None],
        quality=observation.upcoming_quality[:horizon][None],
        weights=weights[None, :],
        buffer_s=np.array([observation.buffer_s]),
        last_level=np.array([int(observation.last_level)]),
        scenario_tputs=np.array(
            [[t for t, _ in throughput_scenarios]], dtype=float
        ),
        scenario_probs=np.array(
            [[p for _, p in throughput_scenarios]], dtype=float
        ),
        bitrates_kbps=np.asarray(observation.ladder.bitrates_kbps, dtype=float),
        quality_model=quality_model,
        stall_options_s=stall_options_s,
        chunk_duration_s=chunk_duration,
        buffer_capacity_s=observation.buffer_capacity_s,
    )
    return PlanEvaluation(
        best_level=int(batch.best_level[0]),
        best_stall_s=float(batch.best_stall_s[0]),
        best_score=float(batch.best_score[0]),
        expected_rebuffer_s=float(batch.expected_rebuffer_s[0]),
        num_candidates=batch.num_candidates,
    )


def _evaluate_reference(
    observation: PlayerObservation,
    candidates: np.ndarray,
    throughput_scenarios: Sequence[Tuple[float, float]],
    quality_model: KSQIModel,
    weights: np.ndarray,
    stall_options_s: Sequence[float],
    chunk_duration: float,
) -> PlanEvaluation:
    """The seed implementation: Python loops over stalls and scenarios."""
    horizon = candidates.shape[1]
    sizes = observation.upcoming_sizes_bytes[:horizon]
    quality = observation.upcoming_quality[:horizon]
    bitrates = np.asarray(observation.ladder.bitrates_kbps, dtype=float)
    top_bitrate = bitrates[-1]
    coeffs = quality_model.coefficients
    num_candidates = candidates.shape[0]

    previous_bitrate = (
        bitrates[observation.last_level]
        if observation.last_level >= 0
        else bitrates[0]
    )

    best_score = -np.inf
    best_level = int(candidates[0, 0])
    best_stall = float(stall_options_s[0])
    best_rebuffer = 0.0

    candidate_sizes = np.take_along_axis(
        np.broadcast_to(sizes, (num_candidates, horizon, bitrates.size)),
        candidates[:, :, None],
        axis=2,
    )[:, :, 0]
    candidate_quality = np.take_along_axis(
        np.broadcast_to(quality, (num_candidates, horizon, bitrates.size)),
        candidates[:, :, None],
        axis=2,
    )[:, :, 0]
    candidate_bitrates = bitrates[candidates]
    previous_rates = np.concatenate(
        [np.full((num_candidates, 1), previous_bitrate), candidate_bitrates[:, :-1]],
        axis=1,
    )
    switch_terms = np.abs(candidate_bitrates - previous_rates) / top_bitrate

    for stall_s in stall_options_s:
        expected_scores = np.zeros(num_candidates)
        expected_rebuffer = np.zeros(num_candidates)
        for throughput_mbps, probability in throughput_scenarios:
            rate_bytes_per_s = max(throughput_mbps, 1e-3) * 1e6 / 8.0
            download_times = candidate_sizes / rate_bytes_per_s
            # Simulate buffer evolution for every candidate simultaneously.
            buffer_levels = np.full(
                num_candidates, observation.buffer_s + stall_s
            )
            rebuffer = np.zeros((num_candidates, horizon))
            for step in range(horizon):
                dt = download_times[:, step]
                shortfall = np.maximum(dt - buffer_levels, 0.0)
                rebuffer[:, step] = shortfall
                buffer_levels = np.maximum(buffer_levels - dt, 0.0) + chunk_duration
                buffer_levels = np.minimum(
                    buffer_levels, observation.buffer_capacity_s
                )
            chunk_scores = (
                coeffs.intercept
                + coeffs.quality_weight * candidate_quality / 100.0
                - coeffs.rebuffer_weight * rebuffer
                - coeffs.switch_weight * switch_terms
            )
            # The deliberately scheduled stall is charged to the next chunk,
            # weighted by that chunk's sensitivity.
            stall_penalty = coeffs.rebuffer_weight * stall_s * weights[0]
            plan_scores = chunk_scores @ weights - stall_penalty
            expected_scores += probability * plan_scores
            expected_rebuffer += probability * rebuffer.sum(axis=1)
        top_index = int(np.argmax(expected_scores))
        if float(expected_scores[top_index]) > best_score:
            best_score = float(expected_scores[top_index])
            best_level = int(candidates[top_index, 0])
            best_stall = float(stall_s)
            best_rebuffer = float(expected_rebuffer[top_index])

    return PlanEvaluation(
        best_level=best_level,
        best_stall_s=best_stall,
        best_score=best_score,
        expected_rebuffer_s=best_rebuffer,
        num_candidates=(
            num_candidates * len(stall_options_s) * len(throughput_scenarios)
        ),
    )
