"""Shared lookahead planning machinery for MPC/Fugu-style ABR algorithms.

Both RobustMPC and Fugu enumerate candidate bitrate sequences over a short
horizon, simulate the buffer evolution under a throughput estimate, score
each candidate with a per-chunk quality model, and commit only the first
step.  SENSEI's variants use the same machinery but (a) weight each chunk's
quality by its sensitivity and (b) consider scheduling a proactive stall
before the next chunk.

Two engine-level optimisations keep trace-scale experiments fast:

* the candidate tree depends only on ``(num_levels, horizon, max_step,
  start_level)`` — the same handful of trees is rebuilt at every chunk of
  every session — so :func:`enumerate_level_sequences` memoises them;
* :func:`evaluate_candidates` scores the full (stall option x throughput
  scenario x candidate) cross product as one 3-D tensor instead of looping
  over stalls and scenarios in Python.  The seed's loop implementation is
  retained behind ``vectorized=False`` as the reference the vectorised path
  is tested against and the baseline the perf harness measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from itertools import product
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.abr.base import PlayerObservation
from repro.qoe.ksqi import KSQIModel
from repro.utils.validation import require


def _build_level_sequences(
    num_levels: int,
    horizon: int,
    max_step: Optional[int],
    start_level: Optional[int],
) -> np.ndarray:
    """Materialise the candidate matrix (seed enumeration, unmemoised)."""
    if max_step is None:
        return np.array(
            list(product(range(num_levels), repeat=horizon)), dtype=int
        )
    sequences: List[Tuple[int, ...]] = []

    def extend(prefix: Tuple[int, ...]) -> None:
        if len(prefix) == horizon:
            sequences.append(prefix)
            return
        if prefix:
            previous = prefix[-1]
        elif start_level is not None and start_level >= 0:
            previous = start_level
        else:
            previous = None
        for level in range(num_levels):
            if previous is not None and abs(level - previous) > max_step:
                continue
            extend(prefix + (level,))

    extend(())
    require(bool(sequences), "level-change restriction pruned every candidate")
    return np.array(sequences, dtype=int)


@lru_cache(maxsize=4096)
def _cached_level_sequences(
    num_levels: int,
    horizon: int,
    max_step: Optional[int],
    start_level: Optional[int],
) -> np.ndarray:
    candidates = _build_level_sequences(num_levels, horizon, max_step, start_level)
    candidates.setflags(write=False)
    return candidates


def enumerate_level_sequences(num_levels: int, horizon: int,
                              max_step: Optional[int] = None,
                              start_level: Optional[int] = None,
                              use_cache: bool = True) -> np.ndarray:
    """All candidate level sequences of length ``horizon``.

    ``max_step`` optionally restricts consecutive levels to differ by at most
    that many rungs (prunes the search space for long horizons);
    ``start_level`` applies the same restriction to the first chunk relative
    to the previously played level.

    With ``use_cache`` (the default) the result is memoised on the argument
    tuple and returned as a **read-only** array — planners evaluate
    candidates without mutating them, and the same tree is requested at
    every chunk of every session.  Pass ``use_cache=False`` for a fresh,
    writable matrix.
    """
    require(num_levels >= 1, "num_levels must be >= 1")
    require(horizon >= 1, "horizon must be >= 1")
    if max_step is None:
        start_level = None  # irrelevant without a step restriction
    elif start_level is not None and start_level < 0:
        start_level = None  # "no previous level" — same tree as None
    if use_cache:
        return _cached_level_sequences(num_levels, horizon, max_step, start_level)
    return _build_level_sequences(num_levels, horizon, max_step, start_level)


def clear_plan_cache() -> None:
    """Drop all memoised candidate trees (tests and benchmarks)."""
    _cached_level_sequences.cache_clear()


def plan_cache_info():
    """``lru_cache`` statistics of the candidate-tree memo."""
    return _cached_level_sequences.cache_info()


@dataclass(frozen=True)
class PlanEvaluation:
    """Outcome of evaluating candidate plans.

    Attributes
    ----------
    best_level: bitrate level of the best plan's first chunk.
    best_stall_s: proactive stall chosen before the next chunk (0 for
        traditional planners).
    best_score: expected objective value of the best plan.
    expected_rebuffer_s: expected involuntary rebuffering time of the best
        plan over the horizon (useful as a risk signal).
    num_candidates: how many (plan, stall, throughput-scenario) combinations
        were evaluated — i.e. candidates x stall options x scenarios.
    """

    best_level: int
    best_stall_s: float
    best_score: float
    expected_rebuffer_s: float
    num_candidates: int


def evaluate_candidates(
    observation: PlayerObservation,
    candidates: np.ndarray,
    throughput_scenarios: Sequence[Tuple[float, float]],
    quality_model: KSQIModel,
    weights: Optional[np.ndarray] = None,
    stall_options_s: Sequence[float] = (0.0,),
    chunk_duration_s: Optional[float] = None,
    vectorized: bool = True,
) -> PlanEvaluation:
    """Score candidate level sequences and pick the best first action.

    Parameters
    ----------
    observation:
        The player observation (provides buffer level, upcoming sizes/quality
        and the previously played level).
    candidates:
        (num_candidates, horizon) matrix of level sequences.  The horizon
        must not exceed the observation's horizon.
    throughput_scenarios:
        (throughput_mbps, probability) pairs; the plan score is the
        probability-weighted expectation over them (Fugu's Eq. 3/4).
    quality_model:
        The per-chunk quality model ``q(b, t)`` (KSQI in the paper).
    weights:
        Sensitivity weights for the planned chunks (defaults to ones — the
        weight-unaware objective of Eq. 3).
    stall_options_s:
        Proactive-stall durations considered before the next chunk (SENSEI
        considers {0, 1, 2} s; traditional planners only 0).
    chunk_duration_s:
        Chunk playback duration; defaults to the observation's.
    vectorized:
        Score the full (stall x scenario x candidate) tensor in one pass
        (default) or fall back to the seed's Python loops (reference
        implementation used by equivalence tests and the perf baseline).
    """
    require(candidates.ndim == 2, "candidates must be a 2-D matrix")
    horizon = candidates.shape[1]
    require(horizon <= observation.horizon, "candidates exceed observation horizon")
    require(bool(throughput_scenarios), "need at least one throughput scenario")
    chunk_duration = (
        chunk_duration_s if chunk_duration_s is not None
        else observation.chunk_duration_s
    )
    if weights is None:
        weights = np.ones(horizon)
    weights = np.asarray(weights, dtype=float)[:horizon]
    require(weights.size == horizon, "weights must cover the planning horizon")

    if vectorized:
        return _evaluate_vectorized(
            observation, candidates, throughput_scenarios, quality_model,
            weights, stall_options_s, chunk_duration,
        )
    return _evaluate_reference(
        observation, candidates, throughput_scenarios, quality_model,
        weights, stall_options_s, chunk_duration,
    )


def _evaluate_vectorized(
    observation: PlayerObservation,
    candidates: np.ndarray,
    throughput_scenarios: Sequence[Tuple[float, float]],
    quality_model: KSQIModel,
    weights: np.ndarray,
    stall_options_s: Sequence[float],
    chunk_duration: float,
) -> PlanEvaluation:
    """One 3-D scored tensor over (stall option, scenario, candidate)."""
    horizon = candidates.shape[1]
    num_candidates = candidates.shape[0]
    sizes = observation.upcoming_sizes_bytes[:horizon]
    quality = observation.upcoming_quality[:horizon]
    bitrates = np.asarray(observation.ladder.bitrates_kbps, dtype=float)
    top_bitrate = bitrates[-1]
    coeffs = quality_model.coefficients
    previous_bitrate = (
        bitrates[observation.last_level]
        if observation.last_level >= 0
        else bitrates[0]
    )

    step_index = np.arange(horizon)
    candidate_sizes = sizes[step_index, candidates]        # (C, h)
    candidate_quality = quality[step_index, candidates]    # (C, h)
    candidate_bitrates = bitrates[candidates]              # (C, h)
    switch_terms = np.empty_like(candidate_bitrates)
    switch_terms[:, 0] = candidate_bitrates[:, 0] - previous_bitrate
    switch_terms[:, 1:] = candidate_bitrates[:, 1:] - candidate_bitrates[:, :-1]
    np.abs(switch_terms, out=switch_terms)
    switch_terms /= top_bitrate

    # The quality and switch terms do not depend on the stall or scenario:
    # fold them (and the per-chunk intercept) into one static score per
    # candidate, leaving only the rebuffer term dynamic.
    static_scores = (
        coeffs.intercept * float(weights.sum())
        + (coeffs.quality_weight / 100.0) * (candidate_quality @ weights)
        - coeffs.switch_weight * (switch_terms @ weights)
    )                                                      # (C,)

    scenario_tputs = np.array([t for t, _ in throughput_scenarios], dtype=float)
    probabilities = np.array([p for _, p in throughput_scenarios], dtype=float)
    rates_bytes_per_s = np.maximum(scenario_tputs, 1e-3) * 1e6 / 8.0
    download_times = (
        candidate_sizes[None, :, :] / rates_bytes_per_s[:, None, None]
    )                                                      # (S, C, h)

    stalls = np.asarray(stall_options_s, dtype=float)
    num_stalls = stalls.size
    num_scenarios = rates_bytes_per_s.size
    buffer_levels = np.empty((num_stalls, num_scenarios, num_candidates))
    buffer_levels[:] = (observation.buffer_s + stalls)[:, None, None]
    weighted_rebuffer = np.zeros_like(buffer_levels)
    total_rebuffer = np.zeros_like(buffer_levels)
    for step in range(horizon):
        dt = download_times[None, :, :, step]              # (1, S, C)
        shortfall = np.maximum(dt - buffer_levels, 0.0)
        weighted_rebuffer += shortfall * weights[step]
        total_rebuffer += shortfall
        buffer_levels = np.minimum(
            np.maximum(buffer_levels - dt, 0.0) + chunk_duration,
            observation.buffer_capacity_s,
        )

    stall_penalties = coeffs.rebuffer_weight * stalls * weights[0]  # (St,)
    plan_scores = (
        static_scores[None, None, :]
        - coeffs.rebuffer_weight * weighted_rebuffer
        - stall_penalties[:, None, None]
    )                                                      # (St, S, C)
    expected_scores = np.einsum("s,tsc->tc", probabilities, plan_scores)
    expected_rebuffer = np.einsum("s,tsc->tc", probabilities, total_rebuffer)

    # Selection mirrors the reference loop: stalls considered in order, the
    # first candidate index wins ties within a stall, and a later stall must
    # *strictly* beat the incumbent.
    best_score = -np.inf
    best_level = int(candidates[0, 0])
    best_stall = float(stalls[0])
    best_rebuffer = 0.0
    for stall_index in range(num_stalls):
        top_index = int(np.argmax(expected_scores[stall_index]))
        score = float(expected_scores[stall_index, top_index])
        if score > best_score:
            best_score = score
            best_level = int(candidates[top_index, 0])
            best_stall = float(stalls[stall_index])
            best_rebuffer = float(expected_rebuffer[stall_index, top_index])

    return PlanEvaluation(
        best_level=best_level,
        best_stall_s=best_stall,
        best_score=best_score,
        expected_rebuffer_s=best_rebuffer,
        num_candidates=num_candidates * num_stalls * num_scenarios,
    )


def _evaluate_reference(
    observation: PlayerObservation,
    candidates: np.ndarray,
    throughput_scenarios: Sequence[Tuple[float, float]],
    quality_model: KSQIModel,
    weights: np.ndarray,
    stall_options_s: Sequence[float],
    chunk_duration: float,
) -> PlanEvaluation:
    """The seed implementation: Python loops over stalls and scenarios."""
    horizon = candidates.shape[1]
    sizes = observation.upcoming_sizes_bytes[:horizon]
    quality = observation.upcoming_quality[:horizon]
    bitrates = np.asarray(observation.ladder.bitrates_kbps, dtype=float)
    top_bitrate = bitrates[-1]
    coeffs = quality_model.coefficients
    num_candidates = candidates.shape[0]

    previous_bitrate = (
        bitrates[observation.last_level]
        if observation.last_level >= 0
        else bitrates[0]
    )

    best_score = -np.inf
    best_level = int(candidates[0, 0])
    best_stall = float(stall_options_s[0])
    best_rebuffer = 0.0

    candidate_sizes = np.take_along_axis(
        np.broadcast_to(sizes, (num_candidates, horizon, bitrates.size)),
        candidates[:, :, None],
        axis=2,
    )[:, :, 0]
    candidate_quality = np.take_along_axis(
        np.broadcast_to(quality, (num_candidates, horizon, bitrates.size)),
        candidates[:, :, None],
        axis=2,
    )[:, :, 0]
    candidate_bitrates = bitrates[candidates]
    previous_rates = np.concatenate(
        [np.full((num_candidates, 1), previous_bitrate), candidate_bitrates[:, :-1]],
        axis=1,
    )
    switch_terms = np.abs(candidate_bitrates - previous_rates) / top_bitrate

    for stall_s in stall_options_s:
        expected_scores = np.zeros(num_candidates)
        expected_rebuffer = np.zeros(num_candidates)
        for throughput_mbps, probability in throughput_scenarios:
            rate_bytes_per_s = max(throughput_mbps, 1e-3) * 1e6 / 8.0
            download_times = candidate_sizes / rate_bytes_per_s
            # Simulate buffer evolution for every candidate simultaneously.
            buffer_levels = np.full(
                num_candidates, observation.buffer_s + stall_s
            )
            rebuffer = np.zeros((num_candidates, horizon))
            for step in range(horizon):
                dt = download_times[:, step]
                shortfall = np.maximum(dt - buffer_levels, 0.0)
                rebuffer[:, step] = shortfall
                buffer_levels = np.maximum(buffer_levels - dt, 0.0) + chunk_duration
                buffer_levels = np.minimum(
                    buffer_levels, observation.buffer_capacity_s
                )
            chunk_scores = (
                coeffs.intercept
                + coeffs.quality_weight * candidate_quality / 100.0
                - coeffs.rebuffer_weight * rebuffer
                - coeffs.switch_weight * switch_terms
            )
            # The deliberately scheduled stall is charged to the next chunk,
            # weighted by that chunk's sensitivity.
            stall_penalty = coeffs.rebuffer_weight * stall_s * weights[0]
            plan_scores = chunk_scores @ weights - stall_penalty
            expected_scores += probability * plan_scores
            expected_rebuffer += probability * rebuffer.sum(axis=1)
        top_index = int(np.argmax(expected_scores))
        if float(expected_scores[top_index]) > best_score:
            best_score = float(expected_scores[top_index])
            best_level = int(candidates[top_index, 0])
            best_stall = float(stall_s)
            best_rebuffer = float(expected_rebuffer[top_index])

    return PlanEvaluation(
        best_level=best_level,
        best_stall_s=best_stall,
        best_score=best_score,
        expected_rebuffer_s=best_rebuffer,
        num_candidates=(
            num_candidates * len(stall_options_s) * len(throughput_scenarios)
        ),
    )
