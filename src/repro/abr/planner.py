"""Shared lookahead planning machinery for MPC/Fugu-style ABR algorithms.

Both RobustMPC and Fugu enumerate candidate bitrate sequences over a short
horizon, simulate the buffer evolution under a throughput estimate, score
each candidate with a per-chunk quality model, and commit only the first
step.  SENSEI's variants use the same machinery but (a) weight each chunk's
quality by its sensitivity and (b) consider scheduling a proactive stall
before the next chunk.  The evaluation is vectorised over candidates so that
trace-scale experiments stay fast.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.abr.base import PlayerObservation
from repro.qoe.ksqi import KSQIModel
from repro.utils.validation import require


def enumerate_level_sequences(num_levels: int, horizon: int,
                              max_step: Optional[int] = None,
                              start_level: Optional[int] = None) -> np.ndarray:
    """All candidate level sequences of length ``horizon``.

    ``max_step`` optionally restricts consecutive levels to differ by at most
    that many rungs (prunes the search space for long horizons);
    ``start_level`` applies the same restriction to the first chunk relative
    to the previously played level.
    """
    require(num_levels >= 1, "num_levels must be >= 1")
    require(horizon >= 1, "horizon must be >= 1")
    if max_step is None:
        candidates = np.array(
            list(product(range(num_levels), repeat=horizon)), dtype=int
        )
        return candidates
    sequences: List[Tuple[int, ...]] = []

    def extend(prefix: Tuple[int, ...]) -> None:
        if len(prefix) == horizon:
            sequences.append(prefix)
            return
        if prefix:
            previous = prefix[-1]
        elif start_level is not None and start_level >= 0:
            previous = start_level
        else:
            previous = None
        for level in range(num_levels):
            if previous is not None and abs(level - previous) > max_step:
                continue
            extend(prefix + (level,))

    extend(())
    require(bool(sequences), "level-change restriction pruned every candidate")
    return np.array(sequences, dtype=int)


@dataclass(frozen=True)
class PlanEvaluation:
    """Outcome of evaluating candidate plans.

    Attributes
    ----------
    best_level: bitrate level of the best plan's first chunk.
    best_stall_s: proactive stall chosen before the next chunk (0 for
        traditional planners).
    best_score: expected objective value of the best plan.
    expected_rebuffer_s: expected involuntary rebuffering time of the best
        plan over the horizon (useful as a risk signal).
    num_candidates: how many (plan, stall) combinations were evaluated.
    """

    best_level: int
    best_stall_s: float
    best_score: float
    expected_rebuffer_s: float
    num_candidates: int


def evaluate_candidates(
    observation: PlayerObservation,
    candidates: np.ndarray,
    throughput_scenarios: Sequence[Tuple[float, float]],
    quality_model: KSQIModel,
    weights: Optional[np.ndarray] = None,
    stall_options_s: Sequence[float] = (0.0,),
    chunk_duration_s: Optional[float] = None,
) -> PlanEvaluation:
    """Score candidate level sequences and pick the best first action.

    Parameters
    ----------
    observation:
        The player observation (provides buffer level, upcoming sizes/quality
        and the previously played level).
    candidates:
        (num_candidates, horizon) matrix of level sequences.  The horizon
        must not exceed the observation's horizon.
    throughput_scenarios:
        (throughput_mbps, probability) pairs; the plan score is the
        probability-weighted expectation over them (Fugu's Eq. 3/4).
    quality_model:
        The per-chunk quality model ``q(b, t)`` (KSQI in the paper).
    weights:
        Sensitivity weights for the planned chunks (defaults to ones — the
        weight-unaware objective of Eq. 3).
    stall_options_s:
        Proactive-stall durations considered before the next chunk (SENSEI
        considers {0, 1, 2} s; traditional planners only 0).
    chunk_duration_s:
        Chunk playback duration; defaults to the observation's.
    """
    require(candidates.ndim == 2, "candidates must be a 2-D matrix")
    horizon = candidates.shape[1]
    require(horizon <= observation.horizon, "candidates exceed observation horizon")
    require(bool(throughput_scenarios), "need at least one throughput scenario")
    chunk_duration = (
        chunk_duration_s if chunk_duration_s is not None
        else observation.chunk_duration_s
    )
    if weights is None:
        weights = np.ones(horizon)
    weights = np.asarray(weights, dtype=float)[:horizon]
    require(weights.size == horizon, "weights must cover the planning horizon")

    sizes = observation.upcoming_sizes_bytes[:horizon]
    quality = observation.upcoming_quality[:horizon]
    ladder = observation.ladder
    bitrates = np.asarray(ladder.bitrates_kbps, dtype=float)
    top_bitrate = bitrates[-1]
    coeffs = quality_model.coefficients
    num_candidates = candidates.shape[0]

    previous_bitrate = (
        bitrates[observation.last_level]
        if observation.last_level >= 0
        else bitrates[0]
    )

    best_score = -np.inf
    best_level = int(candidates[0, 0])
    best_stall = float(stall_options_s[0])
    best_rebuffer = 0.0

    candidate_sizes = np.take_along_axis(
        np.broadcast_to(sizes, (num_candidates, horizon, bitrates.size)),
        candidates[:, :, None],
        axis=2,
    )[:, :, 0]
    candidate_quality = np.take_along_axis(
        np.broadcast_to(quality, (num_candidates, horizon, bitrates.size)),
        candidates[:, :, None],
        axis=2,
    )[:, :, 0]
    candidate_bitrates = bitrates[candidates]
    previous_rates = np.concatenate(
        [np.full((num_candidates, 1), previous_bitrate), candidate_bitrates[:, :-1]],
        axis=1,
    )
    switch_terms = np.abs(candidate_bitrates - previous_rates) / top_bitrate

    for stall_s in stall_options_s:
        expected_scores = np.zeros(num_candidates)
        expected_rebuffer = np.zeros(num_candidates)
        for throughput_mbps, probability in throughput_scenarios:
            rate_bytes_per_s = max(throughput_mbps, 1e-3) * 1e6 / 8.0
            download_times = candidate_sizes / rate_bytes_per_s
            # Simulate buffer evolution for every candidate simultaneously.
            buffer_levels = np.full(
                num_candidates, observation.buffer_s + stall_s
            )
            rebuffer = np.zeros((num_candidates, horizon))
            for step in range(horizon):
                dt = download_times[:, step]
                shortfall = np.maximum(dt - buffer_levels, 0.0)
                rebuffer[:, step] = shortfall
                buffer_levels = np.maximum(buffer_levels - dt, 0.0) + chunk_duration
                buffer_levels = np.minimum(
                    buffer_levels, observation.buffer_capacity_s
                )
            chunk_scores = (
                coeffs.intercept
                + coeffs.quality_weight * candidate_quality / 100.0
                - coeffs.rebuffer_weight * rebuffer
                - coeffs.switch_weight * switch_terms
            )
            # The deliberately scheduled stall is charged to the next chunk,
            # weighted by that chunk's sensitivity.
            stall_penalty = coeffs.rebuffer_weight * stall_s * weights[0]
            plan_scores = chunk_scores @ weights - stall_penalty
            expected_scores += probability * plan_scores
            expected_rebuffer += probability * rebuffer.sum(axis=1)
        top_index = int(np.argmax(expected_scores))
        if float(expected_scores[top_index]) > best_score:
            best_score = float(expected_scores[top_index])
            best_level = int(candidates[top_index, 0])
            best_stall = float(stall_s)
            best_rebuffer = float(expected_rebuffer[top_index])

    return PlanEvaluation(
        best_level=best_level,
        best_stall_s=best_stall,
        best_score=best_score,
        expected_rebuffer_s=best_rebuffer,
        num_candidates=num_candidates * len(stall_options_s),
    )
