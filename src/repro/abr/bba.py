"""BBA: buffer-based adaptation (Huang et al., SIGCOMM 2014).

BBA ignores throughput estimates entirely and maps the current buffer
occupancy to a bitrate through a linear "chunk map" between a reservoir and
a cushion: below the reservoir it plays the lowest bitrate, above the
cushion the highest, and in between it interpolates linearly.  It is the
weakest baseline in the paper's evaluation (the common denominator the QoE
gains in Figures 12–14 are measured against).
"""

from __future__ import annotations

import numpy as np

from repro.abr.base import ABRAlgorithm, Decision, PlayerObservation
from repro.utils.validation import require


class BufferBasedABR(ABRAlgorithm):
    """Buffer-based bitrate adaptation.

    Parameters
    ----------
    reservoir_s:
        Buffer level below which the lowest bitrate is selected.
    cushion_s:
        Buffer span over which the bitrate ramps from lowest to highest.
    """

    name = "BBA"

    def __init__(self, reservoir_s: float = 5.0, cushion_s: float = 10.0) -> None:
        require(reservoir_s > 0, "reservoir_s must be positive")
        require(cushion_s > 0, "cushion_s must be positive")
        self.reservoir_s = float(reservoir_s)
        self.cushion_s = float(cushion_s)

    def decide(self, observation: PlayerObservation) -> Decision:
        """Map the buffer level to a bitrate level via the BBA chunk map."""
        ladder = observation.ladder
        buffer_s = observation.buffer_s
        if buffer_s <= self.reservoir_s:
            return Decision(level=ladder.lowest_level)
        if buffer_s >= self.reservoir_s + self.cushion_s:
            return Decision(level=ladder.highest_level)
        fraction = (buffer_s - self.reservoir_s) / self.cushion_s
        level = int(np.floor(fraction * (ladder.num_levels - 1) + 1e-9))
        return Decision(level=self.clamp_level(level, ladder))
