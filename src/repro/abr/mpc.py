"""RobustMPC-style model-predictive ABR.

Enumerates bitrate plans over a short horizon, evaluates them against a
conservative (discounted harmonic-mean) throughput prediction using the
KSQI per-chunk quality model, and commits the first step.  Kept primarily
as a well-understood reference point and as the shared ancestor of the Fugu
implementation.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.abr.base import ABRAlgorithm, Decision, PlayerObservation
from repro.abr.planner import enumerate_level_sequences, evaluate_candidates
from repro.abr.throughput import HarmonicMeanPredictor, ThroughputPredictor
from repro.qoe.ksqi import KSQIModel
from repro.utils.validation import require


class ModelPredictiveABR(ABRAlgorithm):
    """MPC lookahead ABR with a robust throughput discount.

    Parameters
    ----------
    horizon:
        Number of future chunks planned over.
    robustness_discount:
        The throughput prediction is divided by (1 + discount), mirroring
        RobustMPC's pessimistic correction.
    quality_model:
        Per-chunk quality model used as the planning objective (KSQI).
    max_level_step:
        Optional cap on per-chunk level changes to prune the search space.
    use_fast_planner:
        Use the memoised candidate trees and vectorised evaluator (default).
        ``False`` selects the seed reference paths — kept for equivalence
        tests and the engine perf baseline.
    """

    name = "MPC"

    def __init__(
        self,
        horizon: int = 4,
        robustness_discount: float = 0.25,
        quality_model: Optional[KSQIModel] = None,
        predictor: Optional[ThroughputPredictor] = None,
        max_level_step: Optional[int] = 2,
        use_fast_planner: bool = True,
    ) -> None:
        require(horizon >= 1, "horizon must be >= 1")
        require(robustness_discount >= 0, "robustness_discount must be >= 0")
        self.horizon = int(horizon)
        self.robustness_discount = float(robustness_discount)
        self.quality_model = quality_model if quality_model is not None else KSQIModel()
        self.predictor = predictor if predictor is not None else HarmonicMeanPredictor()
        self.max_level_step = max_level_step
        self.use_fast_planner = bool(use_fast_planner)

    def reset(self) -> None:
        self.predictor.reset()

    def decide(self, observation: PlayerObservation) -> Decision:
        """Plan over the horizon and return the first step's level."""
        horizon = min(self.horizon, observation.horizon)
        predicted = self.predictor.predict(observation)
        conservative = predicted / (1.0 + self.robustness_discount)
        candidates = enumerate_level_sequences(
            observation.ladder.num_levels,
            horizon,
            max_step=self.max_level_step,
            start_level=observation.last_level,
            use_cache=self.use_fast_planner,
        )
        evaluation = evaluate_candidates(
            observation,
            candidates,
            throughput_scenarios=[(conservative, 1.0)],
            quality_model=self.quality_model,
            vectorized=self.use_fast_planner,
        )
        return Decision(level=evaluation.best_level)
