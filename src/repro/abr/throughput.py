"""Throughput predictors used by planner-style ABR algorithms.

Fugu's key ingredient is a probabilistic transmission-time predictor; the
reproduction provides a discretised error-distribution predictor that learns
the ratio between actual and predicted throughput online, plus the simpler
harmonic-mean and EWMA predictors used by RobustMPC-style planners.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Sequence, Tuple

import numpy as np

from repro.abr.base import PlayerObservation
from repro.utils.stats import harmonic_mean
from repro.utils.validation import require


class ThroughputPredictor(ABC):
    """Base class: predict throughput (Mbps) for the next download."""

    def reset(self) -> None:
        """Clear per-session state (default: nothing)."""

    @abstractmethod
    def predict(self, observation: PlayerObservation) -> float:
        """Point prediction of the next download's throughput in Mbps."""

    def predict_distribution(
        self, observation: PlayerObservation
    ) -> List[Tuple[float, float]]:
        """(throughput_mbps, probability) pairs; default is a point mass."""
        return [(self.predict(observation), 1.0)]


class HarmonicMeanPredictor(ThroughputPredictor):
    """Harmonic mean of the last ``window`` throughput samples.

    The harmonic mean down-weights transient spikes, which makes it the
    standard conservative estimator in the MPC family.
    """

    def __init__(self, window: int = 5, default_mbps: float = 1.0) -> None:
        require(window >= 1, "window must be >= 1")
        require(default_mbps > 0, "default_mbps must be positive")
        self.window = int(window)
        self.default_mbps = float(default_mbps)

    def predict(self, observation: PlayerObservation) -> float:
        history = observation.throughput_history_mbps
        if history.size == 0:
            return self.default_mbps
        recent = history[-self.window:]
        return harmonic_mean(recent)


class EWMAPredictor(ThroughputPredictor):
    """Exponentially weighted moving average of past throughput samples."""

    def __init__(self, alpha: float = 0.4, default_mbps: float = 1.0) -> None:
        require(0 < alpha <= 1, "alpha must be in (0, 1]")
        require(default_mbps > 0, "default_mbps must be positive")
        self.alpha = float(alpha)
        self.default_mbps = float(default_mbps)

    def predict(self, observation: PlayerObservation) -> float:
        history = observation.throughput_history_mbps
        if history.size == 0:
            return self.default_mbps
        estimate = float(history[0])
        for sample in history[1:]:
            estimate = self.alpha * float(sample) + (1 - self.alpha) * estimate
        return estimate


class ErrorDistributionPredictor(ThroughputPredictor):
    """Harmonic-mean prediction with a learned multiplicative error model.

    Fugu (§5.2) considers "any throughput variation γ with predicted
    probability p(γ)".  This predictor tracks the historical ratio between
    the observed throughput and the prediction made one step earlier, bins
    the ratios, and exposes the binned distribution so a planner can compute
    expectations over throughput variation.
    """

    def __init__(
        self,
        window: int = 4,
        num_bins: int = 5,
        ratio_range: Tuple[float, float] = (0.4, 1.4),
        default_mbps: float = 1.0,
    ) -> None:
        require(window >= 1, "window must be >= 1")
        require(num_bins >= 1, "num_bins must be >= 1")
        require(0 < ratio_range[0] < ratio_range[1], "invalid ratio range")
        self.window = int(window)
        self.num_bins = int(num_bins)
        self.ratio_range = (float(ratio_range[0]), float(ratio_range[1]))
        self.default_mbps = float(default_mbps)
        self._base = HarmonicMeanPredictor(window=window, default_mbps=default_mbps)
        self._num_ratios = 0
        self._last_prediction: float = 0.0
        # Constant per-instance arrays, hoisted out of the per-decision path.
        lo, hi = self.ratio_range
        self._bin_centers = np.linspace(lo, hi, self.num_bins)
        self._bin_edges = np.linspace(lo, hi, self.num_bins + 1)
        # Seed template for up to five bins; resampled onto the bin grid
        # for larger num_bins (the seed truncated the template instead,
        # silently dropping the upper bins' probability mass).
        template = np.array([0.1, 0.15, 0.5, 0.15, 0.1])
        if self.num_bins <= template.size:
            cold = template[: self.num_bins]
        else:
            cold = np.interp(
                np.linspace(0.0, 1.0, self.num_bins),
                np.linspace(0.0, 1.0, template.size),
                template,
            )
        self._cold_start_probs = cold / cold.sum()
        self._bin_counts = np.zeros(self.num_bins, dtype=int)

    def reset(self) -> None:
        self._num_ratios = 0
        self._last_prediction = 0.0
        self._bin_counts = np.zeros(self.num_bins, dtype=int)

    def predict(self, observation: PlayerObservation) -> float:
        prediction = self._base.predict(observation)
        self._record_ratio(observation, prediction)
        self._last_prediction = prediction
        return prediction

    def _record_ratio(self, observation: PlayerObservation, prediction: float) -> None:
        history = observation.throughput_history_mbps
        if history.size == 0 or self._last_prediction <= 0:
            return
        actual = float(history[-1])
        ratio = actual / self._last_prediction
        lo, hi = self.ratio_range
        clipped = min(max(ratio, lo), hi)
        self._num_ratios += 1
        # Maintain the histogram incrementally (same binning as
        # ``np.histogram`` over ``self._bin_edges``: right-open bins, the
        # last bin closed) so the distribution needs no per-decision pass
        # over the whole history.
        index = int(np.searchsorted(self._bin_edges, clipped, side="right")) - 1
        self._bin_counts[min(max(index, 0), self.num_bins - 1)] += 1

    def predict_distribution(
        self, observation: PlayerObservation
    ) -> List[Tuple[float, float]]:
        """Discretised distribution over next-download throughput."""
        prediction = self.predict(observation)
        if self._num_ratios < 3:
            # Cold start: concentrated near the point prediction with thin
            # symmetric tails (strong pessimism here causes phantom stall
            # risk and gratuitous hedging early in a session).
            probabilities = self._cold_start_probs
        else:
            smoothed = self._bin_counts + 0.5
            probabilities = smoothed / float(smoothed.sum())
        return [
            (float(prediction * center), float(prob))
            for center, prob in zip(self._bin_centers, probabilities)
        ]
