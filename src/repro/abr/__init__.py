"""Adaptive bitrate (ABR) algorithms.

Baselines reproduced from the paper's evaluation:

* :class:`~repro.abr.bba.BufferBasedABR` — BBA (Huang et al., SIGCOMM'14);
* :class:`~repro.abr.rate.RateBasedABR` — classic throughput-rule adaptation;
* :class:`~repro.abr.mpc.ModelPredictiveABR` — RobustMPC-style lookahead;
* :class:`~repro.abr.fugu.FuguABR` — Fugu-style stochastic MPC with a learned
  throughput-error distribution (§5.2, Eq. 3);
* :class:`~repro.abr.pensieve.PensieveABR` — Pensieve-style actor–critic RL;
* :class:`~repro.abr.offline.OfflineOptimalABR` — dynamic-programming optimal
  with full knowledge of the trace (the idealised ABR of §2.4).

SENSEI's sensitivity-aware variants live in :mod:`repro.core.sensei_abr`.
"""

from repro.abr.base import ABRAlgorithm, Decision, PlayerObservation
from repro.abr.bba import BufferBasedABR
from repro.abr.rate import RateBasedABR
from repro.abr.throughput import (
    ThroughputPredictor,
    HarmonicMeanPredictor,
    EWMAPredictor,
    ErrorDistributionPredictor,
)
from repro.abr.mpc import ModelPredictiveABR
from repro.abr.fugu import FuguABR
from repro.abr.pensieve import PensieveABR, PensieveConfig
from repro.abr.offline import OfflineOptimalABR

__all__ = [
    "ABRAlgorithm",
    "Decision",
    "PlayerObservation",
    "BufferBasedABR",
    "RateBasedABR",
    "ThroughputPredictor",
    "HarmonicMeanPredictor",
    "EWMAPredictor",
    "ErrorDistributionPredictor",
    "ModelPredictiveABR",
    "FuguABR",
    "PensieveABR",
    "PensieveConfig",
    "OfflineOptimalABR",
]
