"""CV-style highlight / summarisation models (Appendix D).

The paper tests whether video-highlight and video-summarisation models
(AMVM, DSN, Video2GIF) can predict per-chunk quality sensitivity and finds
that they cannot: they key off *information richness* and *visual dynamics*,
which do not imply viewer attention to quality.  The reproduction implements
three scorers with the same inductive biases over the observable content
descriptors — motion, spatial complexity and information richness — while
the true sensitivity is driven by the latent ``key_moment`` signal they never
see.  Figure 20 compares their (normalised) scores against the user-study
sensitivity.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List

import numpy as np

from repro.utils.stats import normalize_to_unit
from repro.video.video import SourceVideo


class HighlightModel(ABC):
    """Base class: score each chunk's "highlight-ness" in [0, 1]."""

    name: str = "highlight-model"

    @abstractmethod
    def raw_scores(self, video: SourceVideo) -> np.ndarray:
        """Unnormalised per-chunk highlight scores."""

    def chunk_scores(self, video: SourceVideo) -> np.ndarray:
        """Per-chunk scores min–max normalised to [0, 1] (Figure 20's y-axis)."""
        return normalize_to_unit(self.raw_scores(video))


class AMVMLikeModel(HighlightModel):
    """AMVM-like: attention driven by visual dynamics.

    The original model estimates user experience from motion and texture
    statistics; the proxy scores chunks by motion with a complexity bonus.
    """

    name = "AMVM"

    def raw_scores(self, video: SourceVideo) -> np.ndarray:
        features = video.feature_matrix()
        motion, complexity = features[:, 0], features[:, 1]
        return 0.75 * motion + 0.25 * complexity


class DSNLikeModel(HighlightModel):
    """DSN-like: diversity/representativeness-rewarded summarisation.

    The deep summarisation network rewards frames that are both diverse from
    their neighbours and representative of the video; the proxy scores chunks
    by how much their feature vector deviates from the local neighbourhood
    plus how close it is to the global mean.
    """

    name = "DSN"

    def raw_scores(self, video: SourceVideo) -> np.ndarray:
        features = video.feature_matrix()
        global_mean = features.mean(axis=0)
        representativeness = -np.linalg.norm(features - global_mean, axis=1)
        diversity = np.zeros(len(features))
        for index in range(len(features)):
            lo = max(0, index - 2)
            hi = min(len(features), index + 3)
            neighbourhood = np.delete(features[lo:hi], index - lo, axis=0)
            if neighbourhood.size:
                diversity[index] = float(
                    np.mean(np.linalg.norm(neighbourhood - features[index], axis=1))
                )
        return 0.5 * normalize_to_unit(diversity) + 0.5 * normalize_to_unit(
            representativeness
        )


class Video2GIFLikeModel(HighlightModel):
    """Video2GIF-like: GIF-worthiness driven by information-rich action.

    The original ranks segments by how likely they are to be turned into a
    GIF, which correlates with objects/faces/action on screen; the proxy
    scores chunks by information richness with a motion bonus.
    """

    name = "Video2GIF"

    def raw_scores(self, video: SourceVideo) -> np.ndarray:
        features = video.feature_matrix()
        motion, information = features[:, 0], features[:, 2]
        return 0.65 * information + 0.35 * motion


def all_highlight_models() -> List[HighlightModel]:
    """The three CV baselines evaluated in Appendix D."""
    return [AMVMLikeModel(), DSNLikeModel(), Video2GIFLikeModel()]
