"""Computer-vision baselines for sensitivity estimation (Appendix D)."""

from repro.cv.highlights import (
    HighlightModel,
    AMVMLikeModel,
    DSNLikeModel,
    Video2GIFLikeModel,
    all_highlight_models,
)

__all__ = [
    "HighlightModel",
    "AMVMLikeModel",
    "DSNLikeModel",
    "Video2GIFLikeModel",
    "all_highlight_models",
]
