"""Network substrate: throughput traces and their synthetic generators.

The paper replays throughput traces from the FCC broadband and Norwegian
3G/HSDPA datasets (0.2–6 Mbps).  The reproduction generates traces with the
same bandwidth range and burstiness characteristics (see DESIGN.md §2), and
provides the scaling / Gaussian-noise transformations used by Figures 6, 12b
and 17.
"""

from repro.network.trace import ThroughputTrace
from repro.network.synthetic import (
    TraceGenerator,
    FCCLikeGenerator,
    HSDPALikeGenerator,
    MarkovTraceGenerator,
)
from repro.network.bank import TraceBank

__all__ = [
    "ThroughputTrace",
    "TraceGenerator",
    "FCCLikeGenerator",
    "HSDPALikeGenerator",
    "MarkovTraceGenerator",
    "TraceBank",
]
