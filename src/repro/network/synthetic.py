"""Synthetic throughput-trace generators.

Real-world cellular and broadband traces (3G/HSDPA commute traces, FCC
broadband measurements) show two characteristic behaviours the generators
reproduce:

* slowly drifting mean capacity with abrupt regime changes (handovers,
  congestion onset) — modelled as a Markov-modulated mean level;
* short-timescale variation around the current mean — modelled as lognormal
  multiplicative noise.

All generators emit :class:`~repro.network.trace.ThroughputTrace` objects in
the paper's 0.2–6 Mbps range and are fully seeded.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Optional, Sequence

import numpy as np

from repro.network.trace import ThroughputTrace
from repro.utils.rand import spawn_rng
from repro.utils.validation import require, require_positive


class TraceGenerator(ABC):
    """Base class for synthetic trace generators."""

    def __init__(self, seed: int = 3) -> None:
        self.seed = int(seed)

    @abstractmethod
    def generate(self, name: str, duration_s: float, step_s: float = 1.0) -> ThroughputTrace:
        """Generate one trace with the given name and duration."""

    def generate_many(
        self, count: int, duration_s: float, prefix: str = "trace", step_s: float = 1.0
    ) -> List[ThroughputTrace]:
        """Generate ``count`` traces named ``{prefix}-{i:02d}``."""
        require(count >= 1, "count must be >= 1")
        return [
            self.generate(f"{prefix}-{i:02d}", duration_s, step_s=step_s)
            for i in range(count)
        ]


class MarkovTraceGenerator(TraceGenerator):
    """Markov-modulated trace generator.

    The mean capacity follows a discrete-state Markov chain over capacity
    levels; the emitted bandwidth multiplies the current mean by lognormal
    noise.  Regime dwell times and noise magnitude are configurable.

    Parameters
    ----------
    capacity_levels_mbps:
        Possible mean-capacity regimes.
    switch_probability:
        Per-step probability of moving to a random other regime.
    noise_sigma:
        Sigma of the lognormal multiplicative noise.
    floor_mbps / ceiling_mbps:
        Clipping range (defaults to the paper's 0.2–6 Mbps band).
    """

    def __init__(
        self,
        capacity_levels_mbps: Sequence[float] = (0.4, 0.9, 1.6, 2.5, 3.5, 5.0),
        switch_probability: float = 0.06,
        noise_sigma: float = 0.25,
        floor_mbps: float = 0.2,
        ceiling_mbps: float = 6.0,
        seed: int = 3,
    ) -> None:
        super().__init__(seed=seed)
        require(len(capacity_levels_mbps) >= 2, "need at least two capacity levels")
        require(0 < switch_probability < 1, "switch_probability must be in (0, 1)")
        require(noise_sigma >= 0, "noise_sigma must be >= 0")
        require(0 < floor_mbps < ceiling_mbps, "need 0 < floor < ceiling")
        self.capacity_levels_mbps = tuple(float(c) for c in capacity_levels_mbps)
        self.switch_probability = float(switch_probability)
        self.noise_sigma = float(noise_sigma)
        self.floor_mbps = float(floor_mbps)
        self.ceiling_mbps = float(ceiling_mbps)

    def generate(self, name: str, duration_s: float, step_s: float = 1.0) -> ThroughputTrace:
        require_positive(duration_s, "duration_s")
        require_positive(step_s, "step_s")
        rng = spawn_rng(self.seed, type(self).__name__, name)
        num_steps = max(2, int(round(duration_s / step_s)))
        state = int(rng.integers(0, len(self.capacity_levels_mbps)))
        bandwidths = np.empty(num_steps)
        for step in range(num_steps):
            if rng.random() < self.switch_probability:
                # Prefer neighbouring regimes (gradual degradation) with
                # occasional long jumps (handover / congestion collapse).
                if rng.random() < 0.7:
                    state = int(
                        np.clip(state + rng.choice([-1, 1]), 0,
                                len(self.capacity_levels_mbps) - 1)
                    )
                else:
                    state = int(rng.integers(0, len(self.capacity_levels_mbps)))
            mean = self.capacity_levels_mbps[state]
            noise = float(np.exp(self.noise_sigma * rng.standard_normal()))
            bandwidths[step] = mean * noise
        bandwidths = np.clip(bandwidths, self.floor_mbps, self.ceiling_mbps)
        timestamps = np.arange(num_steps, dtype=float) * step_s
        return ThroughputTrace(
            timestamps_s=timestamps, bandwidths_mbps=bandwidths, name=name
        )


class HSDPALikeGenerator(MarkovTraceGenerator):
    """Cellular-commute-like traces: low mean, frequent regime changes,
    occasional near-outages — the harsher end of the paper's trace set.

    Means fall mostly below the top encoding rung (2.85 Mbps), so the ABR
    algorithm faces non-trivial bitrate decisions, as §7.1 requires.
    """

    def __init__(self, seed: int = 3) -> None:
        super().__init__(
            capacity_levels_mbps=(0.25, 0.45, 0.75, 1.1, 1.6, 2.4),
            switch_probability=0.10,
            noise_sigma=0.35,
            floor_mbps=0.2,
            ceiling_mbps=4.0,
            seed=seed,
        )


class FCCLikeGenerator(MarkovTraceGenerator):
    """Fixed-broadband-like traces: higher mean, rarer regime changes,
    milder short-term variation."""

    def __init__(self, seed: int = 3) -> None:
        super().__init__(
            capacity_levels_mbps=(0.9, 1.5, 2.1, 2.8, 3.6, 4.5),
            switch_probability=0.04,
            noise_sigma=0.18,
            floor_mbps=0.3,
            ceiling_mbps=6.0,
            seed=seed,
        )


class RandomWalkTraceGenerator(TraceGenerator):
    """A bounded geometric random walk, useful for stress tests.

    Each step multiplies the current bandwidth by a lognormal factor and
    reflects off the configured floor/ceiling.
    """

    def __init__(
        self,
        start_mbps: float = 2.0,
        step_sigma: float = 0.12,
        floor_mbps: float = 0.2,
        ceiling_mbps: float = 6.0,
        seed: int = 3,
    ) -> None:
        super().__init__(seed=seed)
        require_positive(start_mbps, "start_mbps")
        require(step_sigma >= 0, "step_sigma must be >= 0")
        require(0 < floor_mbps < ceiling_mbps, "need 0 < floor < ceiling")
        self.start_mbps = float(start_mbps)
        self.step_sigma = float(step_sigma)
        self.floor_mbps = float(floor_mbps)
        self.ceiling_mbps = float(ceiling_mbps)

    def generate(self, name: str, duration_s: float, step_s: float = 1.0) -> ThroughputTrace:
        require_positive(duration_s, "duration_s")
        rng = spawn_rng(self.seed, type(self).__name__, name)
        num_steps = max(2, int(round(duration_s / step_s)))
        bandwidths = np.empty(num_steps)
        current = self.start_mbps
        for step in range(num_steps):
            current *= float(np.exp(self.step_sigma * rng.standard_normal()))
            if current < self.floor_mbps:
                current = self.floor_mbps * (self.floor_mbps / max(current, 1e-6))
            current = float(np.clip(current, self.floor_mbps, self.ceiling_mbps))
            bandwidths[step] = current
        timestamps = np.arange(num_steps, dtype=float) * step_s
        return ThroughputTrace(
            timestamps_s=timestamps, bandwidths_mbps=bandwidths, name=name
        )
