"""The evaluation trace bank.

The paper randomly selects 10 throughput traces (7 in §2.2) from the FCC and
3G/HSDPA datasets with average throughput between 0.2 and 6 Mbps (§7.1).
:class:`TraceBank` produces a matching set of synthetic traces — half
FCC-like, half HSDPA-like — whose means span that range, ordered by average
throughput like Figure 14.
"""

from __future__ import annotations

from typing import List, Optional

from repro.network.synthetic import FCCLikeGenerator, HSDPALikeGenerator
from repro.network.trace import ThroughputTrace
from repro.utils.validation import require


class TraceBank:
    """Deterministic set of evaluation traces.

    Parameters
    ----------
    num_traces:
        Number of traces to generate (10 in §7.1, 7 in §2.2).
    duration_s:
        Trace duration; defaults to 20 minutes so the longest video
        (BigBuckBunny, ~10 min) never outlives a trace even with stalls.
    seed:
        Base seed for the generators.
    """

    def __init__(
        self, num_traces: int = 10, duration_s: float = 1200.0, seed: int = 5
    ) -> None:
        require(num_traces >= 1, "num_traces must be >= 1")
        self.num_traces = int(num_traces)
        self.duration_s = float(duration_s)
        self.seed = int(seed)
        self._traces: Optional[List[ThroughputTrace]] = None

    def traces(self) -> List[ThroughputTrace]:
        """All traces, ordered by increasing average throughput (Figure 14)."""
        if self._traces is None:
            # The paper's trace mix leans cellular (3G/HSDPA commute traces),
            # where bitrate decisions are non-trivial; 60/40 reflects that.
            num_cellular = max(1, int(round(self.num_traces * 0.6)))
            num_broadband = self.num_traces - num_cellular
            cellular = HSDPALikeGenerator(seed=self.seed).generate_many(
                num_cellular, self.duration_s, prefix="hsdpa"
            )
            broadband = FCCLikeGenerator(seed=self.seed + 1).generate_many(
                num_broadband, self.duration_s, prefix="fcc"
            ) if num_broadband else []
            combined = cellular + broadband
            combined.sort(key=lambda trace: trace.mean_mbps)
            self._traces = combined
        return list(self._traces)

    def trace(self, index: int) -> ThroughputTrace:
        """Trace at a given rank (0 = lowest average throughput)."""
        traces = self.traces()
        require(0 <= index < len(traces), "trace index out of range")
        return traces[index]

    def names(self) -> List[str]:
        """Trace names in rank order."""
        return [trace.name for trace in self.traces()]

    def mean_throughputs_mbps(self) -> List[float]:
        """Mean throughput of each trace in rank order."""
        return [trace.mean_mbps for trace in self.traces()]
