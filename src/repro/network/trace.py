"""Throughput traces: piecewise-constant bandwidth over time.

A trace is a sequence of (timestamp, bandwidth) samples.  Bandwidth is held
constant between consecutive timestamps and the trace wraps around when a
streaming session outlives it (standard practice in trace-driven ABR
evaluation, e.g. Pensieve's simulator).
"""

from __future__ import annotations

import json
from bisect import bisect_right
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.utils.rand import rng_from_seed
from repro.utils.validation import require, require_positive

_MIN_BANDWIDTH_MBPS = 0.01  # floor to keep download times finite


@dataclass(frozen=True)
class ThroughputTrace:
    """A piecewise-constant throughput trace.

    Attributes
    ----------
    timestamps_s:
        Strictly increasing sample times in seconds, starting at 0.
    bandwidths_mbps:
        Bandwidth in Mbps for the interval starting at each timestamp.
    name:
        Identifier used in reports (e.g. ``"hsdpa-03"``).
    """

    timestamps_s: np.ndarray
    bandwidths_mbps: np.ndarray
    name: str = "trace"

    def __post_init__(self) -> None:
        # Own copies, frozen: the download-time index below is derived from
        # these arrays at construction, so in-place mutation would silently
        # desync bandwidth_at() from download_time_s().  Transformations go
        # through scaled()/with_added_noise()/..., which build new traces.
        ts = np.array(self.timestamps_s, dtype=float)
        bw = np.array(self.bandwidths_mbps, dtype=float)
        ts.setflags(write=False)
        bw.setflags(write=False)
        object.__setattr__(self, "timestamps_s", ts)
        object.__setattr__(self, "bandwidths_mbps", bw)
        require(ts.ndim == 1 and bw.ndim == 1, "trace arrays must be 1-D")
        require(ts.size == bw.size, "timestamps and bandwidths must align")
        require(ts.size >= 1, "trace must have at least one sample")
        require(abs(float(ts[0])) < 1e-9, "trace must start at t=0")
        require(bool(np.all(np.diff(ts) > 0)), "timestamps must be increasing")
        require(bool(np.all(bw > 0)), "bandwidths must be positive")
        # Duration and the download-time integrator index are immutable
        # consequences of the sample arrays; computing them once here keeps
        # the per-download hot path free of repeated median/cumsum work.
        if ts.size == 1:
            duration = 1.0
        else:
            spacing = float(np.median(np.diff(ts)))
            duration = float(ts[-1]) + spacing
        object.__setattr__(self, "_duration_s", duration)
        segment_ends = np.append(ts[1:], duration)
        rates_bits = np.maximum(bw, _MIN_BANDWIDTH_MBPS) * 1e6
        capacity_bits = rates_bits * (segment_ends - ts)
        cum_capacity = np.cumsum(capacity_bits)
        segment_ends.setflags(write=False)
        rates_bits.setflags(write=False)
        cum_capacity.setflags(write=False)
        object.__setattr__(self, "_segment_ends", segment_ends)
        object.__setattr__(self, "_segment_rates_bits", rates_bits)
        object.__setattr__(self, "_cum_capacity_bits", cum_capacity)
        # Plain-float mirrors of the index arrays: ``download_time_s`` is
        # called once per chunk of every session of a grid sweep, and
        # ``bisect`` over a list plus native float arithmetic is several
        # times cheaper than numpy scalar indexing at these sizes.  Values
        # are identical (``tolist`` round-trips the exact doubles), so the
        # integral is unchanged.
        object.__setattr__(self, "_ts_list", ts.tolist())
        object.__setattr__(self, "_rates_list", rates_bits.tolist())
        object.__setattr__(self, "_cum_list", cum_capacity.tolist())

    def __getstate__(self) -> dict:
        """Pickle only the declared fields.

        The derived integrator index (underscore attributes) roughly
        doubles the payload and is cheap to re-derive, so process-pool
        work orders ship without it.
        """
        from repro.utils.pickling import public_state

        return public_state(self)

    def __setstate__(self, state: dict) -> None:
        for key, value in state.items():
            object.__setattr__(self, key, value)
        # Re-derive the index and re-freeze the arrays (numpy pickling drops
        # the write=False flag).
        self.__post_init__()

    # --------------------------------------------------------------- basics

    @property
    def duration_s(self) -> float:
        """Nominal duration: last timestamp plus the median sample spacing."""
        return self._duration_s

    @property
    def mean_mbps(self) -> float:
        """Mean bandwidth in Mbps."""
        return float(np.mean(self.bandwidths_mbps))

    @property
    def std_mbps(self) -> float:
        """Standard deviation of bandwidth in Mbps."""
        return float(np.std(self.bandwidths_mbps))

    @property
    def std_kbps(self) -> float:
        """Standard deviation of bandwidth in kbps (Figure 17's x-axis)."""
        return self.std_mbps * 1000.0

    def bandwidth_at(self, time_s: float) -> float:
        """Bandwidth (Mbps) at an absolute time; the trace wraps around."""
        require(time_s >= 0, "time must be >= 0")
        wrapped = float(time_s) % self.duration_s
        index = int(np.searchsorted(self.timestamps_s, wrapped, side="right") - 1)
        index = max(0, index)
        return float(self.bandwidths_mbps[index])

    # --------------------------------------------------------- download model

    def download_time_s(self, size_bytes: float, start_time_s: float) -> float:
        """Seconds needed to download ``size_bytes`` starting at ``start_time_s``.

        Integrates the piecewise-constant bandwidth (with wrap-around) until
        the requested number of bytes has been delivered.  Uses the cumulative
        per-cycle capacity index built at construction, so each call costs two
        binary searches instead of a walk over the trace segments.

        This is the exact piecewise integral.  It also fixes a seed bug:
        the segment walk retained as :meth:`download_time_s_reference`
        misattributes a segment's rate at knife-edge boundary wraps on
        traces with non-float-exact timestamp spacing (see its docstring);
        the indexed path has no boundary epsilon at all.  On this repo's
        integer-spaced traces the two agree to floating-point tolerance.
        """
        require_positive(size_bytes, "size_bytes")
        require(start_time_s >= 0, "start_time_s must be >= 0")
        ts = self._ts_list
        cum = self._cum_list
        rates = self._rates_list
        duration = self._duration_s
        num_segments = len(ts)
        cycle_bits = cum[-1]

        wrapped = float(start_time_s) % duration
        start_seg = max(bisect_right(ts, wrapped) - 1, 0)
        seg_end = ts[start_seg + 1] if start_seg + 1 < num_segments else duration
        # Bits deliverable from the cycle start up to the wrapped start time.
        bits_before = cum[start_seg] - rates[start_seg] * (seg_end - wrapped)
        target_bits = bits_before + size_bytes * 8.0

        full_cycles, within_cycle = divmod(target_bits, cycle_bits)
        end_seg = bisect_right(cum, within_cycle)
        if end_seg >= num_segments:  # within_cycle landed on cum[-1] by rounding
            end_seg = num_segments - 1
        bits_into_seg = within_cycle - (cum[end_seg - 1] if end_seg else 0.0)
        end_time = ts[end_seg] + bits_into_seg / rates[end_seg]
        return full_cycles * duration + end_time - wrapped

    def download_times_batch(
        self, sizes_bytes: np.ndarray, start_times_s: np.ndarray
    ) -> np.ndarray:
        """Vectorised :meth:`download_time_s` over aligned size/start arrays.

        One fused evaluation of the indexed integral for a whole batch of
        downloads — the lockstep engine calls this once per chunk step per
        trace instead of once per session.

        Bit-identity contract: every operation is the elementwise numpy
        counterpart of the scalar path's arithmetic on the *same* float64
        values — ``np.mod``/``np.divmod`` implement CPython's float
        ``%``/``divmod`` semantics exactly (both reduce to ``fmod`` plus the
        identical sign/rounding corrections), ``np.searchsorted(side="right")``
        is ``bisect_right``, and +, -, *, / are IEEE-754 regardless of batch
        shape — so each entry of the result is bitwise equal to calling
        :meth:`download_time_s` with that entry's arguments alone.  Enforced
        by the hypothesis suite (``tests/test_properties.py``) and the
        lockstep golden masters.
        """
        sizes = np.asarray(sizes_bytes, dtype=float)
        starts = np.asarray(start_times_s, dtype=float)
        require(sizes.shape == starts.shape, "sizes and starts must align")
        require(bool(np.all(sizes > 0)), "size_bytes must be positive")
        require(bool(np.all(starts >= 0)), "start_time_s must be >= 0")
        return self._download_times_batch_unchecked(sizes, starts)

    def _download_times_batch_unchecked(
        self, sizes: np.ndarray, starts: np.ndarray
    ) -> np.ndarray:
        """:meth:`download_times_batch` without input validation.

        The lockstep stepping calls this once per chunk step per trace with
        arguments it constructs itself (chunk sizes are positive by video
        construction, wall clocks are monotone from 0), so the per-call
        validation would be pure overhead on the hottest loop in the
        engine.  Everything else about the public method's bit-identity
        contract applies unchanged.
        """
        ts = self.timestamps_s
        cum = self._cum_capacity_bits
        rates = self._segment_rates_bits
        seg_ends = self._segment_ends
        duration = self._duration_s
        num_segments = ts.size
        cycle_bits = cum[-1]

        wrapped = np.mod(starts, duration)
        start_seg = np.maximum(
            np.searchsorted(ts, wrapped, side="right") - 1, 0
        )
        # Bits deliverable from the cycle start up to the wrapped start time.
        bits_before = cum[start_seg] - rates[start_seg] * (
            seg_ends[start_seg] - wrapped
        )
        target_bits = bits_before + sizes * 8.0
        full_cycles, within_cycle = np.divmod(target_bits, cycle_bits)
        end_seg = np.searchsorted(cum, within_cycle, side="right")
        # within_cycle can land on cum[-1] by rounding, exactly like the
        # scalar path's clamp.
        end_seg = np.minimum(end_seg, num_segments - 1)
        prev_cum = np.where(end_seg > 0, cum[np.maximum(end_seg - 1, 0)], 0.0)
        bits_into_seg = within_cycle - prev_cum
        end_time = ts[end_seg] + bits_into_seg / rates[end_seg]
        return full_cycles * duration + end_time - wrapped

    def download_time_s_reference(
        self, size_bytes: float, start_time_s: float
    ) -> float:
        """Reference (seed) implementation of :meth:`download_time_s`.

        Walks the trace segment by segment, byte-faithful to the seed
        (including its per-step duration recomputation).  Kept as the cost
        and behaviour baseline the engine perf harness measures speedups
        from, and as the equivalence oracle on well-spaced traces.

        Known seed artifact, deliberately preserved: the walk's rate
        selection (no epsilon) and boundary stepping (``1e-12`` epsilon)
        disagree at knife-edge wraps.  When float rounding leaves a wrapped
        time infinitesimally below a segment boundary — which happens
        systematically on traces whose timestamp spacing is not float-exact
        — the walk charges the entire following segment at the *previous*
        segment's rate.  (That skip is also what guarantees the walk's
        forward progress, so it cannot be "fixed" locally; the indexed
        :meth:`download_time_s` replaces the walk outright with the exact
        integral.)  On this repo's generated traces (integer-spaced
        timestamps) every boundary is float-exact and the two integrators
        agree to ~1e-13 relative.
        """
        require_positive(size_bytes, "size_bytes")
        require(start_time_s >= 0, "start_time_s must be >= 0")
        remaining_bits = size_bytes * 8.0
        now = float(start_time_s)
        elapsed = 0.0
        # Hard cap to avoid infinite loops on pathological inputs.
        max_iterations = 10_000_000
        for _ in range(max_iterations):
            bandwidth_mbps = max(
                self._bandwidth_at_reference(now), _MIN_BANDWIDTH_MBPS
            )
            rate_bits_per_s = bandwidth_mbps * 1e6
            boundary = self._next_boundary_after_reference(now)
            window = boundary - now
            deliverable = rate_bits_per_s * window
            if deliverable >= remaining_bits:
                return elapsed + remaining_bits / rate_bits_per_s
            remaining_bits -= deliverable
            elapsed += window
            now = boundary
        raise RuntimeError("download_time_s did not converge")

    def _duration_s_reference(self) -> float:
        """The seed ``duration_s`` property: recomputed on every call."""
        if self.timestamps_s.size == 1:
            return 1.0
        spacing = float(np.median(np.diff(self.timestamps_s)))
        return float(self.timestamps_s[-1]) + spacing

    def _bandwidth_at_reference(self, time_s: float) -> float:
        require(time_s >= 0, "time must be >= 0")
        wrapped = float(time_s) % self._duration_s_reference()
        index = int(np.searchsorted(self.timestamps_s, wrapped, side="right") - 1)
        index = max(0, index)
        return float(self.bandwidths_mbps[index])

    def _next_boundary_after_reference(self, time_s: float) -> float:
        wrapped = time_s % self._duration_s_reference()
        cycle_start = time_s - wrapped
        later = self.timestamps_s[self.timestamps_s > wrapped + 1e-12]
        if later.size:
            return cycle_start + float(later[0])
        return cycle_start + self._duration_s_reference()

    # ---------------------------------------------------------- transformations

    def scaled(self, ratio: float, name: Optional[str] = None) -> "ThroughputTrace":
        """Trace with every bandwidth multiplied by ``ratio`` (Figures 6, 12b)."""
        require_positive(ratio, "ratio")
        return replace(
            self,
            bandwidths_mbps=self.bandwidths_mbps * ratio,
            name=name or f"{self.name}*{ratio:g}",
        )

    def with_added_noise(
        self, sigma_mbps: float, seed: Optional[int] = None, name: Optional[str] = None
    ) -> "ThroughputTrace":
        """Trace with zero-mean Gaussian noise added to every sample (Fig. 17)."""
        require(sigma_mbps >= 0, "sigma must be >= 0")
        rng = rng_from_seed(seed)
        noisy = self.bandwidths_mbps + sigma_mbps * rng.standard_normal(
            self.bandwidths_mbps.size
        )
        noisy = np.maximum(noisy, _MIN_BANDWIDTH_MBPS)
        return replace(
            self,
            bandwidths_mbps=noisy,
            name=name or f"{self.name}+noise{sigma_mbps:g}",
        )

    def clipped_to_range(
        self, low_mbps: float, high_mbps: float
    ) -> "ThroughputTrace":
        """Trace with bandwidths clipped into [low, high] Mbps."""
        require(0 < low_mbps < high_mbps, "need 0 < low < high")
        return replace(
            self,
            bandwidths_mbps=np.clip(self.bandwidths_mbps, low_mbps, high_mbps),
        )

    def truncated(self, duration_s: float) -> "ThroughputTrace":
        """Trace truncated to the first ``duration_s`` seconds."""
        require_positive(duration_s, "duration_s")
        mask = self.timestamps_s < duration_s
        require(bool(np.any(mask)), "truncation removes every sample")
        return replace(
            self,
            timestamps_s=self.timestamps_s[mask],
            bandwidths_mbps=self.bandwidths_mbps[mask],
        )

    # -------------------------------------------------------------- persistence

    def to_dict(self) -> dict:
        """JSON-serialisable representation."""
        return {
            "name": self.name,
            "timestamps_s": self.timestamps_s.tolist(),
            "bandwidths_mbps": self.bandwidths_mbps.tolist(),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ThroughputTrace":
        """Inverse of :meth:`to_dict`."""
        return cls(
            timestamps_s=np.asarray(payload["timestamps_s"], dtype=float),
            bandwidths_mbps=np.asarray(payload["bandwidths_mbps"], dtype=float),
            name=str(payload.get("name", "trace")),
        )

    def save(self, path: Union[str, Path]) -> None:
        """Save the trace as JSON."""
        Path(path).write_text(json.dumps(self.to_dict()))

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ThroughputTrace":
        """Load a trace saved with :meth:`save`."""
        return cls.from_dict(json.loads(Path(path).read_text()))

    # ------------------------------------------------------------- constructors

    @classmethod
    def constant(
        cls, bandwidth_mbps: float, duration_s: float = 600.0, step_s: float = 1.0,
        name: str = "constant",
    ) -> "ThroughputTrace":
        """A constant-bandwidth trace (useful for tests and sanity checks)."""
        require_positive(bandwidth_mbps, "bandwidth_mbps")
        require_positive(duration_s, "duration_s")
        timestamps = np.arange(0.0, duration_s, step_s)
        return cls(
            timestamps_s=timestamps,
            bandwidths_mbps=np.full(timestamps.size, float(bandwidth_mbps)),
            name=name,
        )

    @classmethod
    def from_samples(
        cls,
        samples: Sequence[Tuple[float, float]],
        name: str = "trace",
    ) -> "ThroughputTrace":
        """Build a trace from (timestamp, bandwidth) pairs."""
        require(len(samples) >= 1, "need at least one sample")
        ts = np.array([s[0] for s in samples], dtype=float)
        bw = np.array([s[1] for s in samples], dtype=float)
        return cls(timestamps_s=ts, bandwidths_mbps=bw, name=name)
