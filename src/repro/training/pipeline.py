"""The end-to-end training pipeline behind ``python -m repro train``.

One call — :func:`train_policies` — reproduces what the old
``examples/train_pensieve.py`` script wired by hand: build an
:class:`~repro.experiments.common.ExperimentContext`, profile its videos,
train a base Pensieve and a SENSEI-Pensieve on scenario curricula, write
versioned checkpoints, then reload the best checkpoints and evaluate the
full ABR grid.

Every seed derives from the single pipeline ``seed`` (fixed offsets per
consumer), so two runs with the same seed/scale/backend produce the same
checkpoints — the same discipline
:class:`~repro.experiments.spec.ExperimentSpec` enforces for the figures.

On a single-core host :meth:`BatchRunner.auto` resolves to the lockstep
backend, which now covers rollout collection too: the collector routes
each round through the batched RL driver
(:func:`repro.engine.lockstep.run_rl_rollouts_lockstep`), stacking every
episode's actor forward into one matmul per decision round while per-spec
exploration seeds keep the experience — and therefore the checkpoints —
byte-identical to the serial and process backends (see
``BENCH_training.json``'s ``lockstep_collection`` section for the
measured speedup).
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from repro.abr.pensieve import PensieveABR, PensieveConfig
from repro.core.sensei_abr import make_sensei_pensieve
from repro.engine.runner import BatchRunner
from repro.faults.log import merge_counter_dicts
from repro.training.checkpoint import CheckpointStore
from repro.training.curriculum import CurriculumConfig, ScenarioCurriculum
from repro.training.trainer import Trainer, TrainerConfig, evaluate_policy

#: Gentle default rates: at small scales the default rates can collapse the
#: policy before the curriculum has shown it enough regimes.  The trainer's
#: best-checkpoint selection protects against late-run degradation either
#: way.
DEFAULT_TRAINING = TrainerConfig(
    rounds=12,
    episodes_per_round=8,
    eval_every=1,
    eval_episodes=6,
    actor_lr=1e-4,
    critic_lr=5e-4,
    entropy_weight=0.05,
    entropy_decay=0.95,
)


def _train_one(name, abr, curriculum, store, runner, oracle, config, verbose):
    """Train one policy, checkpoint it, and report its trajectory."""
    untrained_qoe = evaluate_policy(
        abr, curriculum.holdout_specs(config.eval_episodes),
        runner=runner, oracle=oracle,
    )
    trainer = Trainer(
        abr, curriculum, runner=runner, store=store, checkpoint_name=name,
        oracle=oracle, config=config,
    )
    result = trainer.train()
    if verbose:
        print(f"\n{name}: untrained held-out QoE {untrained_qoe:.3f}")
        for evaluation in result.evaluations:
            print(f"  round {int(evaluation['round']) + 1:2d}: "
                  f"mean QoE {evaluation['mean_qoe']:.3f}")
        print(f"  best {result.best_eval_qoe:.3f} (round {result.best_round + 1})"
              f"{' — stopped early' if result.stopped_early else ''};"
              f" checkpoints: {', '.join(sorted(set(result.checkpoints)))}")
    return {
        "untrained_holdout_qoe": float(untrained_qoe),
        "best_eval_qoe": float(result.best_eval_qoe),
        "best_round": int(result.best_round),
        "stopped_early": bool(result.stopped_early),
        "checkpoints": sorted(set(result.checkpoints)),
        "evaluations": [
            {key: float(value) for key, value in evaluation.items()}
            for evaluation in result.evaluations
        ],
    }


def train_policies(
    scale=None,
    seed: int = 7,
    checkpoint_root: Union[str, Path] = "checkpoints",
    runner: Optional[BatchRunner] = None,
    config: Optional[TrainerConfig] = None,
    verbose: bool = True,
) -> Dict[str, object]:
    """Train Pensieve + SENSEI-Pensieve, checkpoint both, evaluate the grid.

    Returns a dict with each policy's training trajectory, the checkpoint
    names written, and the mean true QoE of every algorithm on the final
    (checkpoint-backed) ABR grid.
    """
    from repro.experiments.abr_eval import _evaluate_grid
    from repro.experiments.common import ExperimentContext, ExperimentScale

    scale = scale if scale is not None else ExperimentScale.tiny()
    owns_runner = runner is None
    if runner is None:
        runner = BatchRunner.auto()
    if owns_runner and runner.backend == "process":
        # Training is many small collection rounds: a persistent pool pays
        # worker spawn once per run instead of once per round.  Closed in
        # the ``finally`` below.
        runner = BatchRunner(
            backend="process", max_workers=runner.max_workers,
            chunksize=runner.chunksize, persistent=True,
        )
    config = config if config is not None else DEFAULT_TRAINING
    try:
        context = ExperimentContext(
            scale=scale, seed=seed, checkpoint_root=checkpoint_root,
        )
        store = CheckpointStore(checkpoint_root)
        # Runner may be caller-owned and shared, so report this run's
        # fault-log delta, not lifetime totals.
        runner_faults_before = runner.fault_log.snapshot()
        if verbose:
            print(f"Videos: {', '.join(context.video_ids())}; "
                  f"traces: {', '.join(t.name for t in context.traces())}; "
                  f"backend: {runner.backend}")

        # Base Pensieve trains on unweighted rewards; SENSEI-Pensieve trains on
        # the same curriculum shape with sensitivity weights in state and reward.
        plain_curriculum = ScenarioCurriculum(
            context.videos(), context.traces(),
            config=CurriculumConfig(
                trace_duration_s=scale.trace_duration_s, seed=seed + 101,
            ),
        )
        sensei_curriculum = context.training_curriculum(
            config=CurriculumConfig(
                trace_duration_s=scale.trace_duration_s, seed=seed + 103,
            )
        )

        trajectories = {
            "pensieve": _train_one(
                "pensieve", PensieveABR(config=PensieveConfig(seed=seed + 111)),
                plain_curriculum, store, runner, context.oracle, config, verbose,
            ),
            "sensei-pensieve": _train_one(
                "sensei-pensieve", make_sensei_pensieve(seed=seed + 117),
                sensei_curriculum, store, runner, context.oracle, config, verbose,
            ),
        }

        # Round-trip: load the best checkpoints back and run the full ABR grid.
        context.load_trained_agents(
            store, pensieve="pensieve-best", sensei_pensieve="sensei-pensieve-best"
        )
        scores = _evaluate_grid(context, include_pensieve=True, runner=runner)
        grid = {
            name: float(np.mean(list(cells.values())))
            for name, cells in scores.items()
        }
        if verbose:
            print("\nABR grid with checkpointed policies (mean true QoE):")
            for name, mean_qoe in grid.items():
                print(f"  {name:16s} {mean_qoe:.3f}")
        return {
            "scale": scale.name,
            "seed": int(seed),
            "backend": runner.backend,
            "checkpoint_root": str(checkpoint_root),
            "policies": trajectories,
            "grid_mean_qoe": grid,
            "fault_log": merge_counter_dicts(
                runner.fault_log.since(runner_faults_before),
                store.fault_log.counters(),
            ),
        }
    finally:
        if owns_runner:
            runner.close()
