"""Checkpointed policies: versioned on-disk snapshots of trained agents.

A checkpoint is a directory ``<root>/<name>/`` holding

* ``state.npz``     — the agent's full learnable state (actor + critic
  parameters, both Adam optimisers' moments/steps, entropy weight), exactly
  the dict :meth:`~repro.ml.rl.ActorCriticAgent.state_dict` returns;
* ``metadata.json`` — the format version, the policy kind (which class to
  rebuild), the structural :class:`~repro.abr.pensieve.PensieveConfig`,
  the number of training episodes applied, a monotonically increasing save
  index, and any caller-supplied metrics.

Loading rebuilds the policy class registered under the saved kind and
restores the state dict, so a reloaded agent makes bit-identical decisions
*and* resumes training bit-identically (optimiser state included).  Loaded
policies drop straight into the experiment grids — see
:meth:`repro.experiments.common.ExperimentContext.install_trained_agents`.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from repro.abr.pensieve import PensieveABR, PensieveConfig
from repro.training.collector import build_policy
from repro.utils.validation import require

#: Bump when the on-disk layout changes incompatibly; loaders refuse newer
#: formats with a clear error instead of misreading them.
CHECKPOINT_FORMAT_VERSION = 1

_STATE_FILE = "state.npz"
_METADATA_FILE = "metadata.json"


@dataclass(frozen=True)
class CheckpointInfo:
    """What :meth:`CheckpointStore.save` returns and ``describe`` reports."""

    name: str
    path: Path
    kind: str
    trained_episodes: int
    save_index: int
    metrics: Dict[str, float]


def _config_to_jsonable(config: PensieveConfig) -> dict:
    payload = asdict(config)
    payload["hidden_dims"] = list(config.hidden_dims)
    payload["stall_actions_s"] = list(config.stall_actions_s)
    return payload


def _config_from_jsonable(payload: dict) -> PensieveConfig:
    return PensieveConfig(
        history_length=int(payload["history_length"]),
        num_levels=int(payload["num_levels"]),
        weight_horizon=int(payload["weight_horizon"]),
        stall_actions_s=tuple(float(s) for s in payload["stall_actions_s"]),
        hidden_dims=tuple(int(h) for h in payload["hidden_dims"]),
        seed=int(payload["seed"]),
    )


class CheckpointStore:
    """Saves and loads named policy checkpoints under one root directory."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------ save

    def save(
        self,
        abr: PensieveABR,
        name: str,
        metrics: Optional[Dict[str, float]] = None,
    ) -> CheckpointInfo:
        """Persist a policy under ``name`` (overwriting any previous save)."""
        require(bool(name) and "/" not in name and name not in (".", ".."),
                f"invalid checkpoint name {name!r}")
        directory = self.root / name
        directory.mkdir(parents=True, exist_ok=True)
        state = abr.agent.state_dict()
        np.savez(directory / _STATE_FILE, **state)
        metadata = {
            "format_version": CHECKPOINT_FORMAT_VERSION,
            "kind": abr.policy_kind,
            "config": _config_to_jsonable(abr.config),
            "trained_episodes": abr.trained_episodes,
            "save_index": self._next_save_index(),
            "metrics": dict(metrics or {}),
        }
        (directory / _METADATA_FILE).write_text(
            json.dumps(metadata, indent=2, sort_keys=True) + "\n"
        )
        return self._info(name, metadata)

    # ------------------------------------------------------------------ load

    def load(self, name: str) -> PensieveABR:
        """Rebuild the policy saved under ``name``."""
        metadata = self.metadata(name)
        version = int(metadata["format_version"])
        require(
            version <= CHECKPOINT_FORMAT_VERSION,
            f"checkpoint {name!r} has format version {version}; "
            f"this build reads up to {CHECKPOINT_FORMAT_VERSION}",
        )
        config = _config_from_jsonable(metadata["config"])
        abr = build_policy(metadata["kind"], config)
        with np.load(self.root / name / _STATE_FILE) as archive:
            state = {key: archive[key] for key in archive.files}
        abr.agent.load_state_dict(state)
        abr.record_training(int(metadata["trained_episodes"]))
        return abr

    def metadata(self, name: str) -> dict:
        """Raw metadata of a checkpoint."""
        path = self.root / name / _METADATA_FILE
        require(path.exists(), f"no checkpoint named {name!r} in {self.root}")
        return json.loads(path.read_text())

    def describe(self, name: str) -> CheckpointInfo:
        """Structured summary of a checkpoint."""
        return self._info(name, self.metadata(name))

    # ----------------------------------------------------------------- query

    def names(self) -> List[str]:
        """All checkpoint names, sorted alphabetically."""
        return sorted(
            path.parent.name for path in self.root.glob(f"*/{_METADATA_FILE}")
        )

    def latest(self) -> Optional[str]:
        """The most recently saved checkpoint name (by save index)."""
        names = self.names()
        if not names:
            return None
        return max(names, key=lambda name: self.metadata(name)["save_index"])

    # ------------------------------------------------------------- internals

    def _info(self, name: str, metadata: dict) -> CheckpointInfo:
        return CheckpointInfo(
            name=name,
            path=self.root / name,
            kind=str(metadata["kind"]),
            trained_episodes=int(metadata["trained_episodes"]),
            save_index=int(metadata["save_index"]),
            metrics=dict(metadata.get("metrics", {})),
        )

    def _next_save_index(self) -> int:
        indices = [self.metadata(name)["save_index"] for name in self.names()]
        return (max(indices) + 1) if indices else 0
