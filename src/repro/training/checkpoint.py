"""Checkpointed policies: versioned on-disk snapshots of trained agents.

A checkpoint is a directory ``<root>/<name>/`` holding

* ``state.npz``     — the agent's full learnable state (actor + critic
  parameters, both Adam optimisers' moments/steps, entropy weight), exactly
  the dict :meth:`~repro.ml.rl.ActorCriticAgent.state_dict` returns;
* ``metadata.json`` — the format version, the policy kind (which class to
  rebuild), the structural :class:`~repro.abr.pensieve.PensieveConfig`,
  the number of training episodes applied, a monotonically increasing save
  index, and any caller-supplied metrics.

Loading rebuilds the policy class registered under the saved kind and
restores the state dict, so a reloaded agent makes bit-identical decisions
*and* resumes training bit-identically (optimiser state included).  Loaded
policies drop straight into the experiment grids — see
:meth:`repro.experiments.common.ExperimentContext.install_trained_agents`.

Writes are crash-consistent: ``state.npz`` is serialised in memory and
published atomically, its digest is recorded as ``state_checksum`` in the
(checksummed, atomically written) metadata, and ``metadata.json`` always
lands *after* the state it describes.  A checkpoint that fails
verification on load cannot be recomputed (the training run is gone), so
it is quarantined under ``<root>/quarantine/`` and the load raises —
never a silently-wrong resume.
"""

from __future__ import annotations

import io
import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from repro.abr.pensieve import PensieveABR, PensieveConfig
from repro.faults.integrity import (
    QUARANTINE_DIR,
    atomic_write_bytes,
    atomic_write_text,
    attach_checksum,
    quarantine_file,
    sha256_hex,
    verify_checksum,
)
from repro.faults.log import FaultLog
from repro.training.collector import build_policy
from repro.utils.validation import require

#: Bump when the on-disk layout changes incompatibly; loaders refuse newer
#: formats with a clear error instead of misreading them.
CHECKPOINT_FORMAT_VERSION = 1

_STATE_FILE = "state.npz"
_METADATA_FILE = "metadata.json"


@dataclass(frozen=True)
class CheckpointInfo:
    """What :meth:`CheckpointStore.save` returns and ``describe`` reports."""

    name: str
    path: Path
    kind: str
    trained_episodes: int
    save_index: int
    metrics: Dict[str, float]


def _config_to_jsonable(config: PensieveConfig) -> dict:
    payload = asdict(config)
    payload["hidden_dims"] = list(config.hidden_dims)
    payload["stall_actions_s"] = list(config.stall_actions_s)
    return payload


def _config_from_jsonable(payload: dict) -> PensieveConfig:
    return PensieveConfig(
        history_length=int(payload["history_length"]),
        num_levels=int(payload["num_levels"]),
        weight_horizon=int(payload["weight_horizon"]),
        stall_actions_s=tuple(float(s) for s in payload["stall_actions_s"]),
        hidden_dims=tuple(int(h) for h in payload["hidden_dims"]),
        seed=int(payload["seed"]),
    )


class CheckpointStore:
    """Saves and loads named policy checkpoints under one root directory."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        #: Integrity accounting (quarantines) for this store's lifetime.
        self.fault_log = FaultLog()

    @property
    def quarantine_root(self) -> Path:
        """Where this store collects corrupt files (and reason records)."""
        return self.root / QUARANTINE_DIR

    # ------------------------------------------------------------------ save

    def save(
        self,
        abr: PensieveABR,
        name: str,
        metrics: Optional[Dict[str, float]] = None,
    ) -> CheckpointInfo:
        """Persist a policy under ``name`` (overwriting any previous save).

        ``state.npz`` is serialised in memory, published atomically, and
        its digest recorded in the metadata; the (checksummed) metadata is
        then published atomically too, *after* the state it describes.  A
        crash between the two leaves a checksum mismatch that load will
        quarantine loudly rather than a silently torn checkpoint.
        """
        require(bool(name) and "/" not in name and name not in (".", ".."),
                f"invalid checkpoint name {name!r}")
        directory = self.root / name
        directory.mkdir(parents=True, exist_ok=True)
        state = abr.agent.state_dict()
        buffer = io.BytesIO()
        np.savez(buffer, **state)
        state_bytes = buffer.getvalue()
        atomic_write_bytes(directory / _STATE_FILE, state_bytes)
        metadata = {
            "format_version": CHECKPOINT_FORMAT_VERSION,
            "kind": abr.policy_kind,
            "config": _config_to_jsonable(abr.config),
            "trained_episodes": abr.trained_episodes,
            "save_index": self._next_save_index(),
            "metrics": dict(metrics or {}),
            "state_checksum": f"sha256:{sha256_hex(state_bytes)}",
        }
        atomic_write_text(
            directory / _METADATA_FILE,
            json.dumps(attach_checksum(metadata), indent=2, sort_keys=True)
            + "\n",
        )
        return self._info(name, metadata)

    # ------------------------------------------------------------------ load

    def load(self, name: str) -> PensieveABR:
        """Rebuild the policy saved under ``name``.

        A checkpoint cannot be recomputed, so verification failures are
        terminal: the corrupt file is quarantined (with a reason record)
        and a :class:`ValueError` raised — resuming from rotten optimiser
        state would silently break the bit-identical-resume guarantee.
        """
        metadata = self.metadata(name)
        version = int(metadata["format_version"])
        require(
            version <= CHECKPOINT_FORMAT_VERSION,
            f"checkpoint {name!r} has format version {version}; "
            f"this build reads up to {CHECKPOINT_FORMAT_VERSION}",
        )
        config = _config_from_jsonable(metadata["config"])
        abr = build_policy(metadata["kind"], config)
        state_path = self.root / name / _STATE_FILE
        require(state_path.exists(),
                f"checkpoint {name!r} has no {_STATE_FILE} in {self.root}")
        state_bytes = state_path.read_bytes()
        recorded = metadata.get("state_checksum")
        if (recorded is not None
                and recorded != f"sha256:{sha256_hex(state_bytes)}"):
            quarantine_file(state_path, self.quarantine_root,
                            "checkpoint state checksum mismatch",
                            fault_log=self.fault_log)
            raise ValueError(
                f"checkpoint {name!r} failed state verification; the "
                f"corrupt {_STATE_FILE} was quarantined under "
                f"{self.quarantine_root}"
            )
        try:
            with np.load(io.BytesIO(state_bytes)) as archive:
                state = {key: archive[key] for key in archive.files}
        except (OSError, ValueError) as error:
            # Pre-integrity checkpoints carry no checksum, so a torn npz
            # can still reach np.load — same terminal treatment.
            quarantine_file(state_path, self.quarantine_root,
                            f"unreadable checkpoint state: "
                            f"{type(error).__name__}: {error}",
                            fault_log=self.fault_log)
            raise ValueError(
                f"checkpoint {name!r} state is unreadable ({error}); "
                f"quarantined under {self.quarantine_root}"
            ) from error
        abr.agent.load_state_dict(state)
        abr.record_training(int(metadata["trained_episodes"]))
        return abr

    def metadata(self, name: str) -> dict:
        """Raw metadata of a checkpoint (verified; corrupt metadata is
        quarantined and raises — a checkpoint is not recomputable)."""
        path = self.root / name / _METADATA_FILE
        require(path.exists(), f"no checkpoint named {name!r} in {self.root}")
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as error:
            quarantine_file(path, self.quarantine_root,
                            f"unreadable checkpoint metadata: "
                            f"{type(error).__name__}: {error}",
                            fault_log=self.fault_log)
            raise ValueError(
                f"checkpoint {name!r} metadata is unreadable ({error}); "
                f"quarantined under {self.quarantine_root}"
            ) from error
        if not verify_checksum(payload):
            quarantine_file(path, self.quarantine_root,
                            "checkpoint metadata checksum mismatch",
                            fault_log=self.fault_log)
            raise ValueError(
                f"checkpoint {name!r} failed metadata verification; "
                f"quarantined under {self.quarantine_root}"
            )
        return payload

    def describe(self, name: str) -> CheckpointInfo:
        """Structured summary of a checkpoint."""
        return self._info(name, self.metadata(name))

    # ----------------------------------------------------------------- query

    def names(self) -> List[str]:
        """All checkpoint names, sorted alphabetically."""
        return sorted(
            path.parent.name for path in self.root.glob(f"*/{_METADATA_FILE}")
        )

    def latest(self) -> Optional[str]:
        """The most recently saved checkpoint name (by save index)."""
        names = self.names()
        if not names:
            return None
        return max(names, key=lambda name: self.metadata(name)["save_index"])

    # ------------------------------------------------------------- internals

    def _info(self, name: str, metadata: dict) -> CheckpointInfo:
        return CheckpointInfo(
            name=name,
            path=self.root / name,
            kind=str(metadata["kind"]),
            trained_episodes=int(metadata["trained_episodes"]),
            save_index=int(metadata["save_index"]),
            metrics=dict(metadata.get("metrics", {})),
        )

    def _next_save_index(self) -> int:
        indices = [self.metadata(name)["save_index"] for name in self.names()]
        return (max(indices) + 1) if indices else 0
