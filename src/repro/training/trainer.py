"""The training loop: parallel collection, schedules, evaluation, stopping.

One :meth:`Trainer.train` call runs a sequence of synchronous rounds:

1. the curriculum emits this round's seeded episode specs;
2. the collector simulates them on the batch engine (serial or process
   backend — results are identical, see :mod:`repro.training.collector`);
3. the learner applies one policy-gradient update per episode, in spec
   order, under the round's entropy/learning-rate schedule;
4. periodically, the policy is evaluated greedily on the curriculum's
   held-out specs and checkpointed; training stops early when evaluation
   stops improving.

Everything downstream of the seeds is deterministic, so the same
:class:`TrainerConfig` produces the same checkpoint on every backend — the
guarantee ``tests/test_training.py`` locks in.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.abr.pensieve import PensieveABR
from repro.engine.runner import BatchRunner, WorkOrder
from repro.ml.rl import EpisodeBuffer
from repro.qoe.ground_truth import GroundTruthOracle
from repro.training.checkpoint import CheckpointStore
from repro.training.collector import PolicySnapshot, RolloutCollector
from repro.training.curriculum import EpisodeSpec, ScenarioCurriculum
from repro.utils.validation import require


@dataclass(frozen=True)
class TrainerConfig:
    """Knobs of one training run (see ``docs/TRAINING.md``).

    Attributes
    ----------
    rounds: synchronous training rounds.
    episodes_per_round: episodes collected (and applied) per round.
    eval_every: evaluate on the held-out specs every this many rounds
        (0 disables periodic evaluation; a final evaluation always runs).
    eval_episodes: held-out episodes per evaluation.
    early_stop_patience: stop after this many consecutive evaluations
        without improvement (0 disables early stopping).
    actor_lr / critic_lr: initial learning rates; ``None`` keeps the
        agent's configured rates.
    lr_decay: multiplicative learning-rate decay per round.
    entropy_weight: entropy-bonus coefficient at round 0.
    entropy_decay: multiplicative entropy decay per round.
    min_entropy_weight: floor of the entropy schedule.
    checkpoint_every: save ``<name>-round<k>`` every this many rounds
        (0 saves only the final checkpoint).
    """

    rounds: int = 6
    episodes_per_round: int = 8
    eval_every: int = 2
    eval_episodes: int = 6
    early_stop_patience: int = 0
    actor_lr: Optional[float] = None
    critic_lr: Optional[float] = None
    lr_decay: float = 1.0
    entropy_weight: float = 0.02
    entropy_decay: float = 0.9
    min_entropy_weight: float = 1e-3
    checkpoint_every: int = 0

    def __post_init__(self) -> None:
        require(self.rounds >= 1, "rounds must be >= 1")
        require(self.episodes_per_round >= 1, "episodes_per_round must be >= 1")
        require(self.eval_episodes >= 1, "eval_episodes must be >= 1")
        require(0 < self.lr_decay <= 1, "lr_decay must be in (0, 1]")
        require(0 < self.entropy_decay <= 1, "entropy_decay must be in (0, 1]")


@dataclass
class RoundStats:
    """Aggregated monitoring statistics of one training round."""

    round_index: int
    episodes: int
    mean_return: float
    policy_loss: float
    value_loss: float
    entropy: float
    entropy_weight: float
    actor_lr: float
    regimes: Dict[str, int] = field(default_factory=dict)


@dataclass
class TrainingResult:
    """What :meth:`Trainer.train` returns."""

    history: List[RoundStats]
    evaluations: List[Dict[str, float]]
    best_round: int
    best_eval_qoe: float
    final_eval_qoe: float
    stopped_early: bool
    checkpoints: List[str]
    episodes_trained: int


def evaluate_policy(
    abr: PensieveABR,
    specs: Sequence[EpisodeSpec],
    runner: Optional[BatchRunner] = None,
    oracle: Optional[GroundTruthOracle] = None,
) -> float:
    """Mean true QoE of the policy, acting greedily, over ``specs``.

    Sessions run through the batch engine on frozen policy copies (the live
    agent is never mutated), and the ground-truth oracle scores results in
    the calling process — the same scoring path the experiment grids use.
    """
    require(bool(specs), "need at least one evaluation spec")
    runner = runner if runner is not None else BatchRunner()
    oracle = oracle if oracle is not None else GroundTruthOracle()
    # One frozen copy serves every order: greedy decisions never mutate the
    # agent, the serial backend resets per session, and the process backend
    # pickles each order independently anyway.
    frozen = PolicySnapshot.of(abr).build()
    frozen.greedy = True
    orders = [
        WorkOrder(
            abr=frozen,
            encoded=spec.encoded,
            trace=spec.trace,
            chunk_weights=spec.chunk_weights,
        )
        for spec in specs
    ]
    results = runner.run_orders(orders)
    return float(np.mean([oracle.true_qoe(result.rendered) for result in results]))


class Trainer:
    """Trains a Pensieve-family policy on a scenario curriculum.

    Parameters
    ----------
    abr:
        The policy to train (:class:`~repro.abr.pensieve.PensieveABR` or
        :class:`~repro.core.sensei_abr.SenseiPensieveABR`), updated in
        place.
    curriculum:
        Episode source for training and held-out evaluation.
    runner:
        Batch-engine backend shared by collection and evaluation.
    store / checkpoint_name:
        Where checkpoints go; ``store=None`` disables checkpointing.
    oracle:
        Ground-truth QoE oracle used by held-out evaluation.
    config:
        Loop hyper-parameters.
    """

    def __init__(
        self,
        abr: PensieveABR,
        curriculum: ScenarioCurriculum,
        runner: Optional[BatchRunner] = None,
        store: Optional[CheckpointStore] = None,
        checkpoint_name: str = "policy",
        oracle: Optional[GroundTruthOracle] = None,
        config: Optional[TrainerConfig] = None,
    ) -> None:
        self.abr = abr
        self.curriculum = curriculum
        self.runner = runner if runner is not None else BatchRunner()
        self.store = store
        self.checkpoint_name = str(checkpoint_name)
        self.oracle = oracle if oracle is not None else GroundTruthOracle()
        self.config = config if config is not None else TrainerConfig()
        self.collector = RolloutCollector(runner=self.runner)
        self._holdout: Optional[List[EpisodeSpec]] = None

    # -------------------------------------------------------------- training

    def train(self) -> TrainingResult:
        """Run the configured number of rounds; returns the run summary."""
        cfg = self.config
        agent = self.abr.agent
        base_actor_lr = (
            cfg.actor_lr if cfg.actor_lr is not None else agent.learning_rates[0]
        )
        base_critic_lr = (
            cfg.critic_lr if cfg.critic_lr is not None else agent.learning_rates[1]
        )
        history: List[RoundStats] = []
        evaluations: List[Dict[str, float]] = []
        checkpoints: List[str] = []
        best_qoe = -np.inf
        best_round = -1
        rounds_since_best = 0
        stopped_early = False
        episodes_trained = 0

        for round_index in range(cfg.rounds):
            decay = cfg.lr_decay ** round_index
            actor_lr = base_actor_lr * decay
            critic_lr = base_critic_lr * decay
            agent.set_learning_rates(actor_lr, critic_lr)
            entropy_weight = max(
                cfg.min_entropy_weight,
                cfg.entropy_weight * cfg.entropy_decay ** round_index,
            )
            agent.set_entropy_weight(entropy_weight)

            specs = self.curriculum.training_specs(
                cfg.episodes_per_round, round_index=round_index
            )
            rollouts = self.collector.collect(self.abr, specs)
            round_stats: List[Dict[str, float]] = []
            regimes: Dict[str, int] = {}
            for rollout in rollouts:
                # The agent's own per-episode entropy decay is overridden by
                # the round-level schedule above; re-pin it so the update
                # rule inside a round is uniform.
                agent.set_entropy_weight(entropy_weight)
                episode = EpisodeBuffer.from_arrays(
                    rollout.states, rollout.actions, rollout.rewards
                )
                round_stats.append(agent.train_on_episode(episode))
                regimes[rollout.regime] = regimes.get(rollout.regime, 0) + 1
            self.abr.record_training(len(rollouts))
            episodes_trained += len(rollouts)
            history.append(
                RoundStats(
                    round_index=round_index,
                    episodes=len(rollouts),
                    mean_return=float(
                        np.mean([s["mean_return"] for s in round_stats])
                    ),
                    policy_loss=float(
                        np.mean([s["policy_loss"] for s in round_stats])
                    ),
                    value_loss=float(
                        np.mean([s["value_loss"] for s in round_stats])
                    ),
                    entropy=float(np.mean([s["entropy"] for s in round_stats])),
                    entropy_weight=entropy_weight,
                    actor_lr=actor_lr,
                    regimes=regimes,
                )
            )

            if (
                self.store is not None
                and cfg.checkpoint_every
                and (round_index + 1) % cfg.checkpoint_every == 0
            ):
                checkpoints.append(
                    self._save(f"{self.checkpoint_name}-round{round_index + 1:03d}")
                )

            evaluate_now = cfg.eval_every and (round_index + 1) % cfg.eval_every == 0
            if evaluate_now or round_index == cfg.rounds - 1:
                qoe = self.evaluate()
                evaluations.append(
                    {"round": float(round_index), "mean_qoe": qoe}
                )
                if qoe > best_qoe:
                    best_qoe = qoe
                    best_round = round_index
                    rounds_since_best = 0
                    if self.store is not None:
                        checkpoints.append(
                            self._save(f"{self.checkpoint_name}-best")
                        )
                else:
                    rounds_since_best += 1
                    if (
                        cfg.early_stop_patience
                        and rounds_since_best >= cfg.early_stop_patience
                    ):
                        stopped_early = True
                        break

        final_qoe = evaluations[-1]["mean_qoe"] if evaluations else self.evaluate()
        if self.store is not None:
            checkpoints.append(self._save(f"{self.checkpoint_name}-final"))
        return TrainingResult(
            history=history,
            evaluations=evaluations,
            best_round=best_round,
            best_eval_qoe=float(best_qoe),
            final_eval_qoe=float(final_qoe),
            stopped_early=stopped_early,
            checkpoints=checkpoints,
            episodes_trained=episodes_trained,
        )

    # ------------------------------------------------------------ evaluation

    def evaluate(self) -> float:
        """Greedy mean QoE on the curriculum's held-out specs."""
        if self._holdout is None:
            self._holdout = self.curriculum.holdout_specs(
                self.config.eval_episodes
            )
        return evaluate_policy(
            self.abr, self._holdout, runner=self.runner, oracle=self.oracle
        )

    # ------------------------------------------------------------- internals

    def _save(self, name: str) -> str:
        info = self.store.save(
            self.abr, name, metrics={"trained_episodes": self.abr.trained_episodes}
        )
        return info.name
