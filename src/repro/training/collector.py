"""Parallel experience collection on the batch engine.

Pensieve's A3C design runs many rollout workers against a shared learner.
The reproduction's equivalent is *synchronous*: each training round ships a
frozen :class:`PolicySnapshot` plus a shard of seeded
:class:`~repro.training.curriculum.EpisodeSpec`s to every worker, workers
simulate their episodes independently, and the learner applies all updates
in deterministic spec order.  Because an episode is a pure function of
(snapshot parameters, spec seed) — see
:meth:`~repro.ml.rl.ActorCriticAgent.reseed_exploration` — and the
:class:`~repro.engine.runner.BatchRunner` preserves submission order, the
serial and process backends produce byte-identical experience, and
therefore byte-identical trained policies.

A lockstep runner routes collection through the batched RL driver
(:func:`repro.engine.lockstep.run_rl_rollouts_lockstep`): the whole round's
episodes step together as one SoA shard, the actor forward runs once per
decision round across the batch, and each episode samples from its own
``rng_from_seed(spec.seed)`` stream — the same stream the serial
``reseed_exploration(spec.seed)`` discipline produces, so the experience
stays byte-identical across all three backends.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.abr.pensieve import PensieveABR, PensieveConfig
from repro.engine.runner import BatchRunner
from repro.obs.metrics import DEFAULT_SIZE_BUCKETS, get_registry
from repro.obs.trace import TRACE, trace_span
from repro.training.curriculum import EpisodeSpec
from repro.utils.validation import require


@dataclass
class PolicySnapshot:
    """A frozen, picklable copy of a policy: config + network parameters.

    Only what a worker needs to *act* is shipped — actor/critic parameters
    and the structural config.  Optimiser state stays with the learner.
    """

    kind: str
    config: PensieveConfig
    actor_state: Dict[str, np.ndarray]
    critic_state: Dict[str, np.ndarray]

    @classmethod
    def of(cls, abr: PensieveABR) -> "PolicySnapshot":
        """Snapshot a live policy."""
        return cls(
            kind=abr.policy_kind,
            config=abr.config,
            actor_state=abr.agent.actor.state_dict(),
            critic_state=abr.agent.critic.state_dict(),
        )

    def build(self) -> PensieveABR:
        """Materialise a fresh policy carrying the snapshot's parameters."""
        abr = build_policy(self.kind, self.config)
        abr.agent.actor.load_state_dict(self.actor_state)
        abr.agent.critic.load_state_dict(self.critic_state)
        return abr


def build_policy(kind: str, config: PensieveConfig) -> PensieveABR:
    """Construct the policy class registered under ``kind``."""
    # Imported here: repro.core imports repro.abr, so a module-level import
    # would be circular if core ever grew a training dependency.
    from repro.core.sensei_abr import SenseiPensieveABR

    classes = {
        PensieveABR.policy_kind: PensieveABR,
        SenseiPensieveABR.policy_kind: SenseiPensieveABR,
    }
    require(kind in classes, f"unknown policy kind {kind!r}")
    return classes[kind](config=config)


@dataclass
class EpisodeRollout:
    """One collected episode: stacked trajectory arrays plus bookkeeping.

    ``rewards`` are the per-decision rewards (sensitivity-weighted KSQI
    chunk scores); ``mean_reward`` summarises the episode for monitoring.
    """

    states: np.ndarray
    actions: np.ndarray
    rewards: np.ndarray
    regime: str
    seed: int

    @property
    def num_steps(self) -> int:
        return int(self.states.shape[0])

    @property
    def mean_reward(self) -> float:
        return float(np.mean(self.rewards)) if self.rewards.size else 0.0


@dataclass
class RolloutShard:
    """The unit of work shipped to one collector worker."""

    snapshot: PolicySnapshot
    specs: Tuple[EpisodeSpec, ...]


def collect_shard(shard: RolloutShard) -> List[EpisodeRollout]:
    """Simulate every episode of a shard (module-level: must pickle).

    Rebuilds the policy from the snapshot, then, for each spec, reseeds the
    exploration stream from the spec seed and streams the episode with the
    same player the evaluation uses.  Rewards are the quality model's chunk
    scores, reweighted by the spec's sensitivity weights (Eq. 4's training
    signal for SENSEI-Pensieve).
    """
    # simulate_session lives behind a lazy import for the same reason the
    # seed trainer's did: the player package imports the ABR base module.
    from repro.player.simulator import simulate_session

    abr = shard.snapshot.build()
    abr.greedy = False
    quality_model = abr.quality_model
    rollouts: List[EpisodeRollout] = []
    for spec in shard.specs:
        abr.agent.reseed_exploration(spec.seed)
        abr.begin_capture()
        result = simulate_session(
            abr, spec.encoded, spec.trace, chunk_weights=spec.chunk_weights
        )
        trajectory = abr.end_capture()
        rollouts.append(
            _rollout_from_trajectory(quality_model, spec, result, trajectory)
        )
    return rollouts


def _rollout_from_trajectory(
    quality_model, spec: EpisodeSpec, result, trajectory
) -> EpisodeRollout:
    """Package one episode's (state, action) pairs and rewards — shared by
    the serial/process and lockstep collection paths, so both ship
    identical :class:`EpisodeRollout`\\ s for identical inputs."""
    chunk_scores = quality_model.chunk_scores(result.rendered)
    if spec.chunk_weights is not None:
        chunk_scores = np.asarray(spec.chunk_weights, dtype=float) * chunk_scores
    require(
        len(trajectory) == chunk_scores.shape[0],
        "one decision per chunk expected",
    )
    states = np.stack([state for state, _ in trajectory])
    actions = np.asarray([action for _, action in trajectory], dtype=int)
    return EpisodeRollout(
        states=states,
        actions=actions,
        rewards=np.asarray(chunk_scores, dtype=float),
        regime=spec.regime,
        seed=spec.seed,
    )


def collect_shard_lockstep(shard: RolloutShard) -> List[EpisodeRollout]:
    """Simulate a shard's episodes through the lockstep batched RL driver.

    The lockstep counterpart of :func:`collect_shard`: one policy instance
    serves every episode (the batched driver never touches shared mutable
    agent state — see :class:`repro.engine.lockstep._RLDriver`), each
    episode's work order pins ``exploration_seed=spec.seed``, and the
    driver captures the ``(state, action)`` trajectories the scalar
    capture hook would have recorded.  Byte-identical to
    :func:`collect_shard` for the same specs and snapshot.
    """
    from repro.engine.lockstep import run_rl_rollouts_lockstep
    from repro.engine.runner import WorkOrder

    abr = shard.snapshot.build()
    abr.greedy = False
    quality_model = abr.quality_model
    orders = [
        WorkOrder(
            abr=abr,
            encoded=spec.encoded,
            trace=spec.trace,
            chunk_weights=spec.chunk_weights,
            exploration_seed=spec.seed,
        )
        for spec in shard.specs
    ]
    results, trajectories = run_rl_rollouts_lockstep(orders)
    return [
        _rollout_from_trajectory(quality_model, spec, result, trajectory)
        for spec, result, trajectory in zip(
            shard.specs, results, trajectories
        )
    ]


class RolloutCollector:
    """Shards episode specs over a :class:`BatchRunner` and merges in order.

    Parameters
    ----------
    runner:
        Execution backend; the default serial runner reproduces the pool
        results exactly (and vice versa).
    shard_size:
        Episodes per work order.  Larger shards amortise the per-order
        snapshot pickling on the process backend; 4 keeps orders small
        enough that a quick-scale round still spreads over all workers.
    """

    def __init__(
        self, runner: Optional[BatchRunner] = None, shard_size: int = 4
    ) -> None:
        require(shard_size >= 1, "shard_size must be >= 1")
        self.runner = runner if runner is not None else BatchRunner()
        self.shard_size = int(shard_size)

    def collect(
        self, abr: PensieveABR, specs: Sequence[EpisodeSpec]
    ) -> List[EpisodeRollout]:
        """Collect one episode per spec; results align with ``specs``.

        The policy is snapshotted once, so every shard acts with identical
        parameters no matter when its worker runs — the synchronous-A2C
        contract that makes results backend-independent.
        """
        specs = list(specs)
        if not specs:
            return []
        snapshot = PolicySnapshot.of(abr)
        if self.runner.backend == "lockstep":
            # In-process batched collection: one shard spanning the whole
            # round lets the lockstep RL driver stack every episode's
            # forward pass (per-spec seeds keep episodes independent of
            # the sharding, so results stay byte-identical).
            shards = [RolloutShard(snapshot=snapshot, specs=tuple(specs))]
            collect_fn = collect_shard_lockstep
        else:
            shards = [
                RolloutShard(
                    snapshot=snapshot,
                    specs=tuple(specs[start : start + self.shard_size]),
                )
                for start in range(0, len(specs), self.shard_size)
            ]
            collect_fn = collect_shard
        with trace_span("training.collect"):
            per_shard = self.runner.map_ordered(collect_fn, shards)
            merged: List[EpisodeRollout] = []
            for rollouts in per_shard:
                merged.extend(rollouts)
        if TRACE.enabled:
            registry = get_registry()
            registry.counter("training.episodes_collected").inc(len(merged))
            steps = registry.histogram(
                "training.episode_steps", DEFAULT_SIZE_BUCKETS
            )
            for rollout in merged:
                steps.observe(float(rollout.num_steps))
        return merged
