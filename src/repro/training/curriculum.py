"""Scenario curricula: which episodes a policy trains and evaluates on.

Pensieve's generalisation hinges on the diversity of the network conditions
it sees during training; the paper retrains the SENSEI-Pensieve variant on
the same trace mix it is evaluated under (§5.2, §7.1).  A
:class:`ScenarioCurriculum` samples :class:`EpisodeSpec`s — fully seeded
(video, trace, weights) work units — across four regimes:

* ``bank``      — the evaluation :class:`~repro.network.bank.TraceBank` mix
  (the distribution the policy is ultimately scored on);
* ``handover``  — Markov traces with frequent regime jumps, the cellular
  handover pattern that punishes slow-reacting policies;
* ``congestion``— traces that start healthy and collapse partway through
  (congestion onset), so the policy sees non-stationary conditions;
* ``cellular``  — scaled-down HSDPA-like traces pinned to the low-bandwidth
  band where bitrate decisions are hardest.

Every spec carries its own episode seed derived from (curriculum seed,
round, position), so a rollout worker can reproduce the episode with no
other context — the property the parallel collector's serial ≡ pool
guarantee rests on.  Held-out specs draw from a seed namespace disjoint
from every training round; they deliberately stay on the bank (evaluation)
distribution, so they measure progress on the target trace mix rather than
generalisation to unseen networks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.network.synthetic import (
    FCCLikeGenerator,
    HSDPALikeGenerator,
    MarkovTraceGenerator,
)
from repro.network.trace import ThroughputTrace
from repro.utils.rand import derive_seed, spawn_rng
from repro.utils.validation import require
from repro.video.encoder import EncodedVideo

#: The regimes a curriculum can mix, in canonical order.
REGIMES = ("bank", "handover", "congestion", "cellular")

#: Default regime mix: half on the evaluation distribution, half stress.
DEFAULT_REGIME_MIX: Dict[str, float] = {
    "bank": 0.5,
    "handover": 0.2,
    "congestion": 0.15,
    "cellular": 0.15,
}


@dataclass(frozen=True)
class EpisodeSpec:
    """One fully determined training or evaluation episode.

    Attributes
    ----------
    encoded: the video to stream.
    trace: the throughput trace to stream over.
    chunk_weights: per-chunk sensitivity weights (``None`` = uniform).
    seed: exploration seed; the episode is a pure function of (policy
        parameters, this seed).
    regime: which curriculum regime produced the spec.
    """

    encoded: EncodedVideo
    trace: ThroughputTrace
    chunk_weights: Optional[np.ndarray]
    seed: int
    regime: str = "bank"


def congestion_onset_trace(
    base: ThroughputTrace, onset_fraction: float = 0.4, ratio: float = 0.3
) -> ThroughputTrace:
    """A copy of ``base`` whose bandwidth collapses to ``ratio`` of itself
    after ``onset_fraction`` of the trace — the congestion-onset regime."""
    require(0 < onset_fraction < 1, "onset_fraction must be in (0, 1)")
    require(0 < ratio <= 1, "ratio must be in (0, 1]")
    timestamps = np.array(base.timestamps_s)
    bandwidths = np.array(base.bandwidths_mbps)
    onset_s = float(timestamps[-1]) * onset_fraction
    bandwidths = np.where(timestamps < onset_s, bandwidths, bandwidths * ratio)
    return ThroughputTrace(
        timestamps_s=timestamps,
        bandwidths_mbps=np.maximum(bandwidths, 0.05),
        name=f"{base.name}-congested",
    )


@dataclass(frozen=True)
class CurriculumConfig:
    """Knobs of a scenario curriculum (see ``docs/TRAINING.md``).

    Attributes
    ----------
    regime_mix: fraction of each round drawn from each regime; fractions
        are renormalised, regimes with weight 0 never appear.
    traces_per_regime: how many synthetic traces each stress regime keeps.
    trace_duration_s: duration of generated stress traces.
    congestion_onset_fraction / congestion_ratio: shape of the congestion
        regime's collapse.
    cellular_scale: scaling applied to HSDPA-like traces in the
        low-bandwidth cellular regime.
    seed: master seed; every episode seed is derived from it.
    """

    regime_mix: Tuple[Tuple[str, float], ...] = tuple(
        sorted(DEFAULT_REGIME_MIX.items())
    )
    traces_per_regime: int = 4
    trace_duration_s: float = 600.0
    congestion_onset_fraction: float = 0.4
    congestion_ratio: float = 0.3
    cellular_scale: float = 0.6
    seed: int = 29

    def __post_init__(self) -> None:
        mix = dict(self.regime_mix)
        require(bool(mix), "regime_mix must not be empty")
        for regime, weight in mix.items():
            require(regime in REGIMES, f"unknown regime {regime!r}")
            require(weight >= 0, "regime weights must be >= 0")
        require(sum(mix.values()) > 0, "regime_mix must have positive mass")
        require(self.traces_per_regime >= 1, "traces_per_regime must be >= 1")

    @property
    def mix(self) -> Dict[str, float]:
        """Normalised regime mix as a dict."""
        mix = {k: v for k, v in self.regime_mix if v > 0}
        total = sum(mix.values())
        return {k: v / total for k, v in mix.items()}


class ScenarioCurriculum:
    """Samples seeded episode specs across videos and trace regimes.

    Parameters
    ----------
    videos:
        Training videos (library entries or synthetic).
    bank_traces:
        The evaluation-distribution traces (``bank`` regime), typically
        :meth:`TraceBank.traces`.
    weights_by_video:
        Optional per-video sensitivity weights keyed by video id; episodes
        of videos absent from the map stream with uniform weights.
    config:
        Curriculum knobs; defaults to :class:`CurriculumConfig`.
    """

    def __init__(
        self,
        videos: Sequence[EncodedVideo],
        bank_traces: Sequence[ThroughputTrace],
        weights_by_video: Optional[Dict[str, np.ndarray]] = None,
        config: Optional[CurriculumConfig] = None,
    ) -> None:
        require(bool(videos), "need at least one training video")
        require(bool(bank_traces), "need at least one bank trace")
        self.videos = list(videos)
        self.bank_traces = list(bank_traces)
        self.weights_by_video = dict(weights_by_video or {})
        self.config = config if config is not None else CurriculumConfig()
        self._regime_traces: Dict[str, List[ThroughputTrace]] = {}

    # -------------------------------------------------------------- sampling

    def training_specs(self, count: int, round_index: int = 0) -> List[EpisodeSpec]:
        """``count`` episode specs for one training round.

        Deterministic in (curriculum seed, ``round_index``): two curricula
        built from the same inputs return identical spec lists, whichever
        process asks.  Regime counts follow the configured mix (largest
        remainders get the leftover episodes), and specs interleave regimes
        so truncated rounds still see diversity.
        """
        require(count >= 1, "count must be >= 1")
        mix = self.config.mix
        quotas = self._regime_quotas(count, mix)
        rng = spawn_rng(self.config.seed, "curriculum", round_index)
        per_regime: List[List[EpisodeSpec]] = []
        for regime in sorted(quotas):
            specs = []
            for position in range(quotas[regime]):
                specs.append(
                    self._spec(regime, rng, ("train", round_index, regime, position))
                )
            per_regime.append(specs)
        # Round-robin interleave so any prefix of the round mixes regimes.
        interleaved: List[EpisodeSpec] = []
        cursor = 0
        while len(interleaved) < count:
            progressed = False
            for specs in per_regime:
                if cursor < len(specs):
                    interleaved.append(specs[cursor])
                    progressed = True
            require(progressed, "internal: quota bookkeeping out of sync")
            cursor += 1
        return interleaved

    def holdout_specs(self, count: int) -> List[EpisodeSpec]:
        """Held-out evaluation specs on the bank distribution.

        Seeds live in a namespace disjoint from every training round, and
        the video/trace pairing cycles deterministically over the grid, so
        repeated evaluations score the same episodes.
        """
        require(count >= 1, "count must be >= 1")
        specs: List[EpisodeSpec] = []
        for position in range(count):
            encoded = self.videos[position % len(self.videos)]
            trace = self.bank_traces[
                (position // len(self.videos)) % len(self.bank_traces)
            ]
            specs.append(
                EpisodeSpec(
                    encoded=encoded,
                    trace=trace,
                    chunk_weights=self._weights(encoded),
                    seed=derive_seed(self.config.seed, "holdout", position),
                    regime="bank",
                )
            )
        return specs

    # ------------------------------------------------------------- internals

    def _spec(
        self, regime: str, rng: np.random.Generator, labels: Tuple
    ) -> EpisodeSpec:
        encoded = self.videos[int(rng.integers(0, len(self.videos)))]
        traces = self._traces_for(regime)
        trace = traces[int(rng.integers(0, len(traces)))]
        return EpisodeSpec(
            encoded=encoded,
            trace=trace,
            chunk_weights=self._weights(encoded),
            seed=derive_seed(self.config.seed, *labels),
            regime=regime,
        )

    def _weights(self, encoded: EncodedVideo) -> Optional[np.ndarray]:
        return self.weights_by_video.get(encoded.source.video_id)

    def _regime_quotas(self, count: int, mix: Dict[str, float]) -> Dict[str, int]:
        """Integer episode counts per regime (largest-remainder rounding)."""
        raw = {regime: count * weight for regime, weight in mix.items()}
        quotas = {regime: int(value) for regime, value in raw.items()}
        leftover = count - sum(quotas.values())
        by_remainder = sorted(
            raw, key=lambda regime: (raw[regime] - quotas[regime], regime),
            reverse=True,
        )
        for regime in by_remainder[:leftover]:
            quotas[regime] += 1
        return {regime: quota for regime, quota in quotas.items() if quota > 0}

    def _traces_for(self, regime: str) -> List[ThroughputTrace]:
        """The (cached) trace pool of a regime."""
        if regime == "bank":
            return self.bank_traces
        if regime not in self._regime_traces:
            cfg = self.config
            count = cfg.traces_per_regime
            if regime == "handover":
                generator = MarkovTraceGenerator(
                    capacity_levels_mbps=(0.3, 0.7, 1.3, 2.2, 3.3, 4.5),
                    switch_probability=0.18,
                    noise_sigma=0.3,
                    seed=derive_seed(cfg.seed, "handover"),
                )
                traces = generator.generate_many(
                    count, cfg.trace_duration_s, prefix="handover"
                )
            elif regime == "congestion":
                generator = FCCLikeGenerator(
                    seed=derive_seed(cfg.seed, "congestion")
                )
                healthy = generator.generate_many(
                    count, cfg.trace_duration_s, prefix="congestion"
                )
                traces = [
                    congestion_onset_trace(
                        trace,
                        onset_fraction=cfg.congestion_onset_fraction,
                        ratio=cfg.congestion_ratio,
                    )
                    for trace in healthy
                ]
            elif regime == "cellular":
                generator = HSDPALikeGenerator(
                    seed=derive_seed(cfg.seed, "cellular")
                )
                traces = [
                    trace.scaled(cfg.cellular_scale)
                    for trace in generator.generate_many(
                        count, cfg.trace_duration_s, prefix="cellular"
                    )
                ]
            else:  # pragma: no cover - guarded by CurriculumConfig
                raise ValueError(f"unknown regime {regime!r}")
            self._regime_traces[regime] = traces
        return self._regime_traces[regime]
