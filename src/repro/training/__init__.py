"""Parallel RL training subsystem: the layer between the batch simulation
engine and the experiment suite.

The paper's learned policies (Pensieve and its SENSEI augmentation, §5.2)
"must be (re)trained like Pensieve"; this package provides that training at
engine scale:

* :mod:`repro.training.curriculum` — :class:`ScenarioCurriculum`, seeded
  episode sampling across the evaluation trace bank and synthetic stress
  regimes (handover, congestion onset, low-bandwidth cellular);
* :mod:`repro.training.collector`  — :class:`RolloutCollector`, sharded
  experience collection on :class:`~repro.engine.runner.BatchRunner` with a
  serial ≡ process-pool equivalence guarantee;
* :mod:`repro.training.trainer`    — :class:`Trainer`, the synchronous
  learning loop with entropy/LR schedules, held-out evaluation and early
  stopping;
* :mod:`repro.training.checkpoint` — :class:`CheckpointStore`, versioned
  on-disk policy snapshots that round-trip into the experiment grids.

See ``docs/TRAINING.md`` for the architecture.
"""

from __future__ import annotations

from repro.training.checkpoint import (
    CHECKPOINT_FORMAT_VERSION,
    CheckpointInfo,
    CheckpointStore,
)
from repro.training.collector import (
    EpisodeRollout,
    PolicySnapshot,
    RolloutCollector,
    RolloutShard,
    build_policy,
    collect_shard,
)
from repro.training.curriculum import (
    CurriculumConfig,
    EpisodeSpec,
    REGIMES,
    ScenarioCurriculum,
    congestion_onset_trace,
)
from repro.training.pipeline import DEFAULT_TRAINING, train_policies
from repro.training.trainer import (
    RoundStats,
    Trainer,
    TrainerConfig,
    TrainingResult,
    evaluate_policy,
)

__all__ = [
    "CHECKPOINT_FORMAT_VERSION",
    "DEFAULT_TRAINING",
    "train_policies",
    "CheckpointInfo",
    "CheckpointStore",
    "CurriculumConfig",
    "EpisodeRollout",
    "EpisodeSpec",
    "PolicySnapshot",
    "REGIMES",
    "RolloutCollector",
    "RolloutShard",
    "RoundStats",
    "ScenarioCurriculum",
    "Trainer",
    "TrainerConfig",
    "TrainingResult",
    "build_policy",
    "collect_shard",
    "congestion_onset_trace",
    "evaluate_policy",
]
