"""``python -m repro``: the unified experiment CLI.

See :mod:`repro.experiments.cli` for the subcommands
(``list`` / ``run`` / ``report`` / ``train``).
"""

from repro.experiments.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
