"""The experiment registry: one discoverable catalogue, one ``run`` path.

Figure functions register themselves with the :func:`experiment` decorator
and keep working as plain module-level calls (the pre-registry entry
points are thin shims over the same functions).  Everything else — the
``python -m repro`` CLI, benchmarks, examples — goes through

::

    run(ExperimentSpec(experiment="fig12a", scale="quick", seed=7))

which builds the :class:`~repro.experiments.common.ExperimentContext` from
the spec (single seed, chosen backend, checkpoint store), consults the
:class:`~repro.experiments.results.ArtifactStore` for a cached
:class:`~repro.experiments.results.ResultSet` first, wires the finished-cell
cache into grid sweeps, and stamps provenance metadata on the way out.
"""

from __future__ import annotations

import inspect
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.engine.report import (
    environment_fingerprint,
    git_revision,
    phases_from_snapshot,
    utc_now_iso,
)
from repro.engine.runner import BatchRunner
from repro.experiments.common import ExperimentContext, checkpoint_fingerprint
from repro.experiments.results import ArtifactStore, ResultSet, RESULTSET_FORMAT_VERSION
from repro.experiments.spec import ExperimentSpec
from repro.faults.log import merge_counter_dicts
from repro.obs.metrics import diff_snapshots, get_registry
from repro.obs.trace import TRACE
from repro.utils.validation import require

#: Modules whose import populates the registry (figure functions register
#: at import time via the decorator).
_EXPERIMENT_MODULES = (
    "repro.experiments.sensitivity",
    "repro.experiments.qoe_models",
    "repro.experiments.abr_eval",
    "repro.experiments.showcase",
)


@dataclass(frozen=True)
class ExperimentDef:
    """One registered experiment.

    Attributes
    ----------
    name: CLI-facing name (``fig12a``, ``quickstart``, …).
    fn: the implementation, called as ``fn(context, **params)``.
    group: catalogue section (``sensitivity``/``qoe``/``abr``/``demo``).
    figures: the paper figures/tables the experiment reproduces.
    description: one-line summary (defaults to the docstring's first line).
    supports_pensieve: whether ``include_pensieve`` applies.
    always_uses_checkpoints: the experiment evaluates trained policies
        unconditionally (no ``include_pensieve`` knob), so its cache
        identity must always cover the checkpoint fingerprint.
    cacheable: uncacheable experiments (interactive demos that narrate to
        stdout) always recompute and never persist artifacts.
    """

    name: str
    fn: Callable[..., Dict[str, object]]
    group: str = "misc"
    figures: Tuple[str, ...] = ()
    description: str = ""
    supports_pensieve: bool = False
    always_uses_checkpoints: bool = False
    cacheable: bool = True


_REGISTRY: Dict[str, ExperimentDef] = {}


def experiment(
    name: str,
    group: str = "misc",
    figures: Tuple[str, ...] = (),
    description: str = "",
    supports_pensieve: bool = False,
    always_uses_checkpoints: bool = False,
    cacheable: bool = True,
) -> Callable:
    """Decorator registering ``fn(context, **params)`` as an experiment.

    The function itself is returned unchanged, so the historical
    module-level call style (``abr_eval.fig12a_qoe_gain_cdf(context)``)
    keeps working as a shim over the registered implementation.
    """

    def decorate(fn: Callable) -> Callable:
        require(name not in _REGISTRY, f"duplicate experiment name {name!r}")
        doc = (inspect.getdoc(fn) or "").strip().splitlines()
        _REGISTRY[name] = ExperimentDef(
            name=name,
            fn=fn,
            group=group,
            figures=tuple(figures),
            description=description or (doc[0] if doc else ""),
            supports_pensieve=supports_pensieve,
            always_uses_checkpoints=always_uses_checkpoints,
            cacheable=cacheable,
        )
        fn.experiment_name = name
        return fn

    return decorate


def _ensure_loaded() -> None:
    import importlib

    for module in _EXPERIMENT_MODULES:
        importlib.import_module(module)


def experiment_names() -> List[str]:
    """All registered experiment names, sorted."""
    _ensure_loaded()
    return sorted(_REGISTRY)


def get_experiment(name: str) -> ExperimentDef:
    """Look an experiment up by name (with a helpful error)."""
    _ensure_loaded()
    require(
        name in _REGISTRY,
        f"unknown experiment {name!r}; run `python -m repro list` "
        f"(registered: {', '.join(sorted(_REGISTRY))})",
    )
    return _REGISTRY[name]


def registry() -> List[ExperimentDef]:
    """Every registered experiment, sorted by (group, name)."""
    _ensure_loaded()
    return sorted(_REGISTRY.values(), key=lambda d: (d.group, d.name))


# ------------------------------------------------------------------ execution

def _runner_for(spec: ExperimentSpec, **knobs) -> BatchRunner:
    """The runner a spec implies; ``knobs`` are fault-tolerance overrides
    (``shard_timeout_s``, ``max_shard_retries``) that stay out of the spec
    — execution policy must never perturb a spec hash."""
    if spec.backend == "auto":
        return BatchRunner.auto(max_workers=spec.max_workers, **knobs)
    return BatchRunner(
        backend=spec.backend, max_workers=spec.max_workers, **knobs
    )


def context_for(spec: ExperimentSpec, runner: Optional[BatchRunner] = None) -> ExperimentContext:
    """The :class:`ExperimentContext` a spec describes — every knob (scale,
    seed, backend, checkpoints) comes from the spec, nowhere else."""
    return ExperimentContext(
        scale=spec.resolve_scale(),
        seed=spec.seed,
        runner=runner if runner is not None else _runner_for(spec),
        checkpoint_root=spec.checkpoint_root,
    )


def _validate_params(defn: ExperimentDef, params: Dict[str, object]) -> None:
    signature = inspect.signature(defn.fn)
    accepts_kwargs = any(
        p.kind is inspect.Parameter.VAR_KEYWORD
        for p in signature.parameters.values()
    )
    if accepts_kwargs:
        return
    accepted = [name for name in signature.parameters if name != "context"]
    unknown = sorted(set(params) - set(accepted))
    require(
        not unknown,
        f"experiment {defn.name!r} does not accept params {unknown}; "
        f"accepted: {accepted}",
    )


def _pensieve_default(defn: ExperimentDef) -> bool:
    """The experiment function's own ``include_pensieve`` default."""
    parameter = inspect.signature(defn.fn).parameters.get("include_pensieve")
    if parameter is None or parameter.default is inspect.Parameter.empty:
        return False
    return bool(parameter.default)


def _uses_checkpoints(defn: ExperimentDef, params: Dict[str, object]) -> bool:
    """Whether this run will resolve trained policies (and therefore must
    carry the checkpoint fingerprint in its cache identity)."""
    if defn.always_uses_checkpoints:
        return True
    if not defn.supports_pensieve:
        return False
    if "include_pensieve" in params:
        return bool(params["include_pensieve"])
    return _pensieve_default(defn)


def run(
    spec: ExperimentSpec,
    store: Optional[ArtifactStore] = None,
    force: bool = False,
    runner: Optional[BatchRunner] = None,
) -> ResultSet:
    """Execute one spec and return its :class:`ResultSet`.

    With a ``store``, a previously persisted result for the same spec hash
    is returned as-is (``cache_hit=True``) unless ``force`` is set, and
    grid sweeps resume from finished cells of any earlier (even
    interrupted) run sharing the spec's context hash.  Without a store the
    run is purely in-memory.
    """
    defn = get_experiment(spec.experiment)
    params = spec.params_dict()
    if defn.supports_pensieve and spec.include_pensieve is not None:
        params["include_pensieve"] = spec.include_pensieve
    _validate_params(defn, params)

    # Normalise the spec's cache identity before any lookup.  Checkpoint-
    # using runs are addressed by what they would *load*, not just the root
    # path — retraining changes the checkpoint digests and therefore the
    # hash, so stale artifacts/cells are recomputed, never served.
    # Conversely, fields an experiment cannot observe are dropped, so e.g.
    # `table1 --checkpoints DIR --exclude-pensieve` still hits the plain
    # `table1` artifact, and `fig12a` with the default and an explicit
    # `--exclude-pensieve` share one.
    wants_checkpoints = _uses_checkpoints(defn, params)
    if defn.supports_pensieve:
        # Canonical slot for the flag is the spec field: a `--set
        # include_pensieve=...` param override and `--include-pensieve`
        # must address the same artifact, and None collapses to the
        # function's own default.
        effective_pensieve = bool(
            params.get("include_pensieve", _pensieve_default(defn))
        )
        spec_params = spec.params_dict()
        spec_params.pop("include_pensieve", None)
        if (
            spec.include_pensieve != effective_pensieve
            or len(spec_params) != len(spec.params)
        ):
            spec = spec.with_(
                include_pensieve=effective_pensieve, params=spec_params
            )
    elif spec.include_pensieve is not None:
        spec = spec.with_(include_pensieve=None)
    if wants_checkpoints:
        if spec.checkpoint_fingerprint is None:
            spec = spec.with_(
                checkpoint_fingerprint=checkpoint_fingerprint(
                    spec.checkpoint_root
                )
            )
    elif spec.checkpoint_root is not None or spec.checkpoint_fingerprint is not None:
        spec = spec.with_(checkpoint_root=None, checkpoint_fingerprint=None)

    if store is not None and defn.cacheable and not force:
        cached = store.load(spec)
        if cached is not None:
            return cached

    context = context_for(spec, runner=runner)
    if store is not None and defn.cacheable:
        # --force recomputes every cell but still repairs the cache.
        context.cell_cache = store.cell_cache(spec, read=not force)

    # Runner and store fault logs may be shared across runs (persistent
    # runner, long-lived store), so stamp this run's *delta*, not the
    # lifetime totals.
    runner_faults_before = context.runner.fault_log.snapshot()
    store_faults_before = (
        store.fault_log.snapshot() if store is not None else None
    )

    metrics_before = get_registry().snapshot() if TRACE.enabled else None

    started_at = utc_now_iso()
    started = time.perf_counter()
    data = defn.fn(context, **params)
    wall_time_s = time.perf_counter() - started
    require(
        isinstance(data, dict),
        f"experiment {defn.name!r} must return a dict, got {type(data).__name__}",
    )

    fault_deltas = [context.runner.fault_log.since(runner_faults_before)]
    if store is not None:
        fault_deltas.append(store.fault_log.since(store_faults_before))
    result = ResultSet(
        experiment=defn.name,
        spec=spec,
        data=data,
        meta={
            "format_version": RESULTSET_FORMAT_VERSION,
            "figures": list(defn.figures),
            "scale": spec.scale,
            "seed": spec.seed,
            "backend": context.runner.backend,
            "started_at": started_at,
            "duration_s": round(wall_time_s, 6),
            "wall_time_s": round(wall_time_s, 6),
            "git_revision": git_revision(),
            "environment": environment_fingerprint(),
            "trained_agent_sources": dict(context.trained_agent_sources),
            "fault_log": merge_counter_dicts(*fault_deltas),
        },
    )
    if metrics_before is not None:
        # Fold this run's fault deltas into the registry, then stamp the
        # phase breakdown of everything the span tracer saw during the run.
        context.runner.fault_log.publish_metrics()
        if store is not None:
            store.fault_log.publish_metrics()
        run_metrics = diff_snapshots(metrics_before, get_registry().snapshot())
        phases = phases_from_snapshot(run_metrics)
        if phases:
            result.meta["phases"] = phases
    if store is not None and defn.cacheable:
        store.save(result)
    return result


def run_named(name: str, **spec_fields) -> ResultSet:
    """Convenience shim: ``run_named("fig12a", scale="quick")``."""
    return run(ExperimentSpec(experiment=name, **spec_fields))
