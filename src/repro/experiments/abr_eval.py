"""End-to-end ABR experiments: Figures 6, 12a, 12b, 13, 14, 17, 18 and the
headline §7.2 numbers."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.abr.offline import OfflineOptimalABR
from repro.engine.runner import BatchRunner, WorkOrder
from repro.experiments.common import ExperimentContext
from repro.experiments.registry import experiment
from repro.qoe.ksqi import KSQIModel
from repro.utils.stats import cdf_points
from repro.video.encoder import EncodedVideo


# --------------------------------------------------------------------------
# Figure 6: idealised (offline) sensitivity-aware vs -unaware ABR.
# --------------------------------------------------------------------------

@experiment("fig06", group="abr", figures=("6",))
def fig06_potential_gains(
    context: ExperimentContext,
    video_ids: Optional[Sequence[str]] = None,
    trace_index: int = 1,
    scaling_ratios: Sequence[float] = (0.2, 0.4, 0.6, 0.8, 1.0),
    beam_width: int = 24,
) -> Dict[str, object]:
    """Figure 6: QoE of two offline-optimal ABRs (aware / unaware of dynamic
    sensitivity) as the throughput trace is rescaled."""
    video_ids = list(video_ids or context.video_ids()[:2])
    base_trace = context.traces()[min(trace_index, len(context.traces()) - 1)]
    aware_curve: List[float] = []
    unaware_curve: List[float] = []
    throughputs: List[float] = []
    for ratio in scaling_ratios:
        trace = base_trace.scaled(ratio)
        throughputs.append(trace.mean_mbps)
        aware_scores, unaware_scores = [], []
        for video_id in video_ids:
            encoded = context.library.encoded(video_id)
            truth_weights = context.oracle.normalized_sensitivity(encoded.source)
            unaware = OfflineOptimalABR(
                quality_model=KSQIModel(), beam_width=beam_width
            )
            aware = OfflineOptimalABR(
                quality_model=KSQIModel(),
                weights=truth_weights,
                allow_proactive_stalls=True,
                beam_width=beam_width,
            )
            unaware_scores.append(
                context.oracle.true_qoe(unaware.plan(encoded, trace))
            )
            aware_scores.append(context.oracle.true_qoe(aware.plan(encoded, trace)))
        aware_curve.append(float(np.mean(aware_scores)))
        unaware_curve.append(float(np.mean(unaware_scores)))
    gains = [
        (a - u) / max(u, 1e-9) for a, u in zip(aware_curve, unaware_curve)
    ]
    return {
        "scaling_ratios": list(scaling_ratios),
        "mean_throughputs_mbps": throughputs,
        "aware_qoe": aware_curve,
        "unaware_qoe": unaware_curve,
        "relative_gains": gains,
        "max_gain": max(gains),
    }


# --------------------------------------------------------------------------
# Figures 12a/13/14 and the headline numbers: gains over BBA.
# --------------------------------------------------------------------------

def _evaluate_grid(
    context: ExperimentContext,
    include_pensieve: bool = False,
    runner: Optional[BatchRunner] = None,
) -> Dict[str, Dict[Tuple[str, str], float]]:
    """True QoE of each ABR on every (video, trace) pair.

    The whole grid is dispatched through the batch engine: work orders are
    built in the seed's (video, trace, algorithm) nesting order, executed by
    ``runner`` (the context's runner by default — serial unless configured
    otherwise), and scored by the oracle in the parent process.

    When the registry attached a finished-cell cache to the context
    (``context.cell_cache``), cells already scored by an earlier run of the
    same (scale, seed, checkpoints) context are reused instead of
    re-simulated, and every freshly scored cell is persisted — an
    interrupted grid resumes where it stopped.
    """
    runner = runner if runner is not None else context.runner
    cache = getattr(context, "cell_cache", None)
    # Factories, not instances: the RL policies (the expensive ones — ad-hoc
    # training when no checkpoint exists) only materialise when some cell of
    # theirs actually misses the cache.
    algorithms: Dict[str, Tuple[Callable[[], object], bool]] = {
        "BBA": (context.make_bba, False),
        "Fugu": (context.make_fugu, False),
        "SENSEI": (context.make_sensei_fugu, True),
    }
    cell_suffix: Dict[str, str] = {}
    if include_pensieve:
        algorithms["Pensieve"] = (context.trained_pensieve, False)
        algorithms["SENSEI-Pensieve"] = (context.trained_sensei_pensieve, True)
        # RL cells embed the policy's provenance (checkpoint name + save
        # index, or ad-hoc training), so cached cells from one checkpoint
        # generation are never served for another.
        cell_suffix["Pensieve"] = (
            "/" + context.trained_policy_provenance("pensieve")
        )
        cell_suffix["SENSEI-Pensieve"] = (
            "/" + context.trained_policy_provenance("sensei-pensieve")
        )
    instances: Dict[str, object] = {}
    scores: Dict[str, Dict[Tuple[str, str], float]] = {
        name: {} for name in algorithms
    }
    keys: List[Tuple[str, str, str, str]] = []
    orders: List[WorkOrder] = []
    for encoded in context.videos():
        video_id = encoded.source.video_id
        for trace in context.traces():
            for name, (factory, use_weights) in algorithms.items():
                cell_key = (
                    f"grid/{name}/{video_id}/{trace.name}"
                    f"{cell_suffix.get(name, '')}"
                )
                cached = cache.get(cell_key) if cache is not None else None
                # Insert the cell slot now (even when pending) so score-dict
                # iteration order always matches the seed nesting order,
                # whether a cell was resumed from cache or freshly computed.
                scores[name][(video_id, trace.name)] = (
                    float(cached) if cached is not None else None
                )
                if cached is not None:
                    continue
                if name not in instances:
                    instances[name] = factory()
                weights = context.weights(video_id) if use_weights else None
                keys.append((name, video_id, trace.name, cell_key))
                orders.append(
                    WorkOrder(
                        abr=instances[name], encoded=encoded, trace=trace,
                        chunk_weights=weights,
                    )
                )
    results = runner.run_orders(orders)
    for (name, video_id, trace_name, cell_key), result in zip(keys, results):
        qoe = context.oracle.true_qoe(result.rendered)
        scores[name][(video_id, trace_name)] = qoe
        if cache is not None:
            cache.put(cell_key, qoe)
    return scores


@experiment("fig12a", group="abr", figures=("12a",), supports_pensieve=True)
def fig12a_qoe_gain_cdf(
    context: ExperimentContext, include_pensieve: bool = False
) -> Dict[str, object]:
    """Figure 12a: CDF of per-(video, trace) QoE gain over BBA."""
    scores = _evaluate_grid(context, include_pensieve=include_pensieve)
    baseline = scores["BBA"]
    gains: Dict[str, List[float]] = {}
    for name, values in scores.items():
        if name == "BBA":
            continue
        gains[name] = [
            context.gain_over(values[key], max(baseline[key], 1e-3))
            for key in values
        ]
    summary = {}
    for name, values in gains.items():
        xs, cdf = cdf_points(values)
        summary[name] = {
            "gains": values,
            "cdf": (xs.tolist(), cdf.tolist()),
            "median_gain": float(np.median(values)),
            "mean_gain": float(np.mean(values)),
        }
    return {"per_algorithm": summary, "num_pairs": len(baseline)}


@experiment("fig13", group="abr", figures=("13",))
def fig13_gain_per_video(context: ExperimentContext) -> Dict[str, object]:
    """Figure 13: mean QoE gain over BBA per source video, grouped by genre."""
    scores = _evaluate_grid(context)
    rows = []
    for encoded in context.videos():
        video_id = encoded.source.video_id
        per_algo = {}
        for name in ("SENSEI", "Fugu"):
            gains = [
                context.gain_over(
                    scores[name][(video_id, trace.name)],
                    max(scores["BBA"][(video_id, trace.name)], 1e-3),
                )
                for trace in context.traces()
            ]
            per_algo[name] = float(np.mean(gains))
        rows.append(
            {
                "video_id": video_id,
                "genre": encoded.source.genre,
                **{f"{name}_gain": value for name, value in per_algo.items()},
            }
        )
    return {"rows": rows}


@experiment("fig14", group="abr", figures=("14",))
def fig14_gain_per_trace(context: ExperimentContext) -> Dict[str, object]:
    """Figure 14: mean QoE gain over BBA per trace (ordered by throughput)."""
    scores = _evaluate_grid(context)
    rows = []
    for trace in context.traces():
        per_algo = {}
        for name in ("SENSEI", "Fugu"):
            gains = [
                context.gain_over(
                    scores[name][(encoded.source.video_id, trace.name)],
                    max(scores["BBA"][(encoded.source.video_id, trace.name)], 1e-3),
                )
                for encoded in context.videos()
            ]
            per_algo[name] = float(np.mean(gains))
        rows.append(
            {
                "trace": trace.name,
                "mean_throughput_mbps": trace.mean_mbps,
                **{f"{name}_gain": value for name, value in per_algo.items()},
            }
        )
    low_half = rows[: max(1, len(rows) // 2)]
    high_half = rows[len(rows) // 2:] or low_half
    return {
        "rows": rows,
        "sensei_gain_low_throughput": float(
            np.mean([r["SENSEI_gain"] for r in low_half])
        ),
        "sensei_gain_high_throughput": float(
            np.mean([r["SENSEI_gain"] for r in high_half])
        ),
    }


@experiment("headline", group="abr", figures=("§7.2",))
def headline_numbers(context: ExperimentContext) -> Dict[str, object]:
    """§7.2 headline: mean QoE gain of SENSEI over its base ABR and over BBA."""
    scores = _evaluate_grid(context)
    keys = list(scores["BBA"].keys())
    sensei = np.array([scores["SENSEI"][k] for k in keys])
    fugu = np.array([scores["Fugu"][k] for k in keys])
    bba = np.maximum(np.array([scores["BBA"][k] for k in keys]), 1e-3)
    return {
        "mean_qoe": {
            "SENSEI": float(sensei.mean()),
            "Fugu": float(fugu.mean()),
            "BBA": float(bba.mean()),
        },
        "sensei_gain_over_base_mean": float(np.mean(sensei / np.maximum(fugu, 1e-3) - 1)),
        "sensei_gain_over_bba_median": float(np.median(sensei / bba - 1)),
        "fugu_gain_over_bba_median": float(np.median(fugu / bba - 1)),
    }


# --------------------------------------------------------------------------
# Figure 12b: QoE vs bandwidth usage (bandwidth savings at equal QoE).
# --------------------------------------------------------------------------

@experiment("fig12b", group="abr", figures=("12b",))
def fig12b_bandwidth_usage(
    context: ExperimentContext,
    trace_index: int = 2,
    scaling_ratios: Sequence[float] = (0.4, 0.6, 0.8, 1.0),
) -> Dict[str, object]:
    """Figure 12b: mean QoE as the available bandwidth is scaled down.

    The bandwidth saving at equal QoE is read off the two curves: the ratio
    at which SENSEI reaches the QoE the baseline only reaches at full scale.
    """
    base_trace = context.traces()[min(trace_index, len(context.traces()) - 1)]
    curves: Dict[str, List[float]] = {"SENSEI": [], "Fugu": [], "BBA": []}
    for ratio in scaling_ratios:
        trace = base_trace.scaled(ratio)
        for name in curves:
            qoe_values = []
            for encoded in context.videos():
                if name == "SENSEI":
                    abr, use_weights = context.make_sensei_fugu(), True
                elif name == "Fugu":
                    abr, use_weights = context.make_fugu(), False
                else:
                    abr, use_weights = context.make_bba(), False
                qoe_values.append(
                    context.stream_qoe(abr, encoded, trace, use_weights=use_weights)
                )
            curves[name].append(float(np.mean(qoe_values)))

    target_qoe = curves["Fugu"][-1]
    savings = 0.0
    for ratio, qoe in zip(scaling_ratios, curves["SENSEI"]):
        if qoe >= target_qoe:
            savings = 1.0 - ratio
            break
    return {
        "scaling_ratios": list(scaling_ratios),
        "curves": curves,
        "bandwidth_saving_at_equal_qoe": savings,
    }


# --------------------------------------------------------------------------
# Figure 17: robustness to added throughput variance.
# --------------------------------------------------------------------------

@experiment("fig17", group="abr", figures=("17",), supports_pensieve=True)
def fig17_bandwidth_variance(
    context: ExperimentContext,
    trace_index: int = 2,
    noise_levels_mbps: Sequence[float] = (0.0, 0.3, 0.6, 1.0),
    include_pensieve: bool = False,
) -> Dict[str, object]:
    """Figure 17: QoE of SENSEI vs its base ABR as Gaussian throughput noise
    grows (the paper adds zero-mean noise to one trace)."""
    base_trace = context.traces()[min(trace_index, len(context.traces()) - 1)]
    pairs = [("Fugu", context.make_fugu, False),
             ("SENSEI-Fugu", context.make_sensei_fugu, True)]
    if include_pensieve:
        pairs += [
            ("Pensieve", context.trained_pensieve, False),
            ("SENSEI-Pensieve", context.trained_sensei_pensieve, True),
        ]
    curves: Dict[str, List[float]] = {name: [] for name, _, _ in pairs}
    stds: List[float] = []
    for sigma in noise_levels_mbps:
        trace = base_trace.with_added_noise(sigma, seed=context.seed + 91)
        stds.append(trace.std_kbps)
        for name, factory, use_weights in pairs:
            qoe_values = [
                context.stream_qoe(
                    factory(), encoded, trace, use_weights=use_weights
                )
                for encoded in context.videos()
            ]
            curves[name].append(float(np.mean(qoe_values)))
    return {
        "throughput_std_kbps": stds,
        "curves": curves,
    }


# --------------------------------------------------------------------------
# Figure 18: where SENSEI's gains come from.
# --------------------------------------------------------------------------

@experiment("fig18a", group="abr", figures=("18a",), always_uses_checkpoints=True)
def fig18a_base_abr_comparison(context: ExperimentContext) -> Dict[str, object]:
    """Figure 18a: gain over BBA when SENSEI is applied to Fugu vs Pensieve."""
    scores = _evaluate_grid(context, include_pensieve=True)
    keys = list(scores["BBA"].keys())
    bba = np.maximum(np.array([scores["BBA"][k] for k in keys]), 1e-3)

    def mean_gain(name: str) -> float:
        values = np.array([scores[name][k] for k in keys])
        return float(np.mean(values / bba - 1))

    return {
        "fugu": {"base": mean_gain("Fugu"), "sensei": mean_gain("SENSEI")},
        "pensieve": {
            "base": mean_gain("Pensieve"),
            "sensei": mean_gain("SENSEI-Pensieve"),
        },
    }


@experiment("fig18b", group="abr", figures=("18b",))
def fig18b_gain_breakdown(context: ExperimentContext) -> Dict[str, object]:
    """Figure 18b: decomposing SENSEI's gain into (1) the reweighted QoE
    objective (bitrate adaptation only) and (2) the new proactive-stall
    action (full SENSEI)."""
    from repro.core.sensei_abr import SenseiFuguABR

    bitrate_only = SenseiFuguABR(stall_options_s=(0.0,))
    arms = {
        "base_abr_with_ksqi": (context.make_fugu(), False),
        "only_bitrate_adaptation": (bitrate_only, True),
        "full_sensei": (context.make_sensei_fugu(), True),
    }
    bba_scores = []
    arm_scores: Dict[str, List[float]] = {name: [] for name in arms}
    for encoded in context.videos():
        for trace in context.traces():
            bba_scores.append(
                context.stream_qoe(context.make_bba(), encoded, trace)
            )
            for name, (abr, use_weights) in arms.items():
                arm_scores[name].append(
                    context.stream_qoe(abr, encoded, trace, use_weights=use_weights)
                )
    bba_arr = np.maximum(np.array(bba_scores), 1e-3)
    return {
        name: float(np.mean(np.array(values) / bba_arr - 1))
        for name, values in arm_scores.items()
    }
