"""Declarative experiment specifications.

An :class:`ExperimentSpec` is the single, serialisable description of one
experiment run: which registered experiment, at which scale, with which
seed, checkpoints and parameter overrides.  Every entry point — the
``python -m repro`` CLI, the benchmark harness, the examples — reduces to
building a spec and handing it to :func:`repro.experiments.registry.run`.

Two hashes matter:

* :meth:`ExperimentSpec.spec_hash` — the content address of the run's
  *results*.  It covers everything that can change the output data
  (experiment, scale, seed, pensieve inclusion, checkpoint root, params)
  and deliberately excludes pure execution knobs (``backend``,
  ``max_workers``): the batch engine guarantees serial ≡ process, so the
  same spec run on either backend must hit the same cached
  :class:`~repro.experiments.results.ResultSet`.
* :meth:`ExperimentSpec.context_hash` — the address of reusable grid
  *cells*.  Individual (algorithm, video, trace) QoE cells depend only on
  how the :class:`~repro.experiments.common.ExperimentContext` was built
  (scale, seed, checkpoint root), not on which figure asked for them, so
  figures that sweep the same grid share finished cells.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields, replace
from typing import Callable, Dict, List, Optional, Tuple

from repro.experiments.common import ExperimentScale
from repro.utils.validation import require

#: Execution backends a spec may request; ``auto`` picks process pools on
#: multi-core hosts and the lockstep core otherwise (see
#: :meth:`repro.engine.runner.BatchRunner.auto`).  Results are identical on
#: every backend (lockstep and process are bit-identical to serial), which
#: is why ``spec_hash`` excludes the backend.
SPEC_BACKENDS = ("serial", "process", "lockstep", "auto")

# --------------------------------------------------------------- scale presets

_SCALE_PRESETS: Dict[str, Callable[[], ExperimentScale]] = {
    "quick": ExperimentScale.quick,
    "full": ExperimentScale.full,
    "tiny": ExperimentScale.tiny,
}


def register_scale(name: str, factory: Callable[[], ExperimentScale]) -> None:
    """Register a named scale preset usable from any spec or the CLI."""
    require(bool(name), "scale name must be non-empty")
    _SCALE_PRESETS[name] = factory


def scale_names() -> List[str]:
    """All registered scale preset names."""
    return sorted(_SCALE_PRESETS)


def resolve_scale(name: str) -> ExperimentScale:
    """Materialise a scale preset by name."""
    require(
        name in _SCALE_PRESETS,
        f"unknown scale {name!r}; registered scales: {', '.join(scale_names())}",
    )
    return _SCALE_PRESETS[name]()


# ------------------------------------------------------------------- freezing

class _DictTag:
    """Unforgeable marker distinguishing frozen dicts from frozen lists.

    A singleton instance (never JSON-serialisable, so no user value can
    collide with it) tags frozen dicts as ``(_DICT, ((key, value), ...))``
    and lets :func:`_jsonable` thaw them back to dicts, not pair lists.
    """

    __slots__ = ()

    def __repr__(self) -> str:
        return "<frozen-dict>"


_DICT = _DictTag()


def _freeze(value):
    """Recursively convert ``value`` into a hashable, canonical form.

    Idempotent: already-frozen values (which contain the ``_DictTag``
    sentinel) pass through unchanged, so ``dataclasses.replace`` — which
    re-runs ``__post_init__`` on the frozen params — is safe.
    """
    if isinstance(value, _DictTag):
        return value
    if isinstance(value, dict):
        return (
            _DICT,
            tuple(sorted((str(k), _freeze(v)) for k, v in value.items())),
        )
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise TypeError(
        f"spec params must be JSON-like (str/int/float/bool/None/list/dict); "
        f"got {type(value).__name__}"
    )


def _jsonable(value):
    """Frozen form back to plain JSON types (dicts and lists restored)."""
    if isinstance(value, tuple):
        if len(value) == 2 and value[0] is _DICT:
            return {key: _jsonable(v) for key, v in value[1]}
        return [_jsonable(v) for v in value]
    return value


@dataclass(frozen=True)
class ExperimentSpec:
    """One declarative experiment run.

    Attributes
    ----------
    experiment:
        Name of a registered experiment (see ``python -m repro list``).
    scale:
        Name of a registered scale preset (``quick``/``full``/``tiny``/…).
    seed:
        The *single* seed every artefact of the run derives from — the
        context, trace bank, profiling campaigns and trained agents all key
        off it, so identical specs are bit-identical end to end.
    backend / max_workers:
        Execution knobs for the :class:`~repro.engine.runner.BatchRunner`;
        excluded from :meth:`spec_hash` because results do not depend on
        them.
    include_pensieve:
        Override the experiment's default for including RL policies
        (``None`` keeps the experiment's default).
    checkpoint_root:
        Directory of the :class:`~repro.training.checkpoint.CheckpointStore`
        the context loads trained policies from (``None`` = the default
        ``checkpoints/`` next to the working directory, when present).
    checkpoint_fingerprint:
        Content fingerprint of the checkpoints a run would load (checkpoint
        names + metadata digests).  Callers leave it ``None``;
        :func:`repro.experiments.registry.run` stamps it on checkpoint-using
        specs before cache lookup, so retraining invalidates cached results
        instead of silently serving artifacts of the old policies.
    params:
        Keyword overrides passed to the experiment function; stored frozen
        (dicts/lists become tagged/plain tuples) so specs are hashable.
    """

    experiment: str
    scale: str = "quick"
    seed: int = 7
    backend: str = "serial"
    max_workers: Optional[int] = None
    include_pensieve: Optional[bool] = None
    checkpoint_root: Optional[str] = None
    checkpoint_fingerprint: Optional[str] = None
    params: Tuple[Tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        require(bool(self.experiment), "spec needs an experiment name")
        require(
            self.backend in SPEC_BACKENDS,
            f"backend must be one of {SPEC_BACKENDS}, got {self.backend!r}",
        )
        params = self.params
        if isinstance(params, dict):
            params = tuple(
                sorted((str(k), _freeze(v)) for k, v in params.items())
            )
        else:
            params = tuple((str(k), _freeze(v)) for k, v in params)
        object.__setattr__(self, "params", params)
        object.__setattr__(self, "seed", int(self.seed))

    # ------------------------------------------------------------- accessors

    def params_dict(self) -> Dict[str, object]:
        """Params as a plain keyword dict (frozen tuples back to lists)."""
        return {key: _jsonable(value) for key, value in self.params}

    def resolve_scale(self) -> ExperimentScale:
        """The materialised :class:`ExperimentScale` preset."""
        return resolve_scale(self.scale)

    def with_(self, **changes) -> "ExperimentSpec":
        """A copy of this spec with fields replaced."""
        return replace(self, **changes)

    # ----------------------------------------------------------- serialisation

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable representation (round-trips via
        :meth:`from_dict`)."""
        return {
            "experiment": self.experiment,
            "scale": self.scale,
            "seed": self.seed,
            "backend": self.backend,
            "max_workers": self.max_workers,
            "include_pensieve": self.include_pensieve,
            "checkpoint_root": self.checkpoint_root,
            "checkpoint_fingerprint": self.checkpoint_fingerprint,
            "params": self.params_dict(),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ExperimentSpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        known = {f.name for f in fields(cls)}
        unknown = set(payload) - known
        require(not unknown, f"unknown spec fields: {sorted(unknown)}")
        return cls(**payload)

    # ----------------------------------------------------------------- hashes

    def _hash_payload(self) -> Dict[str, object]:
        payload = self.to_dict()
        # Execution knobs never change results (serial ≡ process), so they
        # must not change the content address either.
        payload.pop("backend")
        payload.pop("max_workers")
        return payload

    def spec_hash(self) -> str:
        """Content address of this spec's results (16 hex chars)."""
        canonical = json.dumps(self._hash_payload(), sort_keys=True)
        return hashlib.sha256(canonical.encode()).hexdigest()[:16]

    def context_hash(self) -> str:
        """Content address of the context's reusable grid cells: scale and
        seed only — nothing figure-specific, so figures sweeping the same
        grid share cells.  Checkpoint state is deliberately excluded: base
        (BBA/Fugu/SENSEI) cells cannot observe it, and RL cells embed the
        loaded policy's provenance digest in their own keys."""
        canonical = json.dumps(
            {"scale": self.scale, "seed": self.seed}, sort_keys=True
        )
        return hashlib.sha256(canonical.encode()).hexdigest()[:16]
