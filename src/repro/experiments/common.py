"""Shared experiment context: videos, traces, oracle, profiles, ABR factories.

Experiments run at two scales:

* ``quick`` — a subset of videos/traces with reduced rating counts, sized so
  the whole benchmark suite finishes in minutes on a laptop;
* ``full``  — the paper's full grid (16 videos × 10 traces, 30+ ratings),
  for overnight runs.

The context caches sensitivity profiles and trained agents so that multiple
figures reuse the same (expensive) artefacts, exactly as the paper's
evaluation reuses one profiling pass per video.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.abr.base import ABRAlgorithm
from repro.abr.bba import BufferBasedABR
from repro.abr.fugu import FuguABR
from repro.abr.pensieve import PensieveABR, PensieveConfig, PensieveTrainer
from repro.core.profiler import SenseiProfiler
from repro.core.qoe_model import SenseiQoEModel
from repro.core.scheduler import SchedulerConfig
from repro.core.sensei_abr import SenseiFuguABR, SenseiPensieveABR, make_sensei_pensieve
from repro.core.weights import SensitivityProfile
from repro.engine.runner import BatchRunner
from repro.network.bank import TraceBank
from repro.network.trace import ThroughputTrace
from repro.player.simulator import simulate_session
from repro.qoe.ground_truth import GroundTruthOracle
from repro.qoe.ksqi import KSQIModel
from repro.utils.validation import require
from repro.video.encoder import EncodedVideo
from repro.video.library import VideoLibrary


@dataclass(frozen=True)
class ExperimentScale:
    """How big an experiment run is.

    Attributes
    ----------
    num_videos: how many of the 16 catalogue videos to use.
    num_traces: how many evaluation traces to use.
    step1_ratings / step2_ratings: rating multiplicities for profiling.
    pensieve_episodes: training episodes for the RL agents.
    trace_duration_s: length of generated traces.
    """

    name: str
    num_videos: int
    num_traces: int
    step1_ratings: int = 10
    step2_ratings: int = 5
    pensieve_episodes: int = 80
    trace_duration_s: float = 900.0

    @classmethod
    def quick(cls) -> "ExperimentScale":
        """Laptop/benchmark scale."""
        return cls(
            name="quick",
            num_videos=4,
            num_traces=4,
            step1_ratings=8,
            step2_ratings=4,
            pensieve_episodes=40,
            trace_duration_s=900.0,
        )

    @classmethod
    def full(cls) -> "ExperimentScale":
        """The paper's grid (16 videos × 10 traces)."""
        return cls(
            name="full",
            num_videos=16,
            num_traces=10,
            step1_ratings=10,
            step2_ratings=5,
            pensieve_episodes=300,
            trace_duration_s=1500.0,
        )

    @classmethod
    def tiny(cls) -> "ExperimentScale":
        """Smoke-test scale: seconds, not minutes (CI and quick demos)."""
        return cls(
            name="tiny",
            num_videos=2,
            num_traces=3,
            step1_ratings=4,
            step2_ratings=2,
            pensieve_episodes=8,
            trace_duration_s=400.0,
        )


def resolve_checkpoint_store(
    checkpoint_root: Optional[Union[str, Path]] = None,
) -> Optional["CheckpointStore"]:
    """Resolve the checkpoint store experiments load policies from.

    Resolution order: the explicit ``checkpoint_root`` argument, the
    ``REPRO_CHECKPOINTS`` environment variable, then a ``checkpoints/``
    directory under the working directory.  Returns ``None`` when the
    resolved root does not exist (a store is never created implicitly).
    """
    root = checkpoint_root
    if root is None:
        env_root = os.environ.get("REPRO_CHECKPOINTS")
        root = Path(env_root) if env_root else Path("checkpoints")
    if not Path(root).is_dir():
        return None
    from repro.training.checkpoint import CheckpointStore

    return CheckpointStore(root)


def _checkpoint_digest(metadata: dict) -> str:
    """Digest of one checkpoint's metadata (config, trained episodes, save
    index, metrics).  Content-based — unlike a bare save index it cannot
    collide when a store is deleted and rebuilt from scratch — while two
    bit-identical training runs still share it (and their cached cells)."""
    canonical = json.dumps(metadata, sort_keys=True)
    return hashlib.sha256(canonical.encode()).hexdigest()[:12]


def checkpoint_fingerprint(
    checkpoint_root: Optional[Union[str, Path]] = None,
) -> str:
    """Content fingerprint of the checkpoints a run would load: every
    checkpoint name with its metadata digest.  Part of the cache identity
    of checkpoint-using specs — retraining changes the digests, so stale
    artifacts are recomputed instead of silently served."""
    store = resolve_checkpoint_store(checkpoint_root)
    if store is None:
        return "no-store"
    parts = [
        f"{name}@{_checkpoint_digest(store.metadata(name))}"
        for name in store.names()
    ]
    return ";".join(parts) if parts else "empty-store"


class ExperimentContext:
    """Caches the artefacts every experiment needs."""

    def __init__(
        self,
        scale: Optional[ExperimentScale] = None,
        seed: int = 7,
        oracle: Optional[GroundTruthOracle] = None,
        runner: Optional[BatchRunner] = None,
        checkpoint_root: Optional[Union[str, Path]] = None,
    ) -> None:
        self.scale = scale if scale is not None else ExperimentScale.quick()
        self.seed = int(seed)
        self.runner = runner if runner is not None else BatchRunner()
        self.library = VideoLibrary(seed=seed)
        self.oracle = oracle if oracle is not None else GroundTruthOracle()
        self.trace_bank = TraceBank(
            num_traces=self.scale.num_traces,
            duration_s=self.scale.trace_duration_s,
            seed=seed + 1,
        )
        self.checkpoint_root = (
            Path(checkpoint_root) if checkpoint_root is not None else None
        )
        #: Optional :class:`~repro.experiments.results.CellCache` the
        #: registry attaches so grid sweeps resume from finished cells.
        self.cell_cache = None
        #: Where each RL policy came from: ``checkpoint:<name>`` /
        #: ``installed`` / ``ad-hoc-training`` (provenance for ResultSets).
        self.trained_agent_sources: Dict[str, str] = {}
        self._profiles: Dict[str, SensitivityProfile] = {}
        self._profiler: Optional[SenseiProfiler] = None
        self._trained_pensieve: Optional[PensieveABR] = None
        self._trained_sensei_pensieve: Optional[SenseiPensieveABR] = None

    # ------------------------------------------------------------- inventory

    def video_ids(self) -> List[str]:
        """The video ids used at this scale (a prefix of the catalogue that
        always spans all four genres)."""
        preferred = [
            "soccer1", "fps1", "animal", "lava",          # one per genre
            "basket1", "tank", "space", "girl",
            "soccer2", "fps2", "mountain", "bigbuckbunny",
            "basket2", "discus", "wrestling", "motor",
        ]
        return preferred[: self.scale.num_videos]

    def videos(self) -> List[EncodedVideo]:
        """Encoded videos used at this scale."""
        return [self.library.encoded(video_id) for video_id in self.video_ids()]

    def traces(self) -> List[ThroughputTrace]:
        """Evaluation traces, ordered by increasing mean throughput."""
        return self.trace_bank.traces()

    # --------------------------------------------------------------- profiling

    def profiler(self) -> SenseiProfiler:
        """The (cached) profiler used for every video."""
        if self._profiler is None:
            self._profiler = SenseiProfiler(
                oracle=self.oracle,
                scheduler_config=SchedulerConfig(
                    step1_ratings=self.scale.step1_ratings,
                    step2_ratings=self.scale.step2_ratings,
                ),
                campaign_seed=self.seed + 11,
            )
        return self._profiler

    def profile(self, video_id: str) -> SensitivityProfile:
        """Sensitivity profile for a video, profiled on first use and cached."""
        if video_id not in self._profiles:
            encoded = self.library.encoded(video_id)
            result = self.profiler().profile_video(encoded)
            self._profiles[video_id] = result.profile
        return self._profiles[video_id]

    def weights(self, video_id: str) -> np.ndarray:
        """Per-chunk weights of a video."""
        return self.profile(video_id).weights

    def weights_by_video(self) -> Dict[str, np.ndarray]:
        """Weights for every video at this scale."""
        return {video_id: self.weights(video_id) for video_id in self.video_ids()}

    def sensei_qoe_model(self) -> SenseiQoEModel:
        """A SENSEI QoE model loaded with this context's profiles."""
        model = SenseiQoEModel(base_model=KSQIModel())
        for video_id in self.video_ids():
            model.add_profile(self.profile(video_id))
        return model

    # --------------------------------------------------------------- ABR zoo

    def make_bba(self) -> BufferBasedABR:
        """Fresh BBA instance."""
        return BufferBasedABR()

    def make_fugu(self) -> FuguABR:
        """Fresh Fugu instance."""
        return FuguABR()

    def make_sensei_fugu(self) -> SenseiFuguABR:
        """Fresh SENSEI-Fugu instance."""
        return SenseiFuguABR()

    def training_curriculum(self, config=None) -> "ScenarioCurriculum":
        """A scenario curriculum over this context's videos, traces and
        (profiled) weights — the episode source for the training subsystem.

        ``config`` is an optional
        :class:`~repro.training.curriculum.CurriculumConfig`.
        """
        from repro.training.curriculum import ScenarioCurriculum

        return ScenarioCurriculum(
            videos=self.videos(),
            bank_traces=self.traces(),
            weights_by_video=self.weights_by_video(),
            config=config,
        )

    def install_trained_agents(
        self,
        pensieve: Optional[PensieveABR] = None,
        sensei_pensieve: Optional[SenseiPensieveABR] = None,
    ) -> None:
        """Adopt externally trained policies (e.g. loaded checkpoints).

        Installed agents are what :meth:`trained_pensieve` /
        :meth:`trained_sensei_pensieve` return, so every figure that takes
        ``include_pensieve=True`` evaluates the installed policies instead
        of training ad hoc ones.
        """
        if pensieve is not None:
            require(
                isinstance(pensieve, PensieveABR)
                and not isinstance(pensieve, SenseiPensieveABR),
                "pensieve must be a (non-SENSEI) PensieveABR",
            )
            self._trained_pensieve = pensieve
            self.trained_agent_sources.setdefault("pensieve", "installed")
        if sensei_pensieve is not None:
            require(
                isinstance(sensei_pensieve, SenseiPensieveABR),
                "sensei_pensieve must be a SenseiPensieveABR",
            )
            self._trained_sensei_pensieve = sensei_pensieve
            self.trained_agent_sources.setdefault(
                "sensei-pensieve", "installed"
            )

    def load_trained_agents(
        self,
        store: "CheckpointStore",
        pensieve: Optional[str] = None,
        sensei_pensieve: Optional[str] = None,
    ) -> None:
        """Load checkpoints by name from a
        :class:`~repro.training.checkpoint.CheckpointStore` and install them
        into this context's ABR grids."""
        self.install_trained_agents(
            pensieve=store.load(pensieve) if pensieve is not None else None,
            sensei_pensieve=(
                store.load(sensei_pensieve)
                if sensei_pensieve is not None
                else None
            ),
        )

    def checkpoint_store(self) -> Optional["CheckpointStore"]:
        """The versioned checkpoint store this context loads policies from
        (see :func:`resolve_checkpoint_store`; ``None`` when the resolved
        root does not exist — a store is never created implicitly)."""
        return resolve_checkpoint_store(self.checkpoint_root)

    def _find_checkpoint(
        self, base_name: str, want_sensei: bool
    ) -> Optional[str]:
        """The checkpoint name :meth:`_checkpoint_policy` would load, or
        ``None`` — resolved from metadata alone, without loading weights.

        Prefers ``<name>-best`` over ``<name>-final`` over ``<name>``,
        matching the names the training subsystem writes.
        """
        store = self.checkpoint_store()
        if store is None:
            return None
        wanted_kind = "sensei-pensieve" if want_sensei else "pensieve"
        names = set(store.names())
        for candidate in (f"{base_name}-best", f"{base_name}-final", base_name):
            if candidate not in names:
                continue
            if str(store.metadata(candidate)["kind"]) == wanted_kind:
                return candidate
        return None

    def trained_policy_provenance(self, base_name: str) -> str:
        """Where :meth:`trained_pensieve` / :meth:`trained_sensei_pensieve`
        would source this policy from — without training or loading it.

        ``installed`` / ``checkpoint:<name>@<metadata digest>`` /
        ``ad-hoc-training``.  Grid cell keys embed this, so cells computed
        with one checkpoint generation never masquerade as another's.
        """
        if base_name in self.trained_agent_sources:
            return self.trained_agent_sources[base_name]
        want_sensei = base_name == "sensei-pensieve"
        candidate = self._find_checkpoint(base_name, want_sensei)
        if candidate is None:
            return "ad-hoc-training"
        store = self.checkpoint_store()
        digest = _checkpoint_digest(store.metadata(candidate))
        return f"checkpoint:{candidate}@{digest}"

    def _checkpoint_policy(
        self, base_name: str, want_sensei: bool
    ) -> Optional[PensieveABR]:
        """The best available checkpoint of one policy family, or ``None``."""
        candidate = self._find_checkpoint(base_name, want_sensei)
        if candidate is None:
            return None
        store = self.checkpoint_store()
        abr = store.load(candidate)
        digest = _checkpoint_digest(store.metadata(candidate))
        self.trained_agent_sources[base_name] = (
            f"checkpoint:{candidate}@{digest}"
        )
        return abr

    def trained_pensieve(self) -> PensieveABR:
        """Pensieve agent for this context's grids.

        Loads the newest versioned checkpoint (``pensieve-best`` →
        ``pensieve-final``) from :meth:`checkpoint_store` by default; only
        when no checkpoint exists does it fall back to ad-hoc
        :class:`PensieveTrainer` training at this scale.
        """
        if self._trained_pensieve is None:
            loaded = self._checkpoint_policy("pensieve", want_sensei=False)
            if loaded is not None:
                self._trained_pensieve = loaded
            else:
                agent = PensieveABR(config=PensieveConfig(seed=self.seed + 21))
                trainer = PensieveTrainer(agent, seed=self.seed + 22)
                trainer.train(
                    self.videos(), self.traces(),
                    episodes=self.scale.pensieve_episodes,
                )
                self.trained_agent_sources["pensieve"] = "ad-hoc-training"
                self._trained_pensieve = agent
        return self._trained_pensieve

    def trained_sensei_pensieve(self) -> SenseiPensieveABR:
        """SENSEI-Pensieve agent for this context's grids (checkpoint-first,
        like :meth:`trained_pensieve`; ad-hoc training puts the weights in
        state and reward)."""
        if self._trained_sensei_pensieve is None:
            loaded = self._checkpoint_policy("sensei-pensieve", want_sensei=True)
            if loaded is not None:
                self._trained_sensei_pensieve = loaded
            else:
                agent = make_sensei_pensieve(seed=self.seed + 31)
                trainer = PensieveTrainer(agent, seed=self.seed + 32)
                trainer.train(
                    self.videos(), self.traces(),
                    episodes=self.scale.pensieve_episodes,
                    weights_by_video=self.weights_by_video(),
                )
                self.trained_agent_sources["sensei-pensieve"] = "ad-hoc-training"
                self._trained_sensei_pensieve = agent
        return self._trained_sensei_pensieve

    # ------------------------------------------------------------ simulation

    def stream_qoe(
        self,
        abr: ABRAlgorithm,
        encoded: EncodedVideo,
        trace: ThroughputTrace,
        use_weights: bool = False,
        qoe_model=None,
    ) -> float:
        """Stream once and score the result.

        ``qoe_model=None`` scores with the ground-truth oracle (the paper's
        "real user ratings"); passing a model scores with that model instead
        (the paper's §7.4 microbenchmarks use SENSEI's model for scale).
        """
        weights = (
            self.weights(encoded.source.video_id) if use_weights else None
        )
        result = simulate_session(abr, encoded, trace, chunk_weights=weights)
        if qoe_model is None:
            return self.oracle.true_qoe(result.rendered)
        return float(qoe_model.score(result.rendered))

    def gain_over(self, qoe: float, baseline_qoe: float) -> float:
        """Relative QoE gain ``(Q1 - Q2) / Q2`` used throughout §7."""
        require(baseline_qoe != 0, "baseline QoE must be non-zero")
        return (qoe - baseline_qoe) / baseline_qoe
