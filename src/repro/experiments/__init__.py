"""Experiment harness: one entry point per table/figure of the paper.

The modules are grouped by theme; every figure has a dedicated ``fig*``
function (see DESIGN.md's per-experiment index for the mapping):

* :mod:`repro.experiments.common` — shared context (video set, trace bank,
  oracle, profiler, cached weights) and the quick/full scale presets;
* :mod:`repro.experiments.sensitivity` — Figures 1, 3, 4, 5, 20 and Table 1
  (the measurement study of dynamic quality sensitivity);
* :mod:`repro.experiments.qoe_models` — Figures 2, 15, 16 and 12c plus the
  Appendix B statistics (QoE-model accuracy, cost pruning);
* :mod:`repro.experiments.abr_eval` — Figures 6, 12a, 12b, 13, 14, 17, 18
  and the headline §7.2 numbers (end-to-end ABR evaluation).

Every function takes an :class:`~repro.experiments.common.ExperimentContext`
and returns a plain dictionary with the rows/series the paper reports, so
benchmarks and examples can print or assert on them directly.
"""

from repro.experiments.common import ExperimentContext, ExperimentScale

__all__ = ["ExperimentContext", "ExperimentScale"]
