"""Experiment harness: one declarative API over every table/figure.

The canonical way to run anything is the spec/registry path (see
``docs/EXPERIMENTS.md`` and ``python -m repro list``)::

    from repro.experiments import ExperimentSpec, run
    result = run(ExperimentSpec(experiment="fig12a", scale="quick", seed=7))
    result.data["per_algorithm"]["SENSEI"]["median_gain"]

* :mod:`repro.experiments.spec` — :class:`ExperimentSpec` (name, scale,
  seed, checkpoints, params) and the scale-preset registry;
* :mod:`repro.experiments.registry` — the experiment catalogue and the
  single ``run(spec) -> ResultSet`` execution path;
* :mod:`repro.experiments.results` — :class:`ResultSet` +
  :class:`ArtifactStore`, the typed, content-addressed artifact store with
  finished-cell resume;
* :mod:`repro.experiments.cli` — the ``python -m repro`` front door;
* :mod:`repro.experiments.common` — shared context (video set, trace bank,
  oracle, profiler, cached weights/agents) and the scale presets.

The figure modules are grouped by theme; every figure keeps its dedicated
``fig*`` function, registered with the catalogue and still callable
directly (the historical entry points are shims over the registered
implementations):

* :mod:`repro.experiments.sensitivity` — Figures 1, 3, 4, 5, 20, Table 1;
* :mod:`repro.experiments.qoe_models` — Figures 2, 15, 16, 12c, Appendix B;
* :mod:`repro.experiments.abr_eval` — Figures 6, 12a, 12b, 13, 14, 17, 18
  and the headline §7.2 numbers;
* :mod:`repro.experiments.showcase` — the narrated demo walk-throughs
  behind ``examples/``.

Every experiment function takes an
:class:`~repro.experiments.common.ExperimentContext` and returns a plain
dictionary with the rows/series the paper reports.
"""

from repro.experiments.common import ExperimentContext, ExperimentScale
from repro.experiments.registry import (
    ExperimentDef,
    experiment,
    experiment_names,
    get_experiment,
    run,
)
from repro.experiments.results import ArtifactStore, CellCache, ResultSet
from repro.experiments.spec import (
    ExperimentSpec,
    register_scale,
    resolve_scale,
    scale_names,
)

__all__ = [
    "ArtifactStore",
    "CellCache",
    "ExperimentContext",
    "ExperimentDef",
    "ExperimentScale",
    "ExperimentSpec",
    "ResultSet",
    "experiment",
    "experiment_names",
    "get_experiment",
    "register_scale",
    "resolve_scale",
    "run",
    "scale_names",
]
