"""Narrated demo experiments: the ``examples/`` walk-throughs as registry
entries.

Each demo prints the same story its ``examples/*.py`` predecessor told and
returns the numbers as a dict, but builds *everything* from the
:class:`~repro.experiments.common.ExperimentContext` — so one spec seed
drives the library, the trace bank, the campaigns and the streams, where
the old scripts each wired their own seeds.  The scripts themselves remain
as thin shims over ``python -m repro run <demo>``.

Demos are registered ``cacheable=False``: their value is the narration, so
they always recompute instead of replaying a stored artifact.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.core.scheduler import SchedulerConfig, TwoStepScheduler
from repro.core.weights import infer_weights
from repro.crowd.campaign import CampaignConfig, MTurkCampaign
from repro.engine.runner import WorkOrder
from repro.experiments.common import ExperimentContext
from repro.experiments.registry import experiment
from repro.player.manifest import SenseiManifest, manifest_to_xml
from repro.qoe.ksqi import KSQIModel
from repro.utils.stats import spearman_correlation
from repro.video.encoder import SyntheticEncoder
from repro.video.rendering import render_pristine
from repro.video.video import SourceVideo


@experiment(
    "quickstart",
    group="demo",
    description="Profile one video, stream it with SENSEI, compare baselines",
    cacheable=False,
)
def quickstart(
    context: ExperimentContext,
    video_id: str = "soccer1",
    trace_index: int = 1,
) -> Dict[str, object]:
    """The full SENSEI loop on one catalogue video: profile sensitivity via
    a simulated crowd, embed the weights in a DASH manifest, then stream
    with BBA / Fugu / SENSEI-Fugu and compare true QoE."""
    encoded = context.library.encoded(video_id)
    print(f"Video: {encoded.source.name} "
          f"({encoded.num_chunks} chunks x {encoded.chunk_duration_s:.0f}s, "
          f"genre={encoded.source.genre})")

    # 1. Profile dynamic quality sensitivity via a simulated MTurk campaign.
    profiling = context.profiler().profile_video(encoded)
    weights = profiling.profile.weights
    print(f"\nProfiling cost: ${profiling.total_cost_usd:.1f} "
          f"(${profiling.cost_per_source_minute_usd:.1f} per source minute, "
          f"{profiling.num_renderings} rendered videos)")
    top_chunks = np.argsort(weights)[-3:][::-1]
    print("Most quality-sensitive chunks:",
          ", ".join(f"#{i} (w={weights[i]:.2f}, "
                    f"{encoded.source.descriptor(int(i)).label})"
                    for i in top_chunks))

    # 2. The weights travel to the player inside the DASH manifest.
    manifest = SenseiManifest.from_encoded(encoded, weights=weights)
    xml = manifest_to_xml(manifest)
    print(f"\nManifest with sensei:weights extension: {len(xml)} bytes of XML")

    # 3. Stream over a context trace with three ABR algorithms.
    traces = context.traces()
    trace = traces[min(trace_index, len(traces) - 1)]
    print(f"\nStreaming over trace '{trace.name}' "
          f"(mean {trace.mean_mbps:.2f} Mbps)\n")
    print(f"{'ABR':14s} {'true QoE':>9s} {'bitrate':>9s} {'stalls':>7s} {'switches':>9s}")
    orders = [
        WorkOrder(abr=abr, encoded=encoded, trace=trace,
                  chunk_weights=weights if use_weights else None)
        for abr, use_weights in (
            (context.make_bba(), False),
            (context.make_fugu(), False),
            (context.make_sensei_fugu(), True),
        )
    ]
    rows = []
    for order, result in zip(orders, context.runner.run_orders(orders)):
        qoe = context.oracle.true_qoe(result.rendered)
        print(f"{order.abr.name:14s} {qoe:9.3f} "
              f"{result.average_bitrate_kbps:7.0f}kb {result.total_stall_s:6.1f}s "
              f"{result.rendered.num_switches():9d}")
        rows.append({
            "abr": order.abr.name,
            "true_qoe": qoe,
            "average_bitrate_kbps": float(result.average_bitrate_kbps),
            "total_stall_s": float(result.total_stall_s),
            "num_switches": int(result.rendered.num_switches()),
        })
    return {
        "video_id": video_id,
        "trace": trace.name,
        "profiling_cost_usd": float(profiling.total_cost_usd),
        "cost_per_source_minute_usd": float(
            profiling.cost_per_source_minute_usd
        ),
        "num_renderings": int(profiling.num_renderings),
        "manifest_bytes": len(xml),
        "top_chunks": [int(i) for i in top_chunks],
        "rows": rows,
    }


@experiment(
    "bandwidth-savings",
    group="demo",
    description="Same QoE with less bandwidth (the Fig. 12b scenario)",
    cacheable=False,
)
def bandwidth_savings(
    context: ExperimentContext,
    video_ids: Optional[Sequence[str]] = None,
    trace_index: int = 3,
    scaling_ratios: Sequence[float] = (0.4, 0.55, 0.7, 0.85, 1.0),
) -> Dict[str, object]:
    """Scale one trace down step by step and read off how much less
    bandwidth SENSEI needs to match the base ABR's full-bandwidth QoE."""
    video_ids = list(video_ids or context.video_ids()[:3])
    traces = context.traces()
    base_trace = traces[min(trace_index, len(traces) - 1)]
    algorithms = {
        "BBA": (context.make_bba, False),
        "Fugu": (context.make_fugu, False),
        "SENSEI-Fugu": (context.make_sensei_fugu, True),
    }

    print(f"Base trace '{base_trace.name}', mean {base_trace.mean_mbps:.2f} Mbps")
    print(f"\n{'bandwidth scale':>15s} " + " ".join(f"{n:>12s}" for n in algorithms))
    # One work order per (ratio, algorithm, video), dispatched in a single
    # batch so a process backend pays pool startup once for the whole sweep.
    labels, orders = [], []
    for ratio in scaling_ratios:
        trace = base_trace.scaled(ratio)
        for name, (factory, use_weights) in algorithms.items():
            for vid in video_ids:
                labels.append((ratio, name))
                orders.append(WorkOrder(
                    abr=factory(), encoded=context.library.encoded(vid),
                    trace=trace,
                    chunk_weights=context.weights(vid) if use_weights else None,
                ))
    results = context.runner.run_orders(orders)
    qoe: Dict[tuple, list] = {label: [] for label in labels}
    for label, result in zip(labels, results):
        qoe[label].append(context.oracle.true_qoe(result.rendered))
    curves: Dict[str, list] = {name: [] for name in algorithms}
    for ratio in scaling_ratios:
        row = f"{ratio:>14.0%} "
        for name in algorithms:
            mean_qoe = float(np.mean(qoe[(ratio, name)]))
            curves[name].append(mean_qoe)
            row += f" {mean_qoe:12.3f}"
        print(row)

    target = curves["Fugu"][-1]
    saving = 0.0
    for ratio, value in zip(scaling_ratios, curves["SENSEI-Fugu"]):
        if value >= target:
            saving = 1.0 - ratio
            break
    print(f"\nFugu's QoE at full bandwidth: {target:.3f}")
    print(f"SENSEI reaches that QoE with ~{saving:.0%} less bandwidth")
    return {
        "video_ids": video_ids,
        "trace": base_trace.name,
        "scaling_ratios": list(scaling_ratios),
        "curves": curves,
        "fugu_full_bandwidth_qoe": target,
        "bandwidth_saving_at_equal_qoe": saving,
    }


@experiment(
    "profile-video",
    group="demo",
    description="Walk through the two-step profiling pipeline chunk by chunk",
    cacheable=False,
)
def profile_video(
    context: ExperimentContext,
    duration_s: float = 60.0,
    chunk_duration_s: float = 4.0,
) -> Dict[str, object]:
    """Open up the profiling pipeline (§4) on a short synthetic sports clip:
    step-1 schedule, raw crowd MOS, step-2 re-probes, final weights vs the
    latent sensitivity the simulated viewers actually used."""
    video = SourceVideo.synthesize(
        "demo-match", "sports",
        duration_s=duration_s, chunk_duration_s=chunk_duration_s,
        seed=context.seed + 81,
    )
    encoded = SyntheticEncoder(seed=context.seed + 82).encode(video)
    print(f"Profiling '{video.name}': {video.num_chunks} chunks, "
          f"labels = {video.chunk_labels()}")

    scheduler = TwoStepScheduler(SchedulerConfig(
        step1_ratings=max(10, context.scale.step1_ratings),
        step2_ratings=max(5, context.scale.step2_ratings),
    ))
    step1 = scheduler.step1_schedule(encoded)
    print(f"\nStep 1 publishes {len(step1.renderings)} renderings "
          f"({step1.ratings_per_rendering} ratings each)")

    campaign = MTurkCampaign(
        oracle=context.oracle,
        config=CampaignConfig(
            ratings_per_rendering=step1.ratings_per_rendering,
            seed=context.seed + 83,
        ),
    )
    result1 = campaign.run(step1.renderings, reference=render_pristine(encoded))
    print(f"Step 1 campaign: {result1.num_participants} participants, "
          f"{result1.rejection_rate():.0%} rejected, "
          f"${result1.total_paid_usd:.1f} paid")

    base_model = KSQIModel()
    rated = [r for r in step1.renderings if r.render_id in result1.mos]
    mos = [result1.mos[r.render_id] for r in rated]
    step1_profile = infer_weights(rated, mos, base_model=base_model)

    reprobe = scheduler.select_chunks_to_reprobe(step1_profile.weights)
    print(f"\nStep 2 re-probes {len(reprobe)} chunks: {list(map(int, reprobe))}")
    step2 = scheduler.step2_schedule(encoded, step1_profile.weights)
    result2 = campaign.run(step2.renderings, reference=render_pristine(encoded))

    all_renderings = rated + [
        r for r in step2.renderings if r.render_id in result2.mos
    ]
    all_mos = mos + [
        result2.mos[r.render_id]
        for r in step2.renderings if r.render_id in result2.mos
    ]
    profile = infer_weights(all_renderings, all_mos, base_model=base_model)

    truth = context.oracle.normalized_sensitivity(video)
    print("\nchunk  label             weight   latent sensitivity")
    for index in range(video.num_chunks):
        print(f"{index:5d}  {video.chunk_labels()[index]:16s} "
              f"{profile.weights[index]:6.2f}   {truth[index]:6.2f}")
    correlation = spearman_correlation(profile.weights, truth)
    print(f"\nSpearman correlation(weights, latent sensitivity) = "
          f"{correlation:.2f}")
    return {
        "num_chunks": int(video.num_chunks),
        "step1_renderings": len(step1.renderings),
        "reprobed_chunks": [int(i) for i in reprobe],
        "weights": [float(w) for w in profile.weights],
        "latent_sensitivity": [float(s) for s in truth],
        "rank_correlation": float(correlation),
    }
