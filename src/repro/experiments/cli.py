"""``python -m repro`` — the single front door to every experiment.

Subcommands
-----------
``list``
    The experiment catalogue: every registered experiment, grouped, with
    the paper figures it reproduces and its tunable parameters.
``run``
    Execute one or more experiments by name through the spec/registry
    path, persisting :class:`~repro.experiments.results.ResultSet`
    artifacts (content-addressed by spec hash) under ``--results``.
    Re-running an identical spec is a cache hit; interrupted grids resume
    from finished cells; ``--force`` recomputes.
``report``
    Inspect stored artifacts: a table of everything in the results
    directory, or one artifact (by experiment name or spec-hash prefix)
    in detail.
``train``
    The RL training pipeline: curricula → checkpoints → checkpoint-backed
    ABR grid (see :mod:`repro.training.pipeline`).
``profile``
    Run one experiment with span tracing enabled in a fresh metrics
    registry and print the phase breakdown (planner kernel vs player
    stepping vs dispatch overhead), the counters and the gauges;
    ``--events``/``--prom`` additionally write the JSONL event log and a
    Prometheus textfile export (:mod:`repro.obs.sinks`).
``quarantine``
    List integrity-quarantine records: every file an
    :class:`~repro.experiments.results.ArtifactStore` or
    :class:`~repro.training.checkpoint.CheckpointStore` moved aside after
    a failed verification, with the recorded reason.

``run`` and ``train`` accept fault-tolerance knobs (``--shard-timeout``,
``--max-shard-retries``) and a ``--telemetry`` switch.  These are
execution policy, not experiment identity — they configure the
:class:`~repro.engine.runner.BatchRunner` / the tracer *alongside* the
spec, so they never perturb spec hashes or cached artifacts (the same
discipline as ``--backend``/``--workers``).
"""

from __future__ import annotations

import argparse
import inspect
import json
import sys
from typing import Dict, List, Optional

from repro.experiments.registry import get_experiment, registry, run
from repro.experiments.results import ArtifactStore
from repro.experiments.spec import ExperimentSpec, scale_names
from repro.faults.integrity import QUARANTINE_DIR, quarantine_records

#: Default artifact-store location, relative to the working directory.
DEFAULT_RESULTS_ROOT = "results"


def _parse_override(text: str):
    """``key=value`` with a JSON value (bare words fall back to strings)."""
    key, sep, raw = text.partition("=")
    if not sep or not key:
        raise argparse.ArgumentTypeError(
            f"expected key=value, got {text!r}"
        )
    try:
        value = json.loads(raw)
    except json.JSONDecodeError:
        value = raw
    return key, value


def _experiment_params(defn) -> Dict[str, object]:
    """An experiment's tunable params and their defaults."""
    signature = inspect.signature(defn.fn)
    return {
        name: (None if p.default is inspect.Parameter.empty else p.default)
        for name, p in signature.parameters.items()
        if name != "context" and p.kind is not inspect.Parameter.VAR_KEYWORD
    }


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run, list and inspect the paper-reproduction experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    list_cmd = sub.add_parser("list", help="show the experiment catalogue")
    list_cmd.add_argument("--json", action="store_true",
                          help="machine-readable catalogue")

    run_cmd = sub.add_parser("run", help="run experiments through run(spec)")
    run_cmd.add_argument("experiments", nargs="+", metavar="EXPERIMENT",
                         help="registered experiment names (see `list`)")
    run_cmd.add_argument("--scale", default="quick",
                         help=f"scale preset ({', '.join(scale_names())})")
    run_cmd.add_argument("--seed", type=int, default=7,
                         help="the single seed every artefact derives from")
    run_cmd.add_argument("--backend", default="serial",
                         choices=("serial", "process", "lockstep", "auto"),
                         help="batch-engine backend (results are identical)")
    run_cmd.add_argument("--workers", type=int, default=None,
                         help="worker count for the process backend")
    run_cmd.add_argument("--results", default=DEFAULT_RESULTS_ROOT,
                         help="artifact-store root (content-addressed)")
    run_cmd.add_argument("--no-save", action="store_true",
                         help="run purely in memory: no cache, no artifacts")
    run_cmd.add_argument("--force", action="store_true",
                         help="recompute even when a cached artifact exists")
    run_cmd.add_argument("--checkpoints", default=None, metavar="DIR",
                         help="CheckpointStore root for trained policies")
    pensieve = run_cmd.add_mutually_exclusive_group()
    pensieve.add_argument("--include-pensieve", dest="include_pensieve",
                          action="store_true", default=None,
                          help="include the RL policies in grid figures")
    pensieve.add_argument("--exclude-pensieve", dest="include_pensieve",
                          action="store_false",
                          help="exclude the RL policies from grid figures")
    run_cmd.add_argument("--set", dest="overrides", action="append",
                         default=[], type=_parse_override, metavar="KEY=VALUE",
                         help="experiment parameter override (JSON values)")
    run_cmd.add_argument("--json", action="store_true",
                         help="print each result's full data as JSON")
    _add_fault_knobs(run_cmd)

    report_cmd = sub.add_parser("report", help="inspect stored artifacts")
    report_cmd.add_argument("target", nargs="?", default=None,
                            help="experiment name or spec-hash prefix")
    report_cmd.add_argument("--results", default=DEFAULT_RESULTS_ROOT,
                            help="artifact-store root to read")
    report_cmd.add_argument("--json", action="store_true",
                            help="machine-readable output")

    train_cmd = sub.add_parser(
        "train", help="train the RL policies and checkpoint them"
    )
    train_cmd.add_argument("--scale", default="tiny",
                           help=f"scale preset ({', '.join(scale_names())})")
    train_cmd.add_argument("--seed", type=int, default=7)
    train_cmd.add_argument("--checkpoints", default="checkpoints",
                           metavar="DIR", help="CheckpointStore root")
    train_cmd.add_argument("--backend", default="auto",
                           choices=("serial", "process", "lockstep", "auto"))
    train_cmd.add_argument("--workers", type=int, default=None)
    train_cmd.add_argument("--rounds", type=int, default=None,
                           help="training rounds (default: pipeline preset)")
    train_cmd.add_argument("--episodes-per-round", type=int, default=None)
    train_cmd.add_argument("--json", action="store_true",
                           help="print the training summary as JSON")
    _add_fault_knobs(train_cmd)

    profile_cmd = sub.add_parser(
        "profile",
        help="run one experiment with telemetry on and print the phase "
             "breakdown",
    )
    profile_cmd.add_argument("experiment", metavar="EXPERIMENT",
                             help="registered experiment name (see `list`)")
    profile_cmd.add_argument("--scale", default="tiny",
                             help=f"scale preset ({', '.join(scale_names())})")
    profile_cmd.add_argument("--seed", type=int, default=7)
    profile_cmd.add_argument("--backend", default="auto",
                             choices=("serial", "process", "lockstep", "auto"))
    profile_cmd.add_argument("--workers", type=int, default=None)
    profile_cmd.add_argument("--checkpoints", default=None, metavar="DIR",
                             help="CheckpointStore root for trained policies")
    profile_cmd.add_argument("--set", dest="overrides", action="append",
                             default=[], type=_parse_override,
                             metavar="KEY=VALUE",
                             help="experiment parameter override")
    profile_cmd.add_argument("--events", default=None, metavar="PATH",
                             help="write the run's JSONL event log here")
    profile_cmd.add_argument("--prom", default=None, metavar="PATH",
                             help="write a Prometheus textfile export here")
    profile_cmd.add_argument("--json", action="store_true",
                             help="print phases + full snapshot as JSON")

    serve_cmd = sub.add_parser(
        "serve",
        help="run the always-on decision service (JSON-lines over TCP)",
    )
    serve_cmd.add_argument("--scale", default="tiny",
                           help=f"scale preset ({', '.join(scale_names())}) "
                                f"for the video/trace inventory")
    serve_cmd.add_argument("--seed", type=int, default=7)
    serve_cmd.add_argument("--host", default="127.0.0.1")
    serve_cmd.add_argument("--port", type=int, default=7788)
    serve_cmd.add_argument("--duration", type=float, default=None,
                           metavar="S",
                           help="shut down after S seconds (default: run "
                                "until interrupted)")
    _add_service_knobs(serve_cmd)

    loadtest_cmd = sub.add_parser(
        "loadtest",
        help="drive the decision service closed-loop and write "
             "BENCH_service.json",
    )
    loadtest_cmd.add_argument("--scale", default="tiny",
                              help=f"scale preset "
                                   f"({', '.join(scale_names())})")
    loadtest_cmd.add_argument("--seed", type=int, default=7)
    loadtest_cmd.add_argument("--sessions-per-tenant", type=int, default=4,
                              metavar="N",
                              help="sessions each tenant registers")
    loadtest_cmd.add_argument("--weight-ratio", type=float, default=4.0,
                              help="gold:bronze scheduling weight ratio")
    loadtest_cmd.add_argument("--max-decisions", type=int, default=None,
                              metavar="N",
                              help="cap decisions per session (default: "
                                   "run every session to completion)")
    loadtest_cmd.add_argument("--duration", type=float, default=None,
                              metavar="S", help="stop offering load after S "
                                                "seconds")
    loadtest_cmd.add_argument("--out", default="BENCH_service.json",
                              metavar="PATH",
                              help="where to write the benchmark report")
    loadtest_cmd.add_argument("--verify", action="store_true",
                              help="re-run finished sessions offline and "
                                   "assert online ≡ offline decisions")
    loadtest_cmd.add_argument("--json", action="store_true",
                              help="print the full report as JSON")
    _add_service_knobs(loadtest_cmd)

    quarantine_cmd = sub.add_parser(
        "quarantine", help="list files quarantined by integrity checks"
    )
    quarantine_cmd.add_argument("--results", default=DEFAULT_RESULTS_ROOT,
                                help="artifact-store root to inspect")
    quarantine_cmd.add_argument("--checkpoints", default="checkpoints",
                                metavar="DIR",
                                help="CheckpointStore root to inspect")
    quarantine_cmd.add_argument("--json", action="store_true",
                                help="machine-readable output")
    return parser


def _add_fault_knobs(command: argparse.ArgumentParser) -> None:
    """Fault-tolerance runner knobs shared by ``run`` and ``train``.

    Execution policy only: they shape the runner, never the spec hash.
    """
    command.add_argument("--shard-timeout", type=float, default=None,
                         metavar="S",
                         help="abandon + retry a process-backend shard "
                              "attempt after S seconds")
    command.add_argument("--max-shard-retries", type=int, default=None,
                         metavar="N",
                         help="re-dispatch a lost shard up to N times "
                              "before running it serially in-process")
    command.add_argument("--telemetry", action="store_true",
                         help="enable span tracing + metrics for this "
                              "invocation (adds a phase summary per run)")


def _add_service_knobs(command: argparse.ArgumentParser) -> None:
    """Decision-service tuning knobs shared by ``serve`` and ``loadtest``."""
    command.add_argument("--max-batch", type=int, default=16,
                         help="micro-batch window size trigger")
    command.add_argument("--max-delay-ms", type=float, default=2.0,
                         help="micro-batch window time trigger (upper "
                              "bound; the window adapts below it)")
    command.add_argument("--capacity", type=int, default=None,
                         help="fair-scheduler concurrency slots "
                              "(default: max-batch)")
    command.add_argument("--shed-timeout-ms", type=float, default=50.0,
                         help="admission timeout before a request is shed "
                              "to the degraded fallback")
    command.add_argument("--no-shed", action="store_true",
                         help="never shed: wait for admission indefinitely "
                              "(required for --verify runs under overload)")


def _make_service(args):
    """A DecisionService configured from the shared service knobs."""
    from repro.service import DecisionService

    return DecisionService(
        max_batch=args.max_batch,
        max_delay_s=args.max_delay_ms / 1e3,
        capacity=args.capacity,
        shed_timeout_s=None if args.no_shed else args.shed_timeout_ms / 1e3,
    )


def _fault_knobs(args) -> Dict[str, object]:
    knobs: Dict[str, object] = {}
    if args.shard_timeout is not None:
        knobs["shard_timeout_s"] = args.shard_timeout
    if args.max_shard_retries is not None:
        knobs["max_shard_retries"] = args.max_shard_retries
    return knobs


# ----------------------------------------------------------------- commands

def _cmd_list(args) -> int:
    defs = registry()
    if args.json:
        payload = [
            {
                "name": defn.name,
                "group": defn.group,
                "figures": list(defn.figures),
                "description": defn.description,
                "supports_pensieve": defn.supports_pensieve,
                "cacheable": defn.cacheable,
                "params": _experiment_params(defn),
            }
            for defn in defs
        ]
        print(json.dumps(payload, indent=2))
        return 0
    group = None
    for defn in defs:
        if defn.group != group:
            group = defn.group
            print(f"\n[{group}]")
        figures = f"  (fig {', '.join(defn.figures)})" if defn.figures else ""
        print(f"  {defn.name:18s} {defn.description}{figures}")
        params = _experiment_params(defn)
        if params:
            rendered = ", ".join(f"{k}={v!r}" for k, v in params.items())
            print(f"  {'':18s}   params: {rendered}")
    print(f"\n{len(defs)} experiments; run with: "
          f"python -m repro run <name> [--scale quick|full|tiny]")
    return 0


def _print_scalars(data: Dict[str, object], indent: str = "  ") -> None:
    for key, value in data.items():
        if isinstance(value, bool):
            print(f"{indent}{key} = {value}")
        elif isinstance(value, float):
            print(f"{indent}{key} = {value:.4f}")
        elif isinstance(value, (int, str)):
            print(f"{indent}{key} = {value}")


def _print_fault_summary(fault_log, indent: str = "  ") -> None:
    """One line naming the recoveries a run needed (silence = healthy)."""
    if not isinstance(fault_log, dict):
        return
    nonzero = {
        key: value
        for key, value in fault_log.items()
        if key != "events" and value
    }
    if nonzero:
        rendered = ", ".join(f"{k}={v}" for k, v in sorted(nonzero.items()))
        print(f"{indent}faults recovered: {rendered}")


def _print_phase_summary(phases, indent: str = "  ") -> None:
    """One line splitting a run's dispatch time into kernel/step/other."""
    if not isinstance(phases, dict) or "dispatch_s" not in phases:
        return
    print(f"{indent}phases: dispatch={phases['dispatch_s']:.3f}s "
          f"(kernel={phases.get('planner_kernel_s', 0):.3f}s, "
          f"stepping={phases.get('stepping_s', 0):.3f}s, "
          f"other={phases.get('other_s', 0):.3f}s)")


def _cmd_run(args) -> int:
    from repro.experiments.registry import _runner_for
    from repro.obs.trace import set_enabled

    store = None if args.no_save else ArtifactStore(args.results)
    for name in args.experiments:
        get_experiment(name)  # fail fast on typos before running anything
    # Fault knobs configure the runner, not the spec: spec hashes (and
    # therefore cache hits) are identical with and without them.
    knobs = _fault_knobs(args)
    runner = None
    previous_telemetry = set_enabled(True) if args.telemetry else None
    try:
        for name in args.experiments:
            spec = ExperimentSpec(
                experiment=name,
                scale=args.scale,
                seed=args.seed,
                backend=args.backend,
                max_workers=args.workers,
                include_pensieve=args.include_pensieve,
                checkpoint_root=args.checkpoints,
                params=dict(args.overrides),
            )
            if knobs and runner is None:
                runner = _runner_for(spec, **knobs)
            result = run(spec, store=store, force=args.force, runner=runner)
            status = "cached" if result.cache_hit else "computed"
            wall = result.meta.get("wall_time_s")
            wall_text = (
                f" in {wall:.2f}s"
                if isinstance(wall, float) and not result.cache_hit
                else ""
            )
            # result.spec, not the local spec: run() normalises the spec and
            # stamps the checkpoint fingerprint, so only the result's spec
            # names the hash/path the artifact actually lives under.
            print(f"\n== {name} [{result.spec_hash}] "
                  f"scale={args.scale} seed={args.seed} — {status}{wall_text}")
            if args.json:
                print(json.dumps(result.data, indent=2, sort_keys=True))
            else:
                _print_scalars(result.data)
            _print_fault_summary(result.meta.get("fault_log"))
            _print_phase_summary(result.meta.get("phases"))
            if store is not None and get_experiment(name).cacheable:
                print(f"  artifact: {store.path_for(result.spec)}")
    finally:
        if runner is not None:
            runner.close()
        if previous_telemetry is not None:
            set_enabled(previous_telemetry)
    return 0


def _cmd_report(args) -> int:
    store = ArtifactStore(args.results)
    if args.target is None:
        entries = store.entries()
        if args.json:
            print(json.dumps(entries, indent=2))
            return 0
        if not entries:
            print(f"no artifacts under {store.root}/")
            return 0
        print(f"{'experiment':14s} {'spec hash':18s} {'scale':7s} "
              f"{'seed':>4s} {'wall s':>8s}  git")
        for entry in entries:
            wall = entry.get("wall_time_s")
            wall_text = f"{wall:8.2f}" if isinstance(wall, float) else f"{'-':>8s}"
            revision = (entry.get("git_revision") or "-")[:10]
            print(f"{str(entry['experiment']):14s} {str(entry['spec_hash']):18s} "
                  f"{str(entry['scale']):7s} {entry['seed']:4d} {wall_text}  "
                  f"{revision}")
        print(f"\n{len(entries)} artifacts under {store.root}/")
        return 0
    result = store.find(args.target)
    if result is None:
        print(f"no artifact matching {args.target!r} under {store.root}/",
              file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(result.to_payload(), indent=2, sort_keys=True))
        return 0
    print(f"experiment: {result.experiment}  [{result.spec_hash}]")
    print(f"spec: {json.dumps(result.spec.to_dict(), sort_keys=True)}")
    print("meta:")
    _print_scalars(result.meta)
    phases = result.meta.get("phases")
    if isinstance(phases, dict) and phases:
        print("phases:")
        _print_scalars(phases)
    print("data:")
    _print_scalars(result.data)
    rows = result.summary_rows()
    if rows and "key" not in rows[0]:
        print(f"rows: {len(rows)} (see result.csv)")
    return 0


def _cmd_profile(args) -> int:
    from repro.engine.report import phases_from_snapshot
    from repro.obs import (
        MetricsRegistry,
        phase_table,
        run_events,
        set_enabled,
        use_registry,
        write_events_jsonl,
        write_prometheus,
    )

    defn = get_experiment(args.experiment)
    spec = ExperimentSpec(
        experiment=defn.name,
        scale=args.scale,
        seed=args.seed,
        backend=args.backend,
        max_workers=args.workers,
        checkpoint_root=args.checkpoints,
        params=dict(args.overrides),
    )
    # A fresh registry + store=None: the profile measures one real
    # computation, never a cache hit, and never pollutes ambient metrics.
    metrics = MetricsRegistry()
    previous = set_enabled(True)
    try:
        with use_registry(metrics):
            result = run(spec, store=None)
    finally:
        set_enabled(previous)
    snapshot = metrics.snapshot()
    phases = phases_from_snapshot(snapshot)
    meta = {
        "experiment": result.experiment,
        "spec_hash": result.spec_hash,
        "scale": args.scale,
        "seed": args.seed,
        "backend": result.meta.get("backend"),
        "started_at": result.meta.get("started_at"),
        "duration_s": result.meta.get("duration_s"),
    }
    if args.events:
        write_events_jsonl(args.events, run_events(
            snapshot,
            run_id=result.spec_hash,
            started_at=result.meta.get("started_at"),
            duration_s=result.meta.get("duration_s"),
            meta={"experiment": result.experiment},
        ))
    if args.prom:
        write_prometheus(args.prom, snapshot)
    if args.json:
        print(json.dumps(
            {**meta, "phases": phases, "snapshot": snapshot},
            indent=2, sort_keys=True,
        ))
        return 0
    print(f"== profile {result.experiment} [{result.spec_hash}] "
          f"scale={args.scale} seed={args.seed} "
          f"backend={meta['backend']} — {meta['duration_s']:.2f}s")
    print(phase_table(snapshot))
    if phases:
        print("phase split (disjoint leaves):")
        _print_scalars(phases)
    scalars = {
        **{f"counter {k}": v for k, v in snapshot["counters"].items()},
        **{f"gauge {k}": v for k, v in snapshot["gauges"].items()},
    }
    if scalars:
        print("metrics:")
        _print_scalars(scalars)
    if args.events:
        print(f"events: {args.events}")
    if args.prom:
        print(f"prometheus: {args.prom}")
    return 0


def _cmd_train(args) -> int:
    from repro.engine.runner import BatchRunner
    from repro.experiments.spec import resolve_scale
    from repro.training.pipeline import DEFAULT_TRAINING, train_policies

    knobs = _fault_knobs(args)
    if args.backend == "auto":
        runner = BatchRunner.auto(max_workers=args.workers, **knobs)
    else:
        runner = BatchRunner(backend=args.backend, max_workers=args.workers,
                             **knobs)
    config = DEFAULT_TRAINING
    if args.rounds is not None or args.episodes_per_round is not None:
        from dataclasses import replace

        changes = {}
        if args.rounds is not None:
            changes["rounds"] = args.rounds
        if args.episodes_per_round is not None:
            changes["episodes_per_round"] = args.episodes_per_round
        config = replace(config, **changes)
    from repro.obs import get_registry, phase_table, set_enabled
    from repro.obs.metrics import diff_snapshots

    previous_telemetry = set_enabled(True) if args.telemetry else None
    metrics_before = get_registry().snapshot() if args.telemetry else None
    try:
        summary = train_policies(
            scale=resolve_scale(args.scale),
            seed=args.seed,
            checkpoint_root=args.checkpoints,
            runner=runner,
            config=config,
            verbose=not args.json,
        )
    finally:
        runner.close()
        if previous_telemetry is not None:
            set_enabled(previous_telemetry)
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        _print_fault_summary(summary.get("fault_log"), indent="")
        if metrics_before is not None:
            print("phases:")
            print(phase_table(
                diff_snapshots(metrics_before, get_registry().snapshot())
            ))
    return 0


def _cmd_serve(args) -> int:
    """The always-on decision service behind a JSON-lines TCP front-end.

    One JSON object per line in, one per line out.  Ops: ``register``
    (tenant, session, abr, video, trace, optional weight), ``decide``,
    ``evict``, ``health``.  The video/trace inventory is the experiment
    context's at ``--scale``, and ABR kinds are the loadtest zoo
    (:data:`repro.service.loadgen.ABR_FACTORIES`).
    """
    import asyncio
    from dataclasses import asdict

    from repro.experiments.common import ExperimentContext
    from repro.experiments.spec import resolve_scale
    from repro.service import ABR_FACTORIES
    from repro.service.loadgen import synthetic_weights

    context = ExperimentContext(scale=resolve_scale(args.scale),
                                seed=args.seed)
    videos = dict(zip(context.video_ids(), context.videos()))
    traces = {trace.name: trace for trace in context.traces()}
    service = _make_service(args)

    async def handle_op(request: Dict[str, object]) -> Dict[str, object]:
        op = request.get("op")
        if op == "health":
            return {"ok": True, "health": service.health()}
        tenant = str(request.get("tenant", ""))
        session = str(request.get("session", ""))
        if op == "register":
            kind = str(request.get("abr", "fugu"))
            if kind not in ABR_FACTORIES:
                return {"ok": False,
                        "error": f"unknown abr {kind!r}; "
                                 f"one of {sorted(ABR_FACTORIES)}"}
            video_id = str(request.get("video", next(iter(videos))))
            if video_id not in videos:
                return {"ok": False,
                        "error": f"unknown video {video_id!r}; "
                                 f"one of {sorted(videos)}"}
            trace_name = str(request.get("trace", next(iter(traces))))
            if trace_name not in traces:
                return {"ok": False,
                        "error": f"unknown trace {trace_name!r}; "
                                 f"one of {sorted(traces)}"}
            encoded = videos[video_id]
            weights = (synthetic_weights(encoded.num_chunks)
                       if kind == "sensei" else None)
            weight = request.get("weight")
            service.register(
                tenant=tenant, session_id=session,
                abr=ABR_FACTORIES[kind](), encoded=encoded,
                trace=traces[trace_name], chunk_weights=weights,
                weight=float(weight) if weight is not None else None,
            )
            return {"ok": True, "registered": [tenant, session],
                    "abr": kind, "video": video_id, "trace": trace_name}
        if op == "decide":
            response = await service.decide(tenant, session)
            return {"ok": True, **asdict(response)}
        if op == "evict":
            entry = service.evict(tenant, session)
            return {"ok": True, "evicted": [tenant, session],
                    "decisions": entry.decisions}
        return {"ok": False, "error": f"unknown op {op!r}; one of "
                                      f"register/decide/evict/health"}

    async def handle_client(reader, writer):
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    request = json.loads(line)
                    reply = await handle_op(request)
                except Exception as error:  # noqa: BLE001 — reply, don't die
                    reply = {"ok": False,
                             "error": f"{type(error).__name__}: {error}"}
                writer.write(json.dumps(reply).encode() + b"\n")
                await writer.drain()
        finally:
            writer.close()

    async def main_async() -> None:
        server = await asyncio.start_server(handle_client, args.host,
                                            args.port)
        print(f"decision service on {args.host}:{args.port} "
              f"(scale={args.scale}, max_batch={args.max_batch}, "
              f"window<={args.max_delay_ms}ms) — JSON-lines ops: "
              f"register/decide/evict/health")
        try:
            if args.duration is not None:
                await asyncio.sleep(args.duration)
            else:
                await asyncio.Event().wait()
        finally:
            server.close()
            await server.wait_closed()
            await service.close()

    try:
        asyncio.run(main_async())
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_loadtest(args) -> int:
    """Closed-loop multi-tenant load against an in-process service."""
    import asyncio

    from repro.experiments.common import ExperimentContext
    from repro.experiments.spec import resolve_scale
    from repro.service import (
        bench_payload,
        default_tenants,
        register_load,
        run_load,
        verify_online_offline,
        write_bench,
    )

    context = ExperimentContext(scale=resolve_scale(args.scale),
                                seed=args.seed)
    service = _make_service(args)
    tenants = default_tenants(
        sessions_per_tenant=args.sessions_per_tenant,
        weight_ratio=args.weight_ratio,
    )

    async def main_async():
        entries = register_load(service, context, tenants)
        report = await run_load(
            service, entries,
            max_decisions_per_session=args.max_decisions,
            duration_s=args.duration,
        )
        verdict = (
            verify_online_offline(service, entries) if args.verify else None
        )
        await service.close()
        return report, verdict

    report, verdict = asyncio.run(main_async())
    payload = bench_payload(service, report, tenants, meta={
        "scale": args.scale, "seed": args.seed,
    })
    if verdict is not None:
        payload["verify"] = verdict
    path = write_bench(args.out, payload)
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        latency = payload["latency"]
        batch = payload["batch"]
        throughput = payload["throughput"]
        print(f"== loadtest scale={args.scale} "
              f"tenants={[spec.name for spec in tenants]} "
              f"sessions={report['sessions']}")
        print(f"  decisions: {throughput['decisions']} "
              f"({throughput['decisions_per_sec']:.0f}/s, "
              f"{throughput['degraded']} degraded) "
              f"in {throughput['wall_s']:.2f}s")
        print(f"  latency: p50={latency['p50_ms']:.3f}ms "
              f"p99={latency['p99_ms']:.3f}ms mean={latency['mean_ms']:.3f}ms")
        print(f"  batches: {batch['flushes']} flushes, "
              f"mean size {batch['mean_size']}, "
              f"{batch['size_flushes']} by size / "
              f"{batch['timer_flushes']} by timer")
        if verdict is not None:
            status = "identical" if verdict["identical"] else "MISMATCH"
            print(f"  verify: online ≡ offline over {verdict['checked']} "
                  f"sessions — {status}")
        print(f"  report: {path}")
    if verdict is not None and not verdict["identical"]:
        return 1
    return 0


def _cmd_quarantine(args) -> int:
    from pathlib import Path

    roots = {
        "results": Path(args.results) / QUARANTINE_DIR,
        "checkpoints": Path(args.checkpoints) / QUARANTINE_DIR,
    }
    records = []
    for store, root in roots.items():
        for record in quarantine_records(root):
            records.append({"store": store, **record})
    if args.json:
        print(json.dumps(records, indent=2, sort_keys=True))
        return 0
    if not records:
        print("no quarantined files under "
              + " or ".join(str(root) for root in roots.values()))
        return 0
    for record in records:
        print(f"[{record['store']}] {record.get('quarantined_as', '?')}")
        print(f"  was: {record.get('original_path', '?')}")
        print(f"  why: {record.get('reason', '?')}")
    print(f"\n{len(records)} quarantined file(s); each was replaced by a "
          f"recompute or a loud failure — never silently served")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    handlers = {
        "list": _cmd_list,
        "run": _cmd_run,
        "report": _cmd_report,
        "profile": _cmd_profile,
        "train": _cmd_train,
        "serve": _cmd_serve,
        "loadtest": _cmd_loadtest,
        "quarantine": _cmd_quarantine,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
