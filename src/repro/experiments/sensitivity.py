"""Measurement-study experiments: Figures 1, 3, 4, 5, 20 and Table 1.

These reproduce §2.3's finding that quality sensitivity varies over time,
is largely agnostic to the incident type, and is not predicted by CV
highlight models (Appendix D).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.crowd.campaign import CampaignConfig, MTurkCampaign
from repro.cv.highlights import all_highlight_models
from repro.experiments.common import ExperimentContext
from repro.experiments.registry import experiment
from repro.utils.stats import cdf_points, normalize_to_unit, spearman_correlation
from repro.video.encoder import EncodedVideo, SyntheticEncoder
from repro.video.library import VideoLibrary
from repro.video.rendering import QualityIncident, make_video_series, render_pristine
from repro.video.video import SourceVideo

#: The three low-quality incidents used throughout §2.3.
STANDARD_INCIDENTS = {
    "rebuffer_1s": QualityIncident.rebuffering(0, 1.0),
    "rebuffer_4s": QualityIncident.rebuffering(0, 4.0),
    "bitrate_drop_4s": QualityIncident.bitrate_drop(0, drop_to_level=0),
}


def _series_true_qoe(item) -> List[float]:
    """True QoE of every rendering in one (video, incident) series.

    Module-level so the batch engine's process backend can pickle it; each
    item is an ``(oracle, encoded, incident)`` tuple.
    """
    oracle, encoded, incident = item
    return [oracle.true_qoe(r) for r in make_video_series(encoded, incident)]


@experiment("table1", group="sensitivity", figures=("Table 1",))
def table1_video_set(context: ExperimentContext) -> Dict[str, object]:
    """Table 1: the 16-video test set (name, genre, length, source)."""
    rows = context.library.table1_rows()
    return {"rows": rows, "num_videos": len(rows)}


def _short_clip(context: ExperimentContext, video_id: str, num_chunks: int) -> EncodedVideo:
    """A short clip of a catalogue video containing a key moment.

    Figure 1 uses a 25-second excerpt of Soccer1 around the goal; the clip is
    therefore centred on the video's most quality-sensitive chunk so the
    excerpt spans both ordinary gameplay and the key moment.
    """
    source = context.library.source(video_id)
    sensitivity = context.oracle.sensitivity_curve(source)
    peak = int(np.argmax(sensitivity))
    start = int(np.clip(peak - num_chunks // 2, 0, source.num_chunks - num_chunks))
    clip_source = SourceVideo.from_descriptors(
        video_id=f"{video_id}-clip",
        genre=source.genre,
        descriptors=source.descriptors[start : start + num_chunks],
        chunk_duration_s=source.chunk_duration_s,
        name=f"{source.name} (clip)",
    )
    encoder = SyntheticEncoder(seed=context.seed + 2)
    return encoder.encode(clip_source, context.library.ladder)


@experiment("fig01", group="sensitivity", figures=("1",))
def fig01_video_series_mos(
    context: ExperimentContext,
    video_id: str = "soccer1",
    clip_chunks: int = 6,
    stall_s: float = 1.0,
) -> Dict[str, object]:
    """Figure 1: MOS of renderings with a 1-s stall at different positions.

    Returns the per-position MOS (from the simulated crowd) plus the latent
    true QoE, for a short clip of the requested video.
    """
    clip = _short_clip(context, video_id, clip_chunks)
    series = make_video_series(clip, QualityIncident.rebuffering(0, stall_s))
    campaign = MTurkCampaign(
        oracle=context.oracle,
        config=CampaignConfig(
            ratings_per_rendering=max(10, context.scale.step1_ratings),
            seed=context.seed + 5,
        ),
    )
    result = campaign.run(series, reference=render_pristine(clip))
    mos = [result.normalized_mos[r.render_id] for r in series]
    true_qoe = [context.oracle.true_qoe(r) for r in series]
    return {
        "video_id": video_id,
        "positions_s": [i * clip.chunk_duration_s for i in range(len(series))],
        "mos": mos,
        "true_qoe": true_qoe,
        "max_min_gap": (max(mos) - min(mos)) / max(min(mos), 1e-9),
        "most_sensitive_chunk": int(np.argmin(mos)),
    }


@experiment("fig03", group="sensitivity", figures=("3",))
def fig03_qoe_gap_cdf(
    context: ExperimentContext,
    window_chunks: int = 3,
) -> Dict[str, object]:
    """Figure 3: CDF of the max–min QoE gap per video series.

    One series per (video, incident type); the gap is also recomputed inside
    sliding 12-second windows (3 chunks) to show the variability is local.
    """
    whole_video_gaps: List[float] = []
    windowed_gaps: List[float] = []
    items = [
        (context.oracle, encoded, incident)
        for encoded in context.videos()
        for incident in STANDARD_INCIDENTS.values()
    ]
    for series_qoe in context.runner.map_ordered(_series_true_qoe, items):
        qoe = np.array(series_qoe)
        q_min, q_max = float(qoe.min()), float(qoe.max())
        whole_video_gaps.append((q_max - q_min) / max(q_min, 1e-9))
        for start in range(0, qoe.size - window_chunks + 1, window_chunks):
            window = qoe[start : start + window_chunks]
            w_min, w_max = float(window.min()), float(window.max())
            windowed_gaps.append((w_max - w_min) / max(w_min, 1e-9))
    whole_x, whole_cdf = cdf_points(whole_video_gaps)
    return {
        "num_series": len(whole_video_gaps),
        "whole_video_gaps": whole_video_gaps,
        "whole_video_cdf": (whole_x.tolist(), whole_cdf.tolist()),
        "windowed_gaps": windowed_gaps,
        "fraction_above_40pct": float(np.mean(np.array(whole_video_gaps) > 0.4)),
        "median_gap": float(np.median(whole_video_gaps)),
    }


@experiment("fig04", group="sensitivity", figures=("4",))
def fig04_incident_positions(
    context: ExperimentContext,
    video_id: str = "soccer1",
    clip_chunks: int = 6,
) -> Dict[str, object]:
    """Figure 4: QoE vs incident position for the three incident types."""
    clip = _short_clip(context, video_id, clip_chunks)
    curves: Dict[str, List[float]] = {}
    for name, incident in STANDARD_INCIDENTS.items():
        series = make_video_series(clip, incident)
        curves[name] = [context.oracle.true_qoe(r) for r in series]
    rankings_agree = spearman_correlation(
        curves["rebuffer_1s"], curves["rebuffer_4s"]
    )
    return {
        "video_id": video_id,
        "positions_s": [i * clip.chunk_duration_s for i in range(clip.num_chunks)],
        "curves": curves,
        "rank_correlation_1s_vs_4s": rankings_agree,
    }


@experiment("fig05", group="sensitivity", figures=("5",))
def fig05_incident_rank_correlation(context: ExperimentContext) -> Dict[str, object]:
    """Figure 5: per-video rank correlation of QoE between incident types."""
    corr_1s_vs_4s: List[float] = []
    corr_1s_vs_drop: List[float] = []
    video_ids: List[str] = []
    videos = context.videos()
    incident_names = list(STANDARD_INCIDENTS)
    items = [
        (context.oracle, encoded, STANDARD_INCIDENTS[name])
        for encoded in videos
        for name in incident_names
    ]
    scored = context.runner.map_ordered(_series_true_qoe, items)
    for video_index, encoded in enumerate(videos):
        series_by_incident = {
            name: scored[video_index * len(incident_names) + offset]
            for offset, name in enumerate(incident_names)
        }
        video_ids.append(encoded.source.video_id)
        corr_1s_vs_4s.append(
            spearman_correlation(
                series_by_incident["rebuffer_1s"], series_by_incident["rebuffer_4s"]
            )
        )
        corr_1s_vs_drop.append(
            spearman_correlation(
                series_by_incident["rebuffer_1s"],
                series_by_incident["bitrate_drop_4s"],
            )
        )
    return {
        "video_ids": video_ids,
        "rank_correlation_1s_vs_4s": corr_1s_vs_4s,
        "rank_correlation_1s_vs_drop": corr_1s_vs_drop,
        "mean_1s_vs_4s": float(np.mean(corr_1s_vs_4s)),
        "mean_1s_vs_drop": float(np.mean(corr_1s_vs_drop)),
    }


@experiment("fig20", group="sensitivity", figures=("20",))
def fig20_cv_models(
    context: ExperimentContext,
    video_ids: Sequence[str] = ("lava", "tank", "animal", "soccer2"),
    num_chunks: int = 5,
) -> Dict[str, object]:
    """Figure 20 (Appendix D): CV highlight models vs user-study sensitivity.

    For each of the paper's four example videos, compare the normalised
    highlight scores of the three CV baselines against the (user-study)
    sensitivity of the first few chunks.
    """
    models = all_highlight_models()
    per_video: Dict[str, Dict[str, List[float]]] = {}
    correlations: Dict[str, List[float]] = {m.name: [] for m in models}
    for video_id in video_ids:
        source = context.library.source(video_id)
        truth = normalize_to_unit(
            context.oracle.sensitivity_curve(source)[:num_chunks]
        )
        per_video[video_id] = {"user_study": truth.tolist()}
        for model in models:
            scores = model.chunk_scores(source)[:num_chunks]
            per_video[video_id][model.name] = scores.tolist()
            correlations[model.name].append(
                spearman_correlation(scores, truth)
                if len(set(truth.tolist())) > 1
                else 0.0
            )
    return {
        "per_video": per_video,
        "mean_rank_correlation": {
            name: float(np.mean(values)) for name, values in correlations.items()
        },
    }
