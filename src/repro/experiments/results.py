"""Typed, versioned experiment artifacts.

A :class:`ResultSet` is what :func:`repro.experiments.registry.run` returns:
the experiment's data dict plus provenance metadata (spec, spec hash, git
revision, scale, seed, wall time, environment fingerprint).

An :class:`ArtifactStore` persists result sets content-addressed by
:meth:`~repro.experiments.spec.ExperimentSpec.spec_hash` —

::

    <root>/<experiment>/<spec_hash>/result.json    # full typed payload
    <root>/<experiment>/<spec_hash>/result.csv     # best-effort tabular view
    <root>/cells/<context_hash>/<key_hash>.json    # finished grid cells

— so re-running an identical spec is a pure cache hit, and an interrupted
grid resumes from its finished (algorithm, video, trace) cells via
:class:`CellCache` instead of recomputing them.  Cells are keyed by
:meth:`~repro.experiments.spec.ExperimentSpec.context_hash`, which means
figures that sweep the same grid (12a/13/14/headline…) share cells.

Every write is crash-consistent and every read is verified
(:mod:`repro.faults.integrity`): payloads land atomically
(write-tmp-then-rename) with an embedded content checksum, and a file
that fails verification on load — torn by a crash or rotted by a flaky
disk — is moved to ``<root>/quarantine/`` with a reason record and
recomputed, never silently trusted and never silently dropped.
Quarantines are counted in the store's
:class:`~repro.faults.log.FaultLog` (``store.fault_log``).
"""

from __future__ import annotations

import csv
import hashlib
import io
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.experiments.spec import ExperimentSpec
from repro.faults.integrity import (
    QUARANTINE_DIR,
    atomic_write_text,
    attach_checksum,
    quarantine_file,
    verify_checksum,
)
from repro.faults.log import FaultLog
from repro.obs.metrics import get_registry
from repro.obs.trace import TRACE, trace_span
from repro.utils.validation import require

#: Bump when the on-disk layout changes incompatibly; loaders refuse newer
#: formats instead of misreading them (mirrors the checkpoint store).
RESULTSET_FORMAT_VERSION = 1

_RESULT_FILE = "result.json"
_CSV_FILE = "result.csv"


@dataclass
class ResultSet:
    """One experiment run's typed output.

    Attributes
    ----------
    experiment: registered experiment name.
    spec: the :class:`ExperimentSpec` that produced the data.
    data: the experiment function's (JSON-serialisable) result dict.
    meta: provenance — git revision, scale, seed, wall time, environment.
    cache_hit: ``True`` when this set was served from an
        :class:`ArtifactStore` rather than recomputed (never persisted).
    """

    experiment: str
    spec: ExperimentSpec
    data: Dict[str, object]
    meta: Dict[str, object] = field(default_factory=dict)
    cache_hit: bool = False

    @property
    def spec_hash(self) -> str:
        """Content address of the producing spec."""
        return self.spec.spec_hash()

    def data_json(self) -> str:
        """Canonical JSON of the data — the bit-identity the seeding
        guarantees are asserted on."""
        return json.dumps(self.data, sort_keys=True)

    def to_payload(self) -> Dict[str, object]:
        """Full JSON-serialisable payload (what ``result.json`` holds)."""
        return {
            "format_version": RESULTSET_FORMAT_VERSION,
            "experiment": self.experiment,
            "spec": self.spec.to_dict(),
            "spec_hash": self.spec_hash,
            "meta": dict(self.meta),
            "data": self.data,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "ResultSet":
        """Rebuild a result set from :meth:`to_payload` output."""
        version = int(payload.get("format_version", 0))
        require(
            version <= RESULTSET_FORMAT_VERSION,
            f"result set has format version {version}; "
            f"this build reads up to {RESULTSET_FORMAT_VERSION}",
        )
        return cls(
            experiment=str(payload["experiment"]),
            spec=ExperimentSpec.from_dict(payload["spec"]),
            data=dict(payload["data"]),
            meta=dict(payload.get("meta", {})),
        )

    # ------------------------------------------------------------- reporting

    def summary_rows(self) -> List[Dict[str, object]]:
        """A tabular view of the data for CSV export / the ``report``
        subcommand: the experiment's ``rows`` when it publishes them,
        otherwise the scalar top-level entries as (key, value) pairs."""
        rows = self.data.get("rows")
        if isinstance(rows, list) and rows and all(
            isinstance(row, dict) for row in rows
        ):
            return rows
        flat = [
            {"key": key, "value": value}
            for key, value in sorted(self.data.items())
            if isinstance(value, (int, float, str, bool))
        ]
        return flat


class CellCache:
    """Finished-cell store one grid sweep reads/writes while running.

    Each cell is one scalar-ish JSON value under a string key (e.g.
    ``grid/SENSEI/soccer1/trace-02``).  ``read=False`` turns lookups off
    (used by ``--force`` so a forced rerun recomputes but still repairs the
    cache); a ``None`` directory disables the cache entirely, which is also
    the no-store default of :func:`repro.experiments.registry.run`.
    """

    def __init__(
        self,
        directory: Union[str, Path, None],
        read: bool = True,
        write: bool = True,
        quarantine_root: Union[str, Path, None] = None,
        fault_log: Optional[FaultLog] = None,
    ) -> None:
        self.directory = Path(directory) if directory is not None else None
        self.read = bool(read)
        self.write = bool(write)
        self.quarantine_root = (
            Path(quarantine_root)
            if quarantine_root is not None
            else (
                self.directory / QUARANTINE_DIR
                if self.directory is not None
                else None
            )
        )
        self.fault_log = fault_log if fault_log is not None else FaultLog()
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> Path:
        digest = hashlib.sha256(key.encode()).hexdigest()[:24]
        return self.directory / f"{digest}.json"

    def get(self, key: str) -> Optional[object]:
        """The cached value for ``key``, or ``None``.

        A cell that fails to parse or fails its checksum — truncated by a
        crash mid-write (pre-atomic-write caches) or corrupted by a flaky
        disk — is *quarantined with a warning* and reported as a miss, so
        the sweep recomputes it: resume can never be poisoned silently,
        and the evidence is preserved under ``quarantine/``.
        """
        if self.directory is None or not self.read:
            return None
        with trace_span("cells.get"):
            value = self._get_verified(key)
        if TRACE.enabled:
            name = "cells.hits" if value is not None else "cells.misses"
            get_registry().counter(name).inc()
        return value

    def _get_verified(self, key: str) -> Optional[object]:
        path = self._path(key)
        if not path.exists():
            self.misses += 1
            return None
        reason = None
        payload = None
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as error:
            reason = f"unreadable cell: {type(error).__name__}: {error}"
        if payload is not None and not verify_checksum(payload):
            reason = "cell checksum mismatch"
        if reason is not None:
            quarantine_file(
                path, self.quarantine_root, reason, fault_log=self.fault_log
            )
            self.misses += 1
            return None
        if payload.get("key") != key:  # hash-prefix collision: treat as miss
            self.misses += 1
            return None
        self.hits += 1
        return payload["value"]

    def put(self, key: str, value: object) -> None:
        """Persist one finished cell (atomically — write-then-rename, so a
        kill mid-write never leaves a truncated cell behind — with an
        embedded checksum so later corruption cannot pass as the value)."""
        if self.directory is None or not self.write:
            return
        with trace_span("cells.put"):
            self.directory.mkdir(parents=True, exist_ok=True)
            payload = attach_checksum({"key": key, "value": value})
            atomic_write_text(
                self._path(key), json.dumps(payload, sort_keys=True)
            )


def _safe_name(name: str) -> str:
    return "".join(c if c.isalnum() or c in "-_." else "_" for c in name)


class ArtifactStore:
    """Content-addressed, versioned store of :class:`ResultSet`s.

    All writes are atomic and checksummed; all reads verify.  A corrupt
    ``result.json`` is quarantined under ``<root>/quarantine/`` (reason
    record included, counted in :attr:`fault_log`) and treated as absent,
    so the registry recomputes it instead of crashing on it — or worse,
    serving it.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        #: Integrity accounting (quarantines) for this store's lifetime;
        #: shared with every :class:`CellCache` it hands out.
        self.fault_log = FaultLog()

    # ----------------------------------------------------------------- paths

    def path_for(self, spec: ExperimentSpec) -> Path:
        """Directory one spec's artifacts live in."""
        return self.root / _safe_name(spec.experiment) / spec.spec_hash()

    @property
    def quarantine_root(self) -> Path:
        """Where this store collects corrupt files (and reason records)."""
        return self.root / QUARANTINE_DIR

    def cell_cache(
        self, spec: ExperimentSpec, read: bool = True
    ) -> CellCache:
        """The finished-cell cache shared by every spec with this spec's
        :meth:`~repro.experiments.spec.ExperimentSpec.context_hash`."""
        return CellCache(
            self.root / "cells" / spec.context_hash(),
            read=read,
            quarantine_root=self.quarantine_root,
            fault_log=self.fault_log,
        )

    # ------------------------------------------------------------------ load

    def _read_payload(self, path: Path) -> Optional[Dict[str, object]]:
        """Parse + verify one ``result.json``; quarantine and return
        ``None`` when it fails either check."""
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as error:
            quarantine_file(
                path,
                self.quarantine_root,
                f"unreadable artifact: {type(error).__name__}: {error}",
                fault_log=self.fault_log,
            )
            return None
        if not verify_checksum(payload):
            quarantine_file(
                path,
                self.quarantine_root,
                "artifact checksum mismatch",
                fault_log=self.fault_log,
            )
            return None
        return payload

    def load(self, spec: ExperimentSpec) -> Optional[ResultSet]:
        """The stored result set for ``spec``, or ``None`` when absent
        (a corrupt artifact is quarantined and reported absent, so the
        caller recomputes it)."""
        path = self.path_for(spec) / _RESULT_FILE
        if not path.exists():
            return None
        with trace_span("artifact.load"):
            payload = self._read_payload(path)
        if payload is None:
            return None
        result = ResultSet.from_payload(payload)
        require(
            result.spec_hash == spec.spec_hash(),
            f"artifact at {path} does not match spec hash {spec.spec_hash()}",
        )
        result.cache_hit = True
        return result

    # ------------------------------------------------------------------ save

    def save(self, result: ResultSet) -> Path:
        """Persist ``result.json`` + ``result.csv``; returns the directory.

        Both files are written atomically (write-tmp-then-rename), and the
        JSON payload embeds a content checksum, so a crash mid-save leaves
        either the previous artifact or the new one — never a truncated
        file ``entries()``/``find()`` would then choke on.
        """
        with trace_span("artifact.save"):
            directory = self.path_for(result.spec)
            directory.mkdir(parents=True, exist_ok=True)
            payload = attach_checksum(result.to_payload())
            atomic_write_text(
                directory / _RESULT_FILE,
                json.dumps(payload, indent=2, sort_keys=True) + "\n",
            )
            rows = result.summary_rows()
            if rows:
                columns: List[str] = []
                for row in rows:
                    for key in row:
                        if key not in columns:
                            columns.append(key)
                buffer = io.StringIO()
                writer = csv.DictWriter(buffer, fieldnames=columns)
                writer.writeheader()
                writer.writerows(rows)
                atomic_write_text(directory / _CSV_FILE, buffer.getvalue())
        return directory

    # ----------------------------------------------------------------- query

    def entries(self) -> List[Dict[str, object]]:
        """Summaries of every stored result set (for ``repro report``).

        Corrupt artifacts are quarantined and skipped — one torn file no
        longer takes the whole report down with it.
        """
        found: List[Dict[str, object]] = []
        if not self.root.exists():
            return found
        for path in sorted(self.root.glob(f"*/*/{_RESULT_FILE}")):
            payload = self._read_payload(path)
            if payload is None:
                continue
            meta = payload.get("meta", {})
            found.append(
                {
                    "experiment": payload.get("experiment"),
                    "spec_hash": payload.get("spec_hash"),
                    "scale": payload.get("spec", {}).get("scale"),
                    "seed": payload.get("spec", {}).get("seed"),
                    "git_revision": meta.get("git_revision"),
                    "wall_time_s": meta.get("wall_time_s"),
                    "path": str(path.parent),
                }
            )
        return found

    def find(self, token: str) -> Optional[ResultSet]:
        """Look an artifact up by experiment name or spec-hash prefix.

        Names resolve to the most recently written matching artifact;
        corrupt candidates are quarantined and skipped.
        """
        matches = [
            path
            for path in self.root.glob(f"*/*/{_RESULT_FILE}")
            if path.parent.name.startswith(token)
            or path.parent.parent.name == _safe_name(token)
        ]
        for path in sorted(matches, key=lambda p: p.stat().st_mtime,
                           reverse=True):
            payload = self._read_payload(path)
            if payload is not None:
                return ResultSet.from_payload(payload)
        return None
