"""Typed, versioned experiment artifacts.

A :class:`ResultSet` is what :func:`repro.experiments.registry.run` returns:
the experiment's data dict plus provenance metadata (spec, spec hash, git
revision, scale, seed, wall time, environment fingerprint).

An :class:`ArtifactStore` persists result sets content-addressed by
:meth:`~repro.experiments.spec.ExperimentSpec.spec_hash` —

::

    <root>/<experiment>/<spec_hash>/result.json    # full typed payload
    <root>/<experiment>/<spec_hash>/result.csv     # best-effort tabular view
    <root>/cells/<context_hash>/<key_hash>.json    # finished grid cells

— so re-running an identical spec is a pure cache hit, and an interrupted
grid resumes from its finished (algorithm, video, trace) cells via
:class:`CellCache` instead of recomputing them.  Cells are keyed by
:meth:`~repro.experiments.spec.ExperimentSpec.context_hash`, which means
figures that sweep the same grid (12a/13/14/headline…) share cells.
"""

from __future__ import annotations

import csv
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.experiments.spec import ExperimentSpec
from repro.utils.validation import require

#: Bump when the on-disk layout changes incompatibly; loaders refuse newer
#: formats instead of misreading them (mirrors the checkpoint store).
RESULTSET_FORMAT_VERSION = 1

_RESULT_FILE = "result.json"
_CSV_FILE = "result.csv"


@dataclass
class ResultSet:
    """One experiment run's typed output.

    Attributes
    ----------
    experiment: registered experiment name.
    spec: the :class:`ExperimentSpec` that produced the data.
    data: the experiment function's (JSON-serialisable) result dict.
    meta: provenance — git revision, scale, seed, wall time, environment.
    cache_hit: ``True`` when this set was served from an
        :class:`ArtifactStore` rather than recomputed (never persisted).
    """

    experiment: str
    spec: ExperimentSpec
    data: Dict[str, object]
    meta: Dict[str, object] = field(default_factory=dict)
    cache_hit: bool = False

    @property
    def spec_hash(self) -> str:
        """Content address of the producing spec."""
        return self.spec.spec_hash()

    def data_json(self) -> str:
        """Canonical JSON of the data — the bit-identity the seeding
        guarantees are asserted on."""
        return json.dumps(self.data, sort_keys=True)

    def to_payload(self) -> Dict[str, object]:
        """Full JSON-serialisable payload (what ``result.json`` holds)."""
        return {
            "format_version": RESULTSET_FORMAT_VERSION,
            "experiment": self.experiment,
            "spec": self.spec.to_dict(),
            "spec_hash": self.spec_hash,
            "meta": dict(self.meta),
            "data": self.data,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "ResultSet":
        """Rebuild a result set from :meth:`to_payload` output."""
        version = int(payload.get("format_version", 0))
        require(
            version <= RESULTSET_FORMAT_VERSION,
            f"result set has format version {version}; "
            f"this build reads up to {RESULTSET_FORMAT_VERSION}",
        )
        return cls(
            experiment=str(payload["experiment"]),
            spec=ExperimentSpec.from_dict(payload["spec"]),
            data=dict(payload["data"]),
            meta=dict(payload.get("meta", {})),
        )

    # ------------------------------------------------------------- reporting

    def summary_rows(self) -> List[Dict[str, object]]:
        """A tabular view of the data for CSV export / the ``report``
        subcommand: the experiment's ``rows`` when it publishes them,
        otherwise the scalar top-level entries as (key, value) pairs."""
        rows = self.data.get("rows")
        if isinstance(rows, list) and rows and all(
            isinstance(row, dict) for row in rows
        ):
            return rows
        flat = [
            {"key": key, "value": value}
            for key, value in sorted(self.data.items())
            if isinstance(value, (int, float, str, bool))
        ]
        return flat


class CellCache:
    """Finished-cell store one grid sweep reads/writes while running.

    Each cell is one scalar-ish JSON value under a string key (e.g.
    ``grid/SENSEI/soccer1/trace-02``).  ``read=False`` turns lookups off
    (used by ``--force`` so a forced rerun recomputes but still repairs the
    cache); a ``None`` directory disables the cache entirely, which is also
    the no-store default of :func:`repro.experiments.registry.run`.
    """

    def __init__(
        self,
        directory: Union[str, Path, None],
        read: bool = True,
        write: bool = True,
    ) -> None:
        self.directory = Path(directory) if directory is not None else None
        self.read = bool(read)
        self.write = bool(write)
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> Path:
        digest = hashlib.sha256(key.encode()).hexdigest()[:24]
        return self.directory / f"{digest}.json"

    def get(self, key: str) -> Optional[object]:
        """The cached value for ``key``, or ``None``."""
        if self.directory is None or not self.read:
            return None
        path = self._path(key)
        if not path.exists():
            self.misses += 1
            return None
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            # A cell truncated by a crash mid-write is a miss, not an
            # error: resuming interrupted grids is the cache's whole job.
            self.misses += 1
            return None
        if payload.get("key") != key:  # hash-prefix collision: treat as miss
            self.misses += 1
            return None
        self.hits += 1
        return payload["value"]

    def put(self, key: str, value: object) -> None:
        """Persist one finished cell (atomically: write-then-rename, so a
        kill mid-write never leaves a truncated cell behind)."""
        if self.directory is None or not self.write:
            return
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self._path(key)
        scratch = path.with_suffix(".tmp")
        scratch.write_text(
            json.dumps({"key": key, "value": value}, sort_keys=True)
        )
        scratch.replace(path)


def _safe_name(name: str) -> str:
    return "".join(c if c.isalnum() or c in "-_." else "_" for c in name)


class ArtifactStore:
    """Content-addressed, versioned store of :class:`ResultSet`s."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)

    # ----------------------------------------------------------------- paths

    def path_for(self, spec: ExperimentSpec) -> Path:
        """Directory one spec's artifacts live in."""
        return self.root / _safe_name(spec.experiment) / spec.spec_hash()

    def cell_cache(
        self, spec: ExperimentSpec, read: bool = True
    ) -> CellCache:
        """The finished-cell cache shared by every spec with this spec's
        :meth:`~repro.experiments.spec.ExperimentSpec.context_hash`."""
        return CellCache(self.root / "cells" / spec.context_hash(), read=read)

    # ------------------------------------------------------------------ load

    def load(self, spec: ExperimentSpec) -> Optional[ResultSet]:
        """The stored result set for ``spec``, or ``None`` when absent."""
        path = self.path_for(spec) / _RESULT_FILE
        if not path.exists():
            return None
        result = ResultSet.from_payload(json.loads(path.read_text()))
        require(
            result.spec_hash == spec.spec_hash(),
            f"artifact at {path} does not match spec hash {spec.spec_hash()}",
        )
        result.cache_hit = True
        return result

    # ------------------------------------------------------------------ save

    def save(self, result: ResultSet) -> Path:
        """Persist ``result.json`` + ``result.csv``; returns the directory."""
        directory = self.path_for(result.spec)
        directory.mkdir(parents=True, exist_ok=True)
        (directory / _RESULT_FILE).write_text(
            json.dumps(result.to_payload(), indent=2, sort_keys=True) + "\n"
        )
        rows = result.summary_rows()
        if rows:
            columns: List[str] = []
            for row in rows:
                for key in row:
                    if key not in columns:
                        columns.append(key)
            with (directory / _CSV_FILE).open("w", newline="") as handle:
                writer = csv.DictWriter(handle, fieldnames=columns)
                writer.writeheader()
                writer.writerows(rows)
        return directory

    # ----------------------------------------------------------------- query

    def entries(self) -> List[Dict[str, object]]:
        """Summaries of every stored result set (for ``repro report``)."""
        found: List[Dict[str, object]] = []
        if not self.root.exists():
            return found
        for path in sorted(self.root.glob(f"*/*/{_RESULT_FILE}")):
            payload = json.loads(path.read_text())
            meta = payload.get("meta", {})
            found.append(
                {
                    "experiment": payload.get("experiment"),
                    "spec_hash": payload.get("spec_hash"),
                    "scale": payload.get("spec", {}).get("scale"),
                    "seed": payload.get("spec", {}).get("seed"),
                    "git_revision": meta.get("git_revision"),
                    "wall_time_s": meta.get("wall_time_s"),
                    "path": str(path.parent),
                }
            )
        return found

    def find(self, token: str) -> Optional[ResultSet]:
        """Look an artifact up by experiment name or spec-hash prefix.

        Names resolve to the most recently written matching artifact.
        """
        matches = [
            path
            for path in self.root.glob(f"*/*/{_RESULT_FILE}")
            if path.parent.name.startswith(token)
            or path.parent.parent.name == _safe_name(token)
        ]
        if not matches:
            return None
        latest = max(matches, key=lambda path: path.stat().st_mtime)
        return ResultSet.from_payload(json.loads(latest.read_text()))
