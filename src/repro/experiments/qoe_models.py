"""QoE-model accuracy and profiling-cost experiments: Figures 2, 15, 16, 12c
and the Appendix B rating-sanitisation statistics."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.abr.bba import BufferBasedABR
from repro.abr.fugu import FuguABR
from repro.abr.rate import RateBasedABR
from repro.core.profiler import SenseiProfiler
from repro.core.scheduler import SchedulerConfig
from repro.crowd.campaign import CampaignConfig, MTurkCampaign
from repro.crowd.worker import WorkerPool
from repro.experiments.common import ExperimentContext
from repro.experiments.registry import experiment
from repro.player.simulator import simulate_session
from repro.qoe.ksqi import KSQIModel
from repro.qoe.lstm_qoe import LSTMQoEModel
from repro.qoe.metrics import ModelEvaluation, evaluate_model
from repro.qoe.p1203 import P1203Model
from repro.utils.stats import pearson_correlation
from repro.video.rendering import RenderedVideo


def _streamed_dataset(
    context: ExperimentContext,
) -> Tuple[List[RenderedVideo], List[float]]:
    """Renderings produced by streaming every (ABR, video, trace) combination,
    labelled with their true QoE — the dataset of §2.2 / §7.3."""
    abrs = [BufferBasedABR(), RateBasedABR(), FuguABR()]
    renderings: List[RenderedVideo] = []
    labels: List[float] = []
    for encoded in context.videos():
        for trace in context.traces():
            for abr in abrs:
                result = simulate_session(abr, encoded, trace)
                renderings.append(result.rendered)
                labels.append(context.oracle.true_qoe(result.rendered))
    return renderings, labels


def _split(
    renderings: List[RenderedVideo], labels: List[float], train_fraction: float,
    seed: int,
) -> Tuple[List[RenderedVideo], List[float], List[RenderedVideo], List[float]]:
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(renderings))
    cut = max(4, int(train_fraction * len(renderings)))
    train_idx, test_idx = order[:cut], order[cut:]
    if test_idx.size == 0:
        test_idx = train_idx
    return (
        [renderings[i] for i in train_idx],
        [labels[i] for i in train_idx],
        [renderings[i] for i in test_idx],
        [labels[i] for i in test_idx],
    )


@experiment("fig02-15", group="qoe", figures=("2", "15"))
def fig02_fig15_model_accuracy(
    context: ExperimentContext,
    train_fraction: float = 0.6,
    lstm_epochs: int = 8,
) -> Dict[str, object]:
    """Figures 2 and 15: prediction error, discordant pairs, PLCC and SRCC of
    SENSEI's QoE model against KSQI, P.1203 and LSTM-QoE.

    All baselines are trained on the train split of the streamed-rendering
    dataset; SENSEI's model additionally uses the per-video weights from the
    context's profiling runs (its crowdsourcing step).
    """
    renderings, labels = _streamed_dataset(context)
    train_r, train_y, test_r, test_y = _split(
        renderings, labels, train_fraction, seed=context.seed + 41
    )

    ksqi = KSQIModel().fit(train_r, train_y)
    p1203 = P1203Model(seed=context.seed + 42).fit(train_r, train_y)
    lstm = LSTMQoEModel(epochs=lstm_epochs, seed=context.seed + 43).fit(
        train_r, train_y
    )
    sensei = context.sensei_qoe_model()
    sensei.fit(train_r, train_y)

    evaluations = [
        evaluate_model(model, test_r, test_y)
        for model in (sensei, ksqi, lstm, p1203)
    ]
    best_baseline_error = min(e.mean_relative_error for e in evaluations[1:])
    sensei_error = evaluations[0].mean_relative_error
    return {
        "num_renderings": len(renderings),
        "num_test": len(test_r),
        "evaluations": {e.model_name: e.as_dict() for e in evaluations},
        "sensei_error_reduction_vs_best_baseline": (
            (best_baseline_error - sensei_error) / max(best_baseline_error, 1e-9)
        ),
    }


@experiment("fig16", group="qoe", figures=("16",))
def fig16_cost_pruning_sweeps(
    context: ExperimentContext,
    video_id: str = "soccer1",
) -> Dict[str, object]:
    """Figure 16: QoE-model accuracy vs crowdsourcing cost for the four
    scheduler knobs (bitrate levels B, rebuffer lengths F, raters M, α).

    Accuracy is the Pearson correlation between the inferred weights and the
    latent sensitivity (the quantity the weights are supposed to estimate);
    cost is the campaign payment per source minute.
    """
    encoded = context.library.encoded(video_id)
    truth = context.oracle.normalized_sensitivity(encoded.source)

    def run_config(config: SchedulerConfig) -> Tuple[float, float]:
        profiler = SenseiProfiler(
            oracle=context.oracle,
            scheduler_config=config,
            campaign_seed=context.seed + 53,
        )
        result = profiler.profile_video(encoded)
        accuracy = pearson_correlation(result.profile.weights, truth)
        return accuracy, result.cost_per_source_minute_usd

    base = SchedulerConfig(
        step1_ratings=context.scale.step1_ratings,
        step2_ratings=context.scale.step2_ratings,
    )
    sweeps: Dict[str, List[Dict[str, float]]] = {}
    sweeps["num_bitrate_levels"] = [
        dict(zip(("value", "accuracy", "cost_usd_per_min"),
                 (b, *run_config(SchedulerConfig(
                     step1_ratings=base.step1_ratings,
                     step2_ratings=base.step2_ratings,
                     step2_num_bitrate_levels=b,
                 )))))
        for b in (0, 1, 2)
    ]
    sweeps["num_rebuffer_lengths"] = [
        dict(zip(("value", "accuracy", "cost_usd_per_min"),
                 (f, *run_config(SchedulerConfig(
                     step1_ratings=base.step1_ratings,
                     step2_ratings=base.step2_ratings,
                     step2_num_rebuffer_lengths=f,
                 )))))
        for f in (0, 1, 2)
    ]
    sweeps["raters_per_video"] = [
        dict(zip(("value", "accuracy", "cost_usd_per_min"),
                 (m, *run_config(SchedulerConfig(
                     step1_ratings=m,
                     step2_ratings=max(1, m // 2),
                 )))))
        for m in (4, 8, 12)
    ]
    sweeps["deviation_threshold"] = [
        dict(zip(("value", "accuracy", "cost_usd_per_min"),
                 (alpha, *run_config(SchedulerConfig(
                     step1_ratings=base.step1_ratings,
                     step2_ratings=base.step2_ratings,
                     deviation_threshold=alpha,
                 )))))
        for alpha in (0.0, 0.06, 0.2)
    ]
    return {"video_id": video_id, "sweeps": sweeps}


@experiment("fig12c", group="qoe", figures=("12c",))
def fig12c_cost_vs_qoe(
    context: ExperimentContext,
    video_id: str = "mountain",
) -> Dict[str, object]:
    """Figure 12c: crowdsourcing cost (USD per source minute) vs achieved QoE,
    with and without the two-step cost pruning.

    Uses the catalogue's shortest video (Mountain, 1:24) so the per-minute
    cost is comparable to the paper's 1-minute framing, and evaluates the
    resulting weights by streaming SENSEI-Fugu against Fugu.
    """
    encoded = context.library.encoded(video_id)
    arms = {}
    for name, use_two_step in (("pruned", True), ("exhaustive", False)):
        profiler = SenseiProfiler(
            oracle=context.oracle,
            scheduler_config=SchedulerConfig(
                step1_ratings=context.scale.step1_ratings,
                step2_ratings=context.scale.step2_ratings,
            ),
            campaign_seed=context.seed + 61,
            use_two_step=use_two_step,
        )
        result = profiler.profile_video(encoded)
        qoe_values = []
        for trace in context.traces():
            qoe_values.append(
                context.oracle.true_qoe(
                    simulate_session(
                        context.make_sensei_fugu(), encoded, trace,
                        chunk_weights=result.profile.weights,
                    ).rendered
                )
            )
        arms[name] = {
            "cost_usd_per_min": result.cost_per_source_minute_usd,
            "mean_qoe": float(np.mean(qoe_values)),
            "num_renderings": result.num_renderings,
        }
    baseline_qoe = float(
        np.mean(
            [
                context.oracle.true_qoe(
                    simulate_session(context.make_fugu(), encoded, trace).rendered
                )
                for trace in context.traces()
            ]
        )
    )
    cost_saving = 1.0 - (
        arms["pruned"]["cost_usd_per_min"]
        / max(arms["exhaustive"]["cost_usd_per_min"], 1e-9)
    )
    return {
        "video_id": video_id,
        "arms": arms,
        "base_abr_qoe": baseline_qoe,
        "pruning_cost_saving": cost_saving,
    }


@experiment("appendix-b", group="qoe", figures=("Appendix B/C",))
def appendix_b_rating_sanitization(
    context: ExperimentContext,
    video_id: str = "soccer1",
    clip_chunks: int = 8,
) -> Dict[str, object]:
    """Appendix B/C: rejection-rate statistics of the simulated campaigns.

    Compares master-only recruitment against the full worker pool, mirroring
    the paper's observation that master Turkers are rejected far less often.
    """
    from repro.experiments.sensitivity import _short_clip
    from repro.video.rendering import QualityIncident, make_video_series, render_pristine

    clip = _short_clip(context, video_id, clip_chunks)
    series = make_video_series(clip, QualityIncident.rebuffering(0, 1.0))
    results = {}
    for label, masters_only, master_fraction in (
        ("masters_only", True, 0.8),
        ("all_workers", False, 0.3),
    ):
        campaign = MTurkCampaign(
            oracle=context.oracle,
            worker_pool=WorkerPool(
                master_fraction=master_fraction, seed=context.seed + 71
            ),
            config=CampaignConfig(
                ratings_per_rendering=10,
                masters_only=masters_only,
                seed=context.seed + 72,
            ),
        )
        outcome = campaign.run(series, reference=render_pristine(clip))
        results[label] = {
            "rejection_rate": outcome.rejection_rate(),
            "num_participants": outcome.num_participants,
            "total_paid_usd": outcome.total_paid_usd,
        }
    return results
