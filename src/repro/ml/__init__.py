"""Machine-learning substrate implemented from scratch on NumPy.

The paper's components rely on several learned models: linear regression for
SENSEI's weight inference (§4.2) and for KSQI; a random-forest regressor for
the P.1203 baseline; an LSTM network for the LSTM-QoE baseline; and an
actor–critic policy-gradient agent for Pensieve.  All are implemented here
without external ML frameworks.
"""

from repro.ml.linreg import LinearRegression, RidgeRegression, fit_nonnegative_weights
from repro.ml.forest import DecisionTreeRegressor, RandomForestRegressor
from repro.ml.nn import AdamOptimizer, MLP, relu, softmax
from repro.ml.lstm import LSTMCell, LSTMRegressor
from repro.ml.rl import ActorCriticAgent, ActorCriticConfig, EpisodeBuffer

__all__ = [
    "LinearRegression",
    "RidgeRegression",
    "fit_nonnegative_weights",
    "DecisionTreeRegressor",
    "RandomForestRegressor",
    "AdamOptimizer",
    "MLP",
    "relu",
    "softmax",
    "LSTMCell",
    "LSTMRegressor",
    "ActorCriticAgent",
    "ActorCriticConfig",
    "EpisodeBuffer",
]
