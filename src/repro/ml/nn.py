"""Minimal neural-network building blocks: MLP layers, activations, Adam.

Used by the Pensieve-style actor–critic agent (policy and value networks)
and by the LSTM-QoE output head.  Backpropagation is implemented manually —
each module exposes ``forward`` and ``backward`` so the RL and sequence
models can compose them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.utils.rand import rng_from_seed
from repro.utils.validation import require


def row_matmul(x: np.ndarray, w: np.ndarray) -> np.ndarray:
    """Matrix product ``x @ w`` with a *row-stable* summation order.

    Contract: row ``i`` of ``row_matmul(X, W)`` is bitwise equal to
    ``row_matmul(X[i:i+1], W)`` (and to the 1-D ``row_matmul(X[i], W)``)
    for every batch size, dtype, and row stride.  Plain ``@`` does not
    guarantee this — BLAS gemm blocks/vectorises the reduction differently
    for ``(N, D) @ (D, H)`` than for a single row, so batching changes the
    float summation order and therefore the low bits.  ``np.einsum`` with
    an explicit reduction subscript keeps one fixed per-row loop order
    regardless of batch shape, which is what lets the batched RL driver be
    bit-identical to the scalar path *by construction*.

    Accepts 1-D ``x`` (one row) or 2-D ``x`` (a batch of rows).
    """
    x = np.asarray(x)
    w = np.asarray(w)
    if x.ndim == 1:
        return np.einsum("d,dh->h", x, w)
    return np.einsum("nd,dh->nh", x, w)


def relu(x: np.ndarray) -> np.ndarray:
    """Rectified linear unit."""
    return np.maximum(0.0, x)


def relu_grad(x: np.ndarray) -> np.ndarray:
    """Gradient mask of the ReLU."""
    return (x > 0).astype(float)


def softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically stable softmax over the last axis."""
    shifted = logits - np.max(logits, axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=-1, keepdims=True)


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Logistic sigmoid."""
    return 1.0 / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))


class AdamOptimizer:
    """Adam optimiser over a dictionary of named parameter arrays."""

    def __init__(
        self,
        learning_rate: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
    ) -> None:
        require(learning_rate > 0, "learning_rate must be positive")
        self.learning_rate = float(learning_rate)
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.epsilon = float(epsilon)
        self._first_moment: Dict[str, np.ndarray] = {}
        self._second_moment: Dict[str, np.ndarray] = {}
        self._step = 0

    def state_dict(self, prefix: str = "") -> Dict[str, np.ndarray]:
        """Serialisable optimiser state (moments, step count, learning rate).

        Every entry is a NumPy array so the whole dict can go straight into
        ``np.savez``; ``prefix`` namespaces the keys when several optimisers
        share one archive (e.g. actor and critic in a checkpoint).
        """
        state: Dict[str, np.ndarray] = {
            f"{prefix}step": np.array(self._step, dtype=np.int64),
            f"{prefix}learning_rate": np.array(self.learning_rate),
        }
        for name, value in self._first_moment.items():
            state[f"{prefix}m/{name}"] = value.copy()
        for name, value in self._second_moment.items():
            state[f"{prefix}v/{name}"] = value.copy()
        return state

    def load_state_dict(
        self, state: Dict[str, np.ndarray], prefix: str = ""
    ) -> None:
        """Restore state produced by :meth:`state_dict` (same ``prefix``)."""
        require(f"{prefix}step" in state, f"missing optimizer key {prefix}step")
        self._step = int(state[f"{prefix}step"])
        self.learning_rate = float(state[f"{prefix}learning_rate"])
        self._first_moment = {}
        self._second_moment = {}
        for key, value in state.items():
            if key.startswith(f"{prefix}m/"):
                self._first_moment[key[len(prefix) + 2:]] = np.array(value)
            elif key.startswith(f"{prefix}v/"):
                self._second_moment[key[len(prefix) + 2:]] = np.array(value)

    def update(
        self, parameters: Dict[str, np.ndarray], gradients: Dict[str, np.ndarray]
    ) -> None:
        """Apply one Adam step in place."""
        self._step += 1
        for name, grad in gradients.items():
            if name not in parameters:
                continue
            if name not in self._first_moment:
                self._first_moment[name] = np.zeros_like(grad)
                self._second_moment[name] = np.zeros_like(grad)
            m = self._first_moment[name]
            v = self._second_moment[name]
            m[...] = self.beta1 * m + (1 - self.beta1) * grad
            v[...] = self.beta2 * v + (1 - self.beta2) * grad * grad
            m_hat = m / (1 - self.beta1 ** self._step)
            v_hat = v / (1 - self.beta2 ** self._step)
            parameters[name] -= (
                self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)
            )


class MLP:
    """A small fully connected network with ReLU hidden layers.

    The output layer is linear; callers apply softmax (policy head) or use
    the raw scalar (value head / regressors) as needed.
    """

    def __init__(
        self,
        input_dim: int,
        hidden_dims: Sequence[int],
        output_dim: int,
        seed: int = 0,
    ) -> None:
        require(input_dim >= 1, "input_dim must be >= 1")
        require(output_dim >= 1, "output_dim must be >= 1")
        self.input_dim = int(input_dim)
        self.hidden_dims = [int(h) for h in hidden_dims]
        self.output_dim = int(output_dim)
        rng = rng_from_seed(seed)
        self.parameters: Dict[str, np.ndarray] = {}
        dims = [self.input_dim] + self.hidden_dims + [self.output_dim]
        for layer, (fan_in, fan_out) in enumerate(zip(dims[:-1], dims[1:])):
            scale = np.sqrt(2.0 / fan_in)
            self.parameters[f"W{layer}"] = scale * rng.standard_normal((fan_in, fan_out))
            self.parameters[f"b{layer}"] = np.zeros(fan_out)
        self.num_layers = len(dims) - 1

    def forward(self, inputs: np.ndarray) -> Tuple[np.ndarray, List[np.ndarray]]:
        """Forward pass; returns (outputs, cached pre-activations/activations).

        Accepts a single state vector (1-D) or a batch of states (2-D, one
        row per state).  The matmuls go through :func:`row_matmul`, so row
        ``i`` of a batched forward is bitwise equal to the scalar forward of
        row ``i`` alone — the invariant the lockstep RL driver and the
        differential suite in ``tests/test_rl_batch.py`` rely on.
        """
        x = np.asarray(inputs, dtype=float)
        single = x.ndim == 1
        if single:
            x = x.reshape(1, -1)
        cache: List[np.ndarray] = [x]
        activation = x
        for layer in range(self.num_layers):
            pre = row_matmul(activation, self.parameters[f"W{layer}"]) + self.parameters[f"b{layer}"]
            cache.append(pre)
            if layer < self.num_layers - 1:
                activation = relu(pre)
                cache.append(activation)
            else:
                activation = pre
        output = activation[0] if single else activation
        return output, cache

    def predict(self, inputs: np.ndarray) -> np.ndarray:
        """Forward pass without keeping the cache."""
        output, _ = self.forward(inputs)
        return output

    def backward(
        self, cache: List[np.ndarray], output_gradient: np.ndarray
    ) -> Dict[str, np.ndarray]:
        """Backward pass; returns gradients keyed like :attr:`parameters`."""
        grad = np.asarray(output_gradient, dtype=float)
        if grad.ndim == 1:
            grad = grad.reshape(1, -1)
        gradients: Dict[str, np.ndarray] = {}
        # cache layout: [input, pre0, act0, pre1, act1, ..., preLast]
        for layer in reversed(range(self.num_layers)):
            if layer == 0:
                layer_input = cache[0]
            else:
                layer_input = cache[2 * layer]
            pre_index = 2 * layer + 1
            gradients[f"W{layer}"] = layer_input.T @ grad
            gradients[f"b{layer}"] = grad.sum(axis=0)
            if layer > 0:
                grad = grad @ self.parameters[f"W{layer}"].T
                grad = grad * relu_grad(cache[pre_index - 1])
        return gradients

    def copy_parameters_from(self, other: "MLP") -> None:
        """Copy parameters from another MLP of the same shape."""
        for name, value in other.parameters.items():
            self.parameters[name] = value.copy()

    def state_dict(self, prefix: str = "") -> Dict[str, np.ndarray]:
        """Copies of all parameter arrays, keys optionally prefixed."""
        return {
            f"{prefix}{name}": value.copy()
            for name, value in self.parameters.items()
        }

    def load_state_dict(
        self, state: Dict[str, np.ndarray], prefix: str = ""
    ) -> None:
        """Restore parameters saved by :meth:`state_dict` (same ``prefix``).

        Shapes must match the network's architecture; extra keys outside the
        prefix are ignored so one archive can hold several networks.
        """
        for name, current in self.parameters.items():
            key = f"{prefix}{name}"
            require(key in state, f"missing parameter {key}")
            value = np.asarray(state[key], dtype=float)
            require(
                value.shape == current.shape,
                f"parameter {key} has shape {value.shape}, "
                f"expected {current.shape}",
            )
            self.parameters[name] = value.copy()
