"""Decision-tree and random-forest regressors (from scratch).

Used by the P.1203-like baseline QoE model, which the paper describes as
combining QP values and quality-incident metrics in a random-forest model.
The implementation is a standard CART regressor with variance-reduction
splits and bootstrap-aggregated trees with feature subsampling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.utils.rand import rng_from_seed
from repro.utils.validation import require


@dataclass
class _TreeNode:
    """One node of a regression tree (leaf when ``feature`` is None)."""

    value: float
    feature: Optional[int] = None
    threshold: float = 0.0
    left: Optional["_TreeNode"] = None
    right: Optional["_TreeNode"] = None

    @property
    def is_leaf(self) -> bool:
        return self.feature is None


class DecisionTreeRegressor:
    """CART regression tree with variance-reduction splitting.

    Parameters
    ----------
    max_depth:
        Maximum tree depth.
    min_samples_split:
        Minimum number of samples required to attempt a split.
    max_features:
        Number of features considered per split (None = all); used by the
        random forest for decorrelation.
    """

    def __init__(
        self,
        max_depth: int = 6,
        min_samples_split: int = 4,
        max_features: Optional[int] = None,
        seed: int = 0,
    ) -> None:
        require(max_depth >= 1, "max_depth must be >= 1")
        require(min_samples_split >= 2, "min_samples_split must be >= 2")
        self.max_depth = int(max_depth)
        self.min_samples_split = int(min_samples_split)
        self.max_features = max_features
        self.seed = int(seed)
        self._root: Optional[_TreeNode] = None

    # ------------------------------------------------------------------ fit

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "DecisionTreeRegressor":
        """Fit the tree; returns ``self``."""
        X = np.asarray(features, dtype=float)
        y = np.asarray(targets, dtype=float)
        require(X.ndim == 2, "features must be 2-D")
        require(y.ndim == 1 and y.size == X.shape[0], "targets must align with rows")
        rng = rng_from_seed(self.seed)
        self._root = self._build(X, y, depth=0, rng=rng)
        return self

    def _build(
        self, X: np.ndarray, y: np.ndarray, depth: int, rng: np.random.Generator
    ) -> _TreeNode:
        node_value = float(np.mean(y))
        if (
            depth >= self.max_depth
            or y.size < self.min_samples_split
            or float(np.var(y)) < 1e-12
        ):
            return _TreeNode(value=node_value)
        split = self._best_split(X, y, rng)
        if split is None:
            return _TreeNode(value=node_value)
        feature, threshold = split
        mask = X[:, feature] <= threshold
        left = self._build(X[mask], y[mask], depth + 1, rng)
        right = self._build(X[~mask], y[~mask], depth + 1, rng)
        return _TreeNode(
            value=node_value, feature=feature, threshold=threshold,
            left=left, right=right,
        )

    def _best_split(
        self, X: np.ndarray, y: np.ndarray, rng: np.random.Generator
    ) -> Optional[Tuple[int, float]]:
        num_features = X.shape[1]
        if self.max_features is None or self.max_features >= num_features:
            candidate_features = np.arange(num_features)
        else:
            candidate_features = rng.choice(
                num_features, size=self.max_features, replace=False
            )
        base_impurity = float(np.var(y)) * y.size
        best: Optional[Tuple[int, float]] = None
        best_gain = 1e-12
        for feature in candidate_features:
            column = X[:, feature]
            # Candidate thresholds at midpoints between sorted unique values.
            unique_vals = np.unique(column)
            if unique_vals.size < 2:
                continue
            thresholds = (unique_vals[:-1] + unique_vals[1:]) / 2.0
            if thresholds.size > 16:
                thresholds = np.quantile(column, np.linspace(0.05, 0.95, 16))
            for threshold in thresholds:
                mask = column <= threshold
                left_count = int(np.sum(mask))
                if left_count == 0 or left_count == y.size:
                    continue
                left_impurity = float(np.var(y[mask])) * left_count
                right_impurity = float(np.var(y[~mask])) * (y.size - left_count)
                gain = base_impurity - left_impurity - right_impurity
                if gain > best_gain:
                    best_gain = gain
                    best = (int(feature), float(threshold))
        return best

    # -------------------------------------------------------------- predict

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predict targets for a feature matrix."""
        require(self._root is not None, "tree is not fitted")
        X = np.asarray(features, dtype=float)
        if X.ndim == 1:
            X = X.reshape(1, -1)
        return np.array([self._predict_row(row) for row in X])

    def _predict_row(self, row: np.ndarray) -> float:
        node = self._root
        while node is not None and not node.is_leaf:
            node = node.left if row[node.feature] <= node.threshold else node.right
        return node.value if node is not None else 0.0


class RandomForestRegressor:
    """Bootstrap-aggregated regression trees with feature subsampling."""

    def __init__(
        self,
        num_trees: int = 20,
        max_depth: int = 6,
        min_samples_split: int = 4,
        feature_fraction: float = 0.7,
        seed: int = 0,
    ) -> None:
        require(num_trees >= 1, "num_trees must be >= 1")
        require(0 < feature_fraction <= 1, "feature_fraction must be in (0, 1]")
        self.num_trees = int(num_trees)
        self.max_depth = int(max_depth)
        self.min_samples_split = int(min_samples_split)
        self.feature_fraction = float(feature_fraction)
        self.seed = int(seed)
        self._trees: List[DecisionTreeRegressor] = []

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "RandomForestRegressor":
        """Fit the ensemble; returns ``self``."""
        X = np.asarray(features, dtype=float)
        y = np.asarray(targets, dtype=float)
        require(X.ndim == 2, "features must be 2-D")
        require(y.size == X.shape[0], "targets must align with rows")
        rng = rng_from_seed(self.seed)
        max_features = max(1, int(round(self.feature_fraction * X.shape[1])))
        self._trees = []
        for tree_index in range(self.num_trees):
            indices = rng.integers(0, X.shape[0], size=X.shape[0])
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                max_features=max_features,
                seed=self.seed + tree_index + 1,
            )
            tree.fit(X[indices], y[indices])
            self._trees.append(tree)
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predict targets by averaging the trees."""
        require(bool(self._trees), "forest is not fitted")
        predictions = np.stack([tree.predict(features) for tree in self._trees])
        return predictions.mean(axis=0)
