"""Actor–critic policy-gradient agent (Pensieve-style, from scratch).

Pensieve trains an A3C agent whose policy maps player state (throughput
history, buffer, next chunk sizes, last bitrate) to a distribution over
bitrate levels, with a value network as baseline and an entropy bonus for
exploration.  This module provides a single-threaded advantage actor–critic
with the same ingredients, small enough to train inside the test/benchmark
budget while exercising the identical SENSEI augmentation path (weights in
the state, proactive-rebuffering actions, reweighted reward).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.ml.nn import MLP, AdamOptimizer, softmax
from repro.utils.rand import rng_from_seed
from repro.utils.validation import require


@dataclass(frozen=True)
class ActorCriticConfig:
    """Hyper-parameters of the actor–critic agent."""

    state_dim: int
    num_actions: int
    hidden_dims: Tuple[int, ...] = (64, 32)
    actor_learning_rate: float = 1e-3
    critic_learning_rate: float = 2e-3
    discount: float = 0.99
    entropy_weight: float = 0.02
    entropy_decay: float = 0.995
    seed: int = 0

    def __post_init__(self) -> None:
        require(self.state_dim >= 1, "state_dim must be >= 1")
        require(self.num_actions >= 2, "num_actions must be >= 2")
        require(0 < self.discount <= 1, "discount must be in (0, 1]")


@dataclass
class EpisodeBuffer:
    """Trajectory storage for one episode (one streaming session)."""

    states: List[np.ndarray] = field(default_factory=list)
    actions: List[int] = field(default_factory=list)
    rewards: List[float] = field(default_factory=list)

    def add(self, state: np.ndarray, action: int, reward: float) -> None:
        """Record one transition."""
        self.states.append(np.asarray(state, dtype=float))
        self.actions.append(int(action))
        self.rewards.append(float(reward))

    def __len__(self) -> int:
        return len(self.states)

    @classmethod
    def from_arrays(
        cls,
        states: np.ndarray,
        actions: np.ndarray,
        rewards: np.ndarray,
    ) -> "EpisodeBuffer":
        """Rebuild a buffer from stacked trajectory arrays.

        The rollout collector ships episodes between processes as three
        arrays (cheaper to pickle than lists of row vectors); this is the
        receiving end.
        """
        states = np.asarray(states, dtype=float)
        actions = np.asarray(actions, dtype=int)
        rewards = np.asarray(rewards, dtype=float)
        require(states.ndim == 2, "states must be a (steps, state_dim) matrix")
        require(
            states.shape[0] == actions.shape[0] == rewards.shape[0],
            "trajectory arrays must have one row per step",
        )
        buffer = cls()
        buffer.states = list(states)
        buffer.actions = [int(action) for action in actions]
        buffer.rewards = [float(reward) for reward in rewards]
        return buffer

    def discounted_returns(self, discount: float) -> np.ndarray:
        """Discounted return from every step to the end of the episode."""
        returns = np.zeros(len(self.rewards))
        running = 0.0
        for index in reversed(range(len(self.rewards))):
            running = self.rewards[index] + discount * running
            returns[index] = running
        return returns


class ActorCriticAgent:
    """Advantage actor–critic with softmax policy and MLP value baseline."""

    def __init__(self, config: ActorCriticConfig) -> None:
        self.config = config
        self.actor = MLP(
            config.state_dim, config.hidden_dims, config.num_actions,
            seed=config.seed,
        )
        self.critic = MLP(
            config.state_dim, config.hidden_dims, 1, seed=config.seed + 1,
        )
        self._actor_optimizer = AdamOptimizer(config.actor_learning_rate)
        self._critic_optimizer = AdamOptimizer(config.critic_learning_rate)
        self._rng = rng_from_seed(config.seed + 2)
        self._entropy_weight = config.entropy_weight

    # ---------------------------------------------------------------- seeding

    def reseed_exploration(self, seed: int) -> None:
        """Reset the exploration stream to a fresh, fully determined state.

        The constructor-seeded stream makes an episode's actions depend on
        how many samples every *earlier* episode consumed, so a rollout
        worker could never reproduce its episodes from a work-order seed
        alone.  Reseeding immediately before each episode makes the episode
        a pure function of (parameters, episode seed) — the property the
        parallel collector's serial ≡ pool guarantee rests on.
        """
        self._rng = rng_from_seed(int(seed))

    # ------------------------------------------------------------- schedules

    @property
    def entropy_weight(self) -> float:
        """Current entropy-bonus coefficient (decays during training)."""
        return self._entropy_weight

    def set_entropy_weight(self, weight: float) -> None:
        """Override the entropy coefficient (trainer-driven schedules)."""
        require(weight >= 0, "entropy weight must be >= 0")
        self._entropy_weight = float(weight)

    @property
    def learning_rates(self) -> Tuple[float, float]:
        """Current (actor, critic) learning rates."""
        return (
            self._actor_optimizer.learning_rate,
            self._critic_optimizer.learning_rate,
        )

    def set_learning_rates(self, actor_lr: float, critic_lr: float) -> None:
        """Override both learning rates (trainer-driven LR decay)."""
        require(actor_lr > 0 and critic_lr > 0, "learning rates must be > 0")
        self._actor_optimizer.learning_rate = float(actor_lr)
        self._critic_optimizer.learning_rate = float(critic_lr)

    # ------------------------------------------------------------ checkpoint

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Complete learnable state as a flat ``name -> array`` mapping.

        Covers actor and critic parameters plus both Adam optimisers'
        moments/step counts and the current entropy weight, so that loading
        the dict into a fresh agent resumes training bit-for-bit.  All
        values are NumPy arrays (``np.savez``-ready).
        """
        state: Dict[str, np.ndarray] = {}
        state.update(self.actor.state_dict(prefix="actor/"))
        state.update(self.critic.state_dict(prefix="critic/"))
        state.update(self._actor_optimizer.state_dict(prefix="actor_opt/"))
        state.update(self._critic_optimizer.state_dict(prefix="critic_opt/"))
        state["entropy_weight"] = np.array(self._entropy_weight)
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Restore the state saved by :meth:`state_dict`."""
        self.actor.load_state_dict(state, prefix="actor/")
        self.critic.load_state_dict(state, prefix="critic/")
        self._actor_optimizer.load_state_dict(state, prefix="actor_opt/")
        self._critic_optimizer.load_state_dict(state, prefix="critic_opt/")
        require("entropy_weight" in state, "missing entropy_weight")
        self._entropy_weight = float(state["entropy_weight"])

    # ----------------------------------------------------------------- acting

    def action_probabilities(self, state: np.ndarray) -> np.ndarray:
        """Policy distribution over actions for one state."""
        logits, _ = self.actor.forward(state)
        return softmax(logits)

    def action_probabilities_batch(self, states: np.ndarray) -> np.ndarray:
        """Policy distributions for a ``(batch, state_dim)`` matrix of states.

        Row ``i`` is bitwise equal to ``action_probabilities(states[i])``:
        the actor's matmuls are row-stable (:func:`repro.ml.nn.row_matmul`)
        and the softmax reduces each row independently with ``axis=-1``
        max/sum, so batching never reorders any float reduction.  An empty
        batch returns a ``(0, num_actions)`` matrix.
        """
        states = np.asarray(states, dtype=float)
        require(states.ndim == 2, "states must be a (batch, state_dim) matrix")
        if states.shape[0] == 0:
            return np.zeros((0, self.config.num_actions))
        logits, _ = self.actor.forward(states)
        return softmax(logits)

    def select_action(self, state: np.ndarray, greedy: bool = False) -> int:
        """Sample an action (or take the argmax when ``greedy``)."""
        probabilities = self.action_probabilities(state)
        if greedy:
            return int(np.argmax(probabilities))
        return int(self._rng.choice(self.config.num_actions, p=probabilities))

    def state_value(self, state: np.ndarray) -> float:
        """Critic's value estimate for one state."""
        value, _ = self.critic.forward(state)
        return float(np.asarray(value).reshape(-1)[0])

    # --------------------------------------------------------------- training

    def train_on_episode(self, episode: EpisodeBuffer) -> Dict[str, float]:
        """One policy-gradient update from a completed episode.

        Returns summary statistics (mean return, policy loss, value loss,
        entropy) useful for monitoring convergence.
        """
        require(len(episode) > 0, "cannot train on an empty episode")
        states = np.stack(episode.states)
        actions = np.asarray(episode.actions, dtype=int)
        returns = episode.discounted_returns(self.config.discount)

        values, critic_cache = self.critic.forward(states)
        values = np.asarray(values).reshape(-1)
        advantages = returns - values
        # Normalising advantages stabilises updates with short episodes.
        if advantages.size > 1 and float(np.std(advantages)) > 1e-9:
            advantages = (advantages - advantages.mean()) / advantages.std()

        logits, actor_cache = self.actor.forward(states)
        probabilities = softmax(logits)
        num_steps = states.shape[0]

        # Policy gradient: d/dlogits of -log pi(a|s) * A  plus entropy bonus.
        one_hot = np.zeros_like(probabilities)
        one_hot[np.arange(num_steps), actions] = 1.0
        policy_grad = (probabilities - one_hot) * advantages.reshape(-1, 1)
        entropy = -np.sum(probabilities * np.log(probabilities + 1e-12), axis=1)
        entropy_grad = probabilities * (
            np.log(probabilities + 1e-12)
            + 1.0
            - np.sum(
                probabilities * (np.log(probabilities + 1e-12) + 1.0),
                axis=1, keepdims=True,
            )
        )
        total_actor_grad = (policy_grad + self._entropy_weight * entropy_grad) / num_steps
        actor_gradients = self.actor.backward(actor_cache, total_actor_grad)
        self._actor_optimizer.update(self.actor.parameters, actor_gradients)

        # Critic: squared error against the empirical returns.
        value_error = (values - returns).reshape(-1, 1) / num_steps
        critic_gradients = self.critic.backward(critic_cache, value_error)
        self._critic_optimizer.update(self.critic.parameters, critic_gradients)

        self._entropy_weight *= self.config.entropy_decay
        policy_loss = float(
            -np.mean(np.log(probabilities[np.arange(num_steps), actions] + 1e-12)
                     * advantages)
        )
        return {
            "mean_return": float(np.mean(returns)),
            "policy_loss": policy_loss,
            "value_loss": float(np.mean((values - returns) ** 2)),
            "entropy": float(np.mean(entropy)),
        }
