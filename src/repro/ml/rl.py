"""Actor–critic policy-gradient agent (Pensieve-style, from scratch).

Pensieve trains an A3C agent whose policy maps player state (throughput
history, buffer, next chunk sizes, last bitrate) to a distribution over
bitrate levels, with a value network as baseline and an entropy bonus for
exploration.  This module provides a single-threaded advantage actor–critic
with the same ingredients, small enough to train inside the test/benchmark
budget while exercising the identical SENSEI augmentation path (weights in
the state, proactive-rebuffering actions, reweighted reward).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.ml.nn import MLP, AdamOptimizer, softmax
from repro.utils.rand import rng_from_seed
from repro.utils.validation import require


@dataclass(frozen=True)
class ActorCriticConfig:
    """Hyper-parameters of the actor–critic agent."""

    state_dim: int
    num_actions: int
    hidden_dims: Tuple[int, ...] = (64, 32)
    actor_learning_rate: float = 1e-3
    critic_learning_rate: float = 2e-3
    discount: float = 0.99
    entropy_weight: float = 0.02
    entropy_decay: float = 0.995
    seed: int = 0

    def __post_init__(self) -> None:
        require(self.state_dim >= 1, "state_dim must be >= 1")
        require(self.num_actions >= 2, "num_actions must be >= 2")
        require(0 < self.discount <= 1, "discount must be in (0, 1]")


@dataclass
class EpisodeBuffer:
    """Trajectory storage for one episode (one streaming session)."""

    states: List[np.ndarray] = field(default_factory=list)
    actions: List[int] = field(default_factory=list)
    rewards: List[float] = field(default_factory=list)

    def add(self, state: np.ndarray, action: int, reward: float) -> None:
        """Record one transition."""
        self.states.append(np.asarray(state, dtype=float))
        self.actions.append(int(action))
        self.rewards.append(float(reward))

    def __len__(self) -> int:
        return len(self.states)

    def discounted_returns(self, discount: float) -> np.ndarray:
        """Discounted return from every step to the end of the episode."""
        returns = np.zeros(len(self.rewards))
        running = 0.0
        for index in reversed(range(len(self.rewards))):
            running = self.rewards[index] + discount * running
            returns[index] = running
        return returns


class ActorCriticAgent:
    """Advantage actor–critic with softmax policy and MLP value baseline."""

    def __init__(self, config: ActorCriticConfig) -> None:
        self.config = config
        self.actor = MLP(
            config.state_dim, config.hidden_dims, config.num_actions,
            seed=config.seed,
        )
        self.critic = MLP(
            config.state_dim, config.hidden_dims, 1, seed=config.seed + 1,
        )
        self._actor_optimizer = AdamOptimizer(config.actor_learning_rate)
        self._critic_optimizer = AdamOptimizer(config.critic_learning_rate)
        self._rng = rng_from_seed(config.seed + 2)
        self._entropy_weight = config.entropy_weight

    # ----------------------------------------------------------------- acting

    def action_probabilities(self, state: np.ndarray) -> np.ndarray:
        """Policy distribution over actions for one state."""
        logits, _ = self.actor.forward(state)
        return softmax(logits)

    def select_action(self, state: np.ndarray, greedy: bool = False) -> int:
        """Sample an action (or take the argmax when ``greedy``)."""
        probabilities = self.action_probabilities(state)
        if greedy:
            return int(np.argmax(probabilities))
        return int(self._rng.choice(self.config.num_actions, p=probabilities))

    def state_value(self, state: np.ndarray) -> float:
        """Critic's value estimate for one state."""
        value, _ = self.critic.forward(state)
        return float(np.asarray(value).reshape(-1)[0])

    # --------------------------------------------------------------- training

    def train_on_episode(self, episode: EpisodeBuffer) -> Dict[str, float]:
        """One policy-gradient update from a completed episode.

        Returns summary statistics (mean return, policy loss, value loss,
        entropy) useful for monitoring convergence.
        """
        require(len(episode) > 0, "cannot train on an empty episode")
        states = np.stack(episode.states)
        actions = np.asarray(episode.actions, dtype=int)
        returns = episode.discounted_returns(self.config.discount)

        values, critic_cache = self.critic.forward(states)
        values = np.asarray(values).reshape(-1)
        advantages = returns - values
        # Normalising advantages stabilises updates with short episodes.
        if advantages.size > 1 and float(np.std(advantages)) > 1e-9:
            advantages = (advantages - advantages.mean()) / advantages.std()

        logits, actor_cache = self.actor.forward(states)
        probabilities = softmax(logits)
        num_steps = states.shape[0]

        # Policy gradient: d/dlogits of -log pi(a|s) * A  plus entropy bonus.
        one_hot = np.zeros_like(probabilities)
        one_hot[np.arange(num_steps), actions] = 1.0
        policy_grad = (probabilities - one_hot) * advantages.reshape(-1, 1)
        entropy = -np.sum(probabilities * np.log(probabilities + 1e-12), axis=1)
        entropy_grad = probabilities * (
            np.log(probabilities + 1e-12)
            + 1.0
            - np.sum(
                probabilities * (np.log(probabilities + 1e-12) + 1.0),
                axis=1, keepdims=True,
            )
        )
        total_actor_grad = (policy_grad + self._entropy_weight * entropy_grad) / num_steps
        actor_gradients = self.actor.backward(actor_cache, total_actor_grad)
        self._actor_optimizer.update(self.actor.parameters, actor_gradients)

        # Critic: squared error against the empirical returns.
        value_error = (values - returns).reshape(-1, 1) / num_steps
        critic_gradients = self.critic.backward(critic_cache, value_error)
        self._critic_optimizer.update(self.critic.parameters, critic_gradients)

        self._entropy_weight *= self.config.entropy_decay
        policy_loss = float(
            -np.mean(np.log(probabilities[np.arange(num_steps), actions] + 1e-12)
                     * advantages)
        )
        return {
            "mean_return": float(np.mean(returns)),
            "policy_loss": policy_loss,
            "value_loss": float(np.mean((values - returns) ** 2)),
            "entropy": float(np.mean(entropy)),
        }
