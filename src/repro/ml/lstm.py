"""LSTM cell and a sequence-to-one regressor (from scratch).

The LSTM-QoE baseline (Eswara et al., 2019) feeds a per-chunk feature
sequence (visual quality, rebuffering, bitrate changes) through an LSTM to
capture the "memory effect" of past quality incidents and outputs a QoE
score.  This module implements the cell and a small sequence regressor with
truncated BPTT, sufficient to train the baseline on the MOS data generated
by the crowdsourcing simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.ml.nn import AdamOptimizer, sigmoid
from repro.utils.rand import rng_from_seed
from repro.utils.validation import require


class LSTMCell:
    """A single LSTM cell with combined gate weights."""

    def __init__(self, input_dim: int, hidden_dim: int, seed: int = 0) -> None:
        require(input_dim >= 1, "input_dim must be >= 1")
        require(hidden_dim >= 1, "hidden_dim must be >= 1")
        self.input_dim = int(input_dim)
        self.hidden_dim = int(hidden_dim)
        rng = rng_from_seed(seed)
        scale = 1.0 / np.sqrt(hidden_dim)
        concat_dim = input_dim + hidden_dim
        # Gates ordered: input, forget, candidate, output.
        self.parameters: Dict[str, np.ndarray] = {
            "W": scale * rng.standard_normal((concat_dim, 4 * hidden_dim)),
            "b": np.zeros(4 * hidden_dim),
        }
        # Forget-gate bias initialised to 1 (standard trick for stability).
        self.parameters["b"][hidden_dim : 2 * hidden_dim] = 1.0

    def forward(
        self, x: np.ndarray, h_prev: np.ndarray, c_prev: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, dict]:
        """One step; returns (h, c, cache for backprop)."""
        concat = np.concatenate([x, h_prev])
        gates = concat @ self.parameters["W"] + self.parameters["b"]
        H = self.hidden_dim
        i_gate = sigmoid(gates[:H])
        f_gate = sigmoid(gates[H : 2 * H])
        g_gate = np.tanh(gates[2 * H : 3 * H])
        o_gate = sigmoid(gates[3 * H :])
        c = f_gate * c_prev + i_gate * g_gate
        h = o_gate * np.tanh(c)
        cache = {
            "concat": concat, "i": i_gate, "f": f_gate, "g": g_gate, "o": o_gate,
            "c": c, "c_prev": c_prev,
        }
        return h, c, cache

    def backward(
        self,
        dh: np.ndarray,
        dc_next: np.ndarray,
        cache: dict,
    ) -> Tuple[np.ndarray, np.ndarray, Dict[str, np.ndarray]]:
        """Backward through one step.

        Returns (dh_prev, dc_prev, parameter gradients).
        """
        H = self.hidden_dim
        i_gate, f_gate, g_gate, o_gate = cache["i"], cache["f"], cache["g"], cache["o"]
        c, c_prev, concat = cache["c"], cache["c_prev"], cache["concat"]

        tanh_c = np.tanh(c)
        do = dh * tanh_c
        dc = dh * o_gate * (1 - tanh_c ** 2) + dc_next
        di = dc * g_gate
        df = dc * c_prev
        dg = dc * i_gate
        dc_prev = dc * f_gate

        d_gates = np.concatenate([
            di * i_gate * (1 - i_gate),
            df * f_gate * (1 - f_gate),
            dg * (1 - g_gate ** 2),
            do * o_gate * (1 - o_gate),
        ])
        gradients = {
            "W": np.outer(concat, d_gates),
            "b": d_gates,
        }
        d_concat = self.parameters["W"] @ d_gates
        dh_prev = d_concat[self.input_dim :]
        return dh_prev, dc_prev, gradients


class LSTMRegressor:
    """Sequence-to-one regressor: LSTM over chunk features, linear head.

    Parameters
    ----------
    input_dim:
        Number of per-chunk features.
    hidden_dim:
        LSTM hidden size.
    learning_rate:
        Adam learning rate used by :meth:`fit`.
    """

    def __init__(
        self,
        input_dim: int,
        hidden_dim: int = 16,
        learning_rate: float = 5e-3,
        seed: int = 0,
    ) -> None:
        self.input_dim = int(input_dim)
        self.hidden_dim = int(hidden_dim)
        self.cell = LSTMCell(input_dim, hidden_dim, seed=seed)
        rng = rng_from_seed(seed + 1)
        self.head: Dict[str, np.ndarray] = {
            "Wy": rng.standard_normal((hidden_dim, 1)) / np.sqrt(hidden_dim),
            "by": np.zeros(1),
        }
        self._optimizer = AdamOptimizer(learning_rate=learning_rate)

    # ----------------------------------------------------------------- API

    def predict_sequence(self, sequence: np.ndarray) -> float:
        """Predict the scalar target for one (T, input_dim) sequence."""
        outputs, _ = self._forward(np.asarray(sequence, dtype=float))
        return float(outputs)

    def predict(self, sequences: List[np.ndarray]) -> np.ndarray:
        """Predict targets for a list of sequences."""
        return np.array([self.predict_sequence(seq) for seq in sequences])

    def fit(
        self,
        sequences: List[np.ndarray],
        targets: np.ndarray,
        epochs: int = 30,
        shuffle_seed: int = 0,
    ) -> "LSTMRegressor":
        """Train with per-sequence SGD (Adam); returns ``self``."""
        require(len(sequences) == len(targets), "sequences and targets must align")
        require(len(sequences) >= 1, "need at least one training sequence")
        targets = np.asarray(targets, dtype=float)
        rng = rng_from_seed(shuffle_seed)
        for _ in range(int(epochs)):
            order = rng.permutation(len(sequences))
            for index in order:
                self._train_step(np.asarray(sequences[index], dtype=float),
                                 float(targets[index]))
        return self

    # ------------------------------------------------------------ internals

    def _forward(self, sequence: np.ndarray) -> Tuple[float, dict]:
        require(sequence.ndim == 2, "sequence must be (T, input_dim)")
        require(sequence.shape[1] == self.input_dim, "feature dimension mismatch")
        h = np.zeros(self.hidden_dim)
        c = np.zeros(self.hidden_dim)
        caches = []
        for step in range(sequence.shape[0]):
            h, c, cache = self.cell.forward(sequence[step], h, c)
            caches.append(cache)
        output = float(h @ self.head["Wy"][:, 0] + self.head["by"][0])
        return output, {"caches": caches, "h_final": h, "sequence": sequence}

    def _train_step(self, sequence: np.ndarray, target: float) -> float:
        output, state = self._forward(sequence)
        error = output - target
        # Head gradients.
        grad_head = {
            "Wy": np.outer(state["h_final"], np.array([error])),
            "by": np.array([error]),
        }
        # Backprop through time.
        dh = error * self.head["Wy"][:, 0]
        dc = np.zeros(self.hidden_dim)
        total_cell_grads = {
            "W": np.zeros_like(self.cell.parameters["W"]),
            "b": np.zeros_like(self.cell.parameters["b"]),
        }
        for cache in reversed(state["caches"]):
            dh, dc, grads = self.cell.backward(dh, dc, cache)
            total_cell_grads["W"] += grads["W"]
            total_cell_grads["b"] += grads["b"]
        # Gradient clipping for stability.
        for grads in (total_cell_grads, grad_head):
            for name, grad in grads.items():
                np.clip(grad, -5.0, 5.0, out=grad)
        self._optimizer.update(self.cell.parameters, total_cell_grads)
        self._optimizer.update(self.head, grad_head)
        return 0.5 * error * error
