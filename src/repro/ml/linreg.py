"""Linear and ridge regression, plus non-negative weight fitting.

SENSEI's weight inference (§4.2) solves ``Q_j = Σ_i w_i q_{i,j}`` for the
per-chunk weights ``w_i`` from crowdsourced MOS values ``Q_j``.  Because the
weights represent relative sensitivity they should be non-negative; the
paper uses "a simple regression", and we provide both plain/ridge least
squares and a projected-gradient non-negative variant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.utils.validation import require, require_non_negative


@dataclass
class LinearRegression:
    """Ordinary least squares with an optional intercept."""

    fit_intercept: bool = True
    coefficients: Optional[np.ndarray] = None
    intercept: float = 0.0

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "LinearRegression":
        """Fit the model; returns ``self`` for chaining."""
        X = np.asarray(features, dtype=float)
        y = np.asarray(targets, dtype=float)
        require(X.ndim == 2, "features must be a 2-D matrix")
        require(y.ndim == 1 and y.size == X.shape[0], "targets must align with rows")
        if self.fit_intercept:
            X = np.hstack([X, np.ones((X.shape[0], 1))])
        solution, *_ = np.linalg.lstsq(X, y, rcond=None)
        if self.fit_intercept:
            self.coefficients = solution[:-1]
            self.intercept = float(solution[-1])
        else:
            self.coefficients = solution
            self.intercept = 0.0
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predict targets for a feature matrix."""
        require(self.coefficients is not None, "model is not fitted")
        X = np.asarray(features, dtype=float)
        return X @ self.coefficients + self.intercept


@dataclass
class RidgeRegression:
    """L2-regularised least squares (closed form)."""

    alpha: float = 1.0
    fit_intercept: bool = True
    coefficients: Optional[np.ndarray] = None
    intercept: float = 0.0

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "RidgeRegression":
        """Fit the model; returns ``self``."""
        require_non_negative(self.alpha, "alpha")
        X = np.asarray(features, dtype=float)
        y = np.asarray(targets, dtype=float)
        require(X.ndim == 2, "features must be a 2-D matrix")
        require(y.ndim == 1 and y.size == X.shape[0], "targets must align with rows")
        if self.fit_intercept:
            x_mean = X.mean(axis=0)
            y_mean = float(y.mean())
            Xc = X - x_mean
            yc = y - y_mean
        else:
            x_mean = np.zeros(X.shape[1])
            y_mean = 0.0
            Xc, yc = X, y
        identity = np.eye(X.shape[1])
        self.coefficients = np.linalg.solve(
            Xc.T @ Xc + self.alpha * identity, Xc.T @ yc
        )
        self.intercept = y_mean - float(x_mean @ self.coefficients)
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predict targets for a feature matrix."""
        require(self.coefficients is not None, "model is not fitted")
        X = np.asarray(features, dtype=float)
        return X @ self.coefficients + self.intercept


def fit_nonnegative_weights(
    design: np.ndarray,
    targets: np.ndarray,
    ridge_alpha: float = 1e-3,
    max_iterations: int = 2000,
    tolerance: float = 1e-9,
) -> np.ndarray:
    """Solve ``min_w ||design @ w - targets||^2 + alpha ||w||^2`` s.t. ``w >= 0``.

    Projected gradient descent with an adaptive step size.  Used by SENSEI's
    weight inference, where negative sensitivity weights have no physical
    meaning.
    """
    X = np.asarray(design, dtype=float)
    y = np.asarray(targets, dtype=float)
    require(X.ndim == 2, "design must be 2-D")
    require(y.ndim == 1 and y.size == X.shape[0], "targets must align with rows")
    require_non_negative(ridge_alpha, "ridge_alpha")
    num_features = X.shape[1]

    gram = X.T @ X + ridge_alpha * np.eye(num_features)
    moment = X.T @ y
    # Lipschitz constant of the gradient gives a safe step size.
    lipschitz = float(np.linalg.norm(gram, 2))
    step = 1.0 / max(lipschitz, 1e-9)

    weights = np.full(num_features, max(float(np.mean(y)), 1e-3))
    previous_loss = np.inf
    for _ in range(max_iterations):
        gradient = gram @ weights - moment
        weights = np.maximum(0.0, weights - step * gradient)
        residual = X @ weights - y
        loss = float(residual @ residual + ridge_alpha * weights @ weights)
        if abs(previous_loss - loss) < tolerance * max(1.0, abs(previous_loss)):
            break
        previous_loss = loss
    return weights
