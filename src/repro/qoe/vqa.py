"""Visual-quality-assessment proxies (VMAF / SSIM / PSNR).

The real metrics operate on pixels; the reproduction exposes proxies with
the same qualitative behaviour, derived from the synthetic encoder's
rate–quality curve and the chunk's content descriptors:

* quality increases with bitrate and saturates (diminishing returns);
* for the same bitrate, quality is lower on complex / high-motion content;
* VMAF-style scores live in [0, 100], SSIM in [0, 1], PSNR in dB.

These are exactly the signals KSQI and LSTM-QoE consume in the paper —
and, importantly, none of them observes the latent ``key_moment`` attention
signal, which is why heuristic models cannot recover true sensitivity.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import require
from repro.video.rendering import RenderedVideo


def vmaf_proxy(rendered: RenderedVideo) -> np.ndarray:
    """Per-chunk VMAF-like score in [0, 100] for the played levels."""
    return rendered.quality_curve()


def ssim_proxy(rendered: RenderedVideo) -> np.ndarray:
    """Per-chunk SSIM-like score in [0, 1].

    Mapped from the VMAF proxy with a concave transform (SSIM compresses the
    high-quality end harder than VMAF does).
    """
    vmaf = vmaf_proxy(rendered) / 100.0
    return 1.0 - (1.0 - vmaf) ** 1.5


def psnr_proxy(rendered: RenderedVideo) -> np.ndarray:
    """Per-chunk PSNR-like score in dB (roughly 25–45 dB).

    PSNR is content-agnostic given the same encoder operating point, so the
    proxy depends only on the played bitrate relative to the top rung plus a
    complexity penalty.
    """
    num_chunks = rendered.num_chunks
    require(num_chunks > 0, "rendering has no chunks")
    top_bitrate = rendered.encoded.ladder.bitrates_kbps[-1]
    values = np.empty(num_chunks)
    for index in range(num_chunks):
        bitrate = rendered.bitrate_kbps(index)
        complexity = rendered.source.descriptor(index).complexity
        ratio = bitrate / top_bitrate
        values[index] = 25.0 + 20.0 * np.sqrt(ratio) - 5.0 * complexity
    return values
