"""The ground-truth oracle: how "real users" experience a rendering.

The paper's central claim is that users' sensitivity to quality incidents
varies with the content of the moment and can only be observed by asking
them.  In the reproduction, this latent truth is modelled explicitly:

* every chunk has a **latent sensitivity** derived from its (hidden)
  ``key_moment`` descriptor — goals, climaxes and informational moments are
  markedly more sensitive than normal gameplay or scenic stretches;
* the **true QoE** of a rendering is a sensitivity-weighted aggregate of
  per-chunk imperfections (visual-quality loss, rebuffering, switches) plus
  a startup-delay penalty;
* simulated raters (:mod:`repro.crowd`) observe the true QoE through
  per-worker bias and noise, mirroring how MOS emerges from real MTurk
  campaigns.

Everything downstream — baseline QoE models, SENSEI's profiling pipeline,
ABR evaluation — treats the oracle as unobservable except through ratings,
exactly as the paper treats real users.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.utils.validation import require, require_non_negative
from repro.video.rendering import RenderedVideo
from repro.video.video import SourceVideo


@dataclass(frozen=True)
class SensitivityParameters:
    """Parameters of the latent sensitivity model.

    Human reactions to quality incidents are *salient*: a single rebuffering
    event noticeably hurts the opinion of a multi-minute video rather than
    being averaged away over its length (this is what makes per-chunk
    profiling from MOS feasible at all).  Incident penalties are therefore
    summed per incident — weighted by the sensitivity of the chunk they hit —
    and saturate smoothly so that many incidents cannot push QoE below zero
    arbitrarily fast.

    Attributes
    ----------
    base_sensitivity:
        Sensitivity of a chunk with ``key_moment = 0``.
    key_moment_gain:
        How much a full-strength key moment raises sensitivity.
    rebuffer_penalty_per_s:
        QoE loss per second of stall at (normalised) unit sensitivity.
    switch_penalty:
        QoE loss per unit (normalised) bitrate switch at unit sensitivity.
    quality_loss_weight:
        QoE loss per unit of missing visual quality at unit sensitivity
        (applied as a per-chunk average: low bitrate is a sustained, not a
        salient, impairment).
    low_bitrate_salience:
        Extra penalty per chunk-second of *transient* bitrate dip below the
        locally prevailing bitrate, sensitivity weighted — this is what makes
        a deliberate bitrate drop at a key moment noticeable, while sustained
        low bitrate (a genuinely constrained network) is charged only through
        the quality-loss term.
    key_quality_salience:
        Salient penalty for playing a *high-sensitivity* chunk below its best
        achievable visual quality: a blurry goal moment is memorable on its
        own, not merely as a fraction of the video average.  This is the
        term that rewards aligning higher bitrate with higher sensitivity.
    startup_penalty_per_s:
        QoE loss per second of startup delay (not sensitivity weighted; the
        video has not started yet so content cannot modulate it).
    penalty_saturation:
        Asymptotic cap of the summed incident penalty (smooth saturation).
    """

    base_sensitivity: float = 0.25
    key_moment_gain: float = 2.0
    rebuffer_penalty_per_s: float = 0.12
    switch_penalty: float = 0.03
    quality_loss_weight: float = 0.35
    low_bitrate_salience: float = 0.05
    key_quality_salience: float = 0.15
    startup_penalty_per_s: float = 0.005
    penalty_saturation: float = 0.75

    def __post_init__(self) -> None:
        require(self.base_sensitivity > 0, "base_sensitivity must be positive")
        require_non_negative(self.key_moment_gain, "key_moment_gain")
        require_non_negative(self.rebuffer_penalty_per_s, "rebuffer_penalty_per_s")
        require_non_negative(self.switch_penalty, "switch_penalty")
        require_non_negative(self.quality_loss_weight, "quality_loss_weight")
        require_non_negative(self.low_bitrate_salience, "low_bitrate_salience")
        require_non_negative(self.key_quality_salience, "key_quality_salience")
        require_non_negative(self.startup_penalty_per_s, "startup_penalty_per_s")
        require(self.penalty_saturation > 0, "penalty_saturation must be positive")


class GroundTruthOracle:
    """Latent dynamic-sensitivity model standing in for real viewers."""

    def __init__(self, parameters: Optional[SensitivityParameters] = None) -> None:
        self.parameters = parameters if parameters is not None else SensitivityParameters()
        self._sensitivity_cache: Dict[str, np.ndarray] = {}

    # -------------------------------------------------------------- sensitivity

    def sensitivity_curve(self, video: SourceVideo) -> np.ndarray:
        """Latent per-chunk sensitivity of a source video.

        Values are positive and average close to 1 for a typical video, so
        they are directly comparable to the per-chunk weights SENSEI infers.
        """
        cached = self._sensitivity_cache.get(video.video_id)
        if cached is not None and cached.size == video.num_chunks:
            return cached.copy()
        params = self.parameters
        key_moments = video.key_moment_curve()
        sensitivity = params.base_sensitivity + params.key_moment_gain * key_moments
        self._sensitivity_cache[video.video_id] = sensitivity.copy()
        return sensitivity

    def normalized_sensitivity(self, video: SourceVideo) -> np.ndarray:
        """Sensitivity rescaled to mean 1 (the convention SENSEI's weights use)."""
        curve = self.sensitivity_curve(video)
        return curve / float(np.mean(curve))

    # -------------------------------------------------------------------- QoE

    def chunk_incident_penalties(self, rendered: RenderedVideo) -> np.ndarray:
        """Per-chunk salient-incident penalty (sensitivity weighted).

        Covers rebuffering, bitrate switches and time spent at severely
        reduced bitrate.  These are *summed* over the video (with
        saturation), not averaged, because a single incident stays memorable
        regardless of how long the video is.
        """
        params = self.parameters
        sensitivity = self.normalized_sensitivity(rendered.source)
        top_bitrate = rendered.encoded.ladder.bitrates_kbps[-1]
        stall_penalty = params.rebuffer_penalty_per_s * rendered.stalls_s
        switch_penalty = params.switch_penalty * (
            rendered.switch_magnitudes_kbps() / top_bitrate
        )
        # Transient bitrate dips: how far each chunk falls below the locally
        # prevailing (median) bitrate of its neighbourhood.  Sustained low
        # bitrate produces no dip and is charged only via the quality loss.
        bitrate_norm = rendered.bitrates_kbps() / top_bitrate
        num_chunks = bitrate_norm.size
        dips = np.empty(num_chunks)
        # Full 7-chunk windows are vectorised; the clipped windows at the
        # edges (fewer than 7 chunks) keep the scalar path.  Medians are
        # identical to the per-index loop either way.
        if num_chunks >= 7:
            windows = np.lib.stride_tricks.sliding_window_view(bitrate_norm, 7)
            interior = slice(3, num_chunks - 3)
            dips[interior] = np.maximum(
                0.0, np.median(windows, axis=1) - bitrate_norm[interior]
            )
            edge_indices = [*range(3), *range(num_chunks - 3, num_chunks)]
        else:
            edge_indices = range(num_chunks)
        for index in edge_indices:
            lo = max(0, index - 3)
            hi = min(num_chunks, index + 4)
            # Median of a <= 7-element window without np.median's per-call
            # machinery: the sorted middle element (odd length) or the mean
            # of the two middles (even) — ``(a + b) * 0.5 == (a + b) / 2``
            # exactly, so the value is bit-identical to np.median's.
            window = np.sort(bitrate_norm[lo:hi])
            mid = window.size // 2
            if window.size % 2:
                local_reference = float(window[mid])
            else:
                local_reference = float((window[mid - 1] + window[mid]) * 0.5)
            dips[index] = max(0.0, local_reference - bitrate_norm[index])
        # Quadratic in the dip magnitude: a one-rung wobble is barely
        # noticeable, a drop to the lowest rung at a key moment clearly is.
        low_bitrate_penalty = (
            params.low_bitrate_salience * rendered.chunk_duration_s * dips ** 2
        )
        # Playing a highly sensitive chunk below its best achievable quality
        # is memorable in its own right (a blurry goal moment), independent
        # of how long the video is.
        top_level = rendered.encoded.ladder.highest_level
        best_quality = rendered.encoded.quality_matrix()[:, top_level]
        quality_shortfall = (best_quality - rendered.quality_curve()) / 100.0
        key_quality_penalty = (
            params.key_quality_salience
            * np.maximum(sensitivity - 1.0, 0.0)
            * quality_shortfall
        )
        return (
            sensitivity * (stall_penalty + switch_penalty + low_bitrate_penalty)
            + key_quality_penalty
        )

    def sustained_quality_loss(self, rendered: RenderedVideo) -> float:
        """Average sensitivity-weighted visual-quality shortfall in [0, ~1]."""
        params = self.parameters
        sensitivity = self.normalized_sensitivity(rendered.source)
        quality = rendered.quality_curve() / 100.0
        return float(
            np.mean(sensitivity * params.quality_loss_weight * (1.0 - quality))
        )

    def chunk_experience(self, rendered: RenderedVideo) -> np.ndarray:
        """Per-chunk experienced quality in [0, 1] (diagnostic view)."""
        params = self.parameters
        sensitivity = self.normalized_sensitivity(rendered.source)
        quality = rendered.quality_curve() / 100.0
        quality_loss = sensitivity * params.quality_loss_weight * (1.0 - quality)
        return np.clip(
            1.0 - quality_loss - self.chunk_incident_penalties(rendered), 0.0, 1.0
        )

    def _saturate(self, penalty: float) -> float:
        """Smoothly cap the summed incident penalty."""
        cap = self.parameters.penalty_saturation
        return cap * (1.0 - np.exp(-penalty / cap))

    def true_qoe(self, rendered: RenderedVideo) -> float:
        """The rendering's true QoE in [0, 1] — what MOS estimates."""
        incident_penalty = self._saturate(
            float(np.sum(self.chunk_incident_penalties(rendered)))
        )
        quality_loss = self.sustained_quality_loss(rendered)
        startup_loss = (
            self.parameters.startup_penalty_per_s * rendered.startup_delay_s
        )
        return float(
            np.clip(1.0 - quality_loss - incident_penalty - startup_loss, 0.0, 1.0)
        )

    def true_mos(self, rendered: RenderedVideo) -> float:
        """True QoE expressed on the 1–5 Likert scale used by the surveys."""
        return 1.0 + 4.0 * self.true_qoe(rendered)

    # ---------------------------------------------------------------- analysis

    def qoe_gap_for_series(self, renderings) -> float:
        """(Qmax - Qmin) / Qmin over a video series (Figure 3's statistic)."""
        values = np.array([self.true_qoe(r) for r in renderings])
        require(values.size >= 2, "a series needs at least two renderings")
        q_min = float(np.min(values))
        q_max = float(np.max(values))
        if q_min <= 1e-9:
            return float("inf")
        return (q_max - q_min) / q_min
