"""QoE models: the ground-truth oracle and the baseline predictors.

The paper compares its per-video reweighted model against three recent QoE
models with open-source implementations (§2.1): KSQI (additive linear over
VMAF / rebuffering / switches), P.1203 (random forest over summary metrics)
and LSTM-QoE (sequence model with a memory effect).  The reproduction
implements all three on top of the ML substrate, plus the *ground-truth
oracle* that plays the role of real users: a latent dynamic-sensitivity
model from which simulated raters draw their opinions.
"""

from repro.qoe.base import QoEModel, AdditiveQoEModel, chunk_feature_matrix
from repro.qoe.vqa import vmaf_proxy, ssim_proxy, psnr_proxy
from repro.qoe.ground_truth import GroundTruthOracle, SensitivityParameters
from repro.qoe.ksqi import KSQIModel
from repro.qoe.p1203 import P1203Model, summary_features
from repro.qoe.lstm_qoe import LSTMQoEModel
from repro.qoe.metrics import ModelEvaluation, evaluate_model

__all__ = [
    "QoEModel",
    "AdditiveQoEModel",
    "chunk_feature_matrix",
    "vmaf_proxy",
    "ssim_proxy",
    "psnr_proxy",
    "GroundTruthOracle",
    "SensitivityParameters",
    "KSQIModel",
    "P1203Model",
    "summary_features",
    "LSTMQoEModel",
    "ModelEvaluation",
    "evaluate_model",
]
