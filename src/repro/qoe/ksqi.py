"""KSQI-like QoE model: additive linear over VMAF, rebuffering and switches.

KSQI (Duanmu et al.) combines VMAF, rebuffering ratio and quality switches
in a linear model.  It is the paper's strongest baseline, the base QoE model
the SENSEI variants reweight (Eq. 2), and the objective given to Pensieve
and Fugu in the evaluation (§7.1).  The model here is additive over chunks
(Eq. 1), with coefficients trainable from MOS data by least squares.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.ml.linreg import RidgeRegression
from repro.qoe.base import AdditiveQoEModel
from repro.utils.validation import require, require_non_negative
from repro.video.rendering import RenderedVideo


@dataclass
class KSQICoefficients:
    """Coefficients of the per-chunk KSQI score.

    ``q_i = intercept + quality_weight * vmaf_i/100
            - rebuffer_weight * stall_i - switch_weight * switch_i``
    where ``switch_i`` is the normalised bitrate change entering chunk i.

    The default rebuffering/switch penalties are calibrated so that a single
    salient incident moves the video-level (chunk-averaged) score by an
    amount comparable to what MOS studies report, rather than being diluted
    by the video length; :meth:`KSQIModel.fit` re-estimates them from data.
    """

    quality_weight: float = 0.9
    rebuffer_weight: float = 3.0
    switch_weight: float = 0.25
    startup_weight: float = 0.1
    intercept: float = 0.05

    def __post_init__(self) -> None:
        require_non_negative(self.quality_weight, "quality_weight")
        require_non_negative(self.rebuffer_weight, "rebuffer_weight")
        require_non_negative(self.switch_weight, "switch_weight")
        require_non_negative(self.startup_weight, "startup_weight")


class KSQIModel(AdditiveQoEModel):
    """Additive KSQI-style QoE model.

    Parameters
    ----------
    coefficients:
        Initial coefficients; :meth:`fit` re-estimates them from MOS data.
    """

    name = "KSQI"

    def __init__(self, coefficients: Optional[KSQICoefficients] = None) -> None:
        self.coefficients = coefficients if coefficients is not None else KSQICoefficients()

    # ---------------------------------------------------------- per-chunk q_i

    def chunk_scores(self, rendered: RenderedVideo) -> np.ndarray:
        """Per-chunk contributions ``q_i``.

        Deliberately not clipped per chunk: a chunk hit by a long stall can
        contribute a large negative term, exactly as in the original additive
        formulation; only the aggregate is clipped to [0, 1].
        """
        coeffs = self.coefficients
        quality = rendered.quality_curve() / 100.0
        stalls = rendered.stalls_s
        top_bitrate = rendered.encoded.ladder.bitrates_kbps[-1]
        switches = rendered.switch_magnitudes_kbps() / top_bitrate
        scores = (
            coeffs.intercept
            + coeffs.quality_weight * quality
            - coeffs.rebuffer_weight * stalls
            - coeffs.switch_weight * switches
        )
        # The startup penalty is charged to the first chunk.
        scores = scores.copy()
        scores[0] -= coeffs.startup_weight * rendered.startup_delay_s
        return scores

    def chunk_quality_function(
        self,
        bitrate_level: int,
        stall_s: float,
        vmaf: float,
        previous_bitrate_kbps: float,
        bitrate_kbps: float,
        top_bitrate_kbps: float,
    ) -> float:
        """The per-chunk quality estimate ``q(b, t)`` used by planner-style
        ABR algorithms (Fugu's Eq. 3), evaluated without a full rendering."""
        coeffs = self.coefficients
        switch = abs(bitrate_kbps - previous_bitrate_kbps) / top_bitrate_kbps
        score = (
            coeffs.intercept
            + coeffs.quality_weight * vmaf / 100.0
            - coeffs.rebuffer_weight * stall_s
            - coeffs.switch_weight * switch
        )
        return float(np.clip(score, 0.0, 1.0))

    # ------------------------------------------------------------------- fit

    def fit(
        self, renderings: Sequence[RenderedVideo], mos: Sequence[float]
    ) -> "KSQIModel":
        """Re-estimate the coefficients from (rendering, MOS) pairs.

        Fits a ridge regression of the MOS (normalised to [0, 1]) on the
        video-level averages of the per-chunk features, then maps the fitted
        signs back onto the non-negative coefficient convention.
        """
        require(len(renderings) == len(mos), "renderings and MOS must align")
        require(len(renderings) >= 4, "need at least four training points")
        mos_arr = np.asarray(list(mos), dtype=float)
        targets = (mos_arr - 1.0) / 4.0 if mos_arr.max() > 1.5 else mos_arr

        features = []
        for rendering in renderings:
            quality = rendering.quality_curve() / 100.0
            top = rendering.encoded.ladder.bitrates_kbps[-1]
            switches = rendering.switch_magnitudes_kbps() / top
            features.append(
                [
                    float(np.mean(quality)),
                    float(np.mean(rendering.stalls_s)),
                    float(np.mean(switches)),
                    float(rendering.startup_delay_s),
                ]
            )
        regression = RidgeRegression(alpha=1e-3).fit(np.asarray(features), targets)
        coeff = regression.coefficients
        self.coefficients = KSQICoefficients(
            quality_weight=max(0.05, float(coeff[0])),
            rebuffer_weight=max(0.01, float(-coeff[1])),
            switch_weight=max(0.0, float(-coeff[2])),
            startup_weight=max(0.0, float(-coeff[3])),
            intercept=float(np.clip(regression.intercept, -0.5, 0.5)),
        )
        return self
