"""LSTM-QoE-like model: a sequence model over per-chunk quality features.

LSTM-QoE (Eswara et al., 2019) feeds STRRED-style visual features and
per-chunk quality incidents into an LSTM to model the memory effect of past
incidents.  The reproduction's version feeds the per-chunk feature matrix
(visual quality, stall time, switch magnitude, bitrate, **motion**) into the
from-scratch LSTM regressor.  Including motion mirrors the original model's
assumption that users are more sensitive to incidents in more "dynamic"
scenes — the assumption the paper shows to be wrong for e.g. sports videos,
where dynamic-but-unimportant gameplay is less sensitive than goals.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.ml.lstm import LSTMRegressor
from repro.qoe.base import QoEModel, chunk_feature_matrix
from repro.utils.validation import require
from repro.video.rendering import RenderedVideo


class LSTMQoEModel(QoEModel):
    """Sequence QoE model with an LSTM backbone."""

    name = "LSTM-QoE"

    def __init__(
        self,
        hidden_dim: int = 16,
        epochs: int = 25,
        learning_rate: float = 5e-3,
        seed: int = 17,
    ) -> None:
        require(epochs >= 1, "epochs must be >= 1")
        self.hidden_dim = int(hidden_dim)
        self.epochs = int(epochs)
        self.learning_rate = float(learning_rate)
        self.seed = int(seed)
        self._regressor: Optional[LSTMRegressor] = None

    @staticmethod
    def _sequence(rendered: RenderedVideo) -> np.ndarray:
        """Per-chunk feature sequence fed to the LSTM."""
        return chunk_feature_matrix(rendered)

    def fit(
        self, renderings: Sequence[RenderedVideo], mos: Sequence[float]
    ) -> "LSTMQoEModel":
        """Train the LSTM on (rendering, MOS) pairs."""
        require(len(renderings) == len(mos), "renderings and MOS must align")
        require(len(renderings) >= 4, "need at least four training points")
        mos_arr = np.asarray(list(mos), dtype=float)
        targets = (mos_arr - 1.0) / 4.0 if mos_arr.max() > 1.5 else mos_arr
        sequences: List[np.ndarray] = [self._sequence(r) for r in renderings]
        self._regressor = LSTMRegressor(
            input_dim=sequences[0].shape[1],
            hidden_dim=self.hidden_dim,
            learning_rate=self.learning_rate,
            seed=self.seed,
        )
        self._regressor.fit(sequences, targets, epochs=self.epochs,
                            shuffle_seed=self.seed + 1)
        return self

    def score(self, rendered: RenderedVideo) -> float:
        """Predicted QoE in [0, 1]."""
        sequence = self._sequence(rendered)
        if self._regressor is None:
            # Untrained fallback: a crude motion-weighted penalty model that
            # mimics the original LSTM-QoE's bias towards dynamic scenes.
            quality = sequence[:, 0]
            stalls = sequence[:, 1]
            motion = sequence[:, 4]
            value = float(
                np.mean(quality) - np.mean((0.5 + motion) * 0.2 * stalls)
            )
            return float(np.clip(value, 0.0, 1.0))
        return float(np.clip(self._regressor.predict_sequence(sequence), 0.0, 1.0))
