"""Evaluation harness for QoE models: the metrics of Figures 2 and 15."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.qoe.base import QoEModel
from repro.utils.stats import (
    discordant_pair_fraction,
    mean_relative_error,
    pearson_correlation,
    spearman_correlation,
)
from repro.utils.validation import require
from repro.video.rendering import RenderedVideo


@dataclass(frozen=True)
class ModelEvaluation:
    """Accuracy summary of one QoE model on a test set.

    Attributes
    ----------
    model_name: name of the evaluated model.
    plcc: Pearson correlation with the true QoE (Figure 15).
    srcc: Spearman rank correlation with the true QoE (Figure 15).
    mean_relative_error: mean of |predicted - true| / true (Figure 2 x-axis).
    discordant_fraction: fraction of mis-ordered pairs (Figure 2 y-axis).
    num_samples: size of the test set.
    """

    model_name: str
    plcc: float
    srcc: float
    mean_relative_error: float
    discordant_fraction: float
    num_samples: int

    def as_dict(self) -> Dict[str, float]:
        """Dictionary form for report tables."""
        return {
            "model": self.model_name,
            "plcc": self.plcc,
            "srcc": self.srcc,
            "mean_relative_error": self.mean_relative_error,
            "discordant_fraction": self.discordant_fraction,
            "num_samples": float(self.num_samples),
        }


def evaluate_model(
    model: QoEModel,
    renderings: Sequence[RenderedVideo],
    true_qoe: Sequence[float],
) -> ModelEvaluation:
    """Evaluate a QoE model against ground-truth QoE values in [0, 1]."""
    require(len(renderings) == len(true_qoe), "renderings and truth must align")
    require(len(renderings) >= 2, "need at least two test points")
    truth = np.asarray(list(true_qoe), dtype=float)
    predictions = model.score_many(renderings)
    return ModelEvaluation(
        model_name=model.name,
        plcc=pearson_correlation(predictions, truth),
        srcc=spearman_correlation(predictions, truth),
        mean_relative_error=mean_relative_error(predictions, truth),
        discordant_fraction=discordant_pair_fraction(truth, predictions),
        num_samples=len(renderings),
    )


def evaluate_models(
    models: Sequence[QoEModel],
    renderings: Sequence[RenderedVideo],
    true_qoe: Sequence[float],
) -> List[ModelEvaluation]:
    """Evaluate several models on the same test set."""
    return [evaluate_model(model, renderings, true_qoe) for model in models]
