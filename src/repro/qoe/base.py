"""QoE model interface and shared per-chunk feature extraction.

Every model consumes a :class:`~repro.video.rendering.RenderedVideo` and
produces a scalar QoE prediction normalised to roughly [0, 1] (the paper
normalises every model's output range to [0, 1] before comparing, §2.2).
Additive models additionally expose per-chunk scores ``q_i`` so that SENSEI
can reweight them (Eq. 2).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Sequence

import numpy as np

from repro.utils.validation import require
from repro.video.rendering import RenderedVideo

#: Per-chunk feature names produced by :func:`chunk_feature_matrix`.
CHUNK_FEATURE_NAMES = (
    "visual_quality",      # VMAF-like quality of the played level, scaled to [0, 1]
    "stall_s",             # rebuffering seconds attributed to the chunk
    "switch_magnitude",    # |bitrate change| entering the chunk, scaled by the top rung
    "bitrate_norm",        # played bitrate over the top rung
    "motion",              # content motion descriptor (what LSTM-QoE keys off)
)


def chunk_feature_matrix(rendered: RenderedVideo) -> np.ndarray:
    """(num_chunks, len(CHUNK_FEATURE_NAMES)) matrix of observable features."""
    num_chunks = rendered.num_chunks
    top_bitrate = rendered.encoded.ladder.bitrates_kbps[-1]
    quality = rendered.quality_curve() / 100.0
    stalls = rendered.stalls_s
    switches = rendered.switch_magnitudes_kbps() / top_bitrate
    bitrates = rendered.bitrates_kbps() / top_bitrate
    motion = np.array(
        [rendered.source.descriptor(i).motion for i in range(num_chunks)]
    )
    return np.stack([quality, stalls, switches, bitrates, motion], axis=1)


class QoEModel(ABC):
    """Base class for QoE predictors."""

    #: Human-readable model name used in experiment reports.
    name: str = "qoe-model"

    @abstractmethod
    def score(self, rendered: RenderedVideo) -> float:
        """Predicted QoE of a rendering, normalised to roughly [0, 1]."""

    def score_many(self, renderings: Sequence[RenderedVideo]) -> np.ndarray:
        """Vectorised convenience wrapper over :meth:`score`."""
        return np.array([self.score(rendering) for rendering in renderings])

    def fit(
        self, renderings: Sequence[RenderedVideo], mos: Sequence[float]
    ) -> "QoEModel":
        """Train the model on (rendering, MOS) pairs.

        The default implementation is a no-op for models without trainable
        parameters; trainable models override it.
        """
        return self

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


class AdditiveQoEModel(QoEModel):
    """A QoE model of the additive form ``Q = (1/N) Σ q_i`` (Eq. 1).

    Subclasses implement :meth:`chunk_scores`; :meth:`score` averages them.
    SENSEI's reweighting (Eq. 2) replaces the uniform average with a
    sensitivity-weighted one — see
    :class:`repro.core.qoe_model.SenseiQoEModel`.
    """

    @abstractmethod
    def chunk_scores(self, rendered: RenderedVideo) -> np.ndarray:
        """Per-chunk QoE contributions ``q_i``."""

    def score(self, rendered: RenderedVideo) -> float:
        scores = self.chunk_scores(rendered)
        require(scores.shape == (rendered.num_chunks,), "one score per chunk required")
        return float(np.clip(np.mean(scores), 0.0, 1.0))

    def weighted_score(
        self, rendered: RenderedVideo, weights: np.ndarray
    ) -> float:
        """Sensitivity-weighted aggregate ``(1/N) Σ w_i q_i`` (Eq. 2)."""
        weights = np.asarray(weights, dtype=float)
        scores = self.chunk_scores(rendered)
        require(weights.shape == scores.shape, "weights must align with chunks")
        return float(np.clip(np.mean(weights * scores), 0.0, 1.0))
