"""P.1203-like QoE model: a random forest over session summary metrics.

ITU-T P.1203 ("P.NATS") combines codec-level quality indicators with
streaming-incident statistics; the paper's version uses a random-forest
regressor (§2.1).  The reproduction builds the same kind of model: summary
features of the whole rendering (no per-chunk position information) fed to
the from-scratch random forest in :mod:`repro.ml.forest`.  Because the
features are session-level aggregates, the model is structurally unable to
distinguish *where* in the video an incident happened — the failure mode
the paper highlights.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.ml.forest import RandomForestRegressor
from repro.qoe.base import QoEModel
from repro.utils.validation import require
from repro.video.rendering import RenderedVideo

#: Names of the summary features, for documentation and debugging.
SUMMARY_FEATURE_NAMES = (
    "mean_quality",
    "min_quality",
    "quality_std",
    "rebuffer_ratio",
    "num_stalls",
    "max_stall_s",
    "mean_bitrate_norm",
    "num_switches_norm",
    "mean_switch_magnitude",
    "startup_delay_s",
)


def summary_features(rendered: RenderedVideo) -> np.ndarray:
    """Session-level summary feature vector for a rendering."""
    quality = rendered.quality_curve() / 100.0
    top = rendered.encoded.ladder.bitrates_kbps[-1]
    switches = rendered.switch_magnitudes_kbps() / top
    stalls = rendered.stalls_s
    return np.array(
        [
            float(np.mean(quality)),
            float(np.min(quality)),
            float(np.std(quality)),
            float(rendered.rebuffering_ratio()),
            float(np.sum(stalls > 0)),
            float(np.max(stalls)) if stalls.size else 0.0,
            float(np.mean(rendered.bitrates_kbps()) / top),
            float(rendered.num_switches()) / max(1, rendered.num_chunks - 1),
            float(np.mean(switches)),
            float(rendered.startup_delay_s),
        ]
    )


class P1203Model(QoEModel):
    """Random-forest QoE model over session summary features."""

    name = "P.1203"

    def __init__(
        self,
        num_trees: int = 20,
        max_depth: int = 6,
        seed: int = 13,
    ) -> None:
        self._forest = RandomForestRegressor(
            num_trees=num_trees, max_depth=max_depth, seed=seed
        )
        self._fitted = False
        # Untrained fallback coefficients so the model degrades gracefully.
        self._fallback_quality_weight = 0.85
        self._fallback_stall_weight = 0.25

    def fit(
        self, renderings: Sequence[RenderedVideo], mos: Sequence[float]
    ) -> "P1203Model":
        """Train the forest on (rendering, MOS) pairs; MOS may be 1–5 or 0–1."""
        require(len(renderings) == len(mos), "renderings and MOS must align")
        require(len(renderings) >= 4, "need at least four training points")
        mos_arr = np.asarray(list(mos), dtype=float)
        targets = (mos_arr - 1.0) / 4.0 if mos_arr.max() > 1.5 else mos_arr
        features = np.stack([summary_features(r) for r in renderings])
        self._forest.fit(features, targets)
        self._fitted = True
        return self

    def score(self, rendered: RenderedVideo) -> float:
        """Predicted QoE in [0, 1]."""
        if not self._fitted:
            features = summary_features(rendered)
            value = (
                self._fallback_quality_weight * features[0]
                - self._fallback_stall_weight * features[3] * 10.0
            )
            return float(np.clip(value, 0.0, 1.0))
        prediction = self._forest.predict(summary_features(rendered).reshape(1, -1))
        return float(np.clip(prediction[0], 0.0, 1.0))
