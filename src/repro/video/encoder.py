"""Synthetic encoder: per-chunk sizes and visual quality per bitrate level.

The paper encodes real videos with H.264; the ABR stack only ever sees the
resulting per-chunk *sizes* (what must be downloaded) and per-chunk *visual
quality* (a VMAF-like score KSQI consumes).  The synthetic encoder produces
both from a standard rate–distortion model:

* chunk size  ≈ bitrate × duration, modulated by the chunk's spatial
  complexity and motion (complex/high-motion chunks are harder to encode and
  overshoot the nominal rate; simple chunks undershoot), plus VBR noise;
* visual quality follows a logarithmic rate–quality curve whose knee shifts
  with complexity (complex content needs more bits for the same quality).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.utils.rand import spawn_rng
from repro.utils.validation import require
from repro.video.chunk import DEFAULT_LADDER, EncodingLadder
from repro.video.video import SourceVideo


@dataclass(frozen=True)
class EncodedChunk:
    """One chunk encoded at every ladder level.

    Attributes
    ----------
    sizes_bytes:
        Array of chunk sizes in bytes, one entry per ladder level.
    quality:
        Array of VMAF-like visual quality scores in [0, 100], per level.
    """

    sizes_bytes: np.ndarray
    quality: np.ndarray

    def __post_init__(self) -> None:
        require(self.sizes_bytes.ndim == 1, "sizes_bytes must be 1-D")
        require(self.quality.shape == self.sizes_bytes.shape, "shape mismatch")
        require(bool(np.all(self.sizes_bytes > 0)), "chunk sizes must be positive")
        require(
            bool(np.all(np.diff(self.sizes_bytes) > 0)),
            "chunk sizes must increase with bitrate level",
        )
        require(
            bool(np.all(np.diff(self.quality) >= 0)),
            "quality must be non-decreasing with bitrate level",
        )


@dataclass
class EncodedVideo:
    """A source video encoded at every level of a ladder."""

    source: SourceVideo
    ladder: EncodingLadder
    chunks: List[EncodedChunk]

    def __post_init__(self) -> None:
        require(
            len(self.chunks) == self.source.num_chunks,
            "one EncodedChunk per source chunk is required",
        )
        for chunk in self.chunks:
            require(
                chunk.sizes_bytes.size == self.ladder.num_levels,
                "encoded chunk does not match ladder",
            )

    def __getstate__(self) -> dict:
        """Pickle only the declared fields.

        Derived caches (underscore attributes, e.g. the cached size/quality
        matrices and the engine's per-video ``SessionPrecompute``) are
        rebuildable on the other side and would otherwise bloat every
        work-order/result pickle the process-pool runner ships between
        processes.
        """
        from repro.utils.pickling import public_state

        return public_state(self)

    # ----------------------------------------------------------- accessors

    @property
    def num_chunks(self) -> int:
        """Number of chunks."""
        return len(self.chunks)

    @property
    def chunk_duration_s(self) -> float:
        """Chunk duration in seconds."""
        return self.source.chunk_duration_s

    def chunk_size_bytes(self, chunk_index: int, level: int) -> float:
        """Size in bytes of a chunk at a bitrate level."""
        require(0 <= chunk_index < self.num_chunks, "chunk index out of range")
        return float(self.chunks[chunk_index].sizes_bytes[level])

    def chunk_quality(self, chunk_index: int, level: int) -> float:
        """VMAF-like quality (0-100) of a chunk at a bitrate level."""
        require(0 <= chunk_index < self.num_chunks, "chunk index out of range")
        return float(self.chunks[chunk_index].quality[level])

    def sizes_matrix(self) -> np.ndarray:
        """(num_chunks, num_levels) matrix of sizes in bytes.

        Stacked once per video and cached **read-only** — every consumer
        (sessions, QoE scoring, manifests) reads the same matrix.
        """
        cached = self.__dict__.get("_sizes_matrix")
        if cached is None:
            cached = np.stack([c.sizes_bytes for c in self.chunks])
            cached.setflags(write=False)
            self._sizes_matrix = cached
        return cached

    def quality_matrix(self) -> np.ndarray:
        """(num_chunks, num_levels) matrix of VMAF-like quality scores.

        Stacked once per video and cached **read-only**, like
        :meth:`sizes_matrix`.
        """
        cached = self.__dict__.get("_quality_matrix")
        if cached is None:
            cached = np.stack([c.quality for c in self.chunks])
            cached.setflags(write=False)
            self._quality_matrix = cached
        return cached

    def next_chunk_sizes(self, chunk_index: int) -> np.ndarray:
        """Sizes (bytes per level) of the chunk at ``chunk_index``; the
        standard ABR input."""
        require(0 <= chunk_index < self.num_chunks, "chunk index out of range")
        return self.chunks[chunk_index].sizes_bytes.copy()


class SyntheticEncoder:
    """Rate–distortion encoder producing :class:`EncodedVideo` objects.

    Parameters
    ----------
    vbr_noise:
        Relative standard deviation of per-chunk size variation around the
        nominal (complexity-adjusted) size.
    seed:
        Base seed; per-video randomness is derived from it and the video id.
    """

    def __init__(self, vbr_noise: float = 0.08, seed: int = 11) -> None:
        require(0.0 <= vbr_noise < 0.5, "vbr_noise must be in [0, 0.5)")
        self.vbr_noise = float(vbr_noise)
        self.seed = int(seed)

    def encode(
        self, video: SourceVideo, ladder: Optional[EncodingLadder] = None
    ) -> EncodedVideo:
        """Encode a source video at every level of a ladder."""
        ladder = ladder if ladder is not None else DEFAULT_LADDER
        rng = spawn_rng(self.seed, "encode", video.video_id, ladder.bitrates_kbps)
        chunks: List[EncodedChunk] = []
        for index in range(video.num_chunks):
            descriptor = video.descriptor(index)
            chunks.append(
                self._encode_chunk(
                    descriptor.complexity,
                    descriptor.motion,
                    video.chunk_duration_s,
                    ladder,
                    rng,
                )
            )
        return EncodedVideo(source=video, ladder=ladder, chunks=chunks)

    # --------------------------------------------------------------- internals

    def _encode_chunk(
        self,
        complexity: float,
        motion: float,
        duration_s: float,
        ladder: EncodingLadder,
        rng: np.random.Generator,
    ) -> EncodedChunk:
        bitrates = np.asarray(ladder.bitrates_kbps, dtype=float)
        # Encoding difficulty: hard chunks overshoot the nominal rate by up to
        # ~25%, easy chunks undershoot by up to ~15%.
        difficulty = 0.5 * complexity + 0.5 * motion
        size_factor = 0.85 + 0.4 * difficulty
        noise = 1.0 + self.vbr_noise * rng.standard_normal()
        noise = float(np.clip(noise, 0.6, 1.4))
        sizes_bits = bitrates * 1000.0 * duration_s * size_factor * noise
        sizes_bytes = sizes_bits / 8.0

        # Rate-quality: q(R) = 100 * (1 - exp(-R / R0)), with R0 growing with
        # complexity so that complex chunks need more bits for equal quality.
        r0 = 500.0 + 1800.0 * difficulty
        quality = 100.0 * (1.0 - np.exp(-bitrates / r0))
        quality = np.clip(quality, 1.0, 100.0)
        # Ensure strict monotonicity of sizes even after noise (same noise
        # multiplier per chunk keeps ordering, but guard anyway).
        sizes_bytes = np.maximum.accumulate(sizes_bytes + np.arange(sizes_bytes.size))
        return EncodedChunk(sizes_bytes=sizes_bytes, quality=quality)
