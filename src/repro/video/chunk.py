"""Encoding ladder: the discrete bitrate levels a chunk can be encoded at.

The paper encodes each 4-second chunk with H.264 at five bitrate levels
{300, 750, 1200, 1850, 2850} kbps, corresponding to the YouTube
{240, 360, 480, 720, 1080}p rungs (§7.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence, Tuple

from repro.utils.validation import require


@dataclass(frozen=True)
class EncodingLadder:
    """An ordered set of bitrate levels available to the ABR algorithm.

    Attributes
    ----------
    bitrates_kbps:
        Strictly increasing bitrates in kilobits per second.
    labels:
        Human-readable labels (e.g. resolutions) aligned with the bitrates.
    """

    bitrates_kbps: Tuple[float, ...]
    labels: Tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        require(len(self.bitrates_kbps) >= 2, "a ladder needs at least two levels")
        require(
            all(b > 0 for b in self.bitrates_kbps),
            "bitrates must be strictly positive",
        )
        require(
            all(
                self.bitrates_kbps[i] < self.bitrates_kbps[i + 1]
                for i in range(len(self.bitrates_kbps) - 1)
            ),
            "bitrates must be strictly increasing",
        )
        if self.labels:
            require(
                len(self.labels) == len(self.bitrates_kbps),
                "labels must align with bitrates",
            )

    @property
    def num_levels(self) -> int:
        """Number of bitrate levels in the ladder."""
        return len(self.bitrates_kbps)

    @property
    def lowest_level(self) -> int:
        """Index of the lowest bitrate level (always 0)."""
        return 0

    @property
    def highest_level(self) -> int:
        """Index of the highest bitrate level."""
        return self.num_levels - 1

    def bitrate_of(self, level: int) -> float:
        """Bitrate in kbps of a level index."""
        require(0 <= level < self.num_levels, f"level {level} out of range")
        return self.bitrates_kbps[level]

    def label_of(self, level: int) -> str:
        """Label of a level index; falls back to the bitrate if unlabeled."""
        require(0 <= level < self.num_levels, f"level {level} out of range")
        if self.labels:
            return self.labels[level]
        return f"{self.bitrates_kbps[level]:.0f}kbps"

    def level_for_bitrate(self, bitrate_kbps: float) -> int:
        """Return the highest level whose bitrate does not exceed the target.

        If even the lowest rung exceeds ``bitrate_kbps`` the lowest level is
        returned, mirroring how real players always have a floor rung.
        """
        chosen = 0
        for level, rate in enumerate(self.bitrates_kbps):
            if rate <= bitrate_kbps:
                chosen = level
        return chosen

    def levels(self) -> Iterator[int]:
        """Iterate over level indices in ascending bitrate order."""
        return iter(range(self.num_levels))

    def chunk_size_bits(self, level: int, chunk_duration_s: float) -> float:
        """Nominal (CBR) chunk size in bits for a level and chunk duration."""
        require(chunk_duration_s > 0, "chunk duration must be positive")
        return self.bitrate_of(level) * 1000.0 * chunk_duration_s

    @classmethod
    def from_bitrates(cls, bitrates_kbps: Sequence[float]) -> "EncodingLadder":
        """Build an unlabeled ladder from a bitrate sequence."""
        return cls(bitrates_kbps=tuple(float(b) for b in bitrates_kbps))


#: The ladder used throughout the paper's evaluation (§7.1).
DEFAULT_LADDER = EncodingLadder(
    bitrates_kbps=(300.0, 750.0, 1200.0, 1850.0, 2850.0),
    labels=("240p", "360p", "480p", "720p", "1080p"),
)
