"""Per-chunk content descriptors and the synthetic content generator.

The paper's key observation (§2.3) is that a user's sensitivity to a quality
incident is driven by the *content* of the moment — goals in a soccer game,
scoreboard changes, tense scenes of an animation — and not by low-level pixel
statistics.  Since the reproduction has no real pixels, each chunk of a
source video carries a :class:`ContentDescriptor` summarising the aspects the
paper discusses:

* ``motion``       — temporal dynamics (camera/object motion), what LSTM-QoE
                     and VMAF-style metrics key off;
* ``complexity``   — spatial complexity (texture, detail), what drives
                     encoding difficulty and chunk sizes;
* ``information``  — information richness (objects, text, scoreboards), what
                     CV highlight detectors key off (Appendix D);
* ``key_moment``   — latent narrative importance / viewer attention, what
                     *actually* drives dynamic quality sensitivity.

The :class:`ContentGenerator` synthesises per-genre descriptor sequences
whose structure matches the qualitative description in §2.3 ("Sources of
dynamic quality sensitivity"): sports videos have short sharp attention
peaks around goals/buzzer beaters with highly dynamic but low-attention
gameplay elsewhere; gaming videos have bursty action moments; nature videos
have long scenic lulls; animation videos have a narrative arc whose tension
builds towards key scenes.  Crucially, ``key_moment`` is only loosely
correlated with ``motion``/``information``, which is exactly what makes the
heuristic baselines (LSTM-QoE, VMAF, CV models) mispredict sensitivity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.utils.rand import spawn_rng
from repro.utils.validation import require, require_in_range

#: Genres used in Table 1 of the paper.
GENRES = ("sports", "gaming", "nature", "animation")


@dataclass(frozen=True)
class ContentDescriptor:
    """Summary of one chunk's content, all fields in [0, 1]."""

    motion: float
    complexity: float
    information: float
    key_moment: float
    scene_id: int = 0
    label: str = ""

    def __post_init__(self) -> None:
        require_in_range(self.motion, 0.0, 1.0, "motion")
        require_in_range(self.complexity, 0.0, 1.0, "complexity")
        require_in_range(self.information, 0.0, 1.0, "information")
        require_in_range(self.key_moment, 0.0, 1.0, "key_moment")

    def as_vector(self) -> np.ndarray:
        """Feature vector (motion, complexity, information) — note that
        ``key_moment`` is deliberately excluded: it is latent and only
        observable through user studies."""
        return np.array([self.motion, self.complexity, self.information])


def _clip01(x: np.ndarray) -> np.ndarray:
    return np.clip(x, 0.0, 1.0)


def _smooth(values: np.ndarray, window: int) -> np.ndarray:
    """Moving-average smoothing with edge padding."""
    if window <= 1 or values.size <= 2:
        return values
    kernel = np.ones(window) / window
    padded = np.pad(values, (window // 2, window - 1 - window // 2), mode="edge")
    return np.convolve(padded, kernel, mode="valid")


def _bump(num_chunks: int, center: int, width: float, height: float) -> np.ndarray:
    """A Gaussian bump over chunk indices."""
    idx = np.arange(num_chunks, dtype=float)
    return height * np.exp(-0.5 * ((idx - center) / max(width, 1e-6)) ** 2)


class ContentGenerator:
    """Generates per-chunk :class:`ContentDescriptor` sequences per genre.

    Parameters
    ----------
    seed:
        Base seed; per-video sequences are derived from it together with the
        video name so that the catalogue is stable across runs.
    """

    def __init__(self, seed: int = 7) -> None:
        self.seed = int(seed)

    # ------------------------------------------------------------------ API

    def generate(self, name: str, genre: str, num_chunks: int) -> List[ContentDescriptor]:
        """Generate a descriptor sequence for a named video of a genre."""
        require(genre in GENRES, f"unknown genre {genre!r}; expected one of {GENRES}")
        require(num_chunks >= 2, "a video needs at least two chunks")
        rng = spawn_rng(self.seed, "content", name, genre, num_chunks)
        if genre == "sports":
            return self._sports(rng, num_chunks)
        if genre == "gaming":
            return self._gaming(rng, num_chunks)
        if genre == "nature":
            return self._nature(rng, num_chunks)
        return self._animation(rng, num_chunks)

    # ------------------------------------------------------- genre processes

    def _sports(self, rng: np.random.Generator, n: int) -> List[ContentDescriptor]:
        """Sports: fast gameplay with a few sharp key moments (goals) and
        short informational moments (scoreboard, replays)."""
        motion = _clip01(0.55 + 0.25 * rng.standard_normal(n))
        motion = _clip01(_smooth(motion, 3))
        complexity = _clip01(0.5 + 0.2 * rng.standard_normal(n))
        information = _clip01(0.35 + 0.15 * rng.standard_normal(n))
        key = np.full(n, 0.28) + 0.05 * rng.standard_normal(n)

        num_goals = max(1, int(round(n / 18)) + int(rng.integers(0, 2)))
        goal_centers = sorted(rng.choice(np.arange(2, n - 1), size=num_goals, replace=False))
        labels = ["gameplay"] * n
        for center in goal_centers:
            key += _bump(n, int(center), width=1.0, height=0.75)
            # A goal is usually followed by a replay / scoreboard change:
            # informational but markedly less quality sensitive.
            info_center = min(n - 1, int(center) + 2)
            information += _bump(n, info_center, width=1.0, height=0.5)
            # Ads / crowd shots: highly dynamic, low attention.
            for offset in (-4, 5):
                c = int(center) + offset
                if 0 <= c < n:
                    motion[c] = min(1.0, motion[c] + 0.3)
            labels[int(center)] = "goal"
            if info_center < n:
                labels[info_center] = "scoreboard"
        scenes = np.cumsum(rng.random(n) < 0.25).astype(int)
        return self._pack(motion, complexity, information, key, scenes, labels)

    def _gaming(self, rng: np.random.Generator, n: int) -> List[ContentDescriptor]:
        """Gaming: bursty combat/loot moments with menu or travel lulls."""
        motion = _clip01(0.5 + 0.3 * rng.standard_normal(n))
        complexity = _clip01(0.6 + 0.2 * rng.standard_normal(n))
        information = _clip01(0.4 + 0.2 * rng.standard_normal(n))
        key = np.full(n, 0.3) + 0.06 * rng.standard_normal(n)
        labels = ["exploration"] * n

        num_fights = max(1, int(round(n / 14)))
        centers = sorted(rng.choice(np.arange(1, n - 1), size=num_fights, replace=False))
        for center in centers:
            width = float(rng.uniform(1.0, 2.0))
            key += _bump(n, int(center), width=width, height=0.6)
            motion += _bump(n, int(center), width=width, height=0.3)
            labels[int(center)] = "combat"
            loot = min(n - 1, int(center) + 1)
            key += _bump(n, loot, width=0.8, height=0.35)
            labels[loot] = "loot"
        # Menu screens: information-rich but not sensitive.
        num_menus = max(1, n // 20)
        for center in rng.choice(np.arange(n), size=num_menus, replace=False):
            information[int(center)] = min(1.0, information[int(center)] + 0.4)
            motion[int(center)] = max(0.0, motion[int(center)] - 0.3)
            labels[int(center)] = "menu"
        scenes = np.cumsum(rng.random(n) < 0.2).astype(int)
        return self._pack(_clip01(motion), complexity, _clip01(information), key, scenes, labels)

    def _nature(self, rng: np.random.Generator, n: int) -> List[ContentDescriptor]:
        """Nature / scenic: long low-attention stretches with occasional
        striking moments (an animal appears, a satellite shot resolves)."""
        motion = _clip01(0.25 + 0.15 * rng.standard_normal(n))
        motion = _clip01(_smooth(motion, 5))
        complexity = _clip01(0.45 + 0.25 * rng.standard_normal(n))
        complexity = _clip01(_smooth(complexity, 5))
        information = _clip01(0.25 + 0.15 * rng.standard_normal(n))
        key = np.full(n, 0.18) + 0.04 * rng.standard_normal(n)
        labels = ["scenic"] * n

        num_moments = max(1, n // 20)
        centers = rng.choice(np.arange(1, n - 1), size=num_moments, replace=False)
        for center in centers:
            key += _bump(n, int(center), width=1.5, height=0.5)
            labels[int(center)] = "wildlife_moment"
        scenes = np.cumsum(rng.random(n) < 0.12).astype(int)
        return self._pack(motion, complexity, information, key, scenes, labels)

    def _animation(self, rng: np.random.Generator, n: int) -> List[ContentDescriptor]:
        """Animation / movie: a narrative arc whose tension ramps towards a
        small number of climactic scenes (e.g. the trap in BigBuckBunny)."""
        motion = _clip01(0.4 + 0.2 * rng.standard_normal(n))
        motion = _clip01(_smooth(motion, 3))
        complexity = _clip01(0.5 + 0.2 * rng.standard_normal(n))
        information = _clip01(0.3 + 0.15 * rng.standard_normal(n))
        labels = ["story"] * n

        num_acts = max(1, min(3, n // 12))
        climax_positions = sorted(
            rng.choice(np.arange(n // 3, n), size=num_acts, replace=False)
        )
        key = np.full(n, 0.22) + 0.05 * rng.standard_normal(n)
        for climax in climax_positions:
            # Tension builds over several chunks before the climax.
            ramp_len = int(rng.integers(3, 6))
            for step in range(ramp_len):
                pos = int(climax) - (ramp_len - step)
                if 0 <= pos < n:
                    key[pos] += 0.25 * (step + 1) / ramp_len
                    labels[pos] = "tension"
            key += _bump(n, int(climax), width=1.0, height=0.65)
            labels[int(climax)] = "climax"
        scenes = np.cumsum(rng.random(n) < 0.18).astype(int)
        return self._pack(motion, complexity, information, key, scenes, labels)

    # --------------------------------------------------------------- helpers

    @staticmethod
    def _pack(
        motion: np.ndarray,
        complexity: np.ndarray,
        information: np.ndarray,
        key: np.ndarray,
        scenes: np.ndarray,
        labels: Sequence[str],
    ) -> List[ContentDescriptor]:
        motion = _clip01(motion)
        complexity = _clip01(complexity)
        information = _clip01(information)
        key = _clip01(key)
        return [
            ContentDescriptor(
                motion=float(motion[i]),
                complexity=float(complexity[i]),
                information=float(information[i]),
                key_moment=float(key[i]),
                scene_id=int(scenes[i]),
                label=str(labels[i]),
            )
            for i in range(motion.size)
        ]
