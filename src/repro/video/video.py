"""Source video: a sequence of chunks with content descriptors."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.utils.validation import require, require_positive
from repro.video.content import ContentDescriptor, ContentGenerator, GENRES


@dataclass
class SourceVideo:
    """A source video split into fixed-duration chunks.

    Attributes
    ----------
    video_id:
        Stable identifier (e.g. ``"soccer1"``).
    name:
        Human-readable name from Table 1 (e.g. ``"Soccer1"``).
    genre:
        One of ``sports``, ``gaming``, ``nature``, ``animation``.
    chunk_duration_s:
        Chunk duration in seconds (4 s in the paper).
    descriptors:
        One :class:`ContentDescriptor` per chunk.
    source_dataset:
        The public dataset the paper drew the video from (informational).
    """

    video_id: str
    name: str
    genre: str
    chunk_duration_s: float
    descriptors: List[ContentDescriptor] = field(default_factory=list)
    source_dataset: str = ""

    def __post_init__(self) -> None:
        require(bool(self.video_id), "video_id must be non-empty")
        require(self.genre in GENRES, f"unknown genre {self.genre!r}")
        require_positive(self.chunk_duration_s, "chunk_duration_s")
        require(len(self.descriptors) >= 2, "a video needs at least two chunks")

    # ----------------------------------------------------------- properties

    @property
    def num_chunks(self) -> int:
        """Number of chunks in the video."""
        return len(self.descriptors)

    @property
    def duration_s(self) -> float:
        """Total playback duration in seconds."""
        return self.num_chunks * self.chunk_duration_s

    def descriptor(self, chunk_index: int) -> ContentDescriptor:
        """Content descriptor of a chunk."""
        require(0 <= chunk_index < self.num_chunks, "chunk index out of range")
        return self.descriptors[chunk_index]

    def chunk_start_time(self, chunk_index: int) -> float:
        """Playback start time (seconds) of a chunk."""
        require(0 <= chunk_index < self.num_chunks, "chunk index out of range")
        return chunk_index * self.chunk_duration_s

    def feature_matrix(self) -> np.ndarray:
        """(num_chunks, 3) matrix of observable content features."""
        return np.stack([d.as_vector() for d in self.descriptors])

    def key_moment_curve(self) -> np.ndarray:
        """Latent key-moment scores per chunk (not observable to baselines)."""
        return np.array([d.key_moment for d in self.descriptors])

    def chunk_labels(self) -> List[str]:
        """Content labels per chunk (``goal``, ``climax``, ``scenic`` ...)."""
        return [d.label for d in self.descriptors]

    # --------------------------------------------------------- constructors

    @classmethod
    def synthesize(
        cls,
        video_id: str,
        genre: str,
        duration_s: float,
        chunk_duration_s: float = 4.0,
        name: Optional[str] = None,
        source_dataset: str = "synthetic",
        generator: Optional[ContentGenerator] = None,
        seed: int = 7,
    ) -> "SourceVideo":
        """Synthesise a source video with genre-appropriate content structure."""
        require_positive(duration_s, "duration_s")
        require_positive(chunk_duration_s, "chunk_duration_s")
        num_chunks = max(2, int(round(duration_s / chunk_duration_s)))
        gen = generator if generator is not None else ContentGenerator(seed=seed)
        descriptors = gen.generate(video_id, genre, num_chunks)
        return cls(
            video_id=video_id,
            name=name or video_id,
            genre=genre,
            chunk_duration_s=chunk_duration_s,
            descriptors=descriptors,
            source_dataset=source_dataset,
        )

    @classmethod
    def from_descriptors(
        cls,
        video_id: str,
        genre: str,
        descriptors: Sequence[ContentDescriptor],
        chunk_duration_s: float = 4.0,
        name: Optional[str] = None,
    ) -> "SourceVideo":
        """Build a video directly from pre-computed descriptors (tests)."""
        return cls(
            video_id=video_id,
            name=name or video_id,
            genre=genre,
            chunk_duration_s=chunk_duration_s,
            descriptors=list(descriptors),
        )
