"""Rendered videos: what a viewer actually experiences.

A *rendered video* is a specific playback of an encoded video: the bitrate
level of every chunk, the rebuffering (stall) time incurred right before
every chunk, and the startup delay.  It is the common currency of the whole
system:

* the streaming simulator (:mod:`repro.player`) produces one per session;
* the crowdsourcing pipeline (:mod:`repro.crowd`) asks simulated raters to
  rate them;
* every QoE model (:mod:`repro.qoe`) scores them;
* SENSEI's profiling step (§4) injects *quality incidents* into an otherwise
  pristine rendering to build the video series of Figures 1, 3, 4 and 5.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.utils.validation import require, require_non_negative
from repro.video.encoder import EncodedVideo

#: Supported incident kinds (§2.3 uses exactly these).
INCIDENT_REBUFFERING = "rebuffering"
INCIDENT_BITRATE_DROP = "bitrate_drop"
INCIDENT_KINDS = (INCIDENT_REBUFFERING, INCIDENT_BITRATE_DROP)


@dataclass(frozen=True)
class QualityIncident:
    """A deliberately injected low-quality incident (§2.3, §4.3).

    Attributes
    ----------
    kind:
        ``"rebuffering"`` or ``"bitrate_drop"``.
    chunk_index:
        The chunk at which the incident occurs.
    stall_s:
        Stall duration in seconds (rebuffering incidents).
    drop_to_level:
        Target bitrate level during a bitrate-drop incident.
    duration_chunks:
        How many consecutive chunks a bitrate drop spans (the paper uses a
        4-second drop, i.e. one 4-second chunk, but longer drops are allowed).
    """

    kind: str
    chunk_index: int
    stall_s: float = 0.0
    drop_to_level: int = 0
    duration_chunks: int = 1

    def __post_init__(self) -> None:
        require(self.kind in INCIDENT_KINDS, f"unknown incident kind {self.kind!r}")
        require(self.chunk_index >= 0, "chunk_index must be >= 0")
        require_non_negative(self.stall_s, "stall_s")
        require(self.duration_chunks >= 1, "duration_chunks must be >= 1")
        if self.kind == INCIDENT_REBUFFERING:
            require(self.stall_s > 0, "a rebuffering incident needs stall_s > 0")

    @classmethod
    def rebuffering(cls, chunk_index: int, stall_s: float) -> "QualityIncident":
        """A stall of ``stall_s`` seconds right before ``chunk_index``."""
        return cls(kind=INCIDENT_REBUFFERING, chunk_index=chunk_index, stall_s=stall_s)

    @classmethod
    def bitrate_drop(
        cls, chunk_index: int, drop_to_level: int = 0, duration_chunks: int = 1
    ) -> "QualityIncident":
        """A bitrate drop to ``drop_to_level`` for ``duration_chunks`` chunks."""
        return cls(
            kind=INCIDENT_BITRATE_DROP,
            chunk_index=chunk_index,
            drop_to_level=drop_to_level,
            duration_chunks=duration_chunks,
        )


@dataclass(frozen=True)
class RenderedVideo:
    """One playback of an encoded video, as experienced by a viewer.

    Attributes
    ----------
    encoded:
        The underlying encoded video.
    levels:
        Bitrate level index per chunk.
    stalls_s:
        Rebuffering time (seconds) incurred immediately before each chunk.
    startup_delay_s:
        Delay before the first chunk starts playing.
    render_id:
        Free-form identifier used by the crowdsourcing pipeline and reports.
    """

    encoded: EncodedVideo
    levels: np.ndarray
    stalls_s: np.ndarray
    startup_delay_s: float = 0.0
    render_id: str = ""

    def __post_init__(self) -> None:
        levels = np.asarray(self.levels, dtype=int)
        stalls = np.asarray(self.stalls_s, dtype=float)
        object.__setattr__(self, "levels", levels)
        object.__setattr__(self, "stalls_s", stalls)
        n = self.encoded.num_chunks
        require(levels.shape == (n,), "levels must have one entry per chunk")
        require(stalls.shape == (n,), "stalls_s must have one entry per chunk")
        require(bool(np.all(levels >= 0)), "levels must be >= 0")
        require(
            bool(np.all(levels < self.encoded.ladder.num_levels)),
            "levels must be valid ladder indices",
        )
        require(bool(np.all(stalls >= 0)), "stall times must be >= 0")
        require_non_negative(self.startup_delay_s, "startup_delay_s")

    # ----------------------------------------------------------- accessors

    @property
    def num_chunks(self) -> int:
        """Number of chunks in the rendering."""
        return self.encoded.num_chunks

    @property
    def chunk_duration_s(self) -> float:
        """Chunk duration in seconds."""
        return self.encoded.chunk_duration_s

    @property
    def source(self):
        """The underlying source video."""
        return self.encoded.source

    def bitrate_kbps(self, chunk_index: int) -> float:
        """Bitrate (kbps) at which a chunk was played."""
        return self.encoded.ladder.bitrate_of(int(self.levels[chunk_index]))

    def bitrates_kbps(self) -> np.ndarray:
        """Bitrate per chunk in kbps."""
        ladder_rates = np.asarray(self.encoded.ladder.bitrates_kbps, dtype=float)
        return ladder_rates[np.asarray(self.levels, dtype=int)]

    def chunk_quality(self, chunk_index: int) -> float:
        """VMAF-like visual quality of a chunk as played."""
        return self.encoded.chunk_quality(chunk_index, int(self.levels[chunk_index]))

    def quality_curve(self) -> np.ndarray:
        """Visual quality per chunk as played (0-100)."""
        levels = np.asarray(self.levels, dtype=int)
        return self.encoded.quality_matrix()[np.arange(levels.size), levels]

    def total_stall_s(self) -> float:
        """Total rebuffering time excluding startup delay."""
        return float(np.sum(self.stalls_s))

    def rebuffering_ratio(self) -> float:
        """Total stall time divided by playback duration."""
        return self.total_stall_s() / (self.num_chunks * self.chunk_duration_s)

    def total_bytes(self) -> float:
        """Total bytes downloaded for the played levels."""
        return float(
            sum(
                self.encoded.chunk_size_bytes(i, int(self.levels[i]))
                for i in range(self.num_chunks)
            )
        )

    def average_bitrate_kbps(self) -> float:
        """Mean played bitrate in kbps."""
        return float(np.mean(self.bitrates_kbps()))

    def num_switches(self) -> int:
        """Number of chunk boundaries where the bitrate level changes."""
        return int(np.sum(np.diff(self.levels) != 0))

    def switch_magnitudes_kbps(self) -> np.ndarray:
        """Absolute bitrate change (kbps) at each chunk boundary; first is 0."""
        rates = self.bitrates_kbps()
        return np.concatenate([[0.0], np.abs(np.diff(rates))])

    def incident_summary(self) -> str:
        """Human-readable summary of quality incidents in this rendering."""
        parts: List[str] = []
        if self.startup_delay_s > 0:
            parts.append(f"startup {self.startup_delay_s:.1f}s")
        for i, stall in enumerate(self.stalls_s):
            if stall > 0:
                parts.append(f"stall {stall:.1f}s @chunk {i}")
        top = self.encoded.ladder.highest_level
        drops = [i for i in range(self.num_chunks) if self.levels[i] < top]
        if drops and len(drops) < self.num_chunks:
            parts.append(f"{len(drops)} chunks below top bitrate")
        return "; ".join(parts) if parts else "pristine"

    # ---------------------------------------------------------- derivation

    def with_render_id(self, render_id: str) -> "RenderedVideo":
        """Copy of this rendering with a new identifier."""
        return replace(self, render_id=render_id)


def render_pristine(encoded: EncodedVideo, render_id: str = "") -> RenderedVideo:
    """The reference rendering: highest bitrate everywhere, no stalls.

    This is the "reference video" each crowdsourcing survey embeds for
    calibration (Appendix B).
    """
    top = encoded.ladder.highest_level
    return RenderedVideo(
        encoded=encoded,
        levels=np.full(encoded.num_chunks, top, dtype=int),
        stalls_s=np.zeros(encoded.num_chunks),
        startup_delay_s=0.0,
        render_id=render_id or f"{encoded.source.video_id}/pristine",
    )


def inject_incident(
    rendering: RenderedVideo, incident: QualityIncident, render_id: str = ""
) -> RenderedVideo:
    """Return a copy of ``rendering`` with one quality incident injected."""
    n = rendering.num_chunks
    require(incident.chunk_index < n, "incident chunk index beyond video end")
    levels = rendering.levels.copy()
    stalls = rendering.stalls_s.copy()
    if incident.kind == INCIDENT_REBUFFERING:
        stalls[incident.chunk_index] += incident.stall_s
    else:
        require(
            incident.drop_to_level < rendering.encoded.ladder.num_levels,
            "drop_to_level out of range",
        )
        end = min(n, incident.chunk_index + incident.duration_chunks)
        for i in range(incident.chunk_index, end):
            levels[i] = min(int(levels[i]), incident.drop_to_level)
    if not render_id:
        render_id = (
            f"{rendering.encoded.source.video_id}/{incident.kind}"
            f"@{incident.chunk_index}"
        )
    return replace(rendering, levels=levels, stalls_s=stalls, render_id=render_id)


def make_video_series(
    encoded: EncodedVideo,
    incident_template: QualityIncident,
    chunk_indices: Optional[Sequence[int]] = None,
) -> List[RenderedVideo]:
    """Build the *video series* of §2.3: one rendering per incident position.

    Every rendering has the same (pristine) content except for the incident
    from ``incident_template`` moved to a different chunk.
    """
    pristine = render_pristine(encoded)
    if chunk_indices is None:
        chunk_indices = range(encoded.num_chunks)
    series: List[RenderedVideo] = []
    for chunk_index in chunk_indices:
        incident = replace(incident_template, chunk_index=int(chunk_index))
        series.append(inject_incident(pristine, incident))
    require(bool(series), "video series must contain at least one rendering")
    return series


def renderings_for_incidents(
    encoded: EncodedVideo, incidents: Iterable[QualityIncident]
) -> List[RenderedVideo]:
    """One rendering per incident, each injected into a pristine playback."""
    pristine = render_pristine(encoded)
    return [inject_incident(pristine, incident) for incident in incidents]
