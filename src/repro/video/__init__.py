"""Video substrate: source videos, encoding ladder, synthetic encoder, renderings.

The paper works with real source videos (Table 1) encoded with H.264 into
4-second chunks at five bitrate levels.  The reproduction replaces pixels
with per-chunk *content descriptors* (motion, spatial complexity,
information richness, key-moment score); everything downstream — the
synthetic encoder, the ground-truth sensitivity oracle, the QoE models and
the ABR algorithms — consumes only this metadata, exactly as the original
system consumes chunk sizes and quality scores rather than raw frames.
"""

from repro.video.chunk import EncodingLadder, DEFAULT_LADDER
from repro.video.content import ContentDescriptor, ContentGenerator
from repro.video.video import SourceVideo
from repro.video.encoder import EncodedChunk, EncodedVideo, SyntheticEncoder
from repro.video.library import VideoSpec, TEST_VIDEO_SPECS, VideoLibrary
from repro.video.rendering import (
    QualityIncident,
    RenderedVideo,
    render_pristine,
    inject_incident,
    make_video_series,
)

__all__ = [
    "EncodingLadder",
    "DEFAULT_LADDER",
    "ContentDescriptor",
    "ContentGenerator",
    "SourceVideo",
    "EncodedChunk",
    "EncodedVideo",
    "SyntheticEncoder",
    "VideoSpec",
    "TEST_VIDEO_SPECS",
    "VideoLibrary",
    "QualityIncident",
    "RenderedVideo",
    "render_pristine",
    "inject_incident",
    "make_video_series",
]
