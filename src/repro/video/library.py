"""The 16-video test catalogue from Table 1 of the paper.

Each entry keeps the name, genre, length and source dataset from Table 1;
the actual content is synthesised by :class:`~repro.video.content.ContentGenerator`
(see DESIGN.md §2 for the substitution rationale).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.utils.validation import require
from repro.video.chunk import DEFAULT_LADDER, EncodingLadder
from repro.video.content import ContentGenerator
from repro.video.encoder import EncodedVideo, SyntheticEncoder
from repro.video.video import SourceVideo


def _minutes(mm: int, ss: int) -> float:
    return mm * 60.0 + ss


@dataclass(frozen=True)
class VideoSpec:
    """One row of Table 1."""

    video_id: str
    name: str
    genre: str
    duration_s: float
    source_dataset: str
    description: str = ""


#: Table 1 of the paper: the 16-video evaluation set.
TEST_VIDEO_SPECS: Tuple[VideoSpec, ...] = (
    VideoSpec("basket1", "Basket1", "sports", _minutes(3, 40), "LIVE-MOBILE",
              "A buzzer beater in a basketball game"),
    VideoSpec("soccer1", "Soccer1", "sports", _minutes(3, 20), "LIVE-NFLX-II",
              "A goal after a failed shoot"),
    VideoSpec("basket2", "Basket2", "sports", _minutes(3, 40), "YouTube-UGC",
              "A free throw followed by a one-on-one defense"),
    VideoSpec("soccer2", "Soccer2", "sports", _minutes(3, 40), "YouTube-UGC",
              "Presenting the scoreboard after a goal"),
    VideoSpec("discus", "Discus", "sports", _minutes(3, 40), "YouTube-UGC",
              "A man throwing a discus"),
    VideoSpec("wrestling", "Wrestling", "sports", _minutes(3, 40), "YouTube-UGC",
              "Two wrestling players"),
    VideoSpec("motor", "Motor", "sports", _minutes(3, 40), "YouTube-UGC",
              "Motor racing"),
    VideoSpec("tank", "Tank", "gaming", _minutes(3, 40), "YouTube-UGC",
              "A tank attacking a house"),
    VideoSpec("fps1", "FPS1", "gaming", _minutes(3, 40), "YouTube-UGC",
              "A first-person shooting game"),
    VideoSpec("fps2", "FPS2", "gaming", _minutes(3, 40), "YouTube-UGC",
              "A player robbing supplies"),
    VideoSpec("mountain", "Mountain", "nature", _minutes(1, 24), "LIVE-MOBILE",
              "Mountain scene"),
    VideoSpec("animal", "Animal", "nature", _minutes(3, 40), "YouTube-UGC",
              "Warthogs that are bathing and grooming"),
    VideoSpec("space", "Space", "nature", _minutes(3, 40), "YouTube-UGC",
              "A satellite taking pictures of the Earth"),
    VideoSpec("girl", "Girl", "animation", _minutes(3, 40), "YouTube-UGC",
              "A girl falling off the cliff"),
    VideoSpec("lava", "Lava", "animation", _minutes(3, 40), "LIVE-NFLX-II",
              "A lava is waking up"),
    VideoSpec("bigbuckbunny", "BigBuckBunny", "animation", _minutes(9, 56),
              "WaterlooSQOE-III", "A rabbit dealing with three tiny bullies"),
)


class VideoLibrary:
    """Materialises Table 1 into :class:`SourceVideo`/:class:`EncodedVideo` objects.

    Parameters
    ----------
    chunk_duration_s:
        Chunk duration (4 s in the paper).
    seed:
        Seed for the content generator and the synthetic encoder.
    ladder:
        Encoding ladder; defaults to the paper's five-level ladder.
    """

    def __init__(
        self,
        chunk_duration_s: float = 4.0,
        seed: int = 7,
        ladder: Optional[EncodingLadder] = None,
    ) -> None:
        self.chunk_duration_s = float(chunk_duration_s)
        self.seed = int(seed)
        self.ladder = ladder if ladder is not None else DEFAULT_LADDER
        self._generator = ContentGenerator(seed=self.seed)
        self._encoder = SyntheticEncoder(seed=self.seed + 1)
        self._sources: Dict[str, SourceVideo] = {}
        self._encoded: Dict[str, EncodedVideo] = {}

    # ------------------------------------------------------------------ API

    def video_ids(self) -> List[str]:
        """All video ids in Table-1 order."""
        return [spec.video_id for spec in TEST_VIDEO_SPECS]

    def spec(self, video_id: str) -> VideoSpec:
        """Table-1 row for a video id."""
        for spec in TEST_VIDEO_SPECS:
            if spec.video_id == video_id:
                return spec
        raise KeyError(f"unknown video id {video_id!r}")

    def source(self, video_id: str) -> SourceVideo:
        """Source video (content descriptors) for a video id, cached."""
        if video_id not in self._sources:
            spec = self.spec(video_id)
            self._sources[video_id] = SourceVideo.synthesize(
                video_id=spec.video_id,
                genre=spec.genre,
                duration_s=spec.duration_s,
                chunk_duration_s=self.chunk_duration_s,
                name=spec.name,
                source_dataset=spec.source_dataset,
                generator=self._generator,
            )
        return self._sources[video_id]

    def encoded(self, video_id: str) -> EncodedVideo:
        """Encoded video for a video id, cached."""
        if video_id not in self._encoded:
            self._encoded[video_id] = self._encoder.encode(
                self.source(video_id), self.ladder
            )
        return self._encoded[video_id]

    def all_sources(self) -> List[SourceVideo]:
        """All 16 source videos."""
        return [self.source(video_id) for video_id in self.video_ids()]

    def all_encoded(self) -> List[EncodedVideo]:
        """All 16 encoded videos."""
        return [self.encoded(video_id) for video_id in self.video_ids()]

    def by_genre(self, genre: str) -> List[SourceVideo]:
        """Source videos of a genre."""
        videos = [
            self.source(spec.video_id)
            for spec in TEST_VIDEO_SPECS
            if spec.genre == genre
        ]
        require(bool(videos), f"no videos of genre {genre!r}")
        return videos

    def table1_rows(self) -> List[Dict[str, str]]:
        """Rows reproducing Table 1 (name, genre, length, source dataset)."""
        rows = []
        for spec in TEST_VIDEO_SPECS:
            minutes = int(spec.duration_s // 60)
            seconds = int(spec.duration_s % 60)
            rows.append(
                {
                    "name": spec.name,
                    "genre": spec.genre.capitalize(),
                    "length": f"{minutes}:{seconds:02d}",
                    "source": spec.source_dataset,
                }
            )
        return rows
