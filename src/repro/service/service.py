"""The always-on ABR decision service.

:class:`DecisionService` is the asyncio front door that turns the offline
batch engine into a long-lived system: many concurrent sessions hold their
:class:`~repro.player.session.SessionState` in the
:class:`~repro.service.sessions.SessionTable`, ``decide()`` calls coalesce
in the :class:`~repro.service.batcher.AdaptiveBatcher`'s micro-batching
window, and every flush answers the whole window from one batched planner
dispatch (:func:`~repro.service.decisions.decide_batch` →
:func:`~repro.engine.lockstep.plan_batch` → the shared
``evaluate_candidates_batch`` kernel).  Because the kernel is elementwise
over the batch axis, the decisions a session receives online are
bit-identical to the serial ``StreamingSession.run`` it would have seen
offline — the golden contract the service test suite asserts across the
whole non-RL ABR zoo.

Admission is weighted-fair (:class:`WeightedFairScheduler`): under
saturation, tenants receive kernel slots in proportion to their weights,
and requests the scheduler sheds (backlog overflow or admission timeout)
receive an explicit **degraded** fallback — level 0, never a stall —
applied to the session like any other decision, so the session keeps
making progress at floor quality instead of blocking.  A degraded
decision is the one place online may diverge from offline; the response
flags it and per-session/tenant counters record it (degraded-mode
contract in docs/SERVICE.md).

The operational surface rides the PR 7 obs subsystem: request-latency and
batch-size histograms, per-tenant decision/degraded counters, queue-depth
gauges, and a pull-style :meth:`health` snapshot.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.abr import planner
from repro.abr.base import ABRAlgorithm, Decision
from repro.engine.runner import BatchRunner
from repro.network.trace import ThroughputTrace
from repro.obs import get_registry
from repro.obs.metrics import DEFAULT_MICRO_LATENCY_BUCKETS_S
from repro.player.session import SessionConfig, StreamResult
from repro.service.batcher import AdaptiveBatcher
from repro.service.decisions import decide_batch
from repro.service.fairsched import WeightedFairScheduler
from repro.service.sessions import SessionEntry, SessionTable
from repro.video.encoder import EncodedVideo

__all__ = [
    "BATCH_SIZE_BUCKETS",
    "DecisionResponse",
    "DecisionService",
    "SessionEvictedError",
]

#: Bucket bounds for the flush-size histogram (upper bound 64 covers any
#: sane micro-batch window; +Inf catches the rest).
BATCH_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)


class SessionEvictedError(KeyError):
    """The session was evicted while its request was in flight."""


@dataclass(frozen=True)
class DecisionResponse:
    """One answered ``decide()`` call.

    ``degraded`` marks a load-shed fallback (level 0, not planner
    output); ``batch_size`` is the flush this decision was answered in
    (0 for degraded responses, which never reach the planner).
    """

    tenant: str
    session_id: str
    chunk_index: int
    level: int
    proactive_stall_s: float
    degraded: bool
    done: bool
    batch_size: int
    latency_s: float


class _Pending:
    """One request travelling through the batching window."""

    __slots__ = ("entry", "enqueued_at")

    def __init__(self, entry: SessionEntry, enqueued_at: float) -> None:
        self.entry = entry
        self.enqueued_at = enqueued_at


class DecisionService:
    """Register sessions, answer ``decide()`` online, stay bit-identical."""

    def __init__(
        self,
        table: Optional[SessionTable] = None,
        scheduler: Optional[WeightedFairScheduler] = None,
        max_batch: int = 16,
        max_delay_s: float = 0.002,
        capacity: Optional[int] = None,
        shed_timeout_s: Optional[float] = 0.05,
        max_backlog_per_tenant: int = 64,
        runner: Optional[BatchRunner] = None,
        kernel_dtype: Optional[str] = None,
    ) -> None:
        if kernel_dtype is not None:
            # Opt-in service-wide planner precision ("float32" trades the
            # bit-identity contract for kernel throughput; see
            # repro.abr.planner.set_kernel_dtype).  Process-wide by design:
            # every decide() flush shares the same arena workspaces.
            planner.set_kernel_dtype(kernel_dtype)
        self.table = table if table is not None else SessionTable()
        if scheduler is None:
            scheduler = WeightedFairScheduler(
                capacity=capacity if capacity is not None else max_batch,
                max_backlog=max_backlog_per_tenant,
            )
        self.scheduler = scheduler
        self.batcher = AdaptiveBatcher(
            self._execute_flush, max_batch=max_batch, max_delay_s=max_delay_s,
        )
        self.shed_timeout_s = shed_timeout_s
        self._runner = runner
        self._owns_runner = runner is None
        self._closed = False
        self._started_at = time.time()

    # -------------------------------------------------------------- sessions

    def register(
        self,
        tenant: str,
        session_id: str,
        abr: ABRAlgorithm,
        encoded: EncodedVideo,
        trace: ThroughputTrace,
        config: Optional[SessionConfig] = None,
        chunk_weights: Optional[np.ndarray] = None,
        weight: Optional[float] = None,
    ) -> SessionEntry:
        """Register a session; ``weight`` also (re)sets the tenant weight."""
        self._require_open()
        entry = self.table.register(
            tenant, session_id, abr=abr, encoded=encoded, trace=trace,
            config=config, chunk_weights=chunk_weights,
        )
        if weight is not None:
            self.scheduler.set_weight(tenant, weight)
        metrics = get_registry()
        metrics.counter("service.sessions_registered").inc()
        metrics.gauge("service.sessions").set(len(self.table))
        return entry

    def evict(self, tenant: str, session_id: str) -> SessionEntry:
        """Evict a session; in-flight requests for it fail explicitly."""
        entry = self.table.evict(tenant, session_id)
        metrics = get_registry()
        metrics.counter("service.sessions_evicted").inc()
        metrics.gauge("service.sessions").set(len(self.table))
        return entry

    def set_tenant_weight(self, tenant: str, weight: float) -> None:
        self.scheduler.set_weight(tenant, weight)

    # --------------------------------------------------------------- decide

    async def decide(self, tenant: str, session_id: str) -> DecisionResponse:
        """Decide the next chunk's level for one session.

        Admission-gated by the fair scheduler; granted requests coalesce
        in the micro-batching window and are answered from a batched
        planner flush.  Shed requests get the degraded fallback.
        """
        self._require_open()
        entry = self.table.get(tenant, session_id)
        if entry.done:
            raise ValueError(
                f"session {(tenant, session_id)} already finished"
            )
        if entry.in_flight:
            raise RuntimeError(
                f"session {(tenant, session_id)} already has a decide() in "
                f"flight; the per-session protocol is strictly sequential"
            )
        entry.in_flight = True
        start = time.perf_counter()
        try:
            granted = await self.scheduler.acquire(
                tenant, timeout=self.shed_timeout_s
            )
            if not granted:
                return self._degraded_response(entry, start)
            try:
                response = await self.batcher.submit(_Pending(entry, start))
            finally:
                await self.scheduler.release(tenant)
        finally:
            entry.in_flight = False
        self._observe_queue_depth()
        return response

    async def close(self) -> None:
        """Drain in-flight flushes, then release owned resources.

        Idempotent.  Waiters still in the window are answered by the
        drain flush; an owned :class:`BatchRunner` is closed through its
        context-manager path so worker pools tear down cleanly.
        """
        if self._closed:
            return
        self._closed = True
        await self.batcher.drain()
        if self._owns_runner and self._runner is not None:
            runner, self._runner = self._runner, None
            runner.__exit__(None, None, None)

    async def __aenter__(self) -> "DecisionService":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()

    # --------------------------------------------------------------- offline

    def offline_result(self, entry: SessionEntry) -> StreamResult:
        """Re-run a session offline for the golden online ≡ offline check.

        Uses the untouched original ABR instance through the stock
        :class:`WorkOrder` path on a service-owned runner, exactly like a
        grid cell.
        """
        runner = self._ensure_runner()
        return runner.run_orders([entry.work_order()])[0]

    def _ensure_runner(self) -> BatchRunner:
        if self._runner is None:
            self._require_open()
            self._runner = BatchRunner(backend="serial")
        return self._runner

    # ---------------------------------------------------------------- health

    def health(self) -> Dict[str, object]:
        """A pull-style operational snapshot (also the TCP ``health`` op)."""
        return {
            "status": "closed" if self._closed else "ok",
            "uptime_s": round(time.time() - self._started_at, 3),
            "sessions": len(self.table),
            "sessions_by_tenant": self.table.tenant_counts(),
            "scheduler": {
                "capacity": self.scheduler.capacity,
                "in_flight": self.scheduler.in_flight,
                "queue_depth": self.scheduler.queue_depth(),
                "tenants": self.scheduler.stats(),
            },
            "batcher": self.batcher.stats(),
            "kernel": dict(zip(("impl", "dtype"), planner.kernel_config())),
        }

    # ------------------------------------------------------------- internals

    def _require_open(self) -> None:
        if self._closed:
            raise RuntimeError("DecisionService is closed")

    def _degraded_response(
        self, entry: SessionEntry, start: float
    ) -> DecisionResponse:
        """The load-shed fallback: floor quality, never a stall.

        Applied to the session like any planner decision, so a shed
        request degrades quality instead of stalling progress.  This is
        the one path where online diverges from offline; the response and
        the per-tenant counters make that explicit.
        """
        chunk_index = entry.state.chunk_index
        entry.state.apply(Decision(level=0))
        entry.decisions += 1
        entry.degraded += 1
        done = entry.done
        if done:
            entry.finalize()
        latency = time.perf_counter() - start
        metrics = get_registry()
        metrics.counter("service.decisions_total").inc()
        metrics.counter("service.degraded_total").inc()
        metrics.counter(f"service.tenant.{entry.tenant}.decisions").inc()
        metrics.counter(f"service.tenant.{entry.tenant}.degraded").inc()
        metrics.histogram(
            "service.request_latency_s", DEFAULT_MICRO_LATENCY_BUCKETS_S
        ).observe(latency)
        self._observe_queue_depth()
        return DecisionResponse(
            tenant=entry.tenant,
            session_id=entry.session_id,
            chunk_index=chunk_index,
            level=0,
            proactive_stall_s=0.0,
            degraded=True,
            done=done,
            batch_size=0,
            latency_s=latency,
        )

    def _observe_queue_depth(self) -> None:
        metrics = get_registry()
        metrics.gauge("service.queue_depth").set(self.scheduler.queue_depth())
        metrics.gauge("service.in_flight").set(self.scheduler.in_flight)

    def _execute_flush(self, pending: List[_Pending]) -> List[object]:
        """Answer one micro-batch window (runs synchronously on the loop)."""
        metrics = get_registry()
        results: List[object] = [None] * len(pending)
        live: List[int] = []
        requests = []
        for index, item in enumerate(pending):
            entry = item.entry
            if entry.evicted:
                results[index] = SessionEvictedError(entry.key)
                continue
            if entry.done:
                results[index] = ValueError(
                    f"session {entry.key} already finished"
                )
                continue
            live.append(index)
            requests.append((entry.clone, entry.kind, entry.state.observe()))
        decisions = decide_batch(requests) if requests else []
        batch_size = len(requests)
        for index, decision in zip(live, decisions):
            entry = pending[index].entry
            chunk_index = entry.state.chunk_index
            entry.state.apply(decision)
            entry.decisions += 1
            done = entry.done
            if done:
                entry.finalize()
            latency = time.perf_counter() - pending[index].enqueued_at
            metrics.counter("service.decisions_total").inc()
            metrics.counter(f"service.tenant.{entry.tenant}.decisions").inc()
            metrics.histogram(
                "service.request_latency_s", DEFAULT_MICRO_LATENCY_BUCKETS_S
            ).observe(latency)
            results[index] = DecisionResponse(
                tenant=entry.tenant,
                session_id=entry.session_id,
                chunk_index=chunk_index,
                level=int(decision.level),
                proactive_stall_s=float(decision.proactive_stall_s),
                degraded=False,
                done=done,
                batch_size=batch_size,
                latency_s=latency,
            )
        if batch_size:
            metrics.counter("service.flushes_total").inc()
            metrics.histogram(
                "service.batch_size", BATCH_SIZE_BUCKETS
            ).observe(float(batch_size))
        return results
