"""The always-on ABR decision service (docs/SERVICE.md).

The roadmap's production story: a long-lived asyncio front-end over the
batch engine.  Sessions register keyed by ``(tenant, session_id)`` and
hold unmodified :class:`~repro.player.session.SessionState`; ``decide()``
requests coalesce in an adaptive micro-batching window and each flush is
answered by one batched planner dispatch through
:func:`repro.engine.lockstep.plan_batch`, so online decisions are
bit-identical to the offline sweeps.  Admission under saturation is
weighted-fair across tenants with explicit degraded-mode load shedding,
and the whole surface is instrumented through :mod:`repro.obs`.

* :mod:`repro.service.service` — :class:`DecisionService` (the front door)
* :mod:`repro.service.batcher` — the adaptive micro-batching window
* :mod:`repro.service.fairsched` — weighted fair admission (SFQ)
* :mod:`repro.service.sessions` — the session table + ABR clones
* :mod:`repro.service.decisions` — batched, bit-identical decide paths
* :mod:`repro.service.loadgen` — load generator + ``BENCH_service.json``
"""

from repro.service.batcher import AdaptiveBatcher
from repro.service.decisions import decide_batch
from repro.service.fairsched import WeightedFairScheduler
from repro.service.loadgen import (
    ABR_FACTORIES,
    BENCH_SERVICE_SCHEMA,
    TenantSpec,
    bench_payload,
    default_tenants,
    register_load,
    run_load,
    verify_online_offline,
    write_bench,
)
from repro.service.service import (
    BATCH_SIZE_BUCKETS,
    DecisionResponse,
    DecisionService,
    SessionEvictedError,
)
from repro.service.sessions import (
    SessionEntry,
    SessionKey,
    SessionTable,
    planner_kind,
)

__all__ = [
    "ABR_FACTORIES",
    "AdaptiveBatcher",
    "BATCH_SIZE_BUCKETS",
    "BENCH_SERVICE_SCHEMA",
    "DecisionResponse",
    "DecisionService",
    "SessionEntry",
    "SessionEvictedError",
    "SessionKey",
    "SessionTable",
    "TenantSpec",
    "WeightedFairScheduler",
    "bench_payload",
    "decide_batch",
    "default_tenants",
    "planner_kind",
    "register_load",
    "run_load",
    "verify_online_offline",
    "write_bench",
]
