"""Batched online decisions, bit-identical to the serial ABR paths.

:func:`decide_batch` answers one micro-batch flush: every planner-eligible
request (MPC / Fugu / SENSEI-Fugu with their stock predictors — the same
exact-type test as the lockstep engine's ``_driver_for``) contributes a
:class:`~repro.engine.lockstep.PlanJob` to one
:func:`~repro.engine.lockstep.plan_batch` call, which merges jobs by
candidate-tree signature and dispatches the shared
``evaluate_candidates_batch`` kernel.  Greedy stock Pensieve-family
sessions (``KIND_RL``) batch differently: their clones share one
:class:`~repro.ml.rl.ActorCriticAgent` (see
:class:`~repro.service.sessions.SessionEntry`), so the flush groups them
by agent, stacks their encoded states, and runs **one actor forward per
policy** followed by a per-row argmax — bitwise the serial ``decide``
because the actor's matmuls are row-stable
(:func:`repro.ml.nn.row_matmul`).  Everything else falls back to the
clone's own ``decide`` — still exact, just not batched.

Bit-identity invariants, each load-bearing:

* Predictor calls happen on the session's clone, in request order, with
  the same observation the serial path would see — ``predict`` /
  ``predict_distribution`` run **exactly once per decision** (the error
  distribution predictor is stateful).
* Scenario construction replicates the serial ``decide`` bodies
  verbatim: MPC's single conservative scenario
  ``predicted / (1 + robustness_discount)``; Fugu's full distribution.
* SENSEI-Fugu's two-phase shape is replicated: phase 1 evaluates with
  ``stall_options=(0.0,)`` and weights; the stall gate (risk threshold,
  buffer floor, 5% weight-shift test, remaining proactive budget) decides
  which sessions get a phase-2 evaluation over the affordable stall
  options; phase 2's plan is adopted only when its score is *strictly*
  better.  Both phases are themselves batched ``plan_batch`` calls.
* The kernel guarantees the rest: ``evaluate_candidates_batch`` is
  elementwise over the batch axis, so co-scheduling any mix of sessions
  cannot change any single session's floats (docs/PERFORMANCE.md).

Every ``plan_batch`` call here runs on the arena kernel (precomputed
per-tree score arenas + preallocated workspaces, docs/PERFORMANCE.md §2),
so the service inherits its throughput directly; a service can opt into
the float32 fast path via ``DecisionService(kernel_dtype="float32")``,
which waives bit-identity for kernel speed.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.abr.base import ABRAlgorithm, Decision, PlayerObservation
from repro.engine.lockstep import PlanJob, plan_batch
from repro.service.sessions import (
    KIND_GENERIC,
    KIND_MPC,
    KIND_RL,
    KIND_SENSEI,
)

__all__ = ["decide_batch"]


def decide_batch(
    requests: Sequence[Tuple[ABRAlgorithm, str, PlayerObservation]],
) -> List[Decision]:
    """Decide for every ``(clone, kind, observation)`` request in one batch.

    Returns one :class:`Decision` per request, in order.  Clones are
    mutated exactly as their serial ``decide`` would mutate them
    (predictor state, SENSEI's spent proactive budget).
    """
    decisions: List[Optional[Decision]] = [None] * len(requests)
    jobs: List[PlanJob] = []
    # (request index, clone, kind, observation, horizon, scenarios)
    meta: List[Tuple[int, ABRAlgorithm, str, PlayerObservation, int, list]] = []
    # agent id -> (agent, [(request index, clone, observation, state)])
    rl_groups: dict = {}
    for index, (clone, kind, observation) in enumerate(requests):
        if kind == KIND_GENERIC:
            decisions[index] = clone.decide(observation)
            continue
        if kind == KIND_RL:
            agent = clone.agent
            group = rl_groups.setdefault(id(agent), (agent, []))
            group[1].append(
                (index, clone, observation, clone.encode_state(observation))
            )
            continue
        horizon = min(clone.horizon, observation.horizon)
        if kind == KIND_MPC:
            predicted = clone.predictor.predict(observation)
            conservative = predicted / (1.0 + clone.robustness_discount)
            scenarios = [(conservative, 1.0)]
            jobs.append(PlanJob(
                observation=observation,
                horizon=horizon,
                scenarios=scenarios,
                quality_model=clone.quality_model,
                max_level_step=clone.max_level_step,
            ))
        elif kind == KIND_SENSEI:
            scenarios = clone.predictor.predict_distribution(observation)
            jobs.append(PlanJob(
                observation=observation,
                horizon=horizon,
                scenarios=scenarios,
                quality_model=clone.quality_model,
                stall_options=(0.0,),
                max_level_step=clone.max_level_step,
                use_weights=True,
                need_rebuffer=True,
            ))
        else:  # KIND_FUGU
            scenarios = clone.predictor.predict_distribution(observation)
            jobs.append(PlanJob(
                observation=observation,
                horizon=horizon,
                scenarios=scenarios,
                quality_model=clone.quality_model,
                max_level_step=clone.max_level_step,
            ))
        meta.append((index, clone, kind, observation, horizon, scenarios))

    # One stacked actor forward per distinct policy, then a per-row argmax
    # — exactly ``select_action(state, greedy=True)`` for each row, since
    # the batched forward is row-bitwise-stable.  The stall post-processing
    # replicates the serial ``decide`` body verbatim.
    for agent, group in rl_groups.values():
        states = np.stack([state for _, _, _, state in group])
        probabilities = agent.action_probabilities_batch(states)
        actions = np.argmax(probabilities, axis=1)
        for (index, clone, observation, state), action in zip(group, actions):
            decision = clone.action_to_decision(int(action))
            if decision.proactive_stall_s > 0:
                previous = max(observation.last_level, 0)
                decision = Decision(
                    level=previous,
                    proactive_stall_s=decision.proactive_stall_s,
                )
            if clone._capture is not None:
                clone._capture.append((state, int(action)))
            decisions[index] = decision

    if not jobs:
        return [decision for decision in decisions]  # all planned

    results = plan_batch(jobs)

    # Phase 2: SENSEI sessions whose stall gate opened re-plan over the
    # stall options still affordable within their proactive budget.
    second_jobs: List[PlanJob] = []
    second_meta: List[Tuple[int, ABRAlgorithm, object]] = []
    for (index, clone, kind, observation, horizon, scenarios), result in zip(
        meta, results
    ):
        if kind != KIND_SENSEI:
            decisions[index] = Decision(level=result.level)
            continue
        weights_ahead = observation.upcoming_weights[:horizon]
        shifting_helps = bool(
            weights_ahead.size > 1
            and float(np.max(weights_ahead[1:]))
            > float(weights_ahead[0]) * 1.05
        )
        consider_stall = (
            result.expected_rebuffer_s >= clone.stall_risk_threshold_s
            and observation.buffer_s >= clone.min_stall_buffer_s
            and shifting_helps
            and clone._proactive_spent_s < clone.max_total_proactive_stall_s
            and len(clone.stall_options_s) > 1
        )
        if not consider_stall:
            if result.proactive_stall_s > 0:
                clone._proactive_spent_s += result.proactive_stall_s
            decisions[index] = Decision(
                level=result.level,
                proactive_stall_s=result.proactive_stall_s,
            )
            continue
        remaining = clone.max_total_proactive_stall_s - clone._proactive_spent_s
        allowed = tuple(
            option for option in clone.stall_options_s
            if option <= remaining + 1e-9
        )
        second_jobs.append(PlanJob(
            observation=observation,
            horizon=horizon,
            scenarios=scenarios,
            quality_model=clone.quality_model,
            stall_options=allowed,
            max_level_step=clone.max_level_step,
            use_weights=True,
        ))
        second_meta.append((index, clone, result))

    if second_jobs:
        for (index, clone, phase_one), with_stalls in zip(
            second_meta, plan_batch(second_jobs)
        ):
            # Strictly better, exactly like the serial gate: ties keep the
            # no-stall plan.
            if with_stalls.score > phase_one.score:
                level = with_stalls.level
                stall_s = with_stalls.proactive_stall_s
            else:
                level = phase_one.level
                stall_s = phase_one.proactive_stall_s
            if stall_s > 0:
                clone._proactive_spent_s += stall_s
            decisions[index] = Decision(level=level, proactive_stall_s=stall_s)

    return [decision for decision in decisions]
