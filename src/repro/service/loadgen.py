"""Load generator + benchmark report for the decision service.

Closed-loop, multi-tenant: each registered session runs one asyncio task
that calls ``decide()`` again the moment the previous answer arrives, so
offered load scales with session count and the micro-batching window and
the fair scheduler both see realistic contention.  Everything is built
from the standard :class:`~repro.experiments.common.ExperimentContext`
inventory (videos × traces × the non-RL ABR zoo), so a loadtest exercises
exactly the assets the offline experiments sweep.

:func:`bench_payload` shapes the results into ``BENCH_service.json`` —
decisions/sec, p50/p99/mean request latency, the batch-size distribution
and per-tenant fairness accounting — with the same environment/git
fingerprints the engine's perf harness records (``BENCH_engine.json``),
and :func:`verify_online_offline` is the golden-master hook: every
non-degraded finished session is re-run offline through the stock
:class:`WorkOrder` path and must match level-for-level, stall-for-stall.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.abr import (
    BufferBasedABR,
    FuguABR,
    ModelPredictiveABR,
    RateBasedABR,
)
from repro.core.sensei_abr import SenseiFuguABR
from repro.engine.report import (
    environment_fingerprint,
    git_revision,
    utc_now_iso,
)
from repro.service.service import DecisionService
from repro.service.sessions import SessionEntry

__all__ = [
    "ABR_FACTORIES",
    "BENCH_SERVICE_SCHEMA",
    "TenantSpec",
    "bench_payload",
    "default_tenants",
    "register_load",
    "run_load",
    "synthetic_weights",
    "verify_online_offline",
    "write_bench",
]

BENCH_SERVICE_SCHEMA = "bench_service/v1"

#: The non-RL ABR zoo the loadtest (and the golden test) cycles through.
ABR_FACTORIES: Dict[str, type] = {
    "bba": BufferBasedABR,
    "rate": RateBasedABR,
    "mpc": ModelPredictiveABR,
    "fugu": FuguABR,
    "sensei": SenseiFuguABR,
}


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's share of the offered load."""

    name: str
    weight: float = 1.0
    sessions: int = 2
    #: ABR kinds cycled across this tenant's sessions.
    abrs: Tuple[str, ...] = ("bba", "mpc", "fugu", "sensei")


def default_tenants(
    sessions_per_tenant: int = 4, weight_ratio: float = 4.0
) -> List[TenantSpec]:
    """The canonical contention pair: gold weighted ``weight_ratio`` : 1."""
    return [
        TenantSpec("gold", weight=weight_ratio, sessions=sessions_per_tenant),
        TenantSpec("bronze", weight=1.0, sessions=sessions_per_tenant),
    ]


def synthetic_weights(num_chunks: int) -> np.ndarray:
    """Rising per-chunk sensitivity: keeps SENSEI's shift-gate reachable
    (later chunks matter more, so stalling *now* can pay off) without the
    cost of running the profiler inside a loadtest."""
    return np.linspace(1.0, 2.0, num_chunks)


def register_load(
    service: DecisionService,
    context,
    tenants: Sequence[TenantSpec],
) -> List[SessionEntry]:
    """Register every tenant's sessions over the context's inventory.

    Sessions round-robin the (video, trace) grid; ABR kinds cycle each
    tenant's ``abrs``.  SENSEI sessions get synthetic chunk weights (see
    :func:`synthetic_weights`); everything else uses uniform weights.
    """
    videos = context.videos()
    traces = context.traces()
    entries: List[SessionEntry] = []
    cell = 0
    for spec in tenants:
        for index in range(spec.sessions):
            kind = spec.abrs[index % len(spec.abrs)]
            encoded = videos[cell % len(videos)]
            trace = traces[(cell // len(videos)) % len(traces)]
            cell += 1
            weights = (
                synthetic_weights(encoded.num_chunks)
                if kind == "sensei" else None
            )
            entries.append(service.register(
                tenant=spec.name,
                session_id=f"{kind}-{index}",
                abr=ABR_FACTORIES[kind](),
                encoded=encoded,
                trace=trace,
                chunk_weights=weights,
                weight=spec.weight,
            ))
    return entries


async def run_load(
    service: DecisionService,
    entries: Sequence[SessionEntry],
    max_decisions_per_session: Optional[int] = None,
    duration_s: Optional[float] = None,
) -> Dict[str, object]:
    """Drive every session closed-loop until done (or a bound trips).

    Returns the raw load report: wall time, decision/degraded counts,
    latency samples, per-tenant tallies.
    """
    latencies: List[float] = []
    per_tenant: Dict[str, Dict[str, int]] = {}
    started = time.perf_counter()
    deadline = started + duration_s if duration_s is not None else None

    async def drive(entry: SessionEntry) -> None:
        count = 0
        while not entry.done:
            if deadline is not None and time.perf_counter() >= deadline:
                return
            if (max_decisions_per_session is not None
                    and count >= max_decisions_per_session):
                return
            response = await service.decide(entry.tenant, entry.session_id)
            count += 1
            latencies.append(response.latency_s)
            tally = per_tenant.setdefault(
                entry.tenant, {"decisions": 0, "degraded": 0, "finished": 0}
            )
            tally["decisions"] += 1
            if response.degraded:
                tally["degraded"] += 1
            if response.done:
                tally["finished"] += 1

    await asyncio.gather(*(drive(entry) for entry in entries))
    wall_s = time.perf_counter() - started
    decisions = len(latencies)
    return {
        "sessions": len(entries),
        "finished_sessions": sum(1 for entry in entries if entry.done),
        "decisions": decisions,
        "degraded": sum(entry.degraded for entry in entries),
        "wall_s": wall_s,
        "decisions_per_sec": decisions / wall_s if wall_s > 0 else 0.0,
        "latencies_s": latencies,
        "per_tenant": per_tenant,
    }


def _percentile(sorted_samples: Sequence[float], q: float) -> float:
    """Nearest-rank percentile over pre-sorted samples."""
    if not sorted_samples:
        return 0.0
    rank = min(
        len(sorted_samples) - 1,
        max(0, int(round(q / 100.0 * (len(sorted_samples) - 1)))),
    )
    return float(sorted_samples[rank])


def bench_payload(
    service: DecisionService,
    load_report: Dict[str, object],
    tenants: Sequence[TenantSpec],
    meta: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Shape a load report into the ``BENCH_service.json`` schema."""
    latencies = sorted(load_report.get("latencies_s", []))
    batch_stats = service.batcher.stats()
    flushes = batch_stats["flushes"]
    payload: Dict[str, object] = {
        "schema": BENCH_SERVICE_SCHEMA,
        "generated_at": utc_now_iso(),
        "environment": environment_fingerprint(),
        "git_revision": git_revision(),
        "config": {
            "max_batch": service.batcher.max_batch,
            "max_delay_s": service.batcher.max_delay_s,
            "capacity": service.scheduler.capacity,
            "shed_timeout_s": service.shed_timeout_s,
            "tenants": [
                {"name": spec.name, "weight": spec.weight,
                 "sessions": spec.sessions, "abrs": list(spec.abrs)}
                for spec in tenants
            ],
        },
        "throughput": {
            "decisions": load_report["decisions"],
            "degraded": load_report["degraded"],
            "wall_s": round(load_report["wall_s"], 6),
            "decisions_per_sec": round(load_report["decisions_per_sec"], 3),
        },
        "latency": {
            "samples": len(latencies),
            "p50_ms": round(1e3 * _percentile(latencies, 50.0), 6),
            "p99_ms": round(1e3 * _percentile(latencies, 99.0), 6),
            "mean_ms": round(
                1e3 * sum(latencies) / len(latencies), 6
            ) if latencies else 0.0,
            "max_ms": round(1e3 * latencies[-1], 6) if latencies else 0.0,
        },
        "batch": {
            "flushes": flushes,
            "size_flushes": batch_stats["size_flushes"],
            "timer_flushes": batch_stats["timer_flushes"],
            "mean_size": round(
                batch_stats["items"] / flushes, 3
            ) if flushes else 0.0,
            "ewma_size": batch_stats["ewma_size"],
        },
        "fairness": service.scheduler.stats(),
        "per_tenant": load_report.get("per_tenant", {}),
    }
    if meta:
        payload["meta"] = dict(meta)
    return payload


def write_bench(
    path: Union[str, Path], payload: Dict[str, object]
) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def verify_online_offline(
    service: DecisionService, entries: Sequence[SessionEntry]
) -> Dict[str, object]:
    """Golden check: finished, never-degraded sessions must equal offline.

    Each qualifying session is replayed offline through its stock
    :class:`WorkOrder`; levels and stalls must match exactly (the
    bit-identity contract).  Degraded sessions are excluded — shedding is
    the documented divergence point.
    """
    checked = 0
    mismatches: List[Dict[str, object]] = []
    for entry in entries:
        if not entry.done or entry.degraded or entry.result is None:
            continue
        offline = service.offline_result(entry)
        online = entry.result
        checked += 1
        if not (
            np.array_equal(online.rendered.levels, offline.rendered.levels)
            and np.array_equal(
                online.rendered.stalls_s, offline.rendered.stalls_s
            )
            and online.rendered.startup_delay_s
            == offline.rendered.startup_delay_s
        ):
            mismatches.append({
                "session": list(entry.key),
                "abr": entry.clone.name,
                "online_levels": online.rendered.levels.tolist(),
                "offline_levels": offline.rendered.levels.tolist(),
            })
    return {"checked": checked, "mismatches": mismatches,
            "identical": not mismatches}
