"""The session table: live streaming sessions keyed by ``(tenant, id)``.

Each registered session wraps an unmodified
:class:`~repro.player.session.SessionState` (built through
:meth:`StreamingSession.make_state`, so precompute wiring and weight
validation are exactly the offline path's) plus a deep-copied, reset clone
of the caller's ABR instance.  The clone carries all per-session algorithm
state (throughput predictor history, SENSEI's proactive-stall budget)
between ``decide`` calls — the same per-session-clone pattern the lockstep
engine's ``_PerSessionDriver`` uses, and the reason online decisions can
be bit-identical to a serial ``StreamingSession.run`` over the same
history.

The *original* ABR instance is kept untouched on the entry: it is what
:meth:`SessionEntry.work_order` hands to the offline engine for the
golden online ≡ offline comparison (``WorkOrder.run`` resets it first,
exactly like any grid cell).
"""

from __future__ import annotations

import copy
from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from repro.abr.base import ABRAlgorithm
from repro.abr.mpc import ModelPredictiveABR
from repro.abr.fugu import FuguABR
from repro.abr.pensieve import PensieveABR
from repro.abr.throughput import (
    ErrorDistributionPredictor,
    HarmonicMeanPredictor,
)
from repro.core.sensei_abr import SenseiFuguABR, SenseiPensieveABR
from repro.ml.rl import ActorCriticAgent
from repro.engine.runner import WorkOrder
from repro.network.trace import ThroughputTrace
from repro.player.session import (
    SessionConfig,
    StreamingSession,
    StreamResult,
)
from repro.video.encoder import EncodedVideo

__all__ = [
    "KIND_FUGU",
    "KIND_GENERIC",
    "KIND_MPC",
    "KIND_RL",
    "KIND_SENSEI",
    "SessionEntry",
    "SessionKey",
    "SessionTable",
    "planner_kind",
]

SessionKey = Tuple[str, str]

#: Batch-eligible ABR kinds, mirroring the lockstep engine's
#: ``_driver_for`` exact-type checks: anything else (BBA, rate-based,
#: subclasses with overridden ``decide``, exploring RL policies) takes
#: the generic per-clone ``decide`` path, which is trivially
#: serial-identical.
KIND_GENERIC = "generic"
KIND_MPC = "mpc"
KIND_FUGU = "fugu"
KIND_SENSEI = "sensei"
KIND_RL = "rl"


def planner_kind(abr: ABRAlgorithm) -> str:
    """Which batched decide path (if any) reproduces ``abr.decide``."""
    if getattr(abr, "use_fast_planner", False):
        if (
            type(abr) is ModelPredictiveABR
            and type(abr.predictor) is HarmonicMeanPredictor
        ):
            return KIND_MPC
        if (
            type(abr) is FuguABR
            and type(abr.predictor) is ErrorDistributionPredictor
        ):
            return KIND_FUGU
        if (
            type(abr) is SenseiFuguABR
            and type(abr.predictor) is ErrorDistributionPredictor
        ):
            return KIND_SENSEI
    if (
        type(abr) in (PensieveABR, SenseiPensieveABR)
        and type(getattr(abr, "agent", None)) is ActorCriticAgent
        and getattr(abr, "greedy", False)
    ):
        # Greedy stock Pensieve-family policies decide via an argmax over
        # a row-stable actor forward (repro.ml.nn.row_matmul), so stacked
        # inference is bitwise the serial decide.  Exploration-mode clones
        # stay generic: the service has no per-decision seed to pin.
        return KIND_RL
    return KIND_GENERIC


class SessionEntry:
    """One live session: player state + ABR clone + accounting."""

    __slots__ = (
        "tenant", "session_id", "abr", "clone", "kind", "session", "state",
        "evicted", "result", "decisions", "degraded", "in_flight",
    )

    def __init__(
        self,
        tenant: str,
        session_id: str,
        abr: ABRAlgorithm,
        session: StreamingSession,
    ) -> None:
        self.tenant = tenant
        self.session_id = session_id
        self.abr = abr
        # Serial runs reuse one ABR with reset() between sessions; a reset
        # deep copy therefore decides identically and gives this session
        # private predictor state.
        self.clone = copy.deepcopy(abr)
        self.clone.reset()
        self.kind = planner_kind(abr)
        if self.kind == KIND_RL:
            # Greedy decide only *reads* the agent (one actor forward +
            # argmax), so every clone of the same policy can share the
            # caller's agent: the batched decide path groups sessions by
            # agent identity to stack their forwards, and N sessions stop
            # paying N copies of the network parameters.
            self.clone.agent = abr.agent
        self.session = session
        self.state = session.make_state()
        self.evicted = False
        self.result: Optional[StreamResult] = None
        self.decisions = 0
        self.degraded = 0
        #: True while a decide() for this session is in flight: the
        #: observe→apply protocol is strictly sequential per session, so
        #: concurrent decides for one session are a caller bug the
        #: service rejects loudly instead of double-applying.
        self.in_flight = False

    @property
    def key(self) -> SessionKey:
        return (self.tenant, self.session_id)

    @property
    def done(self) -> bool:
        return self.state.done

    def finalize(self) -> StreamResult:
        """Finalize the underlying state (idempotent)."""
        if self.result is None:
            self.result = self.state.finalize(
                abr_name=self.clone.name, trace_name=self.session.trace.name
            )
        return self.result

    def work_order(self) -> WorkOrder:
        """The equivalent offline work order (golden comparison path)."""
        return WorkOrder(
            abr=self.abr,
            encoded=self.session.encoded,
            trace=self.session.trace,
            config=self.session.config,
            chunk_weights=self.session.chunk_weights,
        )


class SessionTable:
    """All live sessions, with per-tenant counts for health/metrics."""

    def __init__(self) -> None:
        self._entries: Dict[SessionKey, SessionEntry] = {}

    def register(
        self,
        tenant: str,
        session_id: str,
        abr: ABRAlgorithm,
        encoded: EncodedVideo,
        trace: ThroughputTrace,
        config: Optional[SessionConfig] = None,
        chunk_weights: Optional[np.ndarray] = None,
    ) -> SessionEntry:
        """Register a new session; duplicate keys are an error."""
        key = (tenant, session_id)
        if key in self._entries:
            raise ValueError(f"session already registered: {key}")
        session = StreamingSession(
            encoded=encoded,
            trace=trace,
            abr=abr,
            config=config,
            chunk_weights=chunk_weights,
        )
        entry = SessionEntry(tenant, session_id, abr, session)
        self._entries[key] = entry
        return entry

    def evict(self, tenant: str, session_id: str) -> SessionEntry:
        """Remove a session; its in-flight requests will fail explicitly."""
        entry = self._entries.pop((tenant, session_id))
        entry.evicted = True
        return entry

    def get(self, tenant: str, session_id: str) -> SessionEntry:
        return self._entries[(tenant, session_id)]

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[SessionEntry]:
        return iter(list(self._entries.values()))

    def tenant_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for entry in self._entries.values():
            counts[entry.tenant] = counts.get(entry.tenant, 0) + 1
        return counts
