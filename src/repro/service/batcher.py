"""Adaptive micro-batching window for the decision service.

:class:`AdaptiveBatcher` collects ``submit()`` calls into a window and
flushes on whichever trips first:

* **size** — the window reaches ``max_batch`` items, or
* **time** — ``effective delay`` elapses since the first item of the
  window (``loop.call_later`` timer armed on the first submit).

Every item of a flush is answered from one call to ``flush_fn(items)``,
which is exactly what lets the service batch many sessions' planner
evaluations into one lockstep kernel dispatch.

The *adaptive* part is the time bound: the delay scales with an EWMA of
recent flush sizes, between ``min_delay_s`` and ``max_delay_s``.  Under
light load the window barely fills, so waiting the full ``max_delay_s``
only adds latency for no batching gain — the EWMA shrinks the delay
toward ``min_delay_s``.  Under heavy load windows fill quickly (the size
trigger dominates) and the longer bound lets stragglers coalesce.  Tuning
guidance lives in docs/SERVICE.md.

Single-loop asyncio, no threads: ``flush_fn`` runs synchronously on the
event loop (a planner flush is a few hundred microseconds of numpy), and
window state is only touched between awaits.
"""

from __future__ import annotations

import asyncio
from typing import Callable, Dict, List, Optional, Sequence, Tuple

__all__ = ["AdaptiveBatcher"]


class AdaptiveBatcher:
    """Collects items and answers them in flushes of at most ``max_batch``."""

    def __init__(
        self,
        flush_fn: Callable[[List[object]], Sequence[object]],
        max_batch: int = 16,
        max_delay_s: float = 0.002,
        min_delay_s: Optional[float] = None,
        ewma_alpha: float = 0.25,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_delay_s <= 0:
            raise ValueError("max_delay_s must be > 0")
        if min_delay_s is None:
            min_delay_s = max_delay_s / 8.0
        if not 0.0 < min_delay_s <= max_delay_s:
            raise ValueError("need 0 < min_delay_s <= max_delay_s")
        if not 0.0 < ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")
        self.flush_fn = flush_fn
        self.max_batch = max_batch
        self.max_delay_s = max_delay_s
        self.min_delay_s = min_delay_s
        self.ewma_alpha = ewma_alpha
        self._window: List[Tuple[object, "asyncio.Future[object]"]] = []
        self._timer: Optional[asyncio.TimerHandle] = None
        #: Bumped on every flush; a pending timer that belongs to an
        #: already-flushed window sees a different generation and no-ops
        #: (flush-at-N vs flush-at-T race safety).
        self._generation = 0
        self._draining = False
        #: EWMA of flush sizes, seeded at the size trigger so the first
        #: windows run at ``max_delay_s`` until real load data arrives.
        self.ewma_size = float(max_batch)
        self.flush_count = 0
        self.size_flushes = 0
        self.timer_flushes = 0
        self.items_flushed = 0

    # ------------------------------------------------------------------ API

    async def submit(self, item: object) -> object:
        """Queue ``item`` for the next flush and await its result."""
        if self._draining:
            raise RuntimeError("batcher is draining; no new submissions")
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[object]" = loop.create_future()
        self._window.append((item, future))
        if len(self._window) >= self.max_batch:
            self._flush("size")
        elif self._timer is None:
            generation = self._generation
            self._timer = loop.call_later(
                self.effective_delay_s(),
                self._on_timer,
                generation,
            )
        return await future

    async def drain(self) -> None:
        """Flush whatever is pending and refuse further submissions.

        Idempotent; after ``drain`` the batcher is permanently closed.
        Futures already handed out by :meth:`submit` are answered by the
        final flush, so in-flight ``decide`` calls complete normally.
        """
        self._draining = True
        if self._window:
            self._flush("drain")
        # Yield once so awaiters scheduled by the final flush run before
        # the caller proceeds with teardown.
        await asyncio.sleep(0)

    def effective_delay_s(self) -> float:
        """The current time bound: EWMA-scaled between min and max delay."""
        fill = min(1.0, self.ewma_size / self.max_batch)
        return self.min_delay_s + (self.max_delay_s - self.min_delay_s) * fill

    @property
    def pending(self) -> int:
        """Items in the open window (not yet flushed)."""
        return len(self._window)

    def stats(self) -> Dict[str, float]:
        return {
            "flushes": self.flush_count,
            "size_flushes": self.size_flushes,
            "timer_flushes": self.timer_flushes,
            "items": self.items_flushed,
            "ewma_size": round(self.ewma_size, 3),
            "effective_delay_s": self.effective_delay_s(),
            "pending": len(self._window),
        }

    # ------------------------------------------------------------ internals

    def _on_timer(self, generation: int) -> None:
        self._timer = None
        # A size-triggered flush may have consumed this window between the
        # timer being armed and firing; the generation check makes that
        # (and the empty-window case) a no-op instead of a double flush.
        if generation != self._generation or not self._window:
            return
        self._flush("timer")

    def _flush(self, trigger: str) -> None:
        window, self._window = self._window, []
        self._generation += 1
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if not window:
            return
        self.flush_count += 1
        self.items_flushed += len(window)
        if trigger == "size":
            self.size_flushes += 1
        elif trigger == "timer":
            self.timer_flushes += 1
        alpha = self.ewma_alpha
        self.ewma_size = (1 - alpha) * self.ewma_size + alpha * len(window)
        items = [item for item, _ in window]
        try:
            results = self.flush_fn(items)
        except BaseException as error:  # noqa: BLE001 — fail every waiter
            for _, future in window:
                if not future.done():
                    future.set_exception(error)
            return
        if len(results) != len(window):
            error = RuntimeError(
                f"flush_fn returned {len(results)} results for "
                f"{len(window)} items"
            )
            for _, future in window:
                if not future.done():
                    future.set_exception(error)
            return
        for (_, future), result in zip(window, results):
            if future.done():
                continue
            # Per-item failures travel back as exception instances so one
            # bad session cannot poison its whole flush.
            if isinstance(result, BaseException):
                future.set_exception(result)
            else:
                future.set_result(result)
