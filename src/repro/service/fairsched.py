"""Weighted fair admission for the decision service.

:class:`WeightedFairScheduler` is a start-time fair queueing (SFQ) gate in
front of the planner kernel: a fixed number of concurrency slots
(``capacity``) is shared across tenants in proportion to their weights.
When slots are free, ``acquire`` grants immediately; under contention,
waiters queue ordered by per-tenant *virtual start tags*, so a tenant with
weight 4 is granted ~4x as often as a weight-1 tenant submitting at the
same offered load (the skew the service test suite asserts, mirroring the
``FAIR_SCHED`` exemplar's acquire/release surface).

Two deliberate departures from a textbook SFQ link scheduler:

* **Bounded backlog + shedding.**  Each tenant may hold at most
  ``max_backlog`` queued waiters; beyond that — or when a waiter's
  ``timeout`` elapses — ``acquire`` returns ``False`` instead of blocking
  forever.  The service maps that to an explicit *degraded* decision
  rather than an unbounded queue (the load-shedding contract in
  docs/SERVICE.md).
* **Single event loop, no locks.**  Like everything else in the service
  this is plain asyncio on one loop; state is only touched between
  awaits, so no synchronisation primitives are needed beyond the
  per-waiter futures.
"""

from __future__ import annotations

import asyncio
import heapq
import itertools
from typing import Dict, Optional, Tuple

__all__ = ["WeightedFairScheduler"]


class _Waiter:
    """One queued ``acquire`` call."""

    __slots__ = ("tenant", "cost", "start_tag", "future", "cancelled")

    def __init__(self, tenant: str, cost: float, start_tag: float,
                 future: "asyncio.Future[bool]") -> None:
        self.tenant = tenant
        self.cost = cost
        self.start_tag = start_tag
        self.future = future
        self.cancelled = False


class WeightedFairScheduler:
    """Start-time fair queueing over a fixed pool of concurrency slots."""

    def __init__(
        self,
        capacity: int = 8,
        default_weight: float = 1.0,
        max_backlog: int = 64,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if default_weight <= 0:
            raise ValueError("default_weight must be > 0")
        if max_backlog < 1:
            raise ValueError("max_backlog must be >= 1")
        self.capacity = capacity
        self.default_weight = float(default_weight)
        self.max_backlog = max_backlog
        self._weights: Dict[str, float] = {}
        #: Virtual time: advances to the granted waiter's start tag, so an
        #: idle tenant's next start tag catches up to "now" instead of
        #: earning credit while inactive (the SFQ idleness rule).
        self._virtual_time = 0.0
        #: Last assigned finish tag per tenant (start tag of that tenant's
        #: next request while it stays backlogged).
        self._finish_tags: Dict[str, float] = {}
        self._in_flight = 0
        self._backlog: Dict[str, int] = {}
        self._queue: list = []  # heap of (start_tag, seq, _Waiter)
        self._seq = itertools.count()
        # Grant/shed accounting, exposed via stats() for health snapshots
        # and the fairness tests.
        self.grants: Dict[str, int] = {}
        self.shed: Dict[str, int] = {}

    # ------------------------------------------------------------- weights

    def set_weight(self, tenant: str, weight: float) -> None:
        """Set a tenant's scheduling weight (share of grants under load)."""
        if weight <= 0:
            raise ValueError(f"weight for {tenant!r} must be > 0: {weight}")
        self._weights[tenant] = float(weight)

    def weight(self, tenant: str) -> float:
        return self._weights.get(tenant, self.default_weight)

    # ------------------------------------------------------------ admission

    async def acquire(
        self,
        tenant: str,
        cost: float = 1.0,
        timeout: Optional[float] = None,
    ) -> bool:
        """Acquire one slot for ``tenant``; ``False`` means *shed*.

        Grants immediately while slots are free.  Under contention the
        caller queues at its SFQ start tag; if the tenant's backlog is
        full, or ``timeout`` elapses first, the request is shed and the
        caller must fall back to a degraded decision.
        """
        if cost <= 0:
            raise ValueError("cost must be > 0")
        self._purge_cancelled()
        if self._in_flight < self.capacity and not self._queue:
            self._grant_immediate(tenant, cost)
            return True
        if self._backlog.get(tenant, 0) >= self.max_backlog:
            self.shed[tenant] = self.shed.get(tenant, 0) + 1
            return False
        start = max(self._virtual_time, self._finish_tags.get(tenant, 0.0))
        finish = start + cost / self.weight(tenant)
        self._finish_tags[tenant] = finish
        loop = asyncio.get_running_loop()
        waiter = _Waiter(tenant, cost, start, loop.create_future())
        heapq.heappush(self._queue, (start, next(self._seq), waiter))
        self._backlog[tenant] = self._backlog.get(tenant, 0) + 1
        try:
            if timeout is None:
                return await waiter.future
            return await asyncio.wait_for(waiter.future, timeout)
        except asyncio.TimeoutError:
            waiter.cancelled = True  # lazily discarded by _dispatch
            self._backlog[tenant] -= 1
            # Roll the finish tag back if this was the tenant's newest
            # queued request, so the shed request doesn't inflate the
            # start tags of requests that come after it.
            if self._finish_tags.get(tenant) == finish:
                self._finish_tags[tenant] = start
            self.shed[tenant] = self.shed.get(tenant, 0) + 1
            return False

    async def release(self, tenant: str) -> None:
        """Return a slot and hand it to the earliest-start-tag waiter."""
        if self._in_flight <= 0:
            raise RuntimeError("release() without a matching acquire()")
        self._in_flight -= 1
        self._dispatch()

    # -------------------------------------------------------------- internals

    def _grant_immediate(self, tenant: str, cost: float) -> None:
        start = max(self._virtual_time, self._finish_tags.get(tenant, 0.0))
        self._finish_tags[tenant] = start + cost / self.weight(tenant)
        self._virtual_time = max(self._virtual_time, start)
        self._in_flight += 1
        self.grants[tenant] = self.grants.get(tenant, 0) + 1

    def _purge_cancelled(self) -> None:
        """Drop timed-out waiters from the head of the heap.

        Cancellation is lazy (the heap cannot remove from the middle), so
        without this a fresh ``acquire`` could queue behind *only*
        cancelled entries with no in-flight ``release`` left to drain them.
        """
        queue = self._queue
        while queue and (queue[0][2].cancelled or queue[0][2].future.done()):
            heapq.heappop(queue)

    def _dispatch(self) -> None:
        while self._queue and self._in_flight < self.capacity:
            start, _, waiter = heapq.heappop(self._queue)
            if waiter.cancelled or waiter.future.done():
                continue
            self._backlog[waiter.tenant] -= 1
            self._virtual_time = max(self._virtual_time, start)
            self._in_flight += 1
            self.grants[waiter.tenant] = self.grants.get(waiter.tenant, 0) + 1
            waiter.future.set_result(True)

    # ------------------------------------------------------------------ stats

    def queue_depth(self, tenant: Optional[str] = None) -> int:
        """Queued (unshed) waiters, for one tenant or in total."""
        if tenant is not None:
            return self._backlog.get(tenant, 0)
        return sum(self._backlog.values())

    @property
    def in_flight(self) -> int:
        return self._in_flight

    def stats(self) -> Dict[str, Dict[str, float]]:
        """Per-tenant grant/shed/backlog counts for ``health()``."""
        tenants = (
            set(self.grants) | set(self.shed) | set(self._backlog)
            | set(self._weights)
        )
        return {
            tenant: {
                "weight": self.weight(tenant),
                "grants": self.grants.get(tenant, 0),
                "shed": self.shed.get(tenant, 0),
                "queued": self._backlog.get(tenant, 0),
            }
            for tenant in sorted(tenants)
        }
