"""Telemetry sinks: JSONL event logs, Prometheus textfiles, phase tables.

Everything here consumes the plain-dict snapshot format of
:meth:`repro.obs.metrics.MetricsRegistry.snapshot` — sinks never touch a
live registry, so writing a run's telemetry out cannot perturb what later
phases record.

Three formats:

* :func:`run_events` / :func:`write_events_jsonl` — one structured JSONL
  event log per run: a ``run_started`` header, one ``phase`` event per
  span name, one ``metric`` event per counter/gauge, the full
  ``metrics_snapshot`` and a ``run_finished`` trailer.  Greppable,
  line-parseable, append-friendly.
* :func:`to_prometheus` / :func:`write_prometheus` — the node-exporter
  *textfile collector* dialect: ``# TYPE`` headers, cumulative
  ``_bucket{le="..."}`` histogram series, spans exported as
  ``<prefix>span_seconds_total{span="..."}`` / ``..._count`` / ``..._max``.
* :func:`phase_table` — the human view ``python -m repro profile`` and
  ``python -m repro report`` print: spans sorted by total time with their
  share of the root dispatch span.

Files are written atomically (write-tmp-then-rename) with plain stdlib
calls: telemetry is advisory, so it deliberately does not pull in the
checksum/quarantine machinery of :mod:`repro.faults.integrity` (which
would also make :mod:`repro.obs` depend on the faults layer it measures).
"""

from __future__ import annotations

import json
import os
import re
from pathlib import Path
from typing import Dict, List, Optional, Union

#: The canonical root span: one per BatchRunner.run_orders call.  Phase
#: shares in tables and reports are computed against this span's total.
ROOT_SPAN = "engine.dispatch"

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _atomic_write_text(path: Union[str, Path], text: str) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(text)
    os.replace(tmp, path)
    return path


# ----------------------------------------------------------------- JSONL log

def run_events(
    snapshot: Dict[str, object],
    run_id: str,
    started_at: Optional[str] = None,
    duration_s: Optional[float] = None,
    meta: Optional[Dict[str, object]] = None,
) -> List[Dict[str, object]]:
    """The structured event list for one run, ready for JSONL export."""
    events: List[Dict[str, object]] = [{
        "event": "run_started",
        "run": run_id,
        "started_at": started_at,
        **(meta or {}),
    }]
    spans = snapshot.get("spans", {})
    root_total = spans.get(ROOT_SPAN, {}).get("total_s")
    for name in sorted(spans):
        payload = spans[name]
        event: Dict[str, object] = {
            "event": "phase",
            "run": run_id,
            "name": name,
            "count": payload["count"],
            "total_s": round(payload["total_s"], 6),
            "max_s": round(payload["max_s"], 6),
        }
        if root_total:
            event["share_of_dispatch"] = round(
                payload["total_s"] / root_total, 4
            )
        events.append(event)
    for kind in ("counters", "gauges"):
        for name, value in sorted(snapshot.get(kind, {}).items()):
            events.append({
                "event": "metric",
                "run": run_id,
                "kind": kind[:-1],
                "name": name,
                "value": value,
            })
    events.append({
        "event": "metrics_snapshot", "run": run_id, "snapshot": snapshot,
    })
    events.append({
        "event": "run_finished",
        "run": run_id,
        "duration_s": duration_s,
    })
    return events


def write_events_jsonl(
    path: Union[str, Path], events: List[Dict[str, object]]
) -> Path:
    """Write events as one JSON object per line (atomically)."""
    lines = "".join(
        json.dumps(event, sort_keys=True) + "\n" for event in events
    )
    return _atomic_write_text(path, lines)


# ----------------------------------------------------- Prometheus textfile

def _prom_name(name: str, prefix: str) -> str:
    return prefix + _NAME_RE.sub("_", name)


def _escape_help(text: str) -> str:
    """Escape a ``# HELP`` payload: backslash and newline, per the
    exposition-format spec."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(value: str) -> str:
    """Escape a label value: backslash, double quote and newline."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _header(lines: List[str], metric: str, kind: str, source: str) -> None:
    """The ``# HELP`` + ``# TYPE`` pair standard scrapers expect."""
    lines.append(
        f"# HELP {metric} "
        f"{_escape_help(f'{kind} {source} from the repro metrics registry.')}"
    )
    lines.append(f"# TYPE {metric} {kind}")


def to_prometheus(snapshot: Dict[str, object], prefix: str = "repro_") -> str:
    """Render a snapshot in the Prometheus textfile-collector dialect."""
    lines: List[str] = []
    for name, value in sorted(snapshot.get("counters", {}).items()):
        metric = _prom_name(name, prefix) + "_total"
        _header(lines, metric, "counter", name)
        lines.append(f"{metric} {value:g}")
    for name, value in sorted(snapshot.get("gauges", {}).items()):
        metric = _prom_name(name, prefix)
        _header(lines, metric, "gauge", name)
        lines.append(f"{metric} {value:g}")
    for name, payload in sorted(snapshot.get("histograms", {}).items()):
        metric = _prom_name(name, prefix)
        _header(lines, metric, "histogram", name)
        cumulative = 0
        for bound, count in zip(payload["buckets"], payload["counts"]):
            cumulative += count
            lines.append(f'{metric}_bucket{{le="{bound:g}"}} {cumulative}')
        lines.append(f'{metric}_bucket{{le="+Inf"}} {payload["count"]}')
        lines.append(f"{metric}_sum {payload['sum']:g}")
        lines.append(f"{metric}_count {payload['count']}")
    spans = snapshot.get("spans", {})
    if spans:
        seconds = prefix + "span_seconds_total"
        count = prefix + "span_count"
        longest = prefix + "span_max_seconds"
        _header(lines, seconds, "counter", "span total seconds")
        _header(lines, count, "counter", "span completions")
        _header(lines, longest, "gauge", "span max seconds")
        for name in sorted(spans):
            payload = spans[name]
            label = _escape_label_value(name)
            lines.append(
                f'{seconds}{{span="{label}"}} {payload["total_s"]:.9f}'
            )
            lines.append(f'{count}{{span="{label}"}} {payload["count"]}')
            lines.append(
                f'{longest}{{span="{label}"}} {payload["max_s"]:.9f}'
            )
    return "\n".join(lines) + "\n"


def write_prometheus(
    path: Union[str, Path], snapshot: Dict[str, object],
    prefix: str = "repro_",
) -> Path:
    """Write the Prometheus textfile export (atomically)."""
    return _atomic_write_text(path, to_prometheus(snapshot, prefix=prefix))


# -------------------------------------------------------------- phase table

def phase_table(
    snapshot: Dict[str, object], root: str = ROOT_SPAN, indent: str = "  ",
) -> str:
    """A human-readable phase breakdown of a snapshot's spans.

    Spans sorted by total seconds (descending) with count, total, max and —
    when the root span is present — the share of the root's wall clock.
    Shares are *inclusive* (nested spans overlap their parents), so they do
    not sum to 100%; the disjoint-leaf arithmetic lives in
    :func:`repro.engine.report.phases_from_snapshot`.
    """
    spans = snapshot.get("spans", {})
    if not spans:
        return f"{indent}(no spans recorded — telemetry off?)"
    root_total = spans.get(root, {}).get("total_s", 0.0)
    header = (
        f"{indent}{'phase':28s} {'count':>8s} {'total s':>10s} "
        f"{'max ms':>9s} {'% dispatch':>10s}"
    )
    rows = [header]
    ordered = sorted(
        spans.items(), key=lambda item: item[1]["total_s"], reverse=True
    )
    for name, payload in ordered:
        share = (
            f"{100.0 * payload['total_s'] / root_total:9.1f}%"
            if root_total > 0 else f"{'-':>10s}"
        )
        rows.append(
            f"{indent}{name:28s} {payload['count']:8d} "
            f"{payload['total_s']:10.4f} {1e3 * payload['max_s']:9.3f} "
            f"{share}"
        )
    return "\n".join(rows)
