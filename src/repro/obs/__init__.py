"""Engine-wide telemetry: metrics registry, span tracing, export sinks.

The observability layer the compiled-kernel and decision-service roadmap
items land against (see ``docs/OBSERVABILITY.md``):

* :mod:`repro.obs.metrics` — the process-local
  :class:`~repro.obs.metrics.MetricsRegistry` (counters, gauges,
  fixed-bucket histograms, span accumulators) with a mergeable snapshot
  format so per-worker registries travel back over the process-backend
  shard boundary exactly like ``FaultLog`` deltas.
* :mod:`repro.obs.trace` — ``trace_span("planner.kernel")`` phase tracing
  on the monotonic clock, off by default with a one-attribute-check no-op
  fast path and a ≤2% enabled overhead budget asserted by the perf
  harness and CI.
* :mod:`repro.obs.sinks` — JSONL event logs, Prometheus-textfile export
  and the phase-breakdown table behind ``python -m repro profile``.

Zero dependencies by design: nothing here imports numpy, the engine or
the faults layer, so every layer of the engine can import ``repro.obs``
without cycles.
"""

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS_S,
    DEFAULT_MICRO_LATENCY_BUCKETS_S,
    DEFAULT_SIZE_BUCKETS,
    MetricsRegistry,
    diff_snapshots,
    get_registry,
    merge_snapshots,
    register_collector,
    use_registry,
)
from repro.obs.sinks import (
    ROOT_SPAN,
    phase_table,
    run_events,
    to_prometheus,
    write_events_jsonl,
    write_prometheus,
)
from repro.obs.trace import (
    TRACE,
    is_enabled,
    record_span,
    set_enabled,
    trace_span,
)

__all__ = [
    "DEFAULT_LATENCY_BUCKETS_S",
    "DEFAULT_MICRO_LATENCY_BUCKETS_S",
    "DEFAULT_SIZE_BUCKETS",
    "MetricsRegistry",
    "ROOT_SPAN",
    "TRACE",
    "diff_snapshots",
    "get_registry",
    "is_enabled",
    "merge_snapshots",
    "phase_table",
    "record_span",
    "register_collector",
    "run_events",
    "set_enabled",
    "to_prometheus",
    "trace_span",
    "use_registry",
    "write_events_jsonl",
    "write_prometheus",
]
