"""Span-based phase tracing with a hard overhead budget.

A *span* is one timed region of a named phase — ``planner.kernel`` around
one :func:`~repro.abr.planner.evaluate_candidates_batch` call,
``player.step`` around one SoA chunk step, ``engine.dispatch`` around a
whole :meth:`~repro.engine.runner.BatchRunner.run_orders` — measured on the
monotonic clock (``time.perf_counter``) and folded into the active
:class:`~repro.obs.metrics.MetricsRegistry` as (count, total seconds, max
seconds) per name.  Spans nest freely; totals are *inclusive* (a parent's
total contains its children), which is why the canonical phase names used
for share arithmetic (see :func:`repro.engine.report.phases_from_snapshot`)
are chosen so the leaves never overlap.

Overhead budget
---------------
Tracing is **off by default** and its disabled fast path is one attribute
check (``if TRACE.enabled:`` against a slotted module singleton) — cheap
enough to sit inside ``evaluate_candidates_batch`` and ``ShardState.step``,
the two hottest call sites in the engine.  Enabled, a span costs two
``perf_counter`` calls plus one dict update; the perf harness and the CI
``obs-smoke`` job assert the end-to-end cost stays within 2% of the
telemetry-off wall clock (plus a small absolute noise floor for sub-second
grids — see ``benchmarks/test_perf_engine.py``).

Hot paths use the manual pattern (no context-manager allocation)::

    from repro.obs.trace import TRACE, record_span
    ...
    if TRACE.enabled:
        _t0 = perf_counter()
    ...  # the hot region
    if TRACE.enabled:
        record_span("planner.kernel", perf_counter() - _t0)

Cooler paths use the :func:`trace_span` context manager, which returns a
shared no-op object when tracing is disabled.

Enable programmatically with :func:`set_enabled` (it returns the previous
state, so callers can restore it in ``finally``) or by exporting
``REPRO_TELEMETRY=1`` before the process starts.  The flag is inherited by
pool workers through the shard payload (the parent stamps it on each
:class:`~repro.engine.runner._OrderShard`), never through ambient state.
"""

from __future__ import annotations

import os
from time import perf_counter

from repro.obs.metrics import get_registry

__all__ = [
    "TRACE",
    "is_enabled",
    "record_span",
    "set_enabled",
    "trace_span",
]


class _TraceState:
    """Module singleton holding the enabled flag (slotted: the disabled
    fast-path check is a single attribute load on this object)."""

    __slots__ = ("enabled",)

    def __init__(self) -> None:
        self.enabled = False


TRACE = _TraceState()
TRACE.enabled = os.environ.get("REPRO_TELEMETRY", "").strip() not in (
    "", "0", "false", "no",
)


def is_enabled() -> bool:
    """Whether span tracing is currently on."""
    return TRACE.enabled


def set_enabled(enabled: bool) -> bool:
    """Turn span tracing on/off; returns the *previous* state so callers
    can restore it in a ``finally`` block."""
    previous = TRACE.enabled
    TRACE.enabled = bool(enabled)
    return previous


def record_span(name: str, seconds: float) -> None:
    """Fold one completed span into the active registry."""
    get_registry().record_span(name, seconds)


class _Span:
    __slots__ = ("name", "t0")

    def __init__(self, name: str) -> None:
        self.name = name

    def __enter__(self) -> "_Span":
        self.t0 = perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        # Record even when the region raised: partial phase time is real
        # wall clock and the registry must not under-report a failing run.
        get_registry().record_span(self.name, perf_counter() - self.t0)


class _NoopSpan:
    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None


_NOOP = _NoopSpan()


def trace_span(name: str):
    """A context manager timing one region under ``name``.

    Returns a shared no-op object when tracing is disabled, so sprinkling
    spans through warm (not hot) paths costs one function call and one
    ``with`` on a slotted empty object.
    """
    if not TRACE.enabled:
        return _NOOP
    return _Span(name)
