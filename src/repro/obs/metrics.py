"""The process-local :class:`MetricsRegistry`: counters, gauges, histograms.

Design contract (mirroring :class:`repro.faults.log.FaultLog`):

* **Process-local, zero-dependency.**  A registry is a plain-Python bag of
  counters, gauges, fixed-bucket histograms and span accumulators.  No
  threads, no sockets, no third-party clients — sinks that speak external
  formats live in :mod:`repro.obs.sinks`.
* **Mergeable snapshots.**  :meth:`MetricsRegistry.snapshot` returns a
  plain JSON-able dict, and :func:`merge_snapshots` /
  :meth:`MetricsRegistry.merge_snapshot` fold snapshots together the same
  way :func:`repro.faults.log.merge_counter_dicts` folds fault counters:
  counters, histogram bucket counts and span totals add; gauges take the
  most recent value.  That is exactly what lets a per-worker registry
  travel back over the process-backend shard boundary
  (:func:`repro.engine.runner._execute_shard` returns one snapshot per
  shard) and land in the parent's registry without loss.
* **Deltas by diffing.**  Long-lived owners take a snapshot before a run
  and :func:`diff_snapshots` after — the registry itself never resets
  under a reader's feet (same discipline as ``FaultLog.snapshot()`` /
  ``.since()``).

The *active* registry is module-level state: hot paths record into
:func:`get_registry` and callers scope a private registry with
:func:`use_registry`.  Registries are not thread-safe — the engine is
process-parallel, never thread-parallel, and each worker process owns its
own registry.
"""

from __future__ import annotations

from bisect import bisect_left
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "DEFAULT_LATENCY_BUCKETS_S",
    "DEFAULT_MICRO_LATENCY_BUCKETS_S",
    "DEFAULT_SIZE_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "diff_snapshots",
    "get_registry",
    "merge_snapshots",
    "register_collector",
    "use_registry",
]

#: Default latency bucket upper bounds, in seconds (an implicit +inf bucket
#: always follows the last bound).  Spans from sub-millisecond kernel calls
#: to multi-minute training rounds land in a resolvable bucket.
DEFAULT_LATENCY_BUCKETS_S: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0,
)

#: Bucket bounds for sub-millisecond request latencies (the decision
#: service's p50 lives in the tens of microseconds once batching warms
#: up).  The phase-scale :data:`DEFAULT_LATENCY_BUCKETS_S` would dump the
#: whole distribution into its first two buckets.
DEFAULT_MICRO_LATENCY_BUCKETS_S: Tuple[float, ...] = (
    0.000005, 0.00001, 0.000025, 0.00005, 0.0001, 0.00025, 0.0005,
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 1.0,
)

#: Default size/duration bucket bounds for non-latency quantities
#: (simulated session seconds, rollout steps, …).
DEFAULT_SIZE_BUCKETS: Tuple[float, ...] = (
    1.0, 2.0, 5.0, 10.0, 30.0, 60.0, 120.0, 240.0, 480.0, 960.0, 1920.0,
)


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    #: Prometheus-style alias; both names appear in client idiom.
    add = inc


class Gauge:
    """A point-in-time value (set, not accumulated)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """A fixed-bucket histogram (cumulative export, Prometheus-style).

    ``buckets`` are the finite upper bounds; one implicit +inf bucket
    follows.  ``counts[i]`` is the number of observations with
    ``value <= buckets[i]`` (non-cumulative storage; the Prometheus sink
    cumulates on export).
    """

    __slots__ = ("name", "buckets", "counts", "sum", "count")

    def __init__(self, name: str, buckets: Sequence[float]) -> None:
        bounds = tuple(float(b) for b in buckets)
        if list(bounds) != sorted(set(bounds)):
            raise ValueError(f"histogram {name!r} buckets must be "
                             f"strictly increasing: {bounds}")
        self.name = name
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1


#: Collectors registered process-wide: callables invoked with the registry
#: being snapshotted, so lazily-computed stats (e.g. the planner's
#: ``lru_cache`` candidate-tree memo) are published exactly once, at
#: snapshot time, by the module that owns them.
_COLLECTORS: List[Callable[["MetricsRegistry"], None]] = []


def register_collector(collector: Callable[["MetricsRegistry"], None]) -> None:
    """Register a snapshot-time collector (idempotent per callable)."""
    if collector not in _COLLECTORS:
        _COLLECTORS.append(collector)


class MetricsRegistry:
    """One process-local bag of metrics with a mergeable snapshot format."""

    __slots__ = ("_counters", "_gauges", "_histograms", "_spans")

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        # Span accumulators: name -> [count, total_s, max_s].  Kept as raw
        # lists (not objects) because span recording is the hottest write
        # path in the subsystem.
        self._spans: Dict[str, List[float]] = {}

    # ------------------------------------------------------------ instruments

    def counter(self, name: str) -> Counter:
        found = self._counters.get(name)
        if found is None:
            found = self._counters[name] = Counter(name)
        return found

    def gauge(self, name: str) -> Gauge:
        found = self._gauges.get(name)
        if found is None:
            found = self._gauges[name] = Gauge(name)
        return found

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None
    ) -> Histogram:
        """The histogram for ``name``, created on first use.

        ``buckets`` sets per-metric bounds at creation; re-requesting an
        existing histogram with *different* explicit bounds is a bucket
        mismatch and raises (``buckets=None`` always accepts whatever the
        histogram was created with).
        """
        found = self._histograms.get(name)
        if found is None:
            found = self._histograms[name] = Histogram(
                name, buckets if buckets is not None
                else DEFAULT_LATENCY_BUCKETS_S,
            )
        elif buckets is not None:
            bounds = tuple(float(b) for b in buckets)
            if bounds != found.buckets:
                raise ValueError(
                    f"histogram {name!r} bucket mismatch: registered with "
                    f"{found.buckets}, requested {bounds}"
                )
        return found

    def record_span(self, name: str, seconds: float) -> None:
        """Fold one completed span into the accumulator for ``name``."""
        entry = self._spans.get(name)
        if entry is None:
            self._spans[name] = [1, seconds, seconds]
        else:
            entry[0] += 1
            entry[1] += seconds
            if seconds > entry[2]:
                entry[2] = seconds

    # -------------------------------------------------------------- snapshots

    def snapshot(self) -> Dict[str, object]:
        """A plain JSON-able dict of everything recorded so far.

        Registered collectors run first (against this registry), so
        pull-style stats are as fresh as the snapshot that reports them.
        """
        for collector in _COLLECTORS:
            collector(self)
        return {
            "counters": {
                name: counter.value
                for name, counter in self._counters.items()
            },
            "gauges": {
                name: gauge.value for name, gauge in self._gauges.items()
            },
            "histograms": {
                name: {
                    "buckets": list(hist.buckets),
                    "counts": list(hist.counts),
                    "sum": hist.sum,
                    "count": hist.count,
                }
                for name, hist in self._histograms.items()
            },
            "spans": {
                name: {"count": int(entry[0]), "total_s": entry[1],
                       "max_s": entry[2]}
                for name, entry in self._spans.items()
            },
        }

    def merge_snapshot(self, snapshot: Dict[str, object]) -> None:
        """Fold a snapshot (e.g. one returned by a pool worker) into this
        live registry — the metrics equivalent of merging FaultLog deltas."""
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).add(value)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, payload in snapshot.get("histograms", {}).items():
            hist = self.histogram(name, buckets=payload["buckets"])
            if list(hist.buckets) != [float(b) for b in payload["buckets"]]:
                raise ValueError(
                    f"histogram {name!r} bucket mismatch on merge: "
                    f"{hist.buckets} vs {payload['buckets']}"
                )
            for index, count in enumerate(payload["counts"]):
                hist.counts[index] += count
            hist.sum += payload["sum"]
            hist.count += payload["count"]
        for name, payload in snapshot.get("spans", {}).items():
            entry = self._spans.get(name)
            if entry is None:
                self._spans[name] = [
                    payload["count"], payload["total_s"], payload["max_s"]
                ]
            else:
                entry[0] += payload["count"]
                entry[1] += payload["total_s"]
                if payload["max_s"] > entry[2]:
                    entry[2] = payload["max_s"]

    def clear(self) -> None:
        """Drop everything recorded (tests and scoped profiling runs)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        self._spans.clear()


def merge_snapshots(*snapshots: Dict[str, object]) -> Dict[str, object]:
    """Key-wise merge of snapshots: counters/histograms/spans add, gauges
    take the last snapshot's value (point-in-time semantics)."""
    merged = MetricsRegistry()
    for snapshot in snapshots:
        merged.merge_snapshot(snapshot)
    # merge_snapshot re-runs no collectors (they are snapshot-time hooks on
    # *live* registries); export through the raw structure instead.
    payload = merged.snapshot()
    return payload


def diff_snapshots(
    before: Dict[str, object], after: Dict[str, object]
) -> Dict[str, object]:
    """What accumulated between two snapshots of the same registry.

    Counters, histogram counts/sums and span totals subtract; gauges take
    the ``after`` value (a gauge has no meaningful delta).  ``max_s`` also
    takes the ``after`` value — a conservative upper bound for the window.
    """
    result: Dict[str, object] = {
        "counters": {}, "gauges": {}, "histograms": {}, "spans": {},
    }
    before_counters = before.get("counters", {})
    for name, value in after.get("counters", {}).items():
        delta = value - before_counters.get(name, 0.0)
        if delta:
            result["counters"][name] = delta
    result["gauges"] = dict(after.get("gauges", {}))
    before_hists = before.get("histograms", {})
    for name, payload in after.get("histograms", {}).items():
        prior = before_hists.get(
            name, {"counts": [0] * len(payload["counts"]), "sum": 0.0,
                   "count": 0},
        )
        counts = [
            now - then
            for now, then in zip(payload["counts"], prior["counts"])
        ]
        if any(counts):
            result["histograms"][name] = {
                "buckets": list(payload["buckets"]),
                "counts": counts,
                "sum": payload["sum"] - prior["sum"],
                "count": payload["count"] - prior["count"],
            }
    before_spans = before.get("spans", {})
    for name, payload in after.get("spans", {}).items():
        prior = before_spans.get(name, {"count": 0, "total_s": 0.0})
        count = payload["count"] - prior["count"]
        if count:
            result["spans"][name] = {
                "count": count,
                "total_s": payload["total_s"] - prior["total_s"],
                "max_s": payload["max_s"],
            }
    return result


#: The process-default registry — what :func:`get_registry` returns unless
#: a caller has scoped a private one with :func:`use_registry`.
_DEFAULT = MetricsRegistry()
_ACTIVE: MetricsRegistry = _DEFAULT


def get_registry() -> MetricsRegistry:
    """The registry hot paths record into right now."""
    return _ACTIVE


@contextmanager
def use_registry(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Scope ``registry`` as the active one (profiling runs, workers,
    tests).  Restores the previous registry on exit, exception or not."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = registry
    try:
        yield registry
    finally:
        _ACTIVE = previous
