"""Deterministic fault injection + the integrity/recovery vocabulary.

The fault-tolerant execution layer has three tiers, and this package is
its shared foundation (see ``docs/ROBUSTNESS.md`` for the full model):

1. **Crash-recovering runners** — :class:`~repro.engine.runner.BatchRunner`
   detects worker deaths and shard timeouts, rebuilds its pool, retries
   lost shards with capped exponential backoff, and falls back to
   in-process serial execution for shards that keep failing; every
   recovery is counted in a :class:`FaultLog`.
2. **Artifact & checkpoint integrity** — every persistent write is atomic
   and checksummed (:mod:`repro.faults.integrity`); corrupt files are
   quarantined with a reason record instead of silently swallowed.
3. **Deterministic fault injection** — a seeded :class:`FaultPlan`
   (:meth:`FaultPlan.random`) activated via :func:`inject` drives faults
   through hooks in the runner and the stores, so chaos scenarios are
   reproducible fixtures: CI proves each one recovers to bit-identical
   results or fails loudly with a quarantine record, never silently wrong.

This package deliberately imports nothing from the engine, experiments or
training layers — they import *it* — so the hooks can sit anywhere in the
stack without cycles.
"""

from __future__ import annotations

from repro.faults.injector import (
    FaultInjector,
    ShardFault,
    SimulatedWorkerCrash,
    active_injector,
    execute_shard_fault,
    inject,
)
from repro.faults.integrity import (
    CHECKSUM_KEY,
    QUARANTINE_DIR,
    atomic_write_bytes,
    atomic_write_text,
    attach_checksum,
    payload_checksum,
    quarantine_file,
    quarantine_records,
    sha256_hex,
    verify_checksum,
)
from repro.faults.log import (
    COUNTER_FIELDS,
    FaultLog,
    IntegrityWarning,
    ShardRecoveryWarning,
    merge_counter_dicts,
)
from repro.faults.plan import (
    CORRUPT_MODES,
    FAULT_KINDS,
    FaultPlan,
    FaultSpec,
    SHARD_FAULT_KINDS,
    STORE_FAULT_KINDS,
)

__all__ = [
    "CHECKSUM_KEY",
    "CORRUPT_MODES",
    "COUNTER_FIELDS",
    "FAULT_KINDS",
    "FaultInjector",
    "FaultLog",
    "FaultPlan",
    "FaultSpec",
    "IntegrityWarning",
    "QUARANTINE_DIR",
    "SHARD_FAULT_KINDS",
    "STORE_FAULT_KINDS",
    "ShardFault",
    "ShardRecoveryWarning",
    "SimulatedWorkerCrash",
    "active_injector",
    "atomic_write_bytes",
    "atomic_write_text",
    "attach_checksum",
    "execute_shard_fault",
    "inject",
    "merge_counter_dicts",
    "payload_checksum",
    "quarantine_file",
    "quarantine_records",
    "sha256_hex",
    "verify_checksum",
]
