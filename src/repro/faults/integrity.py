"""Crash-consistent persistence: atomic writes, checksums, quarantine.

Every persistent structure in the repo follows the same write-then-commit
discipline (the log-structured-RAID idea scaled down to flat files):

* **atomic writes** — payloads land in a ``<name>.tmp`` sibling first and
  are published with ``os.replace``, so a crash mid-write can never leave
  a half-written ``result.json``/``state.npz``/cell behind the final name;
* **content checksums** — JSON payloads embed a ``checksum`` over their
  canonical form (:func:`attach_checksum` / :func:`verify_checksum`),
  binary files get their digest recorded next to them, and loaders verify
  before trusting — so even corruption that still parses (a flipped bit
  in a number) is caught;
* **quarantine, not silence** — a file that fails verification is moved to
  the store's ``quarantine/`` directory with a JSON reason record
  (:func:`quarantine_file`) and an :class:`IntegrityWarning` is emitted;
  the caller then recomputes (cells, artifacts) or fails loudly
  (checkpoints).  A flaky disk can therefore never silently poison a
  resumed run.

The write path is also the fault-injection point: an active
:class:`~repro.faults.injector.FaultInjector` may truncate or bit-flip the
payload on its way to disk (``corrupt_artifact`` faults), which is how the
chaos suite proves the verify-quarantine-recompute loop actually closes.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
import warnings
from pathlib import Path
from typing import Dict, Optional, Union

from repro.faults.injector import active_injector
from repro.faults.log import FaultLog, IntegrityWarning

#: Key under which JSON payloads embed their own digest.
CHECKSUM_KEY = "checksum"

#: Directory name quarantined files are collected under, per store root.
QUARANTINE_DIR = "quarantine"


def sha256_hex(data: bytes) -> str:
    """Hex digest used by every integrity check in the repo."""
    return hashlib.sha256(data).hexdigest()


# ----------------------------------------------------------- JSON checksums

def payload_checksum(payload: Dict[str, object]) -> str:
    """Digest of a JSON payload's canonical form, ``checksum`` excluded."""
    trimmed = {k: v for k, v in payload.items() if k != CHECKSUM_KEY}
    canonical = json.dumps(trimmed, sort_keys=True)
    return f"sha256:{sha256_hex(canonical.encode())}"


def attach_checksum(payload: Dict[str, object]) -> Dict[str, object]:
    """A copy of ``payload`` with its own ``checksum`` embedded."""
    stamped = dict(payload)
    stamped[CHECKSUM_KEY] = payload_checksum(payload)
    return stamped


def verify_checksum(payload: Dict[str, object]) -> bool:
    """Whether an embedded checksum matches (payloads without one pass:
    pre-integrity artifacts stay readable)."""
    recorded = payload.get(CHECKSUM_KEY)
    if recorded is None:
        return True
    return recorded == payload_checksum(payload)


# ------------------------------------------------------------- atomic writes

def atomic_write_bytes(path: Union[str, Path], data: bytes) -> None:
    """Publish ``data`` at ``path`` via write-tmp-then-rename.

    The injection hook sits here — between the caller's correct payload
    and the disk — so a ``corrupt_artifact`` fault models exactly what a
    flaky disk does: the *write succeeds* and the rot is only discoverable
    by verification on load.
    """
    path = Path(path)
    injector = active_injector()
    if injector is not None:
        data = injector.corrupt_bytes(path, data)
    scratch = path.with_name(path.name + ".tmp")
    scratch.write_bytes(data)
    os.replace(scratch, path)


def atomic_write_text(path: Union[str, Path], text: str) -> None:
    """Text counterpart of :func:`atomic_write_bytes` (same hook)."""
    atomic_write_bytes(path, text.encode("utf-8"))


# ---------------------------------------------------------------- quarantine

def quarantine_file(
    path: Union[str, Path],
    quarantine_root: Union[str, Path],
    reason: str,
    fault_log: Optional[FaultLog] = None,
) -> Optional[Path]:
    """Move a corrupt file into quarantine and record why.

    The file is renamed to ``<utc-stamp>-<n>-<name>`` under
    ``quarantine_root`` and a sibling ``*.reason.json`` documents the
    original path and the failed check, so post-mortems can tell a torn
    write from media rot.  Emits an :class:`IntegrityWarning`; returns the
    quarantined path, or ``None`` when the move itself failed (in which
    case the caller's recompute/loud-fail behaviour is unchanged — the
    corrupt file is simply left in place and never trusted).
    """
    path = Path(path)
    quarantine_root = Path(quarantine_root)
    try:
        quarantine_root.mkdir(parents=True, exist_ok=True)
        stamp = time.strftime("%Y%m%dT%H%M%S", time.gmtime())
        for n in range(10000):
            candidate = quarantine_root / f"{stamp}-{n:04d}-{path.name}"
            if not candidate.exists():
                break
        os.replace(path, candidate)
        record = candidate.with_name(candidate.name + ".reason.json")
        record.write_text(
            json.dumps(
                {
                    "original_path": str(path),
                    "quarantined_as": str(candidate),
                    "reason": reason,
                    "quarantined_at_utc": stamp,
                },
                indent=2,
                sort_keys=True,
            )
            + "\n"
        )
    except OSError as error:
        warnings.warn(
            f"integrity: {path} failed verification ({reason}) and could "
            f"not be quarantined either ({error}); it will be ignored",
            IntegrityWarning,
            stacklevel=2,
        )
        return None
    if fault_log is not None:
        fault_log.quarantined += 1
        fault_log.record(f"quarantined {path.name}: {reason}")
    warnings.warn(
        f"integrity: quarantined {path} -> {candidate} ({reason})",
        IntegrityWarning,
        stacklevel=2,
    )
    return candidate


def quarantine_records(
    quarantine_root: Union[str, Path]
) -> list:
    """All ``*.reason.json`` records under a quarantine directory, oldest
    first (what ``python -m repro quarantine`` lists)."""
    root = Path(quarantine_root)
    records = []
    if not root.exists():
        return records
    for path in sorted(root.glob("*.reason.json")):
        try:
            records.append(json.loads(path.read_text()))
        except (OSError, json.JSONDecodeError):
            records.append({"original_path": None, "reason": "unreadable "
                            f"quarantine record {path.name}"})
    return records
