"""Deterministic fault plans: chaos scenarios as reproducible fixtures.

A :class:`FaultPlan` is a frozen list of :class:`FaultSpec`s — *kill the
worker running shard 2*, *delay shard 0 by 1.5 s*, *bit-flip the next
``result.json`` written*, *fail the 3rd pickle* — that the execution layer
consults through injection hooks (:mod:`repro.faults.injector`).  Because a
plan is plain data and :meth:`FaultPlan.random` derives one purely from a
seed, every chaos scenario is a reproducible test fixture: the same seed
injects the same faults at the same points, so CI can assert that each one
either recovers to bit-identical results or fails loudly with a quarantine
record — never silently wrong (``tests/test_faults.py``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, fields
from typing import Dict, Optional, Tuple

from repro.utils.validation import require

#: Faults aimed at one dispatched shard of work (consulted by the runner
#: and the lockstep core; the shard index is the dispatch index on the
#: executing path).
SHARD_FAULT_KINDS = ("kill_worker", "delay_shard", "raise_in_shard")

#: Faults aimed at persistence and serialisation.
STORE_FAULT_KINDS = ("corrupt_artifact", "broken_pickle")

FAULT_KINDS = SHARD_FAULT_KINDS + STORE_FAULT_KINDS

#: Corruption modes for ``corrupt_artifact``: ``truncate`` models a torn
#: write (caught by JSON/npz parsing or checksums), ``bitflip`` models
#: silent media corruption (parses fine; only checksums catch it).
CORRUPT_MODES = ("truncate", "bitflip")


@dataclass(frozen=True)
class FaultSpec:
    """One injectable fault.

    Attributes
    ----------
    kind: one of :data:`FAULT_KINDS`.
    shard: target shard index for shard faults (``None`` = first shard
        dispatched after activation).
    delay_s: sleep injected by ``delay_shard`` (pair with a runner
        ``shard_timeout_s`` below it to provoke the timeout path).
    path_glob: ``fnmatch`` pattern on the *file name* a
        ``corrupt_artifact`` fault strikes (``result.json``, ``*.json``,
        ``state.npz``, …).
    mode: ``truncate`` or ``bitflip`` for ``corrupt_artifact``.
    at_pickle: 1-based dispatch-pickle ordinal a ``broken_pickle`` fault
        fires on.
    times: how many firings before the fault is exhausted (faults are
        consumed: a retried shard does not re-trigger a spent fault).
    """

    kind: str
    shard: Optional[int] = None
    delay_s: float = 0.0
    path_glob: str = "*"
    mode: str = "truncate"
    at_pickle: int = 1
    times: int = 1

    def __post_init__(self) -> None:
        require(self.kind in FAULT_KINDS,
                f"fault kind must be one of {FAULT_KINDS}, got {self.kind!r}")
        require(self.mode in CORRUPT_MODES,
                f"corrupt mode must be one of {CORRUPT_MODES}, got {self.mode!r}")
        require(self.delay_s >= 0.0, "delay_s must be >= 0")
        require(self.at_pickle >= 1, "at_pickle is 1-based; must be >= 1")
        require(self.times >= 1, "times must be >= 1")

    def describe(self) -> str:
        """One-line human-readable form (used in fault-log events)."""
        if self.kind == "kill_worker":
            target = "first shard" if self.shard is None else f"shard {self.shard}"
            return f"kill worker running {target}"
        if self.kind == "delay_shard":
            target = "first shard" if self.shard is None else f"shard {self.shard}"
            return f"delay {target} by {self.delay_s}s"
        if self.kind == "raise_in_shard":
            target = "first shard" if self.shard is None else f"shard {self.shard}"
            return f"raise in {target}"
        if self.kind == "corrupt_artifact":
            return f"{self.mode} next write matching {self.path_glob!r}"
        return f"fail pickle #{self.at_pickle}"


@dataclass(frozen=True)
class FaultPlan:
    """An ordered, immutable set of faults to inject into one run."""

    faults: Tuple[FaultSpec, ...] = ()
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))

    def describe(self) -> Tuple[str, ...]:
        """Human-readable plan summary."""
        return tuple(spec.describe() for spec in self.faults)

    # ------------------------------------------------------------- generation

    @classmethod
    def random(
        cls,
        seed: int,
        max_faults: int = 3,
        num_shards: int = 8,
        kinds: Tuple[str, ...] = FAULT_KINDS,
        max_delay_s: float = 0.25,
    ) -> "FaultPlan":
        """A deterministic pseudo-random plan: same seed, same plan.

        ``kinds`` narrows the fault population (e.g. in-process chaos tests
        drop ``kill_worker``); ``num_shards`` bounds shard targets so every
        generated fault can actually fire on a small grid.
        """
        require(max_faults >= 1, "max_faults must be >= 1")
        require(num_shards >= 1, "num_shards must be >= 1")
        rng = random.Random(int(seed))
        specs = []
        for _ in range(rng.randint(1, max_faults)):
            kind = rng.choice(list(kinds))
            if kind in SHARD_FAULT_KINDS:
                specs.append(
                    FaultSpec(
                        kind=kind,
                        shard=rng.randrange(num_shards),
                        delay_s=(
                            round(rng.uniform(0.01, max_delay_s), 3)
                            if kind == "delay_shard"
                            else 0.0
                        ),
                    )
                )
            elif kind == "corrupt_artifact":
                specs.append(
                    FaultSpec(
                        kind=kind,
                        path_glob=rng.choice(
                            ("result.json", "*.json", "state.npz", "*")
                        ),
                        mode=rng.choice(list(CORRUPT_MODES)),
                    )
                )
            else:
                specs.append(
                    FaultSpec(kind=kind, at_pickle=rng.randint(1, 4))
                )
        return cls(faults=tuple(specs), seed=int(seed))

    # ---------------------------------------------------------- serialisation

    def to_dict(self) -> Dict[str, object]:
        """JSON-able form (round-trips via :meth:`from_dict`) — lets chaos
        fixtures live in files or CI matrices."""
        return {
            "seed": self.seed,
            "faults": [
                {f.name: getattr(spec, f.name) for f in fields(spec)}
                for spec in self.faults
            ],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_dict` output."""
        return cls(
            faults=tuple(
                FaultSpec(**entry) for entry in payload.get("faults", [])
            ),
            seed=payload.get("seed"),
        )
