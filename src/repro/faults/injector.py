"""The fault injector: hooks the execution layer consults, parent-side.

Activation is a context manager::

    with inject(FaultPlan.random(seed=7)) as injector:
        results = runner.run_orders(orders)
    assert injector.fired  # what actually struck

Hook points (all no-ops when no injector is active):

* the runner and the lockstep core call :func:`take_shard_fault` as they
  dispatch each shard — a matching shard fault is *consumed* and attached
  to that dispatch only, so a retried shard runs clean (which is exactly
  the transient-fault model recovery is built for);
* the runner calls :func:`on_pickle` before pickling each shard —
  a matching ``broken_pickle`` fault raises :class:`pickle.PicklingError`;
* :func:`repro.faults.integrity.atomic_write_bytes` calls
  :func:`corrupt_bytes` — a matching ``corrupt_artifact`` fault truncates
  or bit-flips the payload before it hits disk.

The active injector is guarded by the activating process id: pool workers
forked while a plan is active inherit the module global but must *not*
consult it (they would re-fire faults against worker-local shard indices),
so :func:`active_injector` answers ``None`` anywhere but the activating
process.  Faults reach workers as plain data instead — a
:class:`ShardFault` attached to the dispatched shard, executed by
:func:`execute_shard_fault` inside the worker (``kill_worker`` really
SIGKILLs the worker process, producing a genuine ``BrokenProcessPool`` in
the parent).
"""

from __future__ import annotations

import os
import pickle
import signal
import time
from contextlib import contextmanager
from dataclasses import dataclass
from fnmatch import fnmatch
from pathlib import Path
from typing import Iterator, List, Optional, Union

from repro.faults.plan import FaultPlan, SHARD_FAULT_KINDS


class SimulatedWorkerCrash(RuntimeError):
    """An injected crash standing in for a worker death or workload bug.

    Raised inside a pool worker it surfaces as the shard future's
    exception; raised in-process (the ``kill_worker`` translation where a
    real SIGKILL would take down the parent) it exercises the same
    recovery path.
    """


@dataclass(frozen=True)
class ShardFault:
    """The picklable directive a dispatched shard carries to its executor."""

    kind: str
    delay_s: float = 0.0


def execute_shard_fault(fault: ShardFault, in_worker: bool) -> None:
    """Carry out a shard fault at its execution site.

    ``kill_worker`` SIGKILLs the current process when running inside a
    pool worker — the parent then observes a real ``BrokenProcessPool`` —
    and degrades to :class:`SimulatedWorkerCrash` in-process, where a real
    kill would destroy the run we are trying to test.
    """
    if fault.kind == "delay_shard":
        time.sleep(fault.delay_s)
        return
    if fault.kind == "kill_worker" and in_worker:
        os.kill(os.getpid(), signal.SIGKILL)
    raise SimulatedWorkerCrash(f"injected fault: {fault.kind}")


class FaultInjector:
    """Consumes a :class:`FaultPlan`'s faults as the run reaches them."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._remaining: List[int] = [spec.times for spec in plan.faults]
        self._pickle_count = 0
        self._pid = os.getpid()
        #: Human-readable record of every fault that actually struck.
        self.fired: List[str] = []

    # --------------------------------------------------------------- queries

    def exhausted(self) -> bool:
        """Whether every planned fault has fired its full ``times``."""
        return not any(self._remaining)

    def _take(self, spec_index: int, note: str) -> None:
        self._remaining[spec_index] -= 1
        self.fired.append(note)

    # ----------------------------------------------------------------- hooks

    def take_shard_fault(self, shard_index: int) -> Optional[ShardFault]:
        """Consume a shard fault aimed at ``shard_index``, if one is live."""
        for i, spec in enumerate(self.plan.faults):
            if (
                spec.kind in SHARD_FAULT_KINDS
                and self._remaining[i] > 0
                and (spec.shard is None or spec.shard == shard_index)
            ):
                self._take(i, f"{spec.kind}@shard{shard_index}")
                return ShardFault(kind=spec.kind, delay_s=spec.delay_s)
        return None

    def on_pickle(self) -> None:
        """Count one dispatch pickle; raise if a ``broken_pickle`` is due."""
        self._pickle_count += 1
        for i, spec in enumerate(self.plan.faults):
            if (
                spec.kind == "broken_pickle"
                and self._remaining[i] > 0
                and self._pickle_count >= spec.at_pickle
            ):
                self._take(i, f"broken_pickle@{self._pickle_count}")
                raise pickle.PicklingError(
                    f"injected fault: pickle #{self._pickle_count} refused"
                )

    def corrupt_bytes(self, path: Union[str, Path], data: bytes) -> bytes:
        """Apply a matching ``corrupt_artifact`` fault to a pending write."""
        name = Path(path).name
        for i, spec in enumerate(self.plan.faults):
            if (
                spec.kind == "corrupt_artifact"
                and self._remaining[i] > 0
                and fnmatch(name, spec.path_glob)
            ):
                self._take(i, f"corrupt_artifact[{spec.mode}]@{name}")
                if spec.mode == "truncate":
                    return data[: len(data) // 2]
                flipped = bytearray(data)
                if flipped:
                    # Flip one low bit mid-payload: deterministic, and for
                    # text formats usually still parseable — the silent
                    # corruption only a checksum catches.
                    flipped[len(flipped) // 2] ^= 0x01
                return bytes(flipped)
        return data


_ACTIVE: Optional[FaultInjector] = None


def active_injector() -> Optional[FaultInjector]:
    """The injector active *in this process*, or ``None``.

    Forked pool workers inherit the module global; the pid guard keeps
    fault consumption strictly parent-side (see module docstring).
    """
    if _ACTIVE is not None and _ACTIVE._pid == os.getpid():
        return _ACTIVE
    return None


@contextmanager
def inject(
    plan: Union[FaultPlan, FaultInjector]
) -> Iterator[FaultInjector]:
    """Activate a fault plan for the duration of the ``with`` block."""
    global _ACTIVE
    if _ACTIVE is not None and _ACTIVE._pid == os.getpid():
        raise RuntimeError("a FaultPlan is already active in this process")
    injector = plan if isinstance(plan, FaultInjector) else FaultInjector(plan)
    _ACTIVE = injector
    try:
        yield injector
    finally:
        _ACTIVE = None


__all__ = [
    "FaultInjector",
    "ShardFault",
    "SimulatedWorkerCrash",
    "active_injector",
    "execute_shard_fault",
    "inject",
]
