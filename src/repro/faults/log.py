"""The :class:`FaultLog`: per-run accounting of faults seen and survived.

Every recovery mechanism in the execution layer — shard retries after a
worker crash, pool rebuilds, timeouts, serial fallbacks, quarantined
artifacts — increments a counter here, so "the run succeeded" and "the run
succeeded after recovering from three worker crashes" are distinguishable
after the fact.  The log is stamped into ``ResultSet`` metadata
(:func:`repro.experiments.registry.run`), the training summary
(:func:`repro.training.pipeline.train_policies`) and ``BENCH_engine.json``
(:class:`repro.engine.report.BenchReport`), so a chaos-free run carries an
all-zero log and a chaotic one documents exactly what it survived.

Counters are cumulative over the owner's lifetime; callers that need
per-run numbers take a :meth:`FaultLog.snapshot` before and diff with
:meth:`FaultLog.since` after (that is what the registry does around each
experiment run).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


class ShardRecoveryWarning(RuntimeWarning):
    """A shard of work failed and was recovered (retried or rerun serially).

    Results are still correct — recovery re-executes deterministic work —
    but the failure itself deserves attention.  The test suite promotes
    this warning to an error outside the chaos tests (``pytest.ini``), so
    an *unexpected* recovery can never silently paper over an engine bug.
    """


class IntegrityWarning(UserWarning):
    """A persistent artifact failed an integrity check and was quarantined.

    The corrupt file has been moved to the store's ``quarantine/``
    directory (with a reason record) and the value will be recomputed or —
    where recomputation is impossible, e.g. checkpoints — the load fails
    loudly right after this warning.
    """


#: The integer counters a :class:`FaultLog` tracks, in reporting order.
COUNTER_FIELDS = (
    "retries",
    "pool_rebuilds",
    "serial_fallbacks",
    "timeouts",
    "worker_crashes",
    "pickle_failures",
    "quarantined",
)


@dataclass
class FaultLog:
    """Counters + an event trail for one execution-layer owner.

    Attributes
    ----------
    retries: shards re-dispatched after a crash or timeout.
    pool_rebuilds: process pools torn down and rebuilt mid-run.
    serial_fallbacks: shards that exhausted their retry budget (or failed
        in-process) and were re-run serially in the parent.
    timeouts: shards abandoned because an attempt exceeded the runner's
        ``shard_timeout_s``.
    worker_crashes: worker deaths observed (``BrokenProcessPool``) or
        simulated crashes raised by a shard.
    pickle_failures: shards (or batches) that could not be pickled and
        fell back to in-process execution.
    quarantined: corrupt persistent files moved to a ``quarantine/``
        directory by an integrity check.
    wall_clock_lost_s: time spent in attempts whose work was lost.
    events: human-readable trail of what fired, in order.
    """

    retries: int = 0
    pool_rebuilds: int = 0
    serial_fallbacks: int = 0
    timeouts: int = 0
    worker_crashes: int = 0
    pickle_failures: int = 0
    quarantined: int = 0
    wall_clock_lost_s: float = 0.0
    events: List[str] = field(default_factory=list)
    #: Counter values already pushed to a metrics registry by
    #: :meth:`publish_metrics` (so repeated publishes emit deltas only).
    _published: Dict[str, float] = field(
        default_factory=dict, repr=False, compare=False
    )

    # ------------------------------------------------------------- recording

    def record(self, event: str) -> None:
        """Append one human-readable event to the trail."""
        self.events.append(event)

    # ------------------------------------------------------------- reporting

    def counters(self) -> Dict[str, float]:
        """The numeric counters as a plain (JSON-able) dict."""
        payload: Dict[str, float] = {
            name: int(getattr(self, name)) for name in COUNTER_FIELDS
        }
        payload["wall_clock_lost_s"] = round(float(self.wall_clock_lost_s), 6)
        return payload

    def as_dict(self) -> Dict[str, object]:
        """Counters plus the event trail (what reports embed)."""
        payload: Dict[str, object] = dict(self.counters())
        payload["events"] = list(self.events)
        return payload

    def any_faults(self) -> bool:
        """Whether any counter is non-zero."""
        return any(value for value in self.counters().values())

    # ----------------------------------------------------------- per-run math

    def snapshot(self) -> Dict[str, float]:
        """Current counter values, for later diffing with :meth:`since`."""
        return self.counters()

    def since(self, snapshot: Dict[str, float]) -> Dict[str, float]:
        """Counter deltas accumulated after ``snapshot`` was taken."""
        now = self.counters()
        return {
            key: (
                round(value - snapshot.get(key, 0), 6)
                if key == "wall_clock_lost_s"
                else int(value - snapshot.get(key, 0))
            )
            for key, value in now.items()
        }

    # ------------------------------------------------------------- telemetry

    def publish_metrics(self, registry=None, prefix: str = "faults") -> None:
        """Fold this log's counters into a metrics registry.

        Emits one ``<prefix>.<counter>`` counter per fault kind plus a
        ``<prefix>.wall_clock_lost_s`` latency histogram observation of
        the wall clock lost since the previous publish.  Incremental:
        only the deltas accumulated since the last :meth:`publish_metrics`
        call are pushed, so publishing after every run (as the experiment
        registry does) keeps registry totals equal to log totals without
        double-counting.  ``registry`` defaults to the active one.
        """
        # Lazy import: repro.obs must stay importable from everywhere,
        # including this module's importers, without a cycle.
        from repro.obs.metrics import (
            DEFAULT_LATENCY_BUCKETS_S,
            get_registry,
        )

        if registry is None:
            registry = get_registry()
        delta = self.since(self._published)
        for name in COUNTER_FIELDS:
            count = int(delta.get(name, 0))
            if count:
                registry.counter(f"{prefix}.{name}").inc(count)
        lost = float(delta.get("wall_clock_lost_s", 0.0))
        if lost > 0.0:
            registry.histogram(
                f"{prefix}.wall_clock_lost_s", DEFAULT_LATENCY_BUCKETS_S
            ).observe(lost)
        self._published = self.counters()


def merge_counter_dicts(*deltas: Dict[str, float]) -> Dict[str, float]:
    """Key-wise sum of counter dicts (runner log + store log, say)."""
    merged: Dict[str, float] = {name: 0 for name in COUNTER_FIELDS}
    merged["wall_clock_lost_s"] = 0.0
    for delta in deltas:
        for key, value in delta.items():
            merged[key] = merged.get(key, 0) + value
    merged["wall_clock_lost_s"] = round(merged["wall_clock_lost_s"], 6)
    return merged
