"""Batch simulation engine: the performance layer of the reproduction.

The experiment harness sweeps (ABR x video x trace) grids through thousands
of streaming sessions.  This package holds everything that makes those
sweeps fast without changing their results:

* :mod:`repro.engine.precompute` — per-video observation matrices served as
  slices (:class:`SessionPrecompute`) and fixed-size history ring buffers
  (:class:`HistoryRing`), so the per-chunk control loop allocates nothing it
  can precompute;
* :mod:`repro.engine.lockstep` — the lockstep multi-session core:
  :func:`run_orders_lockstep` advances a whole shard of sessions chunk-step
  by chunk-step, batching the MPC/Fugu/SENSEI planner across sessions as
  one ``(session x stall x scenario x candidate)`` tensor evaluation while
  staying bit-identical to serial execution;
* :mod:`repro.engine.runner` — :class:`BatchRunner`, which runs a list of
  :class:`WorkOrder`s through a deterministic serial loop, the lockstep
  core, or chunked shards over a ``ProcessPoolExecutor`` (each worker
  running its shard in lockstep), always preserving result ordering;
* :mod:`repro.engine.report` — the ``BENCH_engine.json`` reporter that
  tracks sessions/sec, decisions/sec and grid wall-clock across PRs.

The process backend is crash-recovering: lost shards (worker death,
timeout) are retried on a rebuilt pool with capped backoff and fall back
to in-process execution when retries are exhausted, with every recovery
counted in the runner's :class:`~repro.faults.log.FaultLog`
(re-exported here as :class:`FaultLog`).  See ``docs/ROBUSTNESS.md``.

See ``docs/PERFORMANCE.md`` for the architecture and how to run the perf
benchmarks.
"""

from __future__ import annotations

from repro.engine.lockstep import run_orders_lockstep, supports_lockstep
from repro.engine.precompute import HistoryRing, SessionPrecompute
from repro.engine.report import BenchReport, write_bench_report
from repro.engine.runner import BatchRunner, WorkOrder
from repro.faults.log import FaultLog, ShardRecoveryWarning

__all__ = [
    "BatchRunner",
    "BenchReport",
    "FaultLog",
    "HistoryRing",
    "SessionPrecompute",
    "ShardRecoveryWarning",
    "WorkOrder",
    "run_orders_lockstep",
    "supports_lockstep",
    "write_bench_report",
]
