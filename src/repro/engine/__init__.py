"""Batch simulation engine: the performance layer of the reproduction.

The experiment harness sweeps (ABR x video x trace) grids through thousands
of streaming sessions.  This package holds everything that makes those
sweeps fast without changing their results:

* :mod:`repro.engine.precompute` — per-video observation matrices served as
  slices (:class:`SessionPrecompute`) and fixed-size history ring buffers
  (:class:`HistoryRing`), so the per-chunk control loop allocates nothing it
  can precompute;
* :mod:`repro.engine.runner` — :class:`BatchRunner`, which shards a list of
  :class:`WorkOrder`s over a deterministic serial backend or a
  ``ProcessPoolExecutor`` while preserving result ordering;
* :mod:`repro.engine.report` — the ``BENCH_engine.json`` reporter that
  tracks sessions/sec, decisions/sec and grid wall-clock across PRs.

See ``docs/PERFORMANCE.md`` for the architecture and how to run the perf
benchmarks.
"""

from __future__ import annotations

from repro.engine.precompute import HistoryRing, SessionPrecompute
from repro.engine.report import BenchReport, write_bench_report
from repro.engine.runner import BatchRunner, WorkOrder

__all__ = [
    "BatchRunner",
    "BenchReport",
    "HistoryRing",
    "SessionPrecompute",
    "WorkOrder",
    "write_bench_report",
]
