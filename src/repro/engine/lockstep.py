"""Lockstep multi-session simulation: batch the planner across sessions.

The serial backend walks one :class:`~repro.player.session.StreamingSession`
at a time, so a grid sweep pays the per-chunk Python and small-numpy-op
overhead once per *session*.  The lockstep core runs a whole shard of
:class:`~repro.engine.runner.WorkOrder`s together, chunk-step by chunk-step:

* every session's mutable state lives as one row of a
  :class:`~repro.player.shard.ShardState` — the structure-of-arrays
  counterpart of :class:`~repro.player.session.SessionState` — and the
  whole shard's download times, buffer evolution, stall accounting and
  history rings advance per chunk step as a handful of numpy array
  operations (one batched trace integral per distinct trace) instead of a
  per-session Python loop;
* for the planner ABR families (MPC, Fugu, SENSEI-Fugu) the per-decision
  hot path — throughput prediction and candidate scoring — is evaluated
  *across sessions*: predictor state is kept as arrays over the shard,
  planner inputs (buffer levels, histories, previous levels) are sliced
  straight out of the SoA arrays, and
  :func:`~repro.abr.planner.evaluate_candidates_batch` scores one stacked
  ``(session x stall x scenario x candidate)`` tensor per candidate-tree
  group;
* the Pensieve-family RL policies (greedy *and* exploration mode) run
  through a dedicated batched driver: per-session states are encoded
  straight off the SoA shard arrays, the actor MLP runs one forward per
  decision round across the whole group (row-stable matmuls — see
  :func:`repro.ml.nn.row_matmul`), greedy actions are per-row argmaxes
  and sampled actions draw from per-session RNG streams pinned by each
  order's ``exploration_seed``;
* every other ABR (BBA, rate-based, RL subclasses with overridden
  ``decide``, …) runs through a generic per-session driver: one reset
  clone of the ABR per session, decisions taken one session at a time
  against observations served from the shard rows — the exact
  observations the serial path builds — still amortising the shared SoA
  chunk-step.

Bit-identity rests on elementwise-only numpy arithmetic: the planners
route through the same batch kernel as serial with a one-session stack,
and both the kernel and the SoA stepping (see :mod:`repro.player.shard`)
use only elementwise operations and fixed-order reductions, which IEEE-754
evaluates identically regardless of how many sessions share the array.
Enforced by ``tests/test_lockstep.py`` (including differential fuzzing)
and the golden masters under ``tests/golden/``.

Sessions end at different chunk counts (ragged shards): finished sessions
simply leave the live set while the rest keep stepping.

Exploration-mode RL (``greedy=False``) is batchable only when each work
order pins a per-session RNG stream via
:attr:`~repro.engine.runner.WorkOrder.exploration_seed`: the serial path
then reseeds the agent (:meth:`repro.ml.rl.ActorCriticAgent.
reseed_exploration`) immediately before the session, and the lockstep
driver gives the row its own ``rng_from_seed(exploration_seed)`` stream —
the same generator state drawing from bitwise-equal probability rows, so
the trajectories match checkpoint for checkpoint (fuzzed in
``tests/test_rl_batch.py``).  *Unseeded* exploration orders keep the old
serial fallback: their serial results depend on one RNG stream shared
across sessions in submission order, which no parallel decomposition can
reproduce.
"""

from __future__ import annotations

import copy
import warnings
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.faults.injector import (
    SimulatedWorkerCrash,
    active_injector,
    execute_shard_fault,
)
from repro.faults.log import FaultLog, ShardRecoveryWarning
from repro.obs.trace import TRACE, trace_span

from repro.abr.base import ABRAlgorithm
from repro.abr.bba import BufferBasedABR
from repro.abr.fugu import FuguABR
from repro.abr.mpc import ModelPredictiveABR
from repro.abr.planner import (
    enumerate_level_sequences,
    evaluate_candidates_batch,
    kernel_block_sessions,
)
from repro.abr.throughput import (
    ErrorDistributionPredictor,
    HarmonicMeanPredictor,
)
from repro.abr import pensieve as _pensieve
from repro.abr.pensieve import PensieveABR
from repro.core.sensei_abr import SenseiFuguABR, SenseiPensieveABR
from repro.ml.rl import ActorCriticAgent
from repro.player.session import StreamingSession, StreamResult
from repro.player.shard import ShardState
from repro.utils.rand import rng_from_seed
from repro.utils.validation import require


def supports_lockstep(abr: ABRAlgorithm) -> bool:
    """Whether lockstep reproduces serial results for this ABR *on its own*.

    False only for exploration-mode (``greedy=False``) RL policies, whose
    serial results depend on one RNG stream shared across sessions.  Such
    an ABR can still run in lockstep when its *work order* pins a
    per-session stream — see :func:`order_supports_lockstep`, the check
    the engine actually applies.
    """
    return bool(getattr(abr, "greedy", True))


def _is_batched_rl(abr: ABRAlgorithm) -> bool:
    """Whether ``abr`` is a stock Pensieve-family policy the dedicated
    batched RL driver reproduces exactly (exact types only: a subclass may
    override ``encode_state``/``decide``)."""
    return (
        type(abr) in (PensieveABR, SenseiPensieveABR)
        and type(getattr(abr, "agent", None)) is ActorCriticAgent
    )


def order_supports_lockstep(order: "WorkOrder") -> bool:
    """Whether lockstep execution reproduces serial results for this order.

    Greedy ABRs always qualify.  Exploration-mode RL qualifies exactly when
    the order pins a per-session RNG stream (``exploration_seed``) *and*
    the policy is a stock Pensieve-family agent: the serial path then
    reseeds the agent before the session, so the batched driver's
    ``rng_from_seed(exploration_seed)`` row stream replays it bit for bit.
    Unseeded exploration orders (or exotic RL subclasses) keep the serial
    fallback.
    """
    if supports_lockstep(order.abr):
        return True
    return (
        getattr(order, "exploration_seed", None) is not None
        and _is_batched_rl(order.abr)
    )


def run_orders_lockstep(
    orders: Sequence["WorkOrder"],
    fault_log: Optional[FaultLog] = None,
) -> List[StreamResult]:
    """Run work orders through the lockstep core; results align with input.

    Orders are grouped by (ABR instance, player config): each group is one
    lockstep shard.  Sessions are independent (every serial session starts
    with ``abr.reset()``), so executing groups out of submission order
    cannot change any result; the returned list is reassembled in
    submission order regardless.

    A shard that raises is *recovered*, not fatal: its orders are re-run
    one session at a time through the serial reference path — the ground
    truth lockstep is proven bit-identical to — under a loud
    :class:`~repro.faults.log.ShardRecoveryWarning` (promoted to an error
    in the test suite outside the chaos tests, so recovery can never mask
    an engine regression there).  An active
    :class:`~repro.faults.injector.FaultInjector` may inject shard faults
    here (``kill_worker`` degrades to a raised
    :class:`~repro.faults.injector.SimulatedWorkerCrash` in-process);
    recoveries are counted in ``fault_log`` when the caller passes one.
    """
    orders = list(orders)
    results: List[Optional[StreamResult]] = [None] * len(orders)
    shards: Dict[object, List[int]] = {}
    for index, order in enumerate(orders):
        if not order_supports_lockstep(order):
            results[index] = order.run()
            continue
        shards.setdefault(order.config, []).append(index)
    for shard_index, indices in enumerate(shards.values()):
        shard_orders = [orders[index] for index in indices]
        injector = active_injector()
        fault = (
            injector.take_shard_fault(shard_index)
            if injector is not None else None
        )
        try:
            if fault is not None:
                execute_shard_fault(fault, in_worker=False)
            with trace_span("engine.lockstep.shard"):
                shard_results = _run_shard(shard_orders)
        except Exception as error:
            warnings.warn(
                f"lockstep: shard {shard_index} ({len(shard_orders)} "
                f"orders) failed with {error!r}; re-running its orders "
                "serially",
                ShardRecoveryWarning,
                stacklevel=2,
            )
            if fault_log is not None:
                if isinstance(error, SimulatedWorkerCrash):
                    fault_log.worker_crashes += 1
                fault_log.serial_fallbacks += 1
                fault_log.record(
                    f"lockstep shard {shard_index} recovered serially "
                    f"after {type(error).__name__}"
                )
            shard_results = [order.run() for order in shard_orders]
        for index, result in zip(indices, shard_results):
            results[index] = result
    if TRACE.enabled:
        # Lazy import: the runner module imports lockstep functions
        # lazily, so the reverse edge must not run at module import time.
        from repro.engine.runner import _observe_session_results

        _observe_session_results(results)
    return results


def run_rl_rollouts_lockstep(
    orders: Sequence["WorkOrder"],
    fault_log: Optional[FaultLog] = None,
) -> Tuple[List[StreamResult], List[List[Tuple[np.ndarray, int]]]]:
    """Run RL work orders in lockstep, capturing training trajectories.

    The rollout collector's lockstep entry point: every order must be a
    stock Pensieve-family policy with lockstep support at the order level
    (greedy, or exploration-mode with a pinned ``exploration_seed``).
    Returns ``(results, trajectories)``, both aligned with ``orders``;
    each trajectory is the order's ``(state, action)`` list — bitwise what
    the serial ``begin_capture()``/``end_capture()`` discipline records,
    because the batched driver's states, probabilities and sampled actions
    are bitwise the scalar path's (see :class:`_RLDriver`).

    A shard that raises is recovered through the serial reference path —
    reseed, capture, run — under a :class:`ShardRecoveryWarning`, exactly
    mirroring :func:`run_orders_lockstep`'s recovery contract.
    """
    orders = list(orders)
    for order in orders:
        require(
            _is_batched_rl(order.abr) and order_supports_lockstep(order),
            "run_rl_rollouts_lockstep needs stock Pensieve-family orders "
            "with lockstep support (greedy, or a pinned exploration_seed)",
        )
    results: List[Optional[StreamResult]] = [None] * len(orders)
    trajectories: List[Optional[List[Tuple[np.ndarray, int]]]] = (
        [None] * len(orders)
    )
    shards: Dict[object, List[int]] = {}
    for index, order in enumerate(orders):
        shards.setdefault(order.config, []).append(index)
    for shard_index, indices in enumerate(shards.values()):
        shard_orders = [orders[index] for index in indices]
        capture: Dict[int, List[Tuple[np.ndarray, int]]] = {
            row: [] for row in range(len(shard_orders))
        }
        try:
            with trace_span("engine.lockstep.shard"):
                shard_results = _run_shard(shard_orders, capture=capture)
        except Exception as error:
            warnings.warn(
                f"lockstep: rollout shard {shard_index} "
                f"({len(shard_orders)} orders) failed with {error!r}; "
                "re-running its orders serially",
                ShardRecoveryWarning,
                stacklevel=2,
            )
            if fault_log is not None:
                if isinstance(error, SimulatedWorkerCrash):
                    fault_log.worker_crashes += 1
                fault_log.serial_fallbacks += 1
                fault_log.record(
                    f"lockstep rollout shard {shard_index} recovered "
                    f"serially after {type(error).__name__}"
                )
            shard_results = []
            for row, order in enumerate(shard_orders):
                order.abr.begin_capture()
                shard_results.append(order.run())
                capture[row] = order.abr.end_capture()
        for row, index in enumerate(indices):
            results[index] = shard_results[row]
            trajectories[index] = capture[row]
    return results, trajectories


def _run_shard(
    orders: Sequence["WorkOrder"],
    capture: Optional[Dict[int, List[Tuple[np.ndarray, int]]]] = None,
) -> List[StreamResult]:
    """Run one shard of orders (shared player config) in lockstep.

    The *stepping* — download times, buffer evolution, stall accounting,
    history rings — advances as one SoA batch across every order of the
    shard, whatever its ABR; *decisions* are taken per ABR group by the
    most batched driver that reproduces that ABR exactly.  Planner drivers
    go further: instead of calling the kernel themselves they emit *plan
    requests*, and the shard coordinator merges compatible requests
    **across ABR instances** — same candidate tree, stall options,
    scenario count, quality coefficients and weights mode, e.g. several
    MPC or Fugu variants swept in one grid — into shared kernel calls.
    The kernel's bit-identity contract is exactly that adding sessions to
    a call's batch axis cannot change any session's values, so
    cross-instance merging is free of semantic risk by the same argument
    that lets lockstep batch one family.  Sessions are independent (every
    serial session starts with ``abr.reset()``), so interleaving groups
    in one shard cannot change any result.

    ``capture``, when given, maps row index -> list; RL drivers append
    each row's ``(state, action)`` pairs to it — the lockstep counterpart
    of :meth:`PensieveABR.begin_capture`, used by the training rollout
    collector (:func:`run_rl_rollouts_lockstep`).
    """
    sessions = [
        StreamingSession(
            encoded=order.encoded,
            trace=order.trace,
            abr=order.abr,
            config=order.config,
            chunk_weights=order.chunk_weights,
        )
        for order in orders
    ]
    shard = ShardState(sessions)
    groups: Dict[int, List[int]] = {}
    abrs: Dict[int, ABRAlgorithm] = {}
    for row, order in enumerate(orders):
        groups.setdefault(id(order.abr), []).append(row)
        abrs[id(order.abr)] = order.abr
    drivers = [
        (np.array(rows, dtype=int), _driver_for(abrs[abr_id], shard, orders))
        for abr_id, rows in groups.items()
    ]
    if capture is not None:
        for _, driver in drivers:
            require(
                isinstance(driver, _RLDriver),
                "trajectory capture requires every order to use the "
                "batched RL driver",
            )
            driver.capture = capture
    live = shard.live_rows
    num_chunks = shard.num_chunks
    while live.size:
        levels = np.empty(live.size, dtype=int)
        stalls = np.empty(live.size)
        requests: List[_PlanRequest] = []
        finishers = []
        for group_rows, driver in drivers:
            rows = group_rows[num_chunks[group_rows] > shard.step_index]
            if not rows.size:
                continue
            positions = np.searchsorted(live, rows)
            if isinstance(driver, _PlannerDriverBase):
                group_requests, finish = driver.begin_round(rows)
                requests.extend(group_requests)
                finishers.append((positions, finish))
            else:
                group_levels, group_stalls = driver.decide(rows)
                levels[positions] = group_levels
                stalls[positions] = group_stalls
        if requests:
            # Covers request merging/splitting *and* the kernel calls; the
            # kernel's own time lands under the nested ``planner.kernel``
            # span recorded inside evaluate_candidates_batch.
            with trace_span("engine.lockstep.plan"):
                _execute_plan_requests(requests, shard)
        for positions, finish in finishers:
            group_levels, group_stalls = finish()
            levels[positions] = group_levels
            stalls[positions] = group_stalls
        shard.step(live, levels, stalls)
        live = shard.live_rows
    return [
        shard.finalize(
            row, abr_name=order.abr.name, trace_name=order.trace.name
        )
        for row, order in enumerate(orders)
    ]


def _driver_for(
    abr: ABRAlgorithm, shard: ShardState, orders: Sequence["WorkOrder"] = (),
):
    """The most batched driver that still reproduces ``abr.decide`` exactly.

    Exact-type checks: a subclass may override ``decide``, so anything not
    literally one of the three planner classes (with its stock predictor
    and the fast planner enabled), one of the two Pensieve RL classes
    (with the stock actor–critic agent) or BBA takes the generic
    per-session path.  ``orders`` carries the shard's work orders so the
    RL driver can read per-row exploration seeds.
    """
    if type(abr) is BufferBasedABR:
        return _BBADriver(abr, shard)
    if _is_batched_rl(abr):
        return _RLDriver(abr, shard, orders)
    if getattr(abr, "use_fast_planner", False):
        if (
            type(abr) is ModelPredictiveABR
            and type(abr.predictor) is HarmonicMeanPredictor
        ):
            return _MPCDriver(abr, shard)
        if (
            type(abr) is FuguABR
            and type(abr.predictor) is ErrorDistributionPredictor
        ):
            return _FuguDriver(abr, shard)
        if (
            type(abr) is SenseiFuguABR
            and type(abr.predictor) is ErrorDistributionPredictor
        ):
            return _SenseiFuguDriver(abr, shard)
    return _PerSessionDriver(abr, shard)


# ---------------------------------------------------------------- drivers
#
# A driver's ``decide(rows)`` returns ``(levels, proactive_stalls)`` arrays
# aligned with ``rows`` — the SoA form of the serial path's per-session
# ``Decision`` objects, consumed directly by :meth:`ShardState.step`.


class _PerSessionDriver:
    """Generic fallback: one reset clone of the ABR per session.

    Serial execution reuses one ABR instance with ``reset()`` between
    sessions — the contract that makes sessions independent.  A deep copy of
    the (reset) instance therefore decides identically, and per-session
    clones let independent sessions interleave.  Observations are served
    row by row from the shard arrays and match the serial observations
    exactly (same construction code — see
    :func:`repro.player.session.observation_from_precompute`).
    """

    def __init__(self, abr: ABRAlgorithm, shard: ShardState) -> None:
        self.shard = shard
        self.clones = [copy.deepcopy(abr) for _ in range(shard.num_sessions)]
        for clone in self.clones:
            clone.reset()

    def decide(self, rows: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        shard = self.shard
        levels = np.zeros(rows.size, dtype=int)
        stalls = np.zeros(rows.size)
        for position, row in enumerate(rows):
            decision = self.clones[row].decide(shard.observe(int(row)))
            levels[position] = int(decision.level)
            stalls[position] = float(decision.proactive_stall_s)
        return levels, stalls


class _BBADriver:
    """Buffer-based adaptation straight off the SoA buffer array.

    BBA's chunk map reads exactly one dynamic input — the buffer level — so
    the lockstep driver applies :meth:`BufferBasedABR.decide`'s arithmetic
    to the whole shard's buffer array at once.  The operations (and
    therefore the chosen levels) are identical to the serial path.
    """

    def __init__(self, abr: BufferBasedABR, shard: ShardState) -> None:
        self.abr = abr
        self.shard = shard
        self.lowest = np.array(
            [encoded.ladder.lowest_level for encoded in shard.encoded],
            dtype=int,
        )
        self.highest = np.array(
            [encoded.ladder.highest_level for encoded in shard.encoded],
            dtype=int,
        )

    def decide(self, rows: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        shard = self.shard
        reservoir = self.abr.reservoir_s
        cushion = self.abr.cushion_s
        buffer_s = shard.buffer_s[rows]
        num_levels = shard.num_levels[rows]
        fraction = (buffer_s - reservoir) / cushion
        ramp = np.floor(fraction * (num_levels - 1) + 1e-9).astype(int)
        # Inlined ABRAlgorithm.clamp_level on the ramp segment.
        ramp = np.minimum(np.maximum(ramp, 0), num_levels - 1)
        levels = np.where(
            buffer_s <= reservoir,
            self.lowest[rows],
            np.where(buffer_s >= reservoir + cushion, self.highest[rows], ramp),
        )
        return levels, np.zeros(rows.size)


class _RLDriver:
    """Batched Pensieve-family actor–critic policies over the shard rows.

    Mirrors :meth:`PensieveABR.decide` exactly, batched:

    * the state rows are encoded straight off the SoA shard arrays with
      the same elementwise arithmetic :meth:`PensieveABR.encode_state`
      applies to one observation (padding included — the shard's zero
      padding coincides with the scalar encoder's zero fills);
    * one :meth:`ActorCriticAgent.action_probabilities_batch` call per
      decision round replaces per-session forwards; its rows are bitwise
      the scalar probabilities because every actor matmul is row-stable
      (:func:`repro.ml.nn.row_matmul`) and the softmax reduces rows
      independently;
    * greedy policies take per-row argmaxes (same first-max tie break as
      the scalar ``np.argmax``); exploration policies draw each row's
      action from a private ``rng_from_seed(order.exploration_seed)``
      stream — the very generator state the serial path's pre-session
      ``reseed_exploration`` produces, consuming bitwise-equal
      probability rows, hence identical trajectories.

    The agent is read-only here: clones are unnecessary (greedy decide
    touches no mutable agent state, and sampling never touches the shared
    ``agent._rng``), so one driver serves every row of the instance group.

    Setting :attr:`capture` to a ``row -> list`` mapping records each
    row's ``(state, action)`` pairs, exactly like the scalar capture hook
    the trainer uses.
    """

    def __init__(
        self,
        abr: PensieveABR,
        shard: ShardState,
        orders: Sequence["WorkOrder"],
    ) -> None:
        self.abr = abr
        self.shard = shard
        self.agent = abr.agent
        self.cfg = abr.config
        self.greedy = bool(abr.greedy)
        self.stall_options = np.asarray(self.cfg.stall_actions_s, dtype=float)
        self.obs_horizon = shard.config.observation_horizon
        # The scalar encoder writes the ladder's sizes into a
        # cfg.num_levels-wide slot (and would raise on a wider ladder).
        require(
            int(shard.num_levels.max()) <= self.cfg.num_levels,
            "ladder wider than the agent's next-chunk-size slot",
        )
        self.capture: Optional[Dict[int, List[Tuple[np.ndarray, int]]]] = None
        self.rngs: Dict[int, object] = {}
        if not self.greedy:
            for row, order in enumerate(orders):
                if order.abr is not abr:
                    continue
                require(
                    order.exploration_seed is not None,
                    "exploration-mode RL rows need per-order "
                    "exploration seeds to run in lockstep",
                )
                self.rngs[row] = rng_from_seed(int(order.exploration_seed))

    def _padded_history(self, history, rows: np.ndarray) -> np.ndarray:
        """Rectangular histories left-padded/truncated to the agent's
        window — the batched :func:`repro.abr.base.pad_history`."""
        matrix = history.matrix(rows)
        width = matrix.shape[1]
        length = self.cfg.history_length
        if width >= length:
            return matrix[:, width - length:]
        padded = np.zeros((rows.size, length))
        if width:
            padded[:, length - width:] = matrix
        return padded

    def _encode_batch(self, rows: np.ndarray) -> np.ndarray:
        """(len(rows), state_dim) states, row ``i`` bitwise equal to the
        scalar ``encode_state(shard.observe(rows[i]))``."""
        shard = self.shard
        cfg = self.cfg
        chunk = shard.step_index
        n = rows.size
        throughput = (
            self._padded_history(shard.throughput_history, rows)
            / _pensieve._THROUGHPUT_SCALE_MBPS
        )
        download_times = (
            self._padded_history(shard.download_time_history, rows)
            / _pensieve._DOWNLOAD_TIME_SCALE_S
        )
        next_sizes = np.zeros((n, cfg.num_levels))
        filled = shard.sizes_all.shape[2]
        next_sizes[:, :filled] = (
            shard.sizes_all[rows, chunk] / _pensieve._CHUNK_SIZE_SCALE_BYTES
        )
        num_chunks = shard.num_chunks[rows]
        scalars = np.empty((n, 3))
        scalars[:, 0] = shard.buffer_s[rows] / _pensieve._BUFFER_SCALE_S
        scalars[:, 1] = (shard.last_levels(rows) + 1) / shard.num_levels[rows]
        scalars[:, 2] = (num_chunks - chunk) / num_chunks
        parts = [throughput, download_times, next_sizes, scalars]
        if cfg.weight_horizon > 0:
            weights = np.ones((n, cfg.weight_horizon))
            weights_all = shard.weights_all
            for offset in range(min(cfg.weight_horizon, self.obs_horizon)):
                valid = chunk + offset < num_chunks
                if not np.any(valid):
                    break
                weights[valid, offset] = weights_all[
                    rows[valid], chunk + offset
                ]
            parts.append(weights)
        states = np.concatenate(parts, axis=1)
        require(
            states.shape[1] == cfg.state_dim, "state encoding size mismatch"
        )
        return states

    def decide(self, rows: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        states = self._encode_batch(rows)
        probabilities = self.agent.action_probabilities_batch(states)
        cfg = self.cfg
        if self.greedy:
            actions = np.argmax(probabilities, axis=1)
        else:
            actions = np.empty(rows.size, dtype=int)
            num_actions = cfg.num_actions
            for position, row in enumerate(rows):
                actions[position] = int(
                    self.rngs[int(row)].choice(
                        num_actions, p=probabilities[position]
                    )
                )
        # A stall action keeps streaming at the previously chosen level —
        # the scalar decide()'s post-processing, vectorised.
        is_stall = actions >= cfg.num_levels
        levels = np.where(
            is_stall, np.maximum(self.shard.last_levels(rows), 0), actions
        )
        stalls = np.zeros(rows.size)
        if self.stall_options.size and np.any(is_stall):
            stalls[is_stall] = self.stall_options[
                actions[is_stall] - cfg.num_levels
            ]
        if self.capture is not None:
            for position, row in enumerate(rows):
                self.capture[int(row)].append(
                    (states[position].copy(), int(actions[position]))
                )
        return levels, stalls


class _HarmonicMeanState:
    """Vectorised :class:`HarmonicMeanPredictor` over a shard of sessions.

    Stateless like its scalar counterpart; ``predict`` maps a rectangular
    (session, history) matrix to per-session predictions with the same
    arithmetic the scalar predictor applies to each row alone (the axis
    reduction of a <= ``history_length``-wide row is the same fixed-order
    sum ``harmonic_mean`` computes).
    """

    def __init__(self, predictor: HarmonicMeanPredictor) -> None:
        self.window = predictor.window
        self.default_mbps = predictor.default_mbps

    def predict(self, histories: np.ndarray) -> np.ndarray:
        if histories.shape[1] == 0:
            return np.full(histories.shape[0], self.default_mbps)
        recent = histories[:, -self.window:]
        return recent.shape[1] / np.sum(1.0 / recent, axis=1)


class _ErrorDistributionState:
    """Vectorised :class:`ErrorDistributionPredictor` over a shard.

    The scalar predictor's per-session state — ratio count, last
    prediction, histogram counts — lives here as arrays indexed by session.
    ``predict_distribution`` replicates the scalar update order exactly:
    base prediction from the history, ratio recorded against the *previous*
    prediction, then the binned distribution around the new prediction.
    """

    def __init__(
        self, predictor: ErrorDistributionPredictor, num_sessions: int
    ) -> None:
        self.base = _HarmonicMeanState(predictor._base)
        self.num_bins = predictor.num_bins
        self.ratio_range = predictor.ratio_range
        self.bin_centers = predictor._bin_centers
        self.bin_edges = predictor._bin_edges
        self.cold_start_probs = predictor._cold_start_probs
        self.num_ratios = np.zeros(num_sessions, dtype=int)
        self.last_prediction = np.zeros(num_sessions)
        self.bin_counts = np.zeros((num_sessions, self.num_bins), dtype=int)

    def predict_distribution(
        self, live: np.ndarray, histories: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(throughputs, probabilities), each (len(live), num_bins)."""
        prediction = self.base.predict(histories)
        self._record_ratios(live, histories, prediction)
        self.last_prediction[live] = prediction

        smoothed = self.bin_counts[live] + 0.5
        learned = smoothed / smoothed.sum(axis=1)[:, None]
        cold = self.num_ratios[live] < 3
        probabilities = np.where(
            cold[:, None], self.cold_start_probs[None, :], learned
        )
        throughputs = prediction[:, None] * self.bin_centers[None, :]
        return throughputs, probabilities

    def _record_ratios(
        self, live: np.ndarray, histories: np.ndarray, prediction: np.ndarray
    ) -> None:
        if histories.shape[1] == 0:
            return
        previous = self.last_prediction[live]
        mask = previous > 0
        if not np.any(mask):
            return
        ratios = histories[mask, -1] / previous[mask]
        low, high = self.ratio_range
        clipped = np.minimum(np.maximum(ratios, low), high)
        indices = np.searchsorted(self.bin_edges, clipped, side="right") - 1
        indices = np.minimum(np.maximum(indices, 0), self.num_bins - 1)
        recorded = live[mask]
        self.num_ratios[recorded] += 1
        np.add.at(self.bin_counts, (recorded, indices), 1)


class _PlanRequest:
    """One pending kernel evaluation emitted by a planner driver.

    Requests whose :attr:`key` matches plan over the *same* memoised
    candidate tree with the same stall options, scenario count, quality
    coefficients and weights mode; the shard coordinator concatenates
    them — across ABR instances — into one kernel call and scatters the
    per-session results back through :meth:`scatter`.  Merging is
    bit-safe because the kernel is elementwise over the session axis.

    A request carries its planner inputs either as *member indices* into
    the shard's SoA matrices (the grid drivers' form: ``members`` plus the
    shard passed to :func:`_execute_plan_requests`) or as *direct arrays*
    (``sizes``/``quality``/``weights``/``chunk_duration``/
    ``buffer_capacity``, the grid-free form :func:`plan_batch` builds from
    standalone observations).  The kernel call is identical either way.
    """

    __slots__ = (
        "key", "start_level", "max_level_step", "bitrates", "stall_options",
        "quality_model", "members", "positions", "buffer_s", "last_levels",
        "scenario_tputs", "scenario_probs", "use_weights", "need_rebuffer",
        "levels_out", "scores_out", "rebuffer_out", "stalls_out",
        "sizes", "quality", "weights", "chunk_duration", "buffer_capacity",
    )

    def __init__(
        self, *, key, start_level, max_level_step, bitrates, stall_options,
        quality_model, members, positions, buffer_s, last_levels,
        scenario_tputs, scenario_probs, use_weights, need_rebuffer,
        levels_out, scores_out, rebuffer_out, stalls_out=None,
        sizes=None, quality=None, weights=None, chunk_duration=None,
        buffer_capacity=None,
    ) -> None:
        self.key = key
        self.start_level = start_level
        self.max_level_step = max_level_step
        self.bitrates = bitrates
        self.stall_options = stall_options
        self.quality_model = quality_model
        self.members = members
        self.positions = positions
        self.buffer_s = buffer_s
        self.last_levels = last_levels
        self.scenario_tputs = scenario_tputs
        self.scenario_probs = scenario_probs
        self.use_weights = use_weights
        self.need_rebuffer = need_rebuffer
        self.levels_out = levels_out
        self.scores_out = scores_out
        self.rebuffer_out = rebuffer_out
        self.stalls_out = stalls_out
        self.sizes = sizes
        self.quality = quality
        self.weights = weights
        self.chunk_duration = chunk_duration
        self.buffer_capacity = buffer_capacity

    def scatter(self, levels, stalls, scores, rebuffer) -> None:
        self.levels_out[self.positions] = levels
        if self.stalls_out is not None:
            self.stalls_out[self.positions] = stalls
        if self.scores_out is not None:
            self.scores_out[self.positions] = scores
        if self.rebuffer_out is not None:
            self.rebuffer_out[self.positions] = rebuffer


#: Shared all-ones weight matrices per shape (the kernel never writes into
#: its weights argument), reused by every unweighted bucket of a process.
_UNIFORM_WEIGHTS: Dict[tuple, np.ndarray] = {}


def _uniform_weights(num_sessions: int, horizon: int) -> np.ndarray:
    weights = _UNIFORM_WEIGHTS.get((num_sessions, horizon))
    if weights is None:
        weights = np.ones((num_sessions, horizon))
        _UNIFORM_WEIGHTS[(num_sessions, horizon)] = weights
    return weights


def _execute_plan_requests(
    requests: List[_PlanRequest], shard: Optional[ShardState] = None
) -> None:
    """Run every pending plan request, merging compatible ones.

    Requests are bucketed by :attr:`_PlanRequest.key`; each bucket is one
    candidate tree evaluated for the concatenation of its requests'
    sessions, sliced into cache-blocked tiles: the per-call session count
    comes from :func:`repro.abr.planner.kernel_block_sessions`, which
    sizes the kernel's working set to the L2 target (never below the
    pre-arena :attr:`_PlannerDriverBase.SPLIT_ABOVE` cap).  Because the
    kernel is elementwise over the session axis, every session's outputs
    are bitwise those of evaluating its own request alone — whatever the
    tile size.

    With ``shard`` the per-session planner inputs are sliced from the
    shard's SoA matrices through each request's ``members``; without it
    (the :func:`plan_batch` path) every request carries its inputs as
    direct arrays.  Both forms feed the kernel identical values.
    """
    buckets: Dict[tuple, List[_PlanRequest]] = {}
    for request in requests:
        buckets.setdefault(request.key, []).append(request)
    chunk = shard.step_index if shard is not None else 0
    split_above = _PlannerDriverBase.SPLIT_ABOVE
    for bucket in buckets.values():
        first = bucket[0]
        if len(bucket) == 1:
            members = first.members
            buffer_s = first.buffer_s
            last_levels = first.last_levels
            scenario_tputs = first.scenario_tputs
            scenario_probs = first.scenario_probs
        else:
            members = np.concatenate([r.members for r in bucket])
            buffer_s = np.concatenate([r.buffer_s for r in bucket])
            last_levels = np.concatenate([r.last_levels for r in bucket])
            scenario_tputs = np.vstack([r.scenario_tputs for r in bucket])
            scenario_probs = np.vstack([r.scenario_probs for r in bucket])
        horizon = first.key[0]
        candidates = enumerate_level_sequences(
            first.bitrates.size, horizon, max_step=first.max_level_step,
            start_level=first.start_level,
        )
        if first.start_level is not None or first.max_level_step is None:
            candidate_mask = None
        else:
            candidate_mask = (last_levels[:, None] < 0) | (
                np.abs(candidates[None, :, 0] - last_levels[:, None])
                <= first.max_level_step
            )
        # use_weights is part of the request key, so a bucket is uniformly
        # weighted or uniformly unweighted.
        use_weights = bucket[0].use_weights
        need_rebuffer = any(r.need_rebuffer for r in bucket)
        if shard is not None:
            sizes = shard.sizes_all[members, chunk:chunk + horizon]
            quality = shard.quality_all[members, chunk:chunk + horizon]
            if use_weights:
                weights = shard.weights_all[members, chunk:chunk + horizon]
            else:
                weights = _uniform_weights(members.size, horizon)
            durations = (
                shard.chunk_duration_shared
                if shard.chunk_duration_shared is not None
                else shard.chunk_duration[members]
            )
            capacity = shard.buffer_capacity
        else:
            if len(bucket) == 1:
                sizes = first.sizes
                quality = first.quality
                direct_weights = first.weights
                durations = first.chunk_duration
                capacity = first.buffer_capacity
            else:
                sizes = np.concatenate([r.sizes for r in bucket])
                quality = np.concatenate([r.quality for r in bucket])
                direct_weights = (
                    np.concatenate([r.weights for r in bucket])
                    if use_weights else None
                )
                durations = np.concatenate(
                    [r.chunk_duration for r in bucket]
                )
                capacity = np.concatenate(
                    [r.buffer_capacity for r in bucket]
                )
            weights = (
                direct_weights if use_weights
                else _uniform_weights(members.size, horizon)
            )

        count = members.size
        block = kernel_block_sessions(
            first.bitrates.size, horizon, first.max_level_step,
            scenario_tputs.shape[1],
            floor=split_above if split_above is not None else count,
        )
        slice_size = count if split_above is None else min(count, block)
        slices = -(-count // slice_size)
        slice_size = -(-count // slices)
        levels = np.empty(count, dtype=int)
        stalls = np.empty(count)
        scores = np.empty(count)
        rebuffer = np.empty(count)
        for start in range(0, count, slice_size):
            stop = min(count, start + slice_size)
            batch = evaluate_candidates_batch(
                candidates=candidates,
                sizes=sizes[start:stop],
                quality=quality[start:stop],
                weights=weights[start:stop],
                buffer_s=buffer_s[start:stop],
                last_level=last_levels[start:stop],
                scenario_tputs=scenario_tputs[start:stop],
                scenario_probs=scenario_probs[start:stop],
                bitrates_kbps=first.bitrates,
                quality_model=first.quality_model,
                stall_options_s=first.stall_options,
                chunk_duration_s=(
                    durations if isinstance(durations, float)
                    else durations[start:stop]
                ),
                buffer_capacity_s=(
                    capacity if isinstance(capacity, float)
                    else capacity[start:stop]
                ),
                candidate_mask=(
                    None if candidate_mask is None
                    else candidate_mask[start:stop]
                ),
                need_expected_rebuffer=need_rebuffer,
                weights_uniform=not use_weights,
            )
            levels[start:stop] = batch.best_level
            stalls[start:stop] = batch.best_stall_s
            scores[start:stop] = batch.best_score
            rebuffer[start:stop] = batch.expected_rebuffer_s
        offset = 0
        for r in bucket:
            stop = offset + r.members.size
            r.scatter(
                levels[offset:stop], stalls[offset:stop],
                scores[offset:stop], rebuffer[offset:stop],
            )
            offset = stop


class PlanJob:
    """One standalone planner evaluation for :func:`plan_batch`.

    The grid-free counterpart of a shard driver's per-session planner
    round: everything the kernel needs is taken from a single
    :class:`~repro.abr.base.PlayerObservation` plus the scalar scenario
    list the ABR's own predictor produced — exactly the inputs the serial
    ``decide()`` hands :func:`~repro.abr.planner.evaluate_candidates`.
    Jobs submitted together are merged by candidate-tree signature and
    evaluated through the same coordinator as the lockstep grid path, so
    each job's outputs are bitwise those of the serial evaluation.
    """

    __slots__ = (
        "observation", "horizon", "scenario_tputs", "scenario_probs",
        "quality_model", "stall_options", "max_level_step", "use_weights",
        "need_rebuffer", "bitrates", "ladder_key", "coeff_key",
    )

    def __init__(
        self,
        *,
        observation,
        horizon: int,
        scenarios: Sequence[Tuple[float, float]],
        quality_model,
        stall_options: Sequence[float] = (0.0,),
        max_level_step: Optional[int] = None,
        use_weights: bool = False,
        need_rebuffer: bool = False,
    ) -> None:
        if not (1 <= horizon <= observation.horizon):
            raise ValueError(
                f"plan horizon {horizon} outside the observation's "
                f"1..{observation.horizon}"
            )
        if not scenarios:
            raise ValueError("need at least one throughput scenario")
        self.observation = observation
        self.horizon = int(horizon)
        self.scenario_tputs = np.array(
            [t for t, _ in scenarios], dtype=float
        )
        self.scenario_probs = np.array(
            [p for _, p in scenarios], dtype=float
        )
        self.quality_model = quality_model
        self.stall_options = tuple(float(s) for s in stall_options)
        self.max_level_step = max_level_step
        self.use_weights = bool(use_weights)
        self.need_rebuffer = bool(need_rebuffer)
        self.bitrates = np.asarray(
            observation.ladder.bitrates_kbps, dtype=float
        )
        self.ladder_key = tuple(self.bitrates.tolist())
        coeffs = quality_model.coefficients
        self.coeff_key = (
            coeffs.intercept, coeffs.quality_weight,
            coeffs.rebuffer_weight, coeffs.switch_weight,
        )


class PlanResult:
    """Per-job outcome of :func:`plan_batch` (the scalar fields a
    ``decide()`` consumes, mirroring
    :class:`~repro.abr.planner.PlanEvaluation`)."""

    __slots__ = ("level", "proactive_stall_s", "score", "expected_rebuffer_s")

    def __init__(self, level, proactive_stall_s, score, expected_rebuffer_s):
        self.level = level
        self.proactive_stall_s = proactive_stall_s
        self.score = score
        self.expected_rebuffer_s = expected_rebuffer_s


def plan_batch(jobs: Sequence[PlanJob]) -> List[PlanResult]:
    """Evaluate standalone planner jobs through the batched kernel.

    The reusable, grid-free entry point onto the lockstep batch-planning
    path: jobs are grouped by candidate-tree signature — (horizon, ladder,
    previously-played level under the ``max_step`` restriction, stall
    options, scenario count, quality coefficients, weights mode) — with
    the same :attr:`_PlannerDriverBase.MERGE_BELOW` union-tree merging and
    :attr:`_PlannerDriverBase.SPLIT_ABOVE` cache-friendliness slicing the
    shard coordinator applies, then executed by
    :func:`_execute_plan_requests` with direct per-job arrays instead of
    shard SoA slices.  Because the kernel is elementwise over the session
    axis, each job's result is bitwise equal to evaluating it alone — and
    therefore to the serial ``decide()`` path, which routes through the
    same kernel with a one-session stack.  This is what lets an online
    decision service micro-batch requests from unrelated sessions without
    perturbing any session's decisions.
    """
    if not jobs:
        return []
    count = len(jobs)
    levels = np.zeros(count, dtype=int)
    stalls = np.zeros(count)
    scores = np.zeros(count)
    rebuffer = np.zeros(count)
    subtree: Dict[tuple, List[int]] = {}
    for position, job in enumerate(jobs):
        start = int(job.observation.last_level)
        if job.max_level_step is None or start < 0:
            start = -1  # one shared tree regardless of history
        key = (
            job.horizon, job.ladder_key, start, job.max_level_step,
            job.stall_options, job.scenario_tputs.size, job.coeff_key,
            job.use_weights,
        )
        subtree.setdefault(key, []).append(position)
    groups: Dict[tuple, Tuple[Optional[int], List[int]]] = {}
    for key, positions in subtree.items():
        if len(positions) >= _PlannerDriverBase.MERGE_BELOW:
            start = key[2]
            groups[key] = (start if start >= 0 else None, positions)
        else:
            merged_key = key[:2] + ("merged",) + key[3:]
            entry = groups.setdefault(merged_key, (None, []))
            entry[1].extend(positions)
    requests: List[_PlanRequest] = []
    for key, (start_level, positions) in groups.items():
        group = [jobs[position] for position in positions]
        first = group[0]
        horizon = first.horizon
        indices = np.asarray(positions, dtype=int)
        requests.append(
            _PlanRequest(
                key=key,
                start_level=start_level,
                max_level_step=first.max_level_step,
                bitrates=first.bitrates,
                stall_options=first.stall_options,
                quality_model=first.quality_model,
                members=indices,
                positions=indices,
                buffer_s=np.array(
                    [job.observation.buffer_s for job in group]
                ),
                last_levels=np.array(
                    [int(job.observation.last_level) for job in group]
                ),
                scenario_tputs=np.stack(
                    [job.scenario_tputs for job in group]
                ),
                scenario_probs=np.stack(
                    [job.scenario_probs for job in group]
                ),
                use_weights=first.use_weights,
                need_rebuffer=any(job.need_rebuffer for job in group),
                levels_out=levels,
                scores_out=scores,
                rebuffer_out=rebuffer,
                stalls_out=stalls,
                sizes=np.stack(
                    [
                        job.observation.upcoming_sizes_bytes[:horizon]
                        for job in group
                    ]
                ),
                quality=np.stack(
                    [
                        job.observation.upcoming_quality[:horizon]
                        for job in group
                    ]
                ),
                weights=(
                    np.stack(
                        [
                            np.asarray(
                                job.observation.upcoming_weights,
                                dtype=float,
                            )[:horizon]
                            for job in group
                        ]
                    )
                    if first.use_weights else None
                ),
                chunk_duration=np.array(
                    [job.observation.chunk_duration_s for job in group]
                ),
                buffer_capacity=np.array(
                    [job.observation.buffer_capacity_s for job in group]
                ),
            )
        )
    with trace_span("engine.lockstep.plan"):
        _execute_plan_requests(requests)
    return [
        PlanResult(
            level=int(levels[index]),
            proactive_stall_s=float(stalls[index]),
            score=float(scores[index]),
            expected_rebuffer_s=float(rebuffer[index]),
        )
        for index in range(count)
    ]


class _PlannerDriverBase:
    """Shared machinery of the batched planner drivers.

    Planner inputs come straight off the shard's SoA arrays (no
    per-session gather) and live sessions are grouped by candidate-tree
    signature (sessions at a different previously-played level or a
    shorter end-of-video horizon plan over different trees).  Instead of
    evaluating each group itself, ``begin_round`` emits the groups as
    :class:`_PlanRequest`\\ s; the shard coordinator merges compatible
    requests across every planner family of the shard and runs one 4-D
    kernel call per merged group.
    """

    def __init__(self, abr, shard: ShardState) -> None:
        self.abr = abr
        self.shard = shard
        self.quality_model = abr.quality_model
        coeffs = abr.quality_model.coefficients
        self.coeff_key = (
            coeffs.intercept, coeffs.quality_weight,
            coeffs.rebuffer_weight, coeffs.switch_weight,
        )
        self.max_level_step = abr.max_level_step
        self.plan_horizon = abr.horizon
        self.chunk_durations = (
            shard.chunk_duration_shared
            if shard.chunk_duration_shared is not None
            else shard.chunk_duration
        )
        self.buffer_capacity = shard.buffer_capacity
        self.obs_horizon = shard.config.observation_horizon
        self.bitrates = [
            np.asarray(encoded.ladder.bitrates_kbps, dtype=float)
            for encoded in shard.encoded
        ]
        self.ladder_keys = [
            tuple(bitrates.tolist()) for bitrates in self.bitrates
        ]
        # Shard-wide (session, chunk, level) matrices: one gather per
        # kernel call instead of a Python stacking loop.  Zero-padded
        # rows/levels past a shorter video's end (or a narrower ladder)
        # are never read — horizons shrink with the chunks remaining,
        # grouping is by (horizon, ladder), and candidate levels stay
        # within the group's ladder.  Shared across the shard's drivers.
        self.sizes_all = shard.sizes_all
        self.quality_all = shard.quality_all
        self.weights_all = shard.weights_all

    def _histories(self, rows: np.ndarray) -> np.ndarray:
        """(len(rows), samples) throughput histories — rectangular because
        every live session has completed the same number of chunks."""
        return self.shard.throughput_history.matrix(rows)

    def _emit_requests(
        self,
        rows: np.ndarray,
        horizons: List[int],
        last_levels: np.ndarray,
        buffer_s: np.ndarray,
        scenario_tputs: np.ndarray,
        scenario_probs: np.ndarray,
        use_weights: bool,
        need_rebuffer: bool,
        levels_out: np.ndarray,
        scores_out: Optional[np.ndarray] = None,
        rebuffer_out: Optional[np.ndarray] = None,
    ) -> List[_PlanRequest]:
        """One :class:`_PlanRequest` per candidate-tree group of ``rows``."""
        num_scenarios = scenario_tputs.shape[1]
        requests = []
        for key, (start_level, positions) in self._plan_groups(
            rows, horizons, last_levels, split=False
        ).items():
            members = rows[positions]
            requests.append(
                _PlanRequest(
                    # use_weights is part of the key: merging weighted and
                    # unweighted rounds would push the unweighted sessions
                    # through the kernel's (costlier) weighted path —
                    # bit-identical, but slower than two separate calls.
                    key=(
                        key[0], key[1], start_level, self.max_level_step,
                        self.stall_options, num_scenarios, self.coeff_key,
                        use_weights,
                    ),
                    start_level=start_level,
                    max_level_step=self.max_level_step,
                    bitrates=self.bitrates[members[0]],
                    stall_options=self.stall_options,
                    quality_model=self.quality_model,
                    members=members,
                    positions=positions,
                    buffer_s=buffer_s[positions],
                    last_levels=last_levels[positions],
                    scenario_tputs=scenario_tputs[positions],
                    scenario_probs=scenario_probs[positions],
                    use_weights=use_weights,
                    need_rebuffer=need_rebuffer,
                    levels_out=levels_out,
                    scores_out=scores_out,
                    rebuffer_out=rebuffer_out,
                )
            )
        return requests

    #: The stall options of the mergeable (phase-one / no-stall) round.
    stall_options = (0.0,)

    def _gather(self, rows: np.ndarray):
        """Per-session planner inputs for one chunk step — array slices of
        the shard state rather than a per-session Python gather."""
        shard = self.shard
        buffer_s = shard.buffer_s[rows]
        last_levels = shard.last_levels(rows)
        horizons = np.minimum(
            min(self.plan_horizon, self.obs_horizon),
            shard.num_chunks[rows] - shard.step_index,
        ).tolist()
        return buffer_s, last_levels, horizons

    #: Subtree groups smaller than this are merged into one masked-union
    #: call: below it the per-call overhead outweighs the extra (masked-out)
    #: candidates the union tree evaluates.  The arena kernel's per-call
    #: dispatch cost dominates any group below a full cache block (a
    #: masked union call over 295 candidates costs barely more than an
    #: exact 185-candidate subtree call), so the merge threshold sits at
    #: one arena block for the widest common shape (5 levels x horizon 4
    #: x 5 scenarios -> ~23 sessions, :func:`kernel_block_sessions`):
    #: anything smaller is cheaper evaluated inside the union, and
    #: oversized unions get re-sliced to the block anyway.  Selection is
    #: unchanged either way — the mask filters the union tree down to
    #: each session's exact subtree, ties included.
    MERGE_BELOW = 24

    #: Kernel calls are capped at this many sessions; larger groups are
    #: sliced (by the coordinator, after cross-family merging).  The
    #: kernel's working set per session is a few dozen KB, and once a call
    #: outgrows the per-core cache its per-session cost jumps several-fold
    #: — two half-size calls are then cheaper than one.  (The PR 5 kernel
    #: carries less per-call dispatch overhead than PR 4's, so the sweet
    #: spot moved up from 8.)
    SPLIT_ABOVE = 12

    def _plan_groups(
        self,
        live: Sequence[int],
        horizons: List[int],
        last_levels: np.ndarray,
        extra_keys: Optional[List[tuple]] = None,
        split: bool = True,
        num_scenarios: int = 1,
    ) -> Dict[tuple, Tuple[Optional[int], List[int]]]:
        """Kernel-call groups: ``key -> (start_level, positions into live)``.

        Primary grouping is by candidate-tree signature — (horizon, ladder,
        previously-played level under the ``max_step`` restriction) — which
        evaluates each group's exact (smallest) subtree.  Groups too small
        to amortise a kernel call are merged per (horizon, ladder) into one
        evaluation of the *unrestricted-start* tree with ``start_level ==
        None``; the kernel then masks each merged session down to its own
        subtree, which is an order-preserving first-level filter of the
        union tree, so selection — ties included — matches the per-session
        tree exactly.
        """
        subtree: Dict[tuple, List[int]] = {}
        for position, index in enumerate(live):
            start = int(last_levels[position])
            if self.max_level_step is None or start < 0:
                start = -1  # one shared tree regardless of history
            key = (horizons[position], self.ladder_keys[index], start)
            if extra_keys is not None:
                key = key + (extra_keys[position],)
            subtree.setdefault(key, []).append(position)
        groups: Dict[tuple, Tuple[Optional[int], List[int]]] = {}
        for key, positions in subtree.items():
            if len(positions) >= self.MERGE_BELOW:
                start = key[2]
                groups[key] = (start if start >= 0 else None, positions)
            else:
                merged_key = key[:2] + ("merged",) + key[3:]
                entry = groups.setdefault(merged_key, (None, []))
                entry[1].extend(positions)
        if self.SPLIT_ABOVE is None or not split:
            # Request emission leaves splitting to the coordinator, which
            # slices *after* cross-family merging.
            return groups
        sliced: Dict[tuple, Tuple[Optional[int], List[int]]] = {}
        for key, (start, positions) in groups.items():
            member = live[positions[0]]
            block = kernel_block_sessions(
                self.bitrates[member].size, key[0], self.max_level_step,
                num_scenarios, floor=self.SPLIT_ABOVE,
            )
            if len(positions) <= block:
                sliced[key] = (start, positions)
                continue
            slices = -(-len(positions) // block)
            size = -(-len(positions) // slices)
            for slice_index in range(slices):
                chunk = positions[slice_index * size:(slice_index + 1) * size]
                if chunk:
                    sliced[key + (slice_index,)] = (start, chunk)
        return sliced

    def _evaluate_group(
        self,
        live: np.ndarray,
        positions: List[int],
        horizon: int,
        start_level: Optional[int],
        buffer_s: np.ndarray,
        last_levels: np.ndarray,
        scenario_tputs: np.ndarray,
        scenario_probs: np.ndarray,
        stall_options_s: Sequence[float],
        use_weights: bool = False,
        need_expected_rebuffer: bool = True,
    ):
        """One batched kernel call for a group sharing a candidate tree."""
        members = live[positions]
        chunk = self.shard.step_index
        bitrates = self.bitrates[members[0]]
        candidates = enumerate_level_sequences(
            bitrates.size, horizon, max_step=self.max_level_step,
            start_level=start_level,
        )
        group_last = last_levels[positions]
        if start_level is not None or self.max_level_step is None:
            candidate_mask = None  # the tree is already each session's own
        else:
            candidate_mask = (group_last[:, None] < 0) | (
                np.abs(candidates[None, :, 0] - group_last[:, None])
                <= self.max_level_step
            )
        sizes = self.sizes_all[members, chunk:chunk + horizon]
        quality = self.quality_all[members, chunk:chunk + horizon]
        if use_weights:
            weights = self.weights_all[members, chunk:chunk + horizon]
        else:
            weights = _uniform_weights(members.size, horizon)
        return evaluate_candidates_batch(
            candidates=candidates,
            sizes=sizes,
            quality=quality,
            weights=weights,
            buffer_s=buffer_s[positions],
            last_level=group_last,
            scenario_tputs=scenario_tputs[positions],
            scenario_probs=scenario_probs[positions],
            bitrates_kbps=bitrates,
            quality_model=self.quality_model,
            stall_options_s=stall_options_s,
            chunk_duration_s=(
                self.chunk_durations
                if isinstance(self.chunk_durations, float)
                else self.chunk_durations[members]
            ),
            buffer_capacity_s=self.buffer_capacity,
            candidate_mask=candidate_mask,
            need_expected_rebuffer=need_expected_rebuffer,
            weights_uniform=not use_weights,
        )


class _MPCDriver(_PlannerDriverBase):
    """Batched :class:`ModelPredictiveABR`: conservative point prediction,
    one scenario, no stalls."""

    def __init__(self, abr: ModelPredictiveABR, shard: ShardState) -> None:
        super().__init__(abr, shard)
        self.predictor = _HarmonicMeanState(abr.predictor)

    def begin_round(self, rows: np.ndarray):
        predicted = self.predictor.predict(self._histories(rows))
        conservative = predicted / (1.0 + self.abr.robustness_discount)
        scenario_tputs = conservative[:, None]
        scenario_probs = np.ones((rows.size, 1))
        buffer_s, last_levels, horizons = self._gather(rows)
        levels = np.zeros(rows.size, dtype=int)
        requests = self._emit_requests(
            rows, horizons, last_levels, buffer_s, scenario_tputs,
            scenario_probs, use_weights=False, need_rebuffer=False,
            levels_out=levels,
        )

        def finish() -> Tuple[np.ndarray, np.ndarray]:
            return levels, np.zeros(rows.size)

        return requests, finish


class _FuguDriver(_PlannerDriverBase):
    """Batched :class:`FuguABR`: expectation over the learned
    throughput-error distribution, no stalls."""

    def __init__(self, abr: FuguABR, shard: ShardState) -> None:
        super().__init__(abr, shard)
        self.predictor = _ErrorDistributionState(
            abr.predictor, shard.num_sessions
        )

    def begin_round(self, rows: np.ndarray):
        scenario_tputs, scenario_probs = self.predictor.predict_distribution(
            rows, self._histories(rows)
        )
        buffer_s, last_levels, horizons = self._gather(rows)
        levels = np.zeros(rows.size, dtype=int)
        requests = self._emit_requests(
            rows, horizons, last_levels, buffer_s, scenario_tputs,
            scenario_probs, use_weights=False, need_rebuffer=False,
            levels_out=levels,
        )

        def finish() -> Tuple[np.ndarray, np.ndarray]:
            return levels, np.zeros(rows.size)

        return requests, finish


class _SenseiFuguDriver(_PlannerDriverBase):
    """Batched :class:`SenseiFuguABR`: weighted objective, two-phase
    proactive-stall consideration, per-session stall budgets.

    Replicates :meth:`SenseiFuguABR.decide` step for step: a no-stall
    evaluation for every session, then — only for sessions whose stall
    gate opens (predicted rebuffering, buffer floor, sensitivity shift,
    remaining budget) — a second evaluation over the budget-allowed stall
    options, adopted when it strictly beats the no-stall plan.
    """

    def __init__(self, abr: SenseiFuguABR, shard: ShardState) -> None:
        super().__init__(abr, shard)
        self.predictor = _ErrorDistributionState(
            abr.predictor, shard.num_sessions
        )
        self.proactive_spent_s = np.zeros(shard.num_sessions)

    def begin_round(self, rows: np.ndarray):
        abr = self.abr
        chunk = self.shard.step_index
        scenario_tputs, scenario_probs = self.predictor.predict_distribution(
            rows, self._histories(rows)
        )
        buffer_s, last_levels, horizons = self._gather(rows)

        count = rows.size
        # Pre-gates of the stall consideration that do not depend on the
        # plan evaluation: buffer floor, per-session budget, weight shift.
        # When no live session passes them, phase one can skip its
        # rebuffer-expectation work — the gate is closed regardless (the
        # common steady state once a session's stall budget is spent).
        spent = self.proactive_spent_s[rows]
        if len(abr.stall_options_s) > 1:
            pre_gate = (buffer_s >= abr.min_stall_buffer_s) & (
                spent < abr.max_total_proactive_stall_s
            )
            # Weight-shift gate, vectorised per distinct horizon: a stall
            # only helps when some upcoming chunk is meaningfully more
            # sensitive than the next one (same comparison as the scalar
            # decide(), batched over equal-width weight windows).
            candidates_mask = pre_gate.copy()
            pre_gate[:] = False
            horizon_arr = np.asarray(horizons)
            for span in np.unique(horizon_arr[candidates_mask]):
                if span <= 1:
                    continue
                group = np.flatnonzero(candidates_mask & (horizon_arr == span))
                ahead = self.weights_all[
                    rows[group][:, None],
                    chunk + 1 + np.arange(span - 1)[None, :],
                ]
                first = self.weights_all[rows[group], chunk]
                pre_gate[group] = ahead.max(axis=1) > first * 1.05
        else:
            pre_gate = np.zeros(count, dtype=bool)
        need_rebuffer = bool(np.any(pre_gate))

        levels = np.zeros(count, dtype=int)
        scores = np.zeros(count)
        rebuffer = np.zeros(count)
        requests = self._emit_requests(
            rows, horizons, last_levels, buffer_s, scenario_tputs,
            scenario_probs, use_weights=True, need_rebuffer=need_rebuffer,
            levels_out=levels, scores_out=scores, rebuffer_out=rebuffer,
        )

        def finish() -> Tuple[np.ndarray, np.ndarray]:
            return self._consider_stalls(
                rows, horizons, last_levels, buffer_s, scenario_tputs,
                scenario_probs, spent, pre_gate, levels, scores, rebuffer,
            )

        return requests, finish

    def _consider_stalls(
        self, rows, horizons, last_levels, buffer_s, scenario_tputs,
        scenario_probs, spent, pre_gate, levels, scores, rebuffer,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Phase two, after the no-stall round: re-plan the gated sessions
        over their budget-allowed stall options (exactly as the scalar
        decide() does), adopt strictly-better plans, track budgets."""
        abr = self.abr
        count = rows.size
        stalls = np.zeros(count)
        # The full stall gate, exactly as the scalar decide() applies it.
        plausible = pre_gate & (rebuffer >= abr.stall_risk_threshold_s)

        if np.any(plausible):
            allowed_keys: List[tuple] = [()] * count
            for position in np.flatnonzero(plausible):
                remaining = abr.max_total_proactive_stall_s - spent[position]
                allowed_keys[position] = tuple(
                    option
                    for option in abr.stall_options_s
                    if option <= remaining + 1e-9
                )
            plausible_positions = [
                int(position) for position in np.flatnonzero(plausible)
            ]
            sub_rows = rows[plausible_positions]
            groups = self._plan_groups(
                sub_rows,
                [horizons[position] for position in plausible_positions],
                last_levels[plausible_positions],
                extra_keys=[
                    allowed_keys[position] for position in plausible_positions
                ],
                num_scenarios=scenario_tputs.shape[1],
            )
            for key, (start_level, sub_positions) in groups.items():
                positions = [
                    plausible_positions[sub_position]
                    for sub_position in sub_positions
                ]
                batch = self._evaluate_group(
                    rows, positions, key[0], start_level, buffer_s,
                    last_levels, scenario_tputs, scenario_probs,
                    stall_options_s=key[3], use_weights=True,
                    need_expected_rebuffer=False,
                )
                better = batch.best_score > scores[positions]
                levels[positions] = np.where(
                    better, batch.best_level, levels[positions]
                )
                stalls[positions] = np.where(
                    better, batch.best_stall_s, stalls[positions]
                )
                scores[positions] = np.where(
                    better, batch.best_score, scores[positions]
                )

        stalling = stalls > 0
        if np.any(stalling):
            self.proactive_spent_s[rows[stalling]] += stalls[stalling]
        return levels, stalls
