"""Lockstep multi-session simulation: batch the planner across sessions.

The serial backend walks one :class:`~repro.player.session.StreamingSession`
at a time, so a grid sweep pays the per-chunk Python and small-numpy-op
overhead once per *session*.  The lockstep core runs a whole shard of
:class:`~repro.engine.runner.WorkOrder`s together, chunk-step by chunk-step:

* every session's state lives in a
  :class:`~repro.player.session.SessionState` and is advanced by the exact
  code the serial path uses (structure-of-arrays at the decision layer,
  shared scalar stepping at the player layer), so state evolution is
  bit-identical by construction;
* for the planner ABR families (MPC, Fugu, SENSEI-Fugu) the per-decision
  hot path — throughput prediction and candidate scoring — is evaluated
  *across sessions*: predictor state is kept as arrays over the shard and
  :func:`~repro.abr.planner.evaluate_candidates_batch` scores one stacked
  ``(session x stall x scenario x candidate)`` tensor per candidate-tree
  group instead of one small tensor per session;
* every other ABR (BBA, rate-based, greedy RL policies, …) runs through a
  generic per-session driver: one reset clone of the ABR per session,
  decisions taken one session at a time against the same observations the
  serial path builds — trivially identical, still amortising the shared
  chunk-step loop.

Bit-identity rests on two facts, both enforced by tests
(``tests/test_lockstep.py``): the serial planners route through the same
batch kernel with a one-session stack, and the kernel (plus the vectorised
predictor state here) uses only elementwise operations and fixed-order
reductions, which IEEE-754 evaluates identically regardless of how many
sessions share the array.

Sessions end at different chunk counts (ragged shards): finished sessions
simply leave the live set while the rest keep stepping.

The one ABR family lockstep refuses is exploration-mode RL policies
(``greedy=False``): their action sampling consumes a *shared* RNG stream
session after session under the serial backend, which no parallel
decomposition can reproduce.  Those orders run serially, exactly as before
(the training subsystem already handles them with per-episode reseeding —
see :meth:`repro.ml.rl.ActorCriticAgent.reseed_exploration`).
"""

from __future__ import annotations

import copy
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.abr.base import ABRAlgorithm, Decision
from repro.abr.bba import BufferBasedABR
from repro.abr.fugu import FuguABR
from repro.abr.mpc import ModelPredictiveABR
from repro.abr.planner import (
    enumerate_level_sequences,
    evaluate_candidates_batch,
)
from repro.abr.throughput import (
    ErrorDistributionPredictor,
    HarmonicMeanPredictor,
)
from repro.core.sensei_abr import SenseiFuguABR
from repro.player.session import SessionState, StreamingSession, StreamResult


#: Shared frozen no-stall decisions — one per level, reused across every
#: session-step of a sweep (Decision is immutable, so sharing is safe).
_ZERO_STALL_DECISIONS: Dict[int, Decision] = {}


def _cached_decision(level: int) -> Decision:
    decision = _ZERO_STALL_DECISIONS.get(level)
    if decision is None:
        decision = Decision(level=level)
        _ZERO_STALL_DECISIONS[level] = decision
    return decision


def supports_lockstep(abr: ABRAlgorithm) -> bool:
    """Whether lockstep execution reproduces serial results for this ABR.

    False only for exploration-mode (``greedy=False``) RL policies, whose
    serial results depend on one RNG stream shared across sessions.
    """
    return bool(getattr(abr, "greedy", True))


def run_orders_lockstep(orders: Sequence["WorkOrder"]) -> List[StreamResult]:
    """Run work orders through the lockstep core; results align with input.

    Orders are grouped by (ABR instance, player config): each group is one
    lockstep shard.  Sessions are independent (every serial session starts
    with ``abr.reset()``), so executing groups out of submission order
    cannot change any result; the returned list is reassembled in
    submission order regardless.
    """
    orders = list(orders)
    results: List[Optional[StreamResult]] = [None] * len(orders)
    groups: Dict[tuple, List[int]] = {}
    for index, order in enumerate(orders):
        groups.setdefault((id(order.abr), order.config), []).append(index)
    for indices in groups.values():
        abr = orders[indices[0]].abr
        if not supports_lockstep(abr):
            for index in indices:
                results[index] = orders[index].run()
            continue
        group_results = _run_group(abr, [orders[index] for index in indices])
        for index, result in zip(indices, group_results):
            results[index] = result
    return results


def _run_group(abr: ABRAlgorithm, orders: Sequence["WorkOrder"]) -> List[StreamResult]:
    """Run one shard of orders (shared ABR and config) in lockstep."""
    sessions = [
        StreamingSession(
            encoded=order.encoded,
            trace=order.trace,
            abr=abr,
            config=order.config,
            chunk_weights=order.chunk_weights,
        )
        for order in orders
    ]
    states = [session.make_state() for session in sessions]
    driver = _driver_for(abr, states)
    live = list(range(len(states)))
    while live:
        decisions = driver.decide(live)
        for state_index, decision in zip(live, decisions):
            states[state_index].apply(decision)
        live = [index for index in live if not states[index].done]
    return [
        state.finalize(abr_name=abr.name, trace_name=order.trace.name)
        for state, order in zip(states, orders)
    ]


def _driver_for(abr: ABRAlgorithm, states: List[SessionState]):
    """The most batched driver that still reproduces ``abr.decide`` exactly.

    Exact-type checks: a subclass may override ``decide``, so anything not
    literally one of the three planner classes (with its stock predictor and
    the fast planner enabled) takes the generic per-session path.
    """
    if type(abr) is BufferBasedABR:
        return _BBADriver(abr, states)
    if getattr(abr, "use_fast_planner", False):
        if (
            type(abr) is ModelPredictiveABR
            and type(abr.predictor) is HarmonicMeanPredictor
        ):
            return _MPCDriver(abr, states)
        if (
            type(abr) is FuguABR
            and type(abr.predictor) is ErrorDistributionPredictor
        ):
            return _FuguDriver(abr, states)
        if (
            type(abr) is SenseiFuguABR
            and type(abr.predictor) is ErrorDistributionPredictor
        ):
            return _SenseiFuguDriver(abr, states)
    return _PerSessionDriver(abr, states)


# ---------------------------------------------------------------- drivers


class _PerSessionDriver:
    """Generic fallback: one reset clone of the ABR per session.

    Serial execution reuses one ABR instance with ``reset()`` between
    sessions — the contract that makes sessions independent.  A deep copy of
    the (reset) instance therefore decides identically, and per-session
    clones let independent sessions interleave.
    """

    def __init__(self, abr: ABRAlgorithm, states: List[SessionState]) -> None:
        self.states = states
        self.clones = [copy.deepcopy(abr) for _ in states]
        for clone in self.clones:
            clone.reset()

    def decide(self, live: List[int]) -> List[Decision]:
        return [
            self.clones[index].decide(self.states[index].observe())
            for index in live
        ]


class _BBADriver:
    """Buffer-based adaptation without the observation detour.

    BBA's chunk map reads exactly one dynamic input — the buffer level — so
    the lockstep driver applies :meth:`BufferBasedABR.decide`'s arithmetic
    directly to each session's state, skipping the per-chunk observation
    build entirely.  The operations (and therefore the chosen levels) are
    identical to the serial path.
    """

    def __init__(self, abr: BufferBasedABR, states: List[SessionState]) -> None:
        self.abr = abr
        self.states = states

    def decide(self, live: List[int]) -> List[Decision]:
        reservoir = self.abr.reservoir_s
        cushion = self.abr.cushion_s
        decisions = []
        for index in live:
            state = self.states[index]
            ladder = state.encoded.ladder
            buffer_s = state.buffer.level_s
            if buffer_s <= reservoir:
                decisions.append(_cached_decision(ladder.lowest_level))
            elif buffer_s >= reservoir + cushion:
                decisions.append(_cached_decision(ladder.highest_level))
            else:
                fraction = (buffer_s - reservoir) / cushion
                level = int(np.floor(fraction * (ladder.num_levels - 1) + 1e-9))
                decisions.append(
                    _cached_decision(ABRAlgorithm.clamp_level(level, ladder))
                )
        return decisions


class _HarmonicMeanState:
    """Vectorised :class:`HarmonicMeanPredictor` over a shard of sessions.

    Stateless like its scalar counterpart; ``predict`` maps a rectangular
    (session, history) matrix to per-session predictions with the same
    arithmetic the scalar predictor applies to each row alone (the axis
    reduction of a <= ``history_length``-wide row is the same fixed-order
    sum ``harmonic_mean`` computes).
    """

    def __init__(self, predictor: HarmonicMeanPredictor) -> None:
        self.window = predictor.window
        self.default_mbps = predictor.default_mbps

    def predict(self, histories: np.ndarray) -> np.ndarray:
        if histories.shape[1] == 0:
            return np.full(histories.shape[0], self.default_mbps)
        recent = histories[:, -self.window:]
        return recent.shape[1] / np.sum(1.0 / recent, axis=1)


class _ErrorDistributionState:
    """Vectorised :class:`ErrorDistributionPredictor` over a shard.

    The scalar predictor's per-session state — ratio count, last
    prediction, histogram counts — lives here as arrays indexed by session.
    ``predict_distribution`` replicates the scalar update order exactly:
    base prediction from the history, ratio recorded against the *previous*
    prediction, then the binned distribution around the new prediction.
    """

    def __init__(
        self, predictor: ErrorDistributionPredictor, num_sessions: int
    ) -> None:
        self.base = _HarmonicMeanState(predictor._base)
        self.num_bins = predictor.num_bins
        self.ratio_range = predictor.ratio_range
        self.bin_centers = predictor._bin_centers
        self.bin_edges = predictor._bin_edges
        self.cold_start_probs = predictor._cold_start_probs
        self.num_ratios = np.zeros(num_sessions, dtype=int)
        self.last_prediction = np.zeros(num_sessions)
        self.bin_counts = np.zeros((num_sessions, self.num_bins), dtype=int)

    def predict_distribution(
        self, live: np.ndarray, histories: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(throughputs, probabilities), each (len(live), num_bins)."""
        prediction = self.base.predict(histories)
        self._record_ratios(live, histories, prediction)
        self.last_prediction[live] = prediction

        smoothed = self.bin_counts[live] + 0.5
        learned = smoothed / smoothed.sum(axis=1)[:, None]
        cold = self.num_ratios[live] < 3
        probabilities = np.where(
            cold[:, None], self.cold_start_probs[None, :], learned
        )
        throughputs = prediction[:, None] * self.bin_centers[None, :]
        return throughputs, probabilities

    def _record_ratios(
        self, live: np.ndarray, histories: np.ndarray, prediction: np.ndarray
    ) -> None:
        if histories.shape[1] == 0:
            return
        previous = self.last_prediction[live]
        mask = previous > 0
        if not np.any(mask):
            return
        ratios = histories[mask, -1] / previous[mask]
        low, high = self.ratio_range
        clipped = np.minimum(np.maximum(ratios, low), high)
        indices = np.searchsorted(self.bin_edges, clipped, side="right") - 1
        indices = np.minimum(np.maximum(indices, 0), self.num_bins - 1)
        recorded = live[mask]
        self.num_ratios[recorded] += 1
        np.add.at(self.bin_counts, (recorded, indices), 1)


class _PlannerDriverBase:
    """Shared machinery of the batched planner drivers.

    Gathers per-session planner inputs into arrays, groups live sessions by
    candidate-tree signature (sessions at a different previously-played
    level or a shorter end-of-video horizon plan over different trees), and
    evaluates each group with one 4-D kernel call over the group's shared,
    memoised candidate matrix.
    """

    def __init__(self, abr, states: List[SessionState]) -> None:
        self.abr = abr
        self.states = states
        self.quality_model = abr.quality_model
        self.max_level_step = abr.max_level_step
        self.plan_horizon = abr.horizon
        chunk_durations = np.array([state.chunk_duration for state in states])
        # A shared scalar keeps the kernel's broadcasts on the fast path.
        self.chunk_durations = (
            float(chunk_durations[0])
            if bool(np.all(chunk_durations == chunk_durations[0]))
            else chunk_durations
        )
        self.buffer_capacity = states[0].config.buffer_capacity_s
        self.obs_horizon = states[0].config.observation_horizon
        self.bitrates = [
            np.asarray(state.encoded.ladder.bitrates_kbps, dtype=float)
            for state in states
        ]
        self.ladder_keys = [
            tuple(bitrates.tolist()) for bitrates in self.bitrates
        ]
        # Shard-wide (session, chunk, level) size/quality/weight matrices:
        # one gather per kernel call instead of a Python stacking loop.
        # Rows past a shorter video's end stay zero and are never read —
        # horizons shrink with the chunks remaining, and grouping is by
        # horizon.  Skipped when ladders differ in width (stack fallback).
        num_levels = {bitrates.size for bitrates in self.bitrates}
        if len(num_levels) == 1:
            max_chunks = max(state.num_chunks for state in states)
            shape = (len(states), max_chunks, num_levels.pop())
            self.sizes_all = np.zeros(shape)
            self.quality_all = np.zeros(shape)
            self.weights_all = np.zeros(shape[:2])
            for index, state in enumerate(states):
                self.sizes_all[index, : state.num_chunks] = (
                    state.precompute.sizes_bytes
                )
                self.quality_all[index, : state.num_chunks] = (
                    state.precompute.quality
                )
                self.weights_all[index, : state.num_chunks] = (
                    state.chunk_weights
                )
        else:
            self.sizes_all = None
            self.quality_all = None
            self.weights_all = None

    def _histories(self, live: List[int]) -> np.ndarray:
        """(len(live), samples) throughput histories — rectangular because
        every live session has completed the same number of chunks."""
        return np.stack(
            [self.states[index].throughput_history.as_array() for index in live]
        )

    def _gather(self, live: List[int]):
        """Per-session planner inputs for one chunk step."""
        states = self.states
        buffer_s = np.array([states[index].buffer.level_s for index in live])
        last_levels = np.array([states[index].last_level for index in live])
        horizons = [
            min(
                self.plan_horizon,
                self.obs_horizon,
                states[index].num_chunks - states[index].next_chunk,
            )
            for index in live
        ]
        return buffer_s, last_levels, horizons

    #: Subtree groups smaller than this are merged into one masked-union
    #: call: below it the per-call overhead outweighs the extra (masked-out)
    #: candidates the union tree evaluates.
    MERGE_BELOW = 4

    #: Kernel calls are capped at this many sessions; larger groups are
    #: sliced.  The kernel's working set per session is a few dozen KB, and
    #: once a call outgrows the per-core cache its per-session cost jumps
    #: several-fold — two half-size calls are then cheaper than one.
    SPLIT_ABOVE = 8

    def _plan_groups(
        self,
        live: List[int],
        horizons: List[int],
        last_levels: np.ndarray,
        extra_keys: Optional[List[tuple]] = None,
    ) -> Dict[tuple, Tuple[Optional[int], List[int]]]:
        """Kernel-call groups: ``key -> (start_level, positions into live)``.

        Primary grouping is by candidate-tree signature — (horizon, ladder,
        previously-played level under the ``max_step`` restriction) — which
        evaluates each group's exact (smallest) subtree.  Groups too small
        to amortise a kernel call are merged per (horizon, ladder) into one
        evaluation of the *unrestricted-start* tree with ``start_level ==
        None``; the kernel then masks each merged session down to its own
        subtree, which is an order-preserving first-level filter of the
        union tree, so selection — ties included — matches the per-session
        tree exactly.
        """
        subtree: Dict[tuple, List[int]] = {}
        for position, index in enumerate(live):
            start = int(last_levels[position])
            if self.max_level_step is None or start < 0:
                start = -1  # one shared tree regardless of history
            key = (horizons[position], self.ladder_keys[index], start)
            if extra_keys is not None:
                key = key + (extra_keys[position],)
            subtree.setdefault(key, []).append(position)
        groups: Dict[tuple, Tuple[Optional[int], List[int]]] = {}
        for key, positions in subtree.items():
            if len(positions) >= self.MERGE_BELOW:
                start = key[2]
                groups[key] = (start if start >= 0 else None, positions)
            else:
                merged_key = key[:2] + ("merged",) + key[3:]
                entry = groups.setdefault(merged_key, (None, []))
                entry[1].extend(positions)
        if self.SPLIT_ABOVE is None:
            return groups
        split: Dict[tuple, Tuple[Optional[int], List[int]]] = {}
        for key, (start, positions) in groups.items():
            if len(positions) <= self.SPLIT_ABOVE:
                split[key] = (start, positions)
                continue
            slices = -(-len(positions) // self.SPLIT_ABOVE)
            size = -(-len(positions) // slices)
            for slice_index in range(slices):
                chunk = positions[slice_index * size:(slice_index + 1) * size]
                if chunk:
                    split[key + (slice_index,)] = (start, chunk)
        return split

    def _evaluate_group(
        self,
        live: List[int],
        positions: List[int],
        horizon: int,
        start_level: Optional[int],
        buffer_s: np.ndarray,
        last_levels: np.ndarray,
        scenario_tputs: np.ndarray,
        scenario_probs: np.ndarray,
        stall_options_s: Sequence[float],
        weights_rows: Optional[List[np.ndarray]] = None,
        need_expected_rebuffer: bool = True,
    ):
        """One batched kernel call for a group sharing a candidate tree."""
        states = self.states
        members = [live[position] for position in positions]
        chunk = states[members[0]].next_chunk
        bitrates = self.bitrates[members[0]]
        candidates = enumerate_level_sequences(
            bitrates.size, horizon, max_step=self.max_level_step,
            start_level=start_level,
        )
        group_last = last_levels[positions]
        if start_level is not None or self.max_level_step is None:
            candidate_mask = None  # the tree is already each session's own
        else:
            candidate_mask = (group_last[:, None] < 0) | (
                np.abs(candidates[None, :, 0] - group_last[:, None])
                <= self.max_level_step
            )
        if self.sizes_all is not None:
            sizes = self.sizes_all[members, chunk:chunk + horizon]
            quality = self.quality_all[members, chunk:chunk + horizon]
        else:
            sizes = np.stack(
                [
                    states[index].precompute.sizes_bytes[chunk:chunk + horizon]
                    for index in members
                ]
            )
            quality = np.stack(
                [
                    states[index].precompute.quality[chunk:chunk + horizon]
                    for index in members
                ]
            )
        if weights_rows is None:
            weights = np.ones((len(members), horizon))
        elif self.weights_all is not None:
            weights = self.weights_all[members, chunk:chunk + horizon]
        else:
            weights = np.stack(
                [weights_rows[position][:horizon] for position in positions]
            )
        return evaluate_candidates_batch(
            candidates=candidates,
            sizes=sizes,
            quality=quality,
            weights=weights,
            buffer_s=buffer_s[positions],
            last_level=group_last,
            scenario_tputs=scenario_tputs[positions],
            scenario_probs=scenario_probs[positions],
            bitrates_kbps=bitrates,
            quality_model=self.quality_model,
            stall_options_s=stall_options_s,
            chunk_duration_s=(
                self.chunk_durations
                if isinstance(self.chunk_durations, float)
                else self.chunk_durations[members]
            ),
            buffer_capacity_s=self.buffer_capacity,
            candidate_mask=candidate_mask,
            need_expected_rebuffer=need_expected_rebuffer,
            weights_uniform=weights_rows is None,
        )


class _MPCDriver(_PlannerDriverBase):
    """Batched :class:`ModelPredictiveABR`: conservative point prediction,
    one scenario, no stalls."""

    def __init__(self, abr: ModelPredictiveABR, states) -> None:
        super().__init__(abr, states)
        self.predictor = _HarmonicMeanState(abr.predictor)

    def decide(self, live: List[int]) -> List[Decision]:
        predicted = self.predictor.predict(self._histories(live))
        conservative = predicted / (1.0 + self.abr.robustness_discount)
        scenario_tputs = conservative[:, None]
        scenario_probs = np.ones((len(live), 1))
        buffer_s, last_levels, horizons = self._gather(live)
        levels = np.zeros(len(live), dtype=int)
        groups = self._plan_groups(live, horizons, last_levels)
        for key, (start_level, positions) in groups.items():
            batch = self._evaluate_group(
                live, positions, key[0], start_level, buffer_s, last_levels,
                scenario_tputs, scenario_probs, stall_options_s=(0.0,),
                need_expected_rebuffer=False,
            )
            levels[positions] = batch.best_level
        return [_cached_decision(int(level)) for level in levels]


class _FuguDriver(_PlannerDriverBase):
    """Batched :class:`FuguABR`: expectation over the learned
    throughput-error distribution, no stalls."""

    def __init__(self, abr: FuguABR, states) -> None:
        super().__init__(abr, states)
        self.predictor = _ErrorDistributionState(abr.predictor, len(states))

    def decide(self, live: List[int]) -> List[Decision]:
        scenario_tputs, scenario_probs = self.predictor.predict_distribution(
            np.asarray(live), self._histories(live)
        )
        buffer_s, last_levels, horizons = self._gather(live)
        levels = np.zeros(len(live), dtype=int)
        groups = self._plan_groups(live, horizons, last_levels)
        for key, (start_level, positions) in groups.items():
            batch = self._evaluate_group(
                live, positions, key[0], start_level, buffer_s, last_levels,
                scenario_tputs, scenario_probs, stall_options_s=(0.0,),
                need_expected_rebuffer=False,
            )
            levels[positions] = batch.best_level
        return [_cached_decision(int(level)) for level in levels]


class _SenseiFuguDriver(_PlannerDriverBase):
    """Batched :class:`SenseiFuguABR`: weighted objective, two-phase
    proactive-stall consideration, per-session stall budgets.

    Replicates :meth:`SenseiFuguABR.decide` step for step: a no-stall
    evaluation for every session, then — only for sessions whose stall
    gate opens (predicted rebuffering, buffer floor, sensitivity shift,
    remaining budget) — a second evaluation over the budget-allowed stall
    options, adopted when it strictly beats the no-stall plan.
    """

    def __init__(self, abr: SenseiFuguABR, states) -> None:
        super().__init__(abr, states)
        self.predictor = _ErrorDistributionState(abr.predictor, len(states))
        self.proactive_spent_s = np.zeros(len(states))

    def decide(self, live: List[int]) -> List[Decision]:
        abr = self.abr
        states = self.states
        scenario_tputs, scenario_probs = self.predictor.predict_distribution(
            np.asarray(live), self._histories(live)
        )
        buffer_s, last_levels, horizons = self._gather(live)
        weights_rows = [
            states[index].chunk_weights[
                states[index].next_chunk:states[index].next_chunk
                + horizons[position]
            ]
            for position, index in enumerate(live)
        ]

        count = len(live)
        # Pre-gates of the stall consideration that do not depend on the
        # plan evaluation: buffer floor, per-session budget, weight shift.
        # When no live session passes them, phase one can skip its
        # rebuffer-expectation work — the gate is closed regardless (the
        # common steady state once a session's stall budget is spent).
        spent = self.proactive_spent_s[np.asarray(live)]
        if len(abr.stall_options_s) > 1:
            pre_gate = (buffer_s >= abr.min_stall_buffer_s) & (
                spent < abr.max_total_proactive_stall_s
            )
            for position in np.flatnonzero(pre_gate):
                ahead = weights_rows[position]
                pre_gate[position] = bool(
                    ahead.size > 1
                    and float(np.max(ahead[1:])) > float(ahead[0]) * 1.05
                )
        else:
            pre_gate = np.zeros(count, dtype=bool)
        need_rebuffer = bool(np.any(pre_gate))

        levels = np.zeros(count, dtype=int)
        stalls = np.zeros(count)
        scores = np.zeros(count)
        rebuffer = np.zeros(count)
        groups = self._plan_groups(live, horizons, last_levels)
        for key, (start_level, positions) in groups.items():
            batch = self._evaluate_group(
                live, positions, key[0], start_level, buffer_s, last_levels,
                scenario_tputs, scenario_probs, stall_options_s=(0.0,),
                weights_rows=weights_rows,
                need_expected_rebuffer=need_rebuffer,
            )
            levels[positions] = batch.best_level
            scores[positions] = batch.best_score
            rebuffer[positions] = batch.expected_rebuffer_s

        # The full stall gate, exactly as the scalar decide() applies it.
        plausible = pre_gate & (rebuffer >= abr.stall_risk_threshold_s)

        if np.any(plausible):
            allowed_keys: List[tuple] = [()] * count
            for position in np.flatnonzero(plausible):
                remaining = abr.max_total_proactive_stall_s - spent[position]
                allowed_keys[position] = tuple(
                    option
                    for option in abr.stall_options_s
                    if option <= remaining + 1e-9
                )
            plausible_positions = [
                int(position) for position in np.flatnonzero(plausible)
            ]
            sub_live = [live[position] for position in plausible_positions]
            groups = self._plan_groups(
                sub_live,
                [horizons[position] for position in plausible_positions],
                last_levels[plausible_positions],
                extra_keys=[
                    allowed_keys[position] for position in plausible_positions
                ],
            )
            for key, (start_level, sub_positions) in groups.items():
                positions = [
                    plausible_positions[sub_position]
                    for sub_position in sub_positions
                ]
                batch = self._evaluate_group(
                    live, positions, key[0], start_level, buffer_s,
                    last_levels, scenario_tputs, scenario_probs,
                    stall_options_s=key[3], weights_rows=weights_rows,
                    need_expected_rebuffer=False,
                )
                better = batch.best_score > scores[positions]
                levels[positions] = np.where(
                    better, batch.best_level, levels[positions]
                )
                stalls[positions] = np.where(
                    better, batch.best_stall_s, stalls[positions]
                )
                scores[positions] = np.where(
                    better, batch.best_score, scores[positions]
                )

        decisions = []
        for position, index in enumerate(live):
            stall = float(stalls[position])
            if stall > 0:
                self.proactive_spent_s[index] += stall
                decisions.append(
                    Decision(
                        level=int(levels[position]), proactive_stall_s=stall
                    )
                )
            else:
                decisions.append(_cached_decision(int(levels[position])))
        return decisions
