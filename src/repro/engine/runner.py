"""BatchRunner: ordered execution of (ABR, video, trace) work orders.

The experiment harness reduces to one primitive: run a list of streaming
sessions and collect their :class:`~repro.player.session.StreamResult`s in a
deterministic order.  :class:`BatchRunner` provides exactly that primitive
with three interchangeable backends:

* ``serial`` — runs orders in submission order, in process, reusing the ABR
  instances it is given.  This is byte-for-byte the seed behaviour and the
  backend tests and equivalence checks rely on.
* ``lockstep`` — runs orders through the lockstep multi-session core
  (:mod:`repro.engine.lockstep`): whole shards of sessions advance chunk
  by chunk as structure-of-arrays state (:mod:`repro.player.shard` —
  batched download integrals, masked buffer/stall evolution, shared
  history rings) and the planner is evaluated across sessions — and
  across compatible ABR instances — as batched tensors.  Results are
  bit-identical to ``serial`` (``tests/test_lockstep.py``, the golden
  masters and the property/fuzz layers — see ``docs/TESTING.md``); this
  is the fastest single-process backend.
* ``process`` — shards orders over a ``ProcessPoolExecutor``.  Orders are
  dispatched as *chunked shards* (one pickle per shard, several orders
  each): orders in a shard share their pickled videos, so each worker
  builds one :class:`~repro.engine.precompute.SessionPrecompute` per video
  per shard, and each shard runs through the lockstep core.  Because every
  session begins with ``abr.reset()`` and lockstep is serial-identical, the
  results are numerically identical to the serial backend.  On a
  single-core host a pool is pure overhead, so ``run_orders`` falls back to
  in-process lockstep there; unpicklable work falls back to serial, so
  callers never need a fallback path of their own.

Result ordering always matches submission ordering, whichever backend ran.
"""

from __future__ import annotations

import os
import pickle
import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple, TypeVar

import numpy as np

from repro.abr.base import ABRAlgorithm
from repro.network.trace import ThroughputTrace
from repro.player.session import SessionConfig, StreamingSession, StreamResult
from repro.utils.validation import require
from repro.video.encoder import EncodedVideo

_T = TypeVar("_T")
_R = TypeVar("_R")

#: Supported backends.
BACKENDS = ("serial", "process", "lockstep")

#: Orders below this count are not worth a pool: shard + pickle + spawn
#: overhead exceeds the win.  Used by the process backend's fallback
#: heuristic together with the core count.
MIN_PROCESS_ORDERS = 4

#: Target shards per worker for the process backend: enough slack that an
#: unlucky shard (e.g. all planner ABRs) cannot serialise the tail, few
#: enough that per-shard pickling stays amortised.
SHARDS_PER_WORKER = 4


@dataclass
class WorkOrder:
    """One streaming session to run.

    Attributes
    ----------
    abr: the ABR algorithm instance (reset at session start).
    encoded: the video to stream.
    trace: the throughput trace to stream over.
    config: optional player configuration.
    chunk_weights: optional per-chunk sensitivity weights.
    """

    abr: ABRAlgorithm
    encoded: EncodedVideo
    trace: ThroughputTrace
    config: Optional[SessionConfig] = None
    chunk_weights: Optional[np.ndarray] = None

    def run(self) -> StreamResult:
        """Execute the order and return the session result."""
        session = StreamingSession(
            encoded=self.encoded,
            trace=self.trace,
            abr=self.abr,
            config=self.config,
            chunk_weights=self.chunk_weights,
        )
        return session.run()


def _execute_order(order: WorkOrder) -> StreamResult:
    """Top-level order executor (must be module-level to pickle)."""
    return order.run()


@dataclass
class _OrderShard:
    """A chunk of consecutive work orders shipped to one worker as a unit.

    One pickle per shard: orders that share a video (grid sweeps interleave
    ABRs over the same (video, trace) cells, so consecutive orders usually
    do) serialise it once, and the worker's lockstep run reuses one
    ``SessionPrecompute`` per video across the whole shard.
    """

    orders: Tuple[WorkOrder, ...]


def _execute_shard(shard: _OrderShard) -> List[StreamResult]:
    """Run one shard through the lockstep core (module-level to pickle)."""
    from repro.engine.lockstep import run_orders_lockstep

    return run_orders_lockstep(shard.orders)


class BatchRunner:
    """Runs work orders through a serial, lockstep or process-pool backend.

    Parameters
    ----------
    backend:
        ``"serial"``, ``"lockstep"`` or ``"process"``.
    max_workers:
        Worker count for the process backend; defaults to the CPU count.
    chunksize:
        Items handed to a worker at a time by :meth:`map_ordered` (process
        backend); larger chunks amortise pickling for many small items.
    persistent:
        Keep the process pool alive between calls (training rounds pay pool
        spawn once instead of per round).  Call :meth:`close` — or use the
        runner as a context manager — when done; a crashed pool is dropped
        and rebuilt on the next call.
    """

    def __init__(
        self,
        backend: str = "serial",
        max_workers: Optional[int] = None,
        chunksize: int = 1,
        persistent: bool = False,
    ) -> None:
        require(backend in BACKENDS, f"backend must be one of {BACKENDS}")
        require(chunksize >= 1, "chunksize must be >= 1")
        self.backend = backend
        self.max_workers = max_workers
        self.chunksize = int(chunksize)
        self.persistent = bool(persistent)
        self._pool: Optional[ProcessPoolExecutor] = None

    @classmethod
    def auto(cls, max_workers: Optional[int] = None) -> "BatchRunner":
        """Process-pool runner on multi-core hosts, lockstep otherwise."""
        cores = os.cpu_count() or 1
        if cores > 1:
            return cls(backend="process", max_workers=max_workers, chunksize=2)
        return cls(backend="lockstep")

    # ------------------------------------------------------------------ API

    def run_orders(self, orders: Sequence[WorkOrder]) -> List[StreamResult]:
        """Run every order; results align index-for-index with ``orders``."""
        orders = list(orders)
        if not orders:
            return []
        if self.backend == "lockstep":
            from repro.engine.lockstep import run_orders_lockstep

            return run_orders_lockstep(orders)
        if self.backend == "process":
            return self._run_orders_process(orders)
        return self.map_ordered(_execute_order, orders)

    def map_ordered(
        self, fn: Callable[[_T], _R], items: Sequence[_T]
    ) -> List[_R]:
        """Apply ``fn`` to every item, preserving order.

        The serial and lockstep backends use a plain loop (lockstep only
        accelerates :meth:`run_orders`, where the work is known to be
        streaming sessions); the process backend distributes items over
        workers and reassembles results in submission order.
        """
        items = list(items)
        if not items:
            return []
        if self.backend != "process" or len(items) == 1:
            return [fn(item) for item in items]
        if not self._picklable(fn, items[0]):
            warnings.warn(
                "BatchRunner: work items are not picklable; "
                "falling back to the serial backend",
                RuntimeWarning,
                stacklevel=2,
            )
            return [fn(item) for item in items]
        try:
            if self.persistent:
                pool = self._ensure_pool()
                return list(pool.map(fn, items, chunksize=self.chunksize))
            max_workers = self._effective_workers(len(items))
            with ProcessPoolExecutor(max_workers=max_workers) as pool:
                return list(pool.map(fn, items, chunksize=self.chunksize))
        except (pickle.PicklingError, TypeError, AttributeError) as error:
            # The cheap pre-check above only samples the first item; a
            # heterogeneous batch can still fail to pickle mid-flight.
            # Unpicklable objects surface as PicklingError, TypeError or
            # AttributeError depending on the offender — but ``fn`` itself
            # may legitimately raise the latter two, so only fall back when
            # some item really does not pickle; otherwise the error is the
            # caller's and must propagate.  (Worker crashes —
            # BrokenProcessPool — also propagate: silently re-running a
            # possibly-OOM-inducing batch in the parent would mask the
            # crash.)  Items are checked one at a time, short-circuiting on
            # the first offender, so classification never duplicates the
            # whole batch in memory.
            self.close()  # a poisoned persistent pool must not be reused
            if not isinstance(error, pickle.PicklingError):
                if all(self._picklable(fn, item) for item in items):
                    raise
            warnings.warn(
                f"BatchRunner: process backend failed ({error}); "
                "rerunning serially",
                RuntimeWarning,
                stacklevel=2,
            )
            return [fn(item) for item in items]
        except BaseException:
            self.close()
            raise

    def close(self) -> None:
        """Shut down the persistent pool, if one is alive."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "BatchRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------ internals

    def _run_orders_process(self, orders: List[WorkOrder]) -> List[StreamResult]:
        """Chunked-shard dispatch with an in-process fallback heuristic."""
        cores = os.cpu_count() or 1
        workers = self._effective_workers(len(orders))
        if cores <= 1 or workers <= 1 or len(orders) < MIN_PROCESS_ORDERS:
            # A pool cannot pay for itself here; lockstep is bit-identical
            # and the fastest in-process path.
            from repro.engine.lockstep import run_orders_lockstep

            return run_orders_lockstep(orders)
        shard_count = min(len(orders), workers * SHARDS_PER_WORKER)
        bounds = np.linspace(0, len(orders), shard_count + 1).astype(int)
        shards = [
            _OrderShard(orders=tuple(orders[start:stop]))
            for start, stop in zip(bounds[:-1], bounds[1:])
            if stop > start
        ]
        chunksize, self.chunksize = self.chunksize, 1
        try:
            nested = self.map_ordered(_execute_shard, shards)
        finally:
            self.chunksize = chunksize
        return [result for shard_results in nested for result in shard_results]

    def _effective_workers(self, num_items: int) -> int:
        workers = self.max_workers or os.cpu_count() or 1
        return min(workers, num_items)

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.max_workers or os.cpu_count() or 1
            )
        return self._pool

    @staticmethod
    def _picklable(fn: Callable, sample_item) -> bool:
        try:
            pickle.dumps((fn, sample_item))
            return True
        except Exception:
            return False


def orders_for_grid(
    abrs: Sequence[ABRAlgorithm],
    videos: Sequence[EncodedVideo],
    traces: Sequence[ThroughputTrace],
    config: Optional[SessionConfig] = None,
    weights_by_video: Optional[dict] = None,
) -> List[Tuple[Tuple[str, str, str], WorkOrder]]:
    """Work orders for every (ABR, video, trace) combination.

    Iteration order matches the seed ``simulate_many`` loop (ABR outermost,
    trace innermost) so serial execution reproduces it exactly.  Each entry
    pairs the ``(abr_name, video_id, trace_name)`` key with its order.
    """
    weights_by_video = weights_by_video or {}
    keyed: List[Tuple[Tuple[str, str, str], WorkOrder]] = []
    for abr in abrs:
        for encoded in videos:
            weights = weights_by_video.get(encoded.source.video_id)
            for trace in traces:
                keyed.append(
                    (
                        (abr.name, encoded.source.video_id, trace.name),
                        WorkOrder(
                            abr=abr,
                            encoded=encoded,
                            trace=trace,
                            config=config,
                            chunk_weights=weights,
                        ),
                    )
                )
    return keyed
