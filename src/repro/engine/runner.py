"""BatchRunner: ordered execution of (ABR, video, trace) work orders.

The experiment harness reduces to one primitive: run a list of streaming
sessions and collect their :class:`~repro.player.session.StreamResult`s in a
deterministic order.  :class:`BatchRunner` provides exactly that primitive
with three interchangeable backends:

* ``serial`` — runs orders in submission order, in process, reusing the ABR
  instances it is given.  This is byte-for-byte the seed behaviour and the
  backend tests and equivalence checks rely on.
* ``lockstep`` — runs orders through the lockstep multi-session core
  (:mod:`repro.engine.lockstep`): whole shards of sessions advance chunk
  by chunk as structure-of-arrays state (:mod:`repro.player.shard` —
  batched download integrals, masked buffer/stall evolution, shared
  history rings) and the planner is evaluated across sessions — and
  across compatible ABR instances — as batched tensors.  Results are
  bit-identical to ``serial`` (``tests/test_lockstep.py``, the golden
  masters and the property/fuzz layers — see ``docs/TESTING.md``); this
  is the fastest single-process backend.
* ``process`` — shards orders over a ``ProcessPoolExecutor``.  Orders are
  dispatched as *chunked shards* (one pickle per shard, several orders
  each): orders in a shard share their pickled videos, so each worker
  builds one :class:`~repro.engine.precompute.SessionPrecompute` per video
  per shard, and each shard runs through the lockstep core.  Because every
  session begins with ``abr.reset()`` and lockstep is serial-identical, the
  results are numerically identical to the serial backend.  On a
  single-core host a pool is pure overhead, so ``run_orders`` falls back to
  in-process lockstep there; unpicklable work falls back to serial, so
  callers never need a fallback path of their own.

The process backend is *crash-recovering*: a worker death
(``BrokenProcessPool``), a simulated crash, or a shard exceeding
``shard_timeout_s`` no longer aborts the whole grid.  Lost shards are
re-dispatched on a rebuilt pool with capped exponential backoff, and a
shard that keeps failing is re-run in-process (lockstep, bit-identical)
instead of being given up on.  Recovery never changes results — shards
are deterministic, so a retried shard reproduces its first attempt bit
for bit (guarded by the golden masters, see ``docs/ROBUSTNESS.md``) —
and every recovery is counted in the runner's
:class:`~repro.faults.log.FaultLog` (``runner.fault_log``), which the
experiment registry stamps into ``ResultSet`` metadata.  Deterministic
chaos tests drive these paths through :mod:`repro.faults` fault plans.

Result ordering always matches submission ordering, whichever backend ran.
"""

from __future__ import annotations

import os
import pickle
import time
import warnings
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, TypeVar

import numpy as np

from repro.abr.base import ABRAlgorithm
from repro.faults.injector import (
    ShardFault,
    SimulatedWorkerCrash,
    active_injector,
    execute_shard_fault,
)
from repro.faults.log import FaultLog, ShardRecoveryWarning, merge_counter_dicts
from repro.network.trace import ThroughputTrace
from repro.obs.metrics import (
    DEFAULT_SIZE_BUCKETS,
    MetricsRegistry,
    get_registry,
    use_registry,
)
from repro.obs.trace import TRACE, set_enabled, trace_span
from repro.player.session import SessionConfig, StreamingSession, StreamResult
from repro.utils.validation import require
from repro.video.encoder import EncodedVideo

_T = TypeVar("_T")
_R = TypeVar("_R")

#: Supported backends.
BACKENDS = ("serial", "process", "lockstep")

#: Orders below this count are not worth a pool: shard + pickle + spawn
#: overhead exceeds the win.  Used by the process backend's fallback
#: heuristic together with the core count.
MIN_PROCESS_ORDERS = 4

#: Target shards per worker for the process backend: enough slack that an
#: unlucky shard (e.g. all planner ABRs) cannot serialise the tail, few
#: enough that per-shard pickling stays amortised.
SHARDS_PER_WORKER = 4


@dataclass
class WorkOrder:
    """One streaming session to run.

    Attributes
    ----------
    abr: the ABR algorithm instance (reset at session start).
    encoded: the video to stream.
    trace: the throughput trace to stream over.
    config: optional player configuration.
    chunk_weights: optional per-chunk sensitivity weights.
    exploration_seed: optional per-order RNG seed for exploration-mode RL
        policies.  When set, the order reseeds the agent's exploration
        stream (``agent.reseed_exploration``) immediately before the
        session runs, making the trajectory a pure function of
        (checkpoint, seed) — independent of execution order.  That is the
        contract that lets the lockstep core batch exploration-mode RL:
        it gives each row its own ``rng_from_seed(exploration_seed)``
        stream and reproduces this serial path bit for bit.  Orders whose
        ABR has no exploration stream ignore the field.
    """

    abr: ABRAlgorithm
    encoded: EncodedVideo
    trace: ThroughputTrace
    config: Optional[SessionConfig] = None
    chunk_weights: Optional[np.ndarray] = None
    exploration_seed: Optional[int] = None

    def run(self) -> StreamResult:
        """Execute the order and return the session result."""
        if self.exploration_seed is not None:
            agent = getattr(self.abr, "agent", None)
            if agent is not None and hasattr(agent, "reseed_exploration"):
                agent.reseed_exploration(int(self.exploration_seed))
        session = StreamingSession(
            encoded=self.encoded,
            trace=self.trace,
            abr=self.abr,
            config=self.config,
            chunk_weights=self.chunk_weights,
        )
        return session.run()


def _execute_order(order: WorkOrder) -> StreamResult:
    """Top-level order executor (must be module-level to pickle)."""
    return order.run()


@dataclass
class _OrderShard:
    """A chunk of consecutive work orders shipped to one worker as a unit.

    One pickle per shard: orders that share a video (grid sweeps interleave
    ABRs over the same (video, trace) cells, so consecutive orders usually
    do) serialise it once, and the worker's lockstep run reuses one
    ``SessionPrecompute`` per video across the whole shard.
    """

    orders: Tuple[WorkOrder, ...]
    #: Injected fault directive, attached by the parent at dispatch time
    #: (consumed from the active :class:`~repro.faults.injector.
    #: FaultInjector`, so a retried shard runs clean).
    fault: Optional[ShardFault] = None
    #: Whether the parent had telemetry enabled at dispatch time.  Shipped
    #: with the shard — never inherited ambiently — so a worker traces
    #: exactly when its parent does, even in a pool spawned before the
    #: parent enabled tracing.
    telemetry: bool = False


def _execute_shard(
    shard: _OrderShard,
) -> Tuple[List[StreamResult], Optional[Dict[str, object]]]:
    """Run one shard through the lockstep core (module-level to pickle).

    Returns ``(results, metrics_snapshot)``.  With telemetry on, the shard
    runs against a fresh worker-local
    :class:`~repro.obs.metrics.MetricsRegistry` whose snapshot travels
    back for the parent to merge — the same delta-shipping discipline as
    ``FaultLog`` counters, and fresh-per-shard so a reused pool worker
    never double-reports an earlier shard's metrics.
    """
    from repro.engine.lockstep import run_orders_lockstep

    if shard.fault is not None:
        execute_shard_fault(shard.fault, in_worker=True)
    if not shard.telemetry:
        return run_orders_lockstep(shard.orders), None
    previous = set_enabled(True)
    registry = MetricsRegistry()
    try:
        with use_registry(registry):
            results = run_orders_lockstep(shard.orders)
    finally:
        set_enabled(previous)
    return results, registry.snapshot()


def _observe_session_results(results: Sequence[StreamResult]) -> None:
    """Fold finished sessions into the active registry (telemetry on only).

    The observed quantities are *simulated* (deterministic), so serial,
    lockstep and process backends report identical totals — the invariant
    ``tests/test_obs.py`` asserts across the shard boundary.
    """
    if not TRACE.enabled:
        return
    registry = get_registry()
    registry.counter("engine.orders_completed").add(len(results))
    histogram = registry.histogram(
        "engine.session_duration_s", buckets=DEFAULT_SIZE_BUCKETS
    )
    for result in results:
        histogram.observe(result.session_duration_s)


class BatchRunner:
    """Runs work orders through a serial, lockstep or process-pool backend.

    Parameters
    ----------
    backend:
        ``"serial"``, ``"lockstep"`` or ``"process"``.
    max_workers:
        Worker count for the process backend; defaults to the CPU count.
    chunksize:
        Items handed to a worker at a time by :meth:`map_ordered` (process
        backend); larger chunks amortise pickling for many small items.
    persistent:
        Keep the process pool alive between calls (training rounds pay pool
        spawn once instead of per round).  Call :meth:`close` — or use the
        runner as a context manager — when done; a crashed pool is dropped
        and rebuilt on the next call.
    max_shard_retries:
        How many times a lost shard (worker crash, pool breakage, timeout)
        is re-dispatched to the pool before the runner stops trusting
        workers with it and runs it in-process instead (bit-identical
        lockstep; counted as a ``serial_fallback`` in :attr:`fault_log`).
    shard_timeout_s:
        Wall-clock budget for one dispatch attempt of the process backend
        (``None`` — the default — waits forever).  On expiry the attempt's
        unfinished shards are abandoned, the pool is torn down (stuck
        workers included) and rebuilt, and the lost shards are retried.
    retry_backoff_s / retry_backoff_cap_s:
        Capped exponential backoff between pool rebuilds:
        ``min(cap, base * 2**rebuilds)`` seconds.
    """

    def __init__(
        self,
        backend: str = "serial",
        max_workers: Optional[int] = None,
        chunksize: int = 1,
        persistent: bool = False,
        max_shard_retries: int = 2,
        shard_timeout_s: Optional[float] = None,
        retry_backoff_s: float = 0.05,
        retry_backoff_cap_s: float = 2.0,
    ) -> None:
        require(backend in BACKENDS, f"backend must be one of {BACKENDS}")
        require(chunksize >= 1, "chunksize must be >= 1")
        require(max_shard_retries >= 0, "max_shard_retries must be >= 0")
        require(shard_timeout_s is None or shard_timeout_s > 0,
                "shard_timeout_s must be positive (or None)")
        require(retry_backoff_s >= 0, "retry_backoff_s must be >= 0")
        self.backend = backend
        self.max_workers = max_workers
        self.chunksize = int(chunksize)
        self.persistent = bool(persistent)
        self.max_shard_retries = int(max_shard_retries)
        self.shard_timeout_s = shard_timeout_s
        self.retry_backoff_s = float(retry_backoff_s)
        self.retry_backoff_cap_s = float(retry_backoff_cap_s)
        #: Cumulative recovery accounting for this runner's lifetime;
        #: per-run deltas via ``fault_log.snapshot()`` / ``.since()``.
        self.fault_log = FaultLog()
        self._pool: Optional[ProcessPoolExecutor] = None

    @classmethod
    def auto(cls, max_workers: Optional[int] = None, **knobs) -> "BatchRunner":
        """Process-pool runner on multi-core hosts, lockstep otherwise.

        Extra ``knobs`` (``max_shard_retries``, ``shard_timeout_s``, …)
        pass straight through to the constructor either way.
        """
        cores = os.cpu_count() or 1
        if cores > 1:
            return cls(backend="process", max_workers=max_workers,
                       chunksize=2, **knobs)
        return cls(backend="lockstep", **knobs)

    @staticmethod
    def merge_fault_logs(*runners: "BatchRunner") -> Dict[str, object]:
        """Merged fault-log dict across runners (what bench reports embed)."""
        merged: Dict[str, object] = dict(
            merge_counter_dicts(
                *(runner.fault_log.counters() for runner in runners)
            )
        )
        events: List[str] = []
        for runner in runners:
            events.extend(runner.fault_log.events)
        merged["events"] = events
        return merged

    # ------------------------------------------------------------------ API

    def run_orders(self, orders: Sequence[WorkOrder]) -> List[StreamResult]:
        """Run every order; results align index-for-index with ``orders``.

        The whole dispatch — whichever backend runs it — is timed under
        the ``engine.dispatch`` root span, the denominator every phase
        share in ``BENCH_engine.json`` and ``repro profile`` is computed
        against.
        """
        orders = list(orders)
        if not orders:
            return []
        with trace_span("engine.dispatch"):
            if self.backend == "lockstep":
                from repro.engine.lockstep import run_orders_lockstep

                return run_orders_lockstep(orders, fault_log=self.fault_log)
            if self.backend == "process":
                return self._run_orders_process(orders)
            results = self.map_ordered(_execute_order, orders)
            # Lockstep-path runs observe inside run_orders_lockstep (which
            # also covers pool workers and in-process fallbacks); the
            # serial loop is the one path that must observe here.
            _observe_session_results(results)
            return results

    def map_ordered(
        self, fn: Callable[[_T], _R], items: Sequence[_T]
    ) -> List[_R]:
        """Apply ``fn`` to every item, preserving order.

        The serial and lockstep backends use a plain loop (lockstep only
        accelerates :meth:`run_orders`, where the work is known to be
        streaming sessions); the process backend distributes items over
        workers and reassembles results in submission order.
        """
        with trace_span("engine.map"):
            return self._map_ordered(fn, items)

    def _map_ordered(
        self, fn: Callable[[_T], _R], items: Sequence[_T]
    ) -> List[_R]:
        items = list(items)
        if not items:
            return []
        if self.backend != "process" or len(items) == 1:
            return [fn(item) for item in items]
        if not self._picklable(fn, items[0]):
            self.fault_log.pickle_failures += 1
            warnings.warn(
                "BatchRunner: work items are not picklable; "
                "falling back to the serial backend",
                RuntimeWarning,
                stacklevel=2,
            )
            return [fn(item) for item in items]
        try:
            if self.persistent:
                pool = self._ensure_pool()
                return list(pool.map(fn, items, chunksize=self.chunksize))
            max_workers = self._effective_workers(len(items))
            with ProcessPoolExecutor(max_workers=max_workers) as pool:
                return list(pool.map(fn, items, chunksize=self.chunksize))
        except (pickle.PicklingError, TypeError, AttributeError) as error:
            # The cheap pre-check above only samples the first item; a
            # heterogeneous batch can still fail to pickle mid-flight.
            # Unpicklable objects surface as PicklingError, TypeError or
            # AttributeError depending on the offender — but ``fn`` itself
            # may legitimately raise the latter two, so only fall back when
            # some item really does not pickle; otherwise the error is the
            # caller's and must propagate.  (Worker crashes —
            # BrokenProcessPool — also propagate: silently re-running a
            # possibly-OOM-inducing batch in the parent would mask the
            # crash.)  Items are checked one at a time, short-circuiting on
            # the first offender, so classification never duplicates the
            # whole batch in memory.
            self.close()  # a poisoned persistent pool must not be reused
            if not isinstance(error, pickle.PicklingError):
                if all(self._picklable(fn, item) for item in items):
                    raise
            self.fault_log.pickle_failures += 1
            warnings.warn(
                f"BatchRunner: process backend failed ({error}); "
                "rerunning serially",
                RuntimeWarning,
                stacklevel=2,
            )
            return [fn(item) for item in items]
        except BaseException:
            self.close()
            raise

    def close(self) -> None:
        """Shut down the persistent pool, if one is alive.

        Idempotent — safe to call repeatedly and from ``finally`` blocks.
        A shutdown that raises (a pool already broken by a dead worker can)
        is logged and the pool dropped anyway, never silently swallowed.
        """
        if self._pool is None:
            return
        pool, self._pool = self._pool, None
        try:
            pool.shutdown()
        except Exception as error:
            warnings.warn(
                f"BatchRunner.close: pool shutdown raised {error!r}; "
                "the pool was dropped anyway",
                RuntimeWarning,
                stacklevel=2,
            )

    def __enter__(self) -> "BatchRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------ internals

    def _run_orders_process(self, orders: List[WorkOrder]) -> List[StreamResult]:
        """Chunked-shard dispatch with recovery and an in-process fallback."""
        cores = os.cpu_count() or 1
        workers = self._effective_workers(len(orders))
        if cores <= 1 or workers <= 1 or len(orders) < MIN_PROCESS_ORDERS:
            # A pool cannot pay for itself here; lockstep is bit-identical
            # and the fastest in-process path.
            from repro.engine.lockstep import run_orders_lockstep

            return run_orders_lockstep(orders, fault_log=self.fault_log)
        shard_count = min(len(orders), workers * SHARDS_PER_WORKER)
        bounds = np.linspace(0, len(orders), shard_count + 1).astype(int)
        shards = [
            _OrderShard(
                orders=tuple(orders[start:stop]), telemetry=TRACE.enabled
            )
            for start, stop in zip(bounds[:-1], bounds[1:])
            if stop > start
        ]
        nested = self._run_shards_with_recovery(shards, workers)
        return [result for shard_results in nested for result in shard_results]

    # ------------------------------------------------- crash-recovering core

    def _run_shards_with_recovery(
        self, shards: List[_OrderShard], workers: int
    ) -> List[List[StreamResult]]:
        """Dispatch every shard, surviving worker deaths and timeouts.

        Lost shards (crashed worker, broken pool, attempt timeout) are
        re-dispatched — on a rebuilt pool when the old one died — with
        capped exponential backoff between rebuilds; a shard lost more than
        ``max_shard_retries`` times is re-run in-process instead.  Shards
        are pure functions of their orders, so a retry is bit-identical to
        the attempt that was lost; recovery changes *when* a shard runs,
        never what it returns.  Exceptions raised by the workload itself
        (an order with a genuine bug) are not retried: they propagate.
        """
        results: List[Optional[List[StreamResult]]] = [None] * len(shards)
        pending = list(range(len(shards)))
        attempts: Dict[int, int] = {index: 0 for index in pending}
        rebuilds = 0
        pool = self._ensure_pool() if self.persistent else (
            ProcessPoolExecutor(max_workers=workers)
        )
        try:
            while pending:
                retriable = [
                    index for index in pending
                    if attempts[index] <= self.max_shard_retries
                ]
                for index in pending:
                    if index not in set(retriable):
                        results[index] = self._run_shard_in_process(
                            shards[index], index,
                            reason=f"lost {attempts[index]} pool attempts",
                        )
                if not retriable:
                    break
                started = time.monotonic()
                lost, verdict = self._dispatch_attempt(
                    pool, retriable, shards, results
                )
                if lost:
                    self.fault_log.wall_clock_lost_s += (
                        time.monotonic() - started
                    )
                    self.fault_log.retries += len(lost)
                    for index in lost:
                        attempts[index] += 1
                    if verdict in ("broken", "timeout"):
                        pool = self._rebuild_pool(pool, verdict, rebuilds)
                        rebuilds += 1
                pending = lost
        finally:
            if not self.persistent:
                self._teardown_pool(pool, reason="dispatch finished")
        return results

    def _dispatch_attempt(
        self,
        pool: ProcessPoolExecutor,
        indices: List[int],
        shards: List[_OrderShard],
        results: List[Optional[List[StreamResult]]],
    ) -> Tuple[List[int], str]:
        """One submit-and-collect round; returns (lost shard indices,
        verdict) where the verdict says whether the pool must be rebuilt
        (``"broken"``/``"timeout"``) or survived (``"ok"``)."""
        injector = active_injector()
        futures: Dict[object, int] = {}
        unpicklable: List[int] = []
        for index in indices:
            shard = shards[index]
            if injector is not None:
                fault = injector.take_shard_fault(index)
                if fault is not None:
                    shard = _OrderShard(orders=shard.orders, fault=fault,
                                        telemetry=shard.telemetry)
            try:
                if injector is not None:
                    injector.on_pickle()
                futures[pool.submit(_execute_shard, shard)] = index
            except pickle.PicklingError as error:
                self.fault_log.pickle_failures += 1
                self.fault_log.record(f"shard {index} failed to pickle")
                warnings.warn(
                    f"BatchRunner: shard {index} failed to pickle "
                    f"({error}); running it in-process",
                    ShardRecoveryWarning,
                    stacklevel=3,
                )
                unpicklable.append(index)
        for index in unpicklable:
            results[index] = self._run_shard_in_process(
                shards[index], index, reason="unpicklable", count_fallback=False
            )

        lost: List[int] = []
        verdict = "ok"
        remaining = dict(futures)
        try:
            for future in as_completed(
                list(futures), timeout=self.shard_timeout_s
            ):
                index = futures[future]
                remaining.pop(future, None)
                try:
                    shard_results, metrics = future.result()
                    results[index] = shard_results
                    if metrics is not None:
                        # The worker's registry delta lands in the parent's
                        # active registry, mirroring FaultLog merging.
                        get_registry().merge_snapshot(metrics)
                except SimulatedWorkerCrash as error:
                    # The worker survived (the crash was raised, not a real
                    # death), so the pool is still good: just retry.
                    self.fault_log.worker_crashes += 1
                    self.fault_log.record(f"shard {index} crashed: {error}")
                    warnings.warn(
                        f"BatchRunner: shard {index} crashed ({error}); "
                        "retrying",
                        ShardRecoveryWarning,
                        stacklevel=3,
                    )
                    lost.append(index)
                except BrokenProcessPool:
                    # A worker died mid-shard.  Every other in-flight future
                    # is doomed with it; mark them all lost and rebuild.
                    verdict = "broken"
                    self.fault_log.worker_crashes += 1
                    self.fault_log.record(
                        f"worker died running shard {index}; pool broken"
                    )
                    warnings.warn(
                        f"BatchRunner: a worker died running shard {index}; "
                        "rebuilding the pool and retrying lost shards",
                        ShardRecoveryWarning,
                        stacklevel=3,
                    )
                    lost.append(index)
                    break
                except pickle.PicklingError as error:
                    # submit() pickles lazily, so an unpicklable shard can
                    # surface here instead of at submission.
                    self.fault_log.pickle_failures += 1
                    self.fault_log.record(f"shard {index} failed to pickle")
                    warnings.warn(
                        f"BatchRunner: shard {index} failed to pickle "
                        f"({error}); running it in-process",
                        ShardRecoveryWarning,
                        stacklevel=3,
                    )
                    results[index] = self._run_shard_in_process(
                        shards[index], index, reason="unpicklable",
                        count_fallback=False,
                    )
                # Any other exception is the workload's own and propagates:
                # retrying a deterministic bug cannot fix it, and masking it
                # would report a wrong grid as healthy.
        except FuturesTimeout:
            verdict = "timeout"
            timed_out = sorted(remaining.values())
            self.fault_log.timeouts += len(timed_out)
            self.fault_log.record(
                f"attempt timed out ({self.shard_timeout_s}s); "
                f"lost shards {timed_out}"
            )
            warnings.warn(
                f"BatchRunner: shards {timed_out} exceeded "
                f"shard_timeout_s={self.shard_timeout_s}; abandoning the "
                "attempt and retrying them on a fresh pool",
                ShardRecoveryWarning,
                stacklevel=3,
            )
            lost.extend(index for index in timed_out if index not in lost)
            remaining = {}
        if verdict == "broken":
            lost.extend(
                index for index in remaining.values() if index not in lost
            )
        return lost, verdict

    def _run_shard_in_process(
        self,
        shard: _OrderShard,
        index: int,
        reason: str,
        count_fallback: bool = True,
    ) -> List[StreamResult]:
        """Last-resort execution of one shard in the parent process.

        Runs the shard through the in-process lockstep core — bit-identical
        to what a worker would have returned — so repeated pool failures
        degrade throughput, never correctness.
        """
        from repro.engine.lockstep import run_orders_lockstep

        if count_fallback:
            self.fault_log.serial_fallbacks += 1
            self.fault_log.record(
                f"shard {index} fell back in-process: {reason}"
            )
            warnings.warn(
                f"BatchRunner: shard {index} ({len(shard.orders)} orders) "
                f"fell back to in-process execution: {reason}",
                ShardRecoveryWarning,
                stacklevel=3,
            )
        return run_orders_lockstep(shard.orders, fault_log=self.fault_log)

    def _rebuild_pool(
        self, pool: ProcessPoolExecutor, reason: str, rebuilds: int
    ) -> ProcessPoolExecutor:
        """Tear the dead/stuck pool down and stand up a fresh one, with
        capped exponential backoff (``min(cap, base * 2**rebuilds)``)."""
        self._teardown_pool(pool, reason=reason)
        self.fault_log.pool_rebuilds += 1
        delay = min(
            self.retry_backoff_cap_s, self.retry_backoff_s * (2 ** rebuilds)
        )
        if delay > 0:
            time.sleep(delay)
        if self.persistent:
            return self._ensure_pool()
        return ProcessPoolExecutor(
            max_workers=self.max_workers or os.cpu_count() or 1
        )

    def _teardown_pool(self, pool: ProcessPoolExecutor, reason: str) -> None:
        """Shut a pool down without waiting on (possibly stuck) workers.

        A teardown that raises is logged — never silently swallowed — and
        the pool reference is dropped regardless, so the next attempt gets
        a clean pool.
        """
        if pool is self._pool:
            self._pool = None
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception as error:
            warnings.warn(
                f"BatchRunner: pool teardown ({reason}) raised {error!r}; "
                "the pool was dropped anyway",
                RuntimeWarning,
                stacklevel=3,
            )

    def _effective_workers(self, num_items: int) -> int:
        workers = self.max_workers or os.cpu_count() or 1
        return min(workers, num_items)

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.max_workers or os.cpu_count() or 1
            )
        return self._pool

    @staticmethod
    def _picklable(fn: Callable, sample_item) -> bool:
        try:
            pickle.dumps((fn, sample_item))
            return True
        except Exception:
            return False


def orders_for_grid(
    abrs: Sequence[ABRAlgorithm],
    videos: Sequence[EncodedVideo],
    traces: Sequence[ThroughputTrace],
    config: Optional[SessionConfig] = None,
    weights_by_video: Optional[dict] = None,
) -> List[Tuple[Tuple[str, str, str], WorkOrder]]:
    """Work orders for every (ABR, video, trace) combination.

    Iteration order matches the seed ``simulate_many`` loop (ABR outermost,
    trace innermost) so serial execution reproduces it exactly.  Each entry
    pairs the ``(abr_name, video_id, trace_name)`` key with its order.
    """
    weights_by_video = weights_by_video or {}
    keyed: List[Tuple[Tuple[str, str, str], WorkOrder]] = []
    for abr in abrs:
        for encoded in videos:
            weights = weights_by_video.get(encoded.source.video_id)
            for trace in traces:
                keyed.append(
                    (
                        (abr.name, encoded.source.video_id, trace.name),
                        WorkOrder(
                            abr=abr,
                            encoded=encoded,
                            trace=trace,
                            config=config,
                            chunk_weights=weights,
                        ),
                    )
                )
    return keyed
