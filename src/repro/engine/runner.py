"""BatchRunner: ordered execution of (ABR, video, trace) work orders.

The experiment harness reduces to one primitive: run a list of streaming
sessions and collect their :class:`~repro.player.session.StreamResult`s in a
deterministic order.  :class:`BatchRunner` provides exactly that primitive
with two interchangeable backends:

* ``serial`` — runs orders in submission order, in process, reusing the ABR
  instances it is given.  This is byte-for-byte the seed behaviour and the
  backend tests and equivalence checks rely on.
* ``process`` — shards orders over a ``ProcessPoolExecutor``.  Each worker
  receives a pickled copy of its order (ABR state cannot leak between
  shards); because every session begins with ``abr.reset()``, the results
  are numerically identical to the serial backend.  Falls back to serial
  when the platform offers a single CPU or the orders cannot be pickled, so
  callers never need a fallback path of their own.

Result ordering always matches submission ordering, whichever backend ran.
"""

from __future__ import annotations

import os
import pickle
import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple, TypeVar

import numpy as np

from repro.abr.base import ABRAlgorithm
from repro.network.trace import ThroughputTrace
from repro.player.session import SessionConfig, StreamingSession, StreamResult
from repro.utils.validation import require
from repro.video.encoder import EncodedVideo

_T = TypeVar("_T")
_R = TypeVar("_R")

#: Supported backends.
BACKENDS = ("serial", "process")


@dataclass
class WorkOrder:
    """One streaming session to run.

    Attributes
    ----------
    abr: the ABR algorithm instance (reset at session start).
    encoded: the video to stream.
    trace: the throughput trace to stream over.
    config: optional player configuration.
    chunk_weights: optional per-chunk sensitivity weights.
    """

    abr: ABRAlgorithm
    encoded: EncodedVideo
    trace: ThroughputTrace
    config: Optional[SessionConfig] = None
    chunk_weights: Optional[np.ndarray] = None

    def run(self) -> StreamResult:
        """Execute the order and return the session result."""
        session = StreamingSession(
            encoded=self.encoded,
            trace=self.trace,
            abr=self.abr,
            config=self.config,
            chunk_weights=self.chunk_weights,
        )
        return session.run()


def _execute_order(order: WorkOrder) -> StreamResult:
    """Top-level order executor (must be module-level to pickle)."""
    return order.run()


class BatchRunner:
    """Runs work orders through a serial or process-pool backend.

    Parameters
    ----------
    backend:
        ``"serial"`` or ``"process"``.
    max_workers:
        Worker count for the process backend; defaults to the CPU count.
    chunksize:
        Orders handed to a worker at a time (process backend); larger chunks
        amortise pickling for many small sessions.
    """

    def __init__(
        self,
        backend: str = "serial",
        max_workers: Optional[int] = None,
        chunksize: int = 1,
    ) -> None:
        require(backend in BACKENDS, f"backend must be one of {BACKENDS}")
        require(chunksize >= 1, "chunksize must be >= 1")
        self.backend = backend
        self.max_workers = max_workers
        self.chunksize = int(chunksize)

    @classmethod
    def auto(cls, max_workers: Optional[int] = None) -> "BatchRunner":
        """Process-pool runner on multi-core hosts, serial otherwise."""
        cores = os.cpu_count() or 1
        if cores > 1:
            return cls(backend="process", max_workers=max_workers, chunksize=2)
        return cls(backend="serial")

    # ------------------------------------------------------------------ API

    def run_orders(self, orders: Sequence[WorkOrder]) -> List[StreamResult]:
        """Run every order; results align index-for-index with ``orders``."""
        return self.map_ordered(_execute_order, orders)

    def map_ordered(
        self, fn: Callable[[_T], _R], items: Sequence[_T]
    ) -> List[_R]:
        """Apply ``fn`` to every item, preserving order.

        The serial backend is a plain loop; the process backend distributes
        items over workers and reassembles results in submission order.
        """
        items = list(items)
        if not items:
            return []
        if self.backend == "serial" or len(items) == 1:
            return [fn(item) for item in items]
        if not self._picklable(fn, items[0]):
            warnings.warn(
                "BatchRunner: work items are not picklable; "
                "falling back to the serial backend",
                RuntimeWarning,
                stacklevel=2,
            )
            return [fn(item) for item in items]
        max_workers = self.max_workers or os.cpu_count() or 1
        max_workers = min(max_workers, len(items))
        try:
            with ProcessPoolExecutor(max_workers=max_workers) as pool:
                return list(pool.map(fn, items, chunksize=self.chunksize))
        except (pickle.PicklingError, TypeError, AttributeError) as error:
            # The cheap pre-check above only samples the first item; a
            # heterogeneous batch can still fail to pickle mid-flight.
            # Unpicklable objects surface as PicklingError, TypeError or
            # AttributeError depending on the offender — but ``fn`` itself
            # may legitimately raise the latter two, so only fall back when
            # some item really does not pickle; otherwise the error is the
            # caller's and must propagate.  (Worker crashes —
            # BrokenProcessPool — also propagate: silently re-running a
            # possibly-OOM-inducing batch in the parent would mask the
            # crash.)  Items are checked one at a time, short-circuiting on
            # the first offender, so classification never duplicates the
            # whole batch in memory.
            if not isinstance(error, pickle.PicklingError):
                if all(self._picklable(fn, item) for item in items):
                    raise
            warnings.warn(
                f"BatchRunner: process backend failed ({error}); "
                "rerunning serially",
                RuntimeWarning,
                stacklevel=2,
            )
            return [fn(item) for item in items]

    # ------------------------------------------------------------ internals

    @staticmethod
    def _picklable(fn: Callable, sample_item) -> bool:
        try:
            pickle.dumps((fn, sample_item))
            return True
        except Exception:
            return False


def orders_for_grid(
    abrs: Sequence[ABRAlgorithm],
    videos: Sequence[EncodedVideo],
    traces: Sequence[ThroughputTrace],
    config: Optional[SessionConfig] = None,
    weights_by_video: Optional[dict] = None,
) -> List[Tuple[Tuple[str, str, str], WorkOrder]]:
    """Work orders for every (ABR, video, trace) combination.

    Iteration order matches the seed ``simulate_many`` loop (ABR outermost,
    trace innermost) so serial execution reproduces it exactly.  Each entry
    pairs the ``(abr_name, video_id, trace_name)`` key with its order.
    """
    weights_by_video = weights_by_video or {}
    keyed: List[Tuple[Tuple[str, str, str], WorkOrder]] = []
    for abr in abrs:
        for encoded in videos:
            weights = weights_by_video.get(encoded.source.video_id)
            for trace in traces:
                keyed.append(
                    (
                        (abr.name, encoded.source.video_id, trace.name),
                        WorkOrder(
                            abr=abr,
                            encoded=encoded,
                            trace=trace,
                            config=config,
                            chunk_weights=weights,
                        ),
                    )
                )
    return keyed
