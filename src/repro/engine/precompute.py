"""Per-session precomputation: observation matrices and history rings.

The streaming session builds one :class:`~repro.abr.base.PlayerObservation`
per chunk.  In the seed implementation every observation re-stacked the
upcoming chunks' size/quality arrays (``np.stack`` over ``horizon`` rows)
and re-materialised the throughput history from an ever-growing Python list.
Both costs are avoidable:

* the (num_chunks, num_levels) size/quality matrices are a property of the
  *video*, so :class:`SessionPrecompute` materialises them once and serves
  read-only slices — an observation's ``upcoming_sizes_bytes`` is then just
  ``sizes[i:i + h]`` with no copy;
* the observation only ever sees the last ``history_length`` samples, so
  :class:`HistoryRing` stores exactly that many in a fixed ndarray instead
  of appending to an unbounded list.

Precomputes are cached on the :class:`~repro.video.encoder.EncodedVideo`
instance itself (videos are immutable once encoded), so a grid sweep that
streams the same video over many traces and ABRs pays the stacking cost
once.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.utils.validation import require
from repro.video.encoder import EncodedVideo

#: Attribute name under which the precompute is cached on an EncodedVideo.
_CACHE_ATTR = "_session_precompute_cache"


class SessionPrecompute:
    """Read-only per-video matrices the session control loop slices from.

    Attributes
    ----------
    sizes_bytes:
        (num_chunks, num_levels) chunk sizes, read-only.
    quality:
        (num_chunks, num_levels) VMAF-like quality scores, read-only.
    """

    def __init__(self, encoded: EncodedVideo) -> None:
        self.encoded = encoded
        # Already stacked once and cached read-only on the video itself.
        self.sizes_bytes = encoded.sizes_matrix()
        self.quality = encoded.quality_matrix()
        self.num_chunks = encoded.num_chunks
        self.num_levels = encoded.ladder.num_levels
        # Plain-float mirror for the per-chunk scalar lookup on the session
        # hot path (native list indexing beats numpy scalar extraction;
        # ``tolist`` round-trips the exact doubles).
        self._sizes_rows = self.sizes_bytes.tolist()

    @classmethod
    def of(cls, encoded: EncodedVideo) -> "SessionPrecompute":
        """The (cached) precompute of a video; built on first use."""
        cached = getattr(encoded, _CACHE_ATTR, None)
        if cached is None:
            cached = cls(encoded)
            setattr(encoded, _CACHE_ATTR, cached)
        return cached

    def upcoming(
        self, chunk_index: int, horizon: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(sizes, quality) views for ``horizon`` chunks from ``chunk_index``."""
        require(0 <= chunk_index < self.num_chunks, "chunk index out of range")
        stop = chunk_index + horizon
        return self.sizes_bytes[chunk_index:stop], self.quality[chunk_index:stop]

    def chunk_size_bytes(self, chunk_index: int, level: int) -> float:
        """Size in bytes of a chunk at a bitrate level (list lookup)."""
        return self._sizes_rows[chunk_index][level]


class HistoryRing:
    """Fixed-capacity ring buffer over the most recent float samples.

    Replaces the seed's unbounded ``List[float]`` histories: the observation
    only ever consumes the last ``capacity`` samples, so older ones need not
    be retained at all.  :meth:`as_array` returns the retained samples oldest
    first, matching ``np.asarray(history[-capacity:])`` exactly.
    """

    def __init__(self, capacity: int) -> None:
        require(capacity >= 1, "ring capacity must be >= 1")
        self.capacity = int(capacity)
        self._buffer = np.empty(self.capacity, dtype=float)
        self._next = 0
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def push(self, value: float) -> None:
        """Append a sample, evicting the oldest once at capacity."""
        self._buffer[self._next] = value
        self._next = (self._next + 1) % self.capacity
        if self._count < self.capacity:
            self._count += 1

    #: List-compatible alias so the session loop reads the same either way.
    append = push

    def as_array(self) -> np.ndarray:
        """The retained samples, oldest first (a fresh array each call)."""
        if self._count < self.capacity:
            return self._buffer[: self._count].copy()
        if self._next == 0:
            return self._buffer.copy()
        return np.concatenate(
            [self._buffer[self._next:], self._buffer[: self._next]]
        )

    def last(self, default: float = 0.0) -> float:
        """Most recent sample, or ``default`` when empty."""
        if self._count == 0:
            return float(default)
        return float(self._buffer[(self._next - 1) % self.capacity])


class HistoryMatrix:
    """A whole shard's :class:`HistoryRing`\\ s as one (sessions, capacity)
    matrix with a shared write pointer.

    The lockstep engine appends one sample per session per chunk step, so
    every row's ring pointer advances in unison; a single shared pointer
    turns the per-session ``push`` loop into one column assignment and the
    per-session ``as_array`` stacking into one sliced gather.  Rows of
    sessions that finished early simply stop being written (and are never
    read again).  Row extraction matches :meth:`HistoryRing.as_array`
    sample for sample: oldest first, at most ``capacity`` entries.
    """

    def __init__(self, num_rows: int, capacity: int) -> None:
        require(num_rows >= 1, "need at least one row")
        require(capacity >= 1, "ring capacity must be >= 1")
        self.capacity = int(capacity)
        self._buffer = np.empty((num_rows, self.capacity), dtype=float)
        self._next = 0
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def push_column(self, rows: np.ndarray, values: np.ndarray) -> None:
        """Append one sample per row (for ``rows``), advancing the shared
        pointer once.  Every live row must be written every step."""
        self._buffer[rows, self._next] = values
        self._next = (self._next + 1) % self.capacity
        if self._count < self.capacity:
            self._count += 1

    def matrix(self, rows: np.ndarray) -> np.ndarray:
        """(len(rows), len(self)) samples, oldest first per row."""
        if self._count < self.capacity:
            return self._buffer[rows, : self._count]
        if self._next == 0:
            return self._buffer[rows]
        taken = self._buffer[rows]
        return np.concatenate(
            [taken[:, self._next:], taken[:, : self._next]], axis=1
        )

    def row(self, index: int) -> np.ndarray:
        """One row, oldest first — equals that row's ring ``as_array()``."""
        if self._count < self.capacity:
            return self._buffer[index, : self._count].copy()
        if self._next == 0:
            return self._buffer[index].copy()
        return np.concatenate(
            [self._buffer[index, self._next:], self._buffer[index, : self._next]]
        )
