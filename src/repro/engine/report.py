"""Perf-trajectory reporting: the ``BENCH_engine.json`` writer.

The perf harness (``benchmarks/test_perf_engine.py``) measures three things
every run — sessions/sec, planner decisions/sec and the quick-scale grid
wall-clock (seed implementation vs engine, measured back to back in the same
process) — and persists them here so the numbers can be tracked PR over PR.

The provenance helpers (:func:`environment_fingerprint`,
:func:`git_revision`) are shared with the experiment artifact store
(:mod:`repro.experiments.results`), so bench reports and ``ResultSet``
metadata describe runs the same way.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
from dataclasses import asdict, dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import Dict, Optional, Union

from repro.faults.integrity import atomic_write_text

#: Default report location (repo root).
DEFAULT_REPORT_NAME = "BENCH_engine.json"

#: Span names the phase arithmetic is defined over.  ``planner.kernel``
#: and ``player.step`` are disjoint leaves under the ``engine.dispatch``
#: root (a kernel call never nests inside a step or vice versa), so
#: dispatch minus the two leaves is a meaningful "everything else" bucket.
DISPATCH_SPAN = "engine.dispatch"
KERNEL_SPAN = "planner.kernel"
STEP_SPAN = "player.step"


def utc_now_iso() -> str:
    """The current wall-clock instant as an ISO-8601 UTC timestamp."""
    return datetime.now(timezone.utc).isoformat(timespec="seconds")


def environment_fingerprint() -> Dict[str, object]:
    """The runtime fingerprint stamped on bench reports and result sets."""
    return {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
    }


def git_revision(cwd: Union[str, Path, None] = None) -> Optional[str]:
    """The current git commit hash, or ``None`` outside a work tree."""
    try:
        output = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(cwd) if cwd is not None else None,
            capture_output=True,
            text=True,
            timeout=5.0,
            check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    revision = output.stdout.strip()
    return revision if output.returncode == 0 and revision else None


@dataclass
class BenchReport:
    """Aggregate of one perf-harness run.

    Attributes
    ----------
    sessions_per_sec:
        Engine-path streaming sessions completed per second.
    decisions_per_sec:
        Planner decisions per second, per measured ABR.
    grid:
        Quick-scale grid timings: seed and engine wall-clock seconds, the
        resulting speedup, cell count and the backend the engine used.
    plan_cache:
        Candidate-tree memo statistics (hits, misses, currsize) observed
        over the grid run — the shared-tree guarantee made visible: a
        handful of misses builds every tree a whole sweep plans over.
    fault_log:
        Recovery accounting from the measured runners
        (:meth:`repro.faults.log.FaultLog.as_dict`): retries, pool
        rebuilds, serial fallbacks, timeouts, quarantines and the
        wall-clock they cost.  All-zero on a healthy run — a bench
        number produced through recovery paths is flagged, not hidden.
    phases:
        Span-tracer phase breakdown of a telemetry-enabled grid run
        (:func:`phases_from_snapshot`): planner-kernel vs player-stepping
        vs everything-else wall-clock seconds and their shares of the
        dispatch span.  Measured by :mod:`repro.obs.trace`, not
        hand-timed.
    meta:
        Environment fingerprint (python, platform, CPU count) plus the
        run's ``started_at`` timestamp and ``duration_s`` wall clock.
    """

    sessions_per_sec: float = 0.0
    decisions_per_sec: Dict[str, float] = field(default_factory=dict)
    grid: Dict[str, float] = field(default_factory=dict)
    #: RL (Pensieve-family) grid timings: the batched-RL-driver lockstep
    #: engine versus the serial per-session engine on the same cells, same
    #: run — the RL counterpart of ``grid.speedup_vs_serial_engine``.
    rl_grid: Dict[str, object] = field(default_factory=dict)
    plan_cache: Dict[str, int] = field(default_factory=dict)
    fault_log: Dict[str, object] = field(default_factory=dict)
    phases: Dict[str, object] = field(default_factory=dict)
    kernel: Dict[str, object] = field(default_factory=dict)
    meta: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-serialisable representation."""
        return asdict(self)


def phases_from_snapshot(snapshot: Dict[str, object]) -> Dict[str, object]:
    """The phase breakdown of a metrics snapshot's spans.

    Splits the :data:`DISPATCH_SPAN` wall clock into the two disjoint
    leaves the tracer times — :data:`KERNEL_SPAN` (candidate-tensor
    evaluation) and :data:`STEP_SPAN` (SoA player stepping) — plus an
    arithmetic ``other_s`` remainder (driver decide loops, request
    merging, result assembly).  Shares are fractions of the dispatch
    total and only emitted when a dispatch span was recorded.  On the
    process backend the worker leaves accumulate in parallel wall
    clocks, so their sum may exceed the parent's dispatch time; the
    remainder is clamped at zero rather than reported negative.

    Returns ``{}`` when the snapshot has no spans (telemetry off).
    """
    spans = snapshot.get("spans", {})
    if not spans:
        return {}

    def total(name: str) -> float:
        return float(spans.get(name, {}).get("total_s", 0.0))

    dispatch = total(DISPATCH_SPAN)
    kernel = total(KERNEL_SPAN)
    stepping = total(STEP_SPAN)
    phases: Dict[str, object] = {
        "dispatch_s": round(dispatch, 6),
        "planner_kernel_s": round(kernel, 6),
        "stepping_s": round(stepping, 6),
        "other_s": round(max(dispatch - kernel - stepping, 0.0), 6),
    }
    if dispatch > 0.0:
        phases["planner_kernel_share"] = round(kernel / dispatch, 4)
        phases["stepping_share"] = round(stepping / dispatch, 4)
        phases["other_share"] = round(
            max(1.0 - kernel / dispatch - stepping / dispatch, 0.0), 4
        )
    return phases


def write_bench_report(
    report: BenchReport, path: Union[str, Path, None] = None
) -> Path:
    """Write the report as indented JSON; returns the path written."""
    if path is None:
        path = Path.cwd() / DEFAULT_REPORT_NAME
    path = Path(path)
    payload = report.to_dict()
    if not payload.get("kernel"):
        # The kernel microbench (benchmarks/test_perf_kernel.py) maintains
        # its section independently of the engine harness: an engine-only
        # run must not erase the latest kernel numbers.
        existing = read_bench_report(path)
        if existing and existing.get("kernel"):
            payload["kernel"] = existing["kernel"]
    for key, value in environment_fingerprint().items():
        payload["meta"].setdefault(key, value)
    payload["meta"].setdefault("started_at", utc_now_iso())
    revision = git_revision()
    if revision is not None:
        payload["meta"].setdefault("git_revision", revision)
    atomic_write_text(path, json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def update_bench_section(
    name: str, payload: Dict[str, object], path: Union[str, Path, None] = None
) -> Path:
    """Read-modify-write one top-level section of ``BENCH_engine.json``.

    Used by section-owning harnesses (the kernel microbench) to refresh
    their numbers without clobbering the rest of the report; creates a
    minimal report when none exists yet.
    """
    if path is None:
        path = Path.cwd() / DEFAULT_REPORT_NAME
    path = Path(path)
    existing = read_bench_report(path) or {}
    existing[name] = payload
    meta = existing.setdefault("meta", {})
    for key, value in environment_fingerprint().items():
        meta.setdefault(key, value)
    meta.setdefault("started_at", utc_now_iso())
    atomic_write_text(
        path, json.dumps(existing, indent=2, sort_keys=True) + "\n"
    )
    return path


def read_bench_report(path: Union[str, Path]) -> Optional[dict]:
    """Load a previously written report, or ``None`` if absent."""
    path = Path(path)
    if not path.exists():
        return None
    return json.loads(path.read_text())
