"""Perf-trajectory reporting: the ``BENCH_engine.json`` writer.

The perf harness (``benchmarks/test_perf_engine.py``) measures three things
every run — sessions/sec, planner decisions/sec and the quick-scale grid
wall-clock (seed implementation vs engine, measured back to back in the same
process) — and persists them here so the numbers can be tracked PR over PR.

The provenance helpers (:func:`environment_fingerprint`,
:func:`git_revision`) are shared with the experiment artifact store
(:mod:`repro.experiments.results`), so bench reports and ``ResultSet``
metadata describe runs the same way.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, Optional, Union

from repro.faults.integrity import atomic_write_text

#: Default report location (repo root).
DEFAULT_REPORT_NAME = "BENCH_engine.json"


def environment_fingerprint() -> Dict[str, object]:
    """The runtime fingerprint stamped on bench reports and result sets."""
    return {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
    }


def git_revision(cwd: Union[str, Path, None] = None) -> Optional[str]:
    """The current git commit hash, or ``None`` outside a work tree."""
    try:
        output = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(cwd) if cwd is not None else None,
            capture_output=True,
            text=True,
            timeout=5.0,
            check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    revision = output.stdout.strip()
    return revision if output.returncode == 0 and revision else None


@dataclass
class BenchReport:
    """Aggregate of one perf-harness run.

    Attributes
    ----------
    sessions_per_sec:
        Engine-path streaming sessions completed per second.
    decisions_per_sec:
        Planner decisions per second, per measured ABR.
    grid:
        Quick-scale grid timings: seed and engine wall-clock seconds, the
        resulting speedup, cell count and the backend the engine used.
    plan_cache:
        Candidate-tree memo statistics (hits, misses, currsize) observed
        over the grid run — the shared-tree guarantee made visible: a
        handful of misses builds every tree a whole sweep plans over.
    fault_log:
        Recovery accounting from the measured runners
        (:meth:`repro.faults.log.FaultLog.as_dict`): retries, pool
        rebuilds, serial fallbacks, timeouts, quarantines and the
        wall-clock they cost.  All-zero on a healthy run — a bench
        number produced through recovery paths is flagged, not hidden.
    meta:
        Environment fingerprint (python, platform, CPU count).
    """

    sessions_per_sec: float = 0.0
    decisions_per_sec: Dict[str, float] = field(default_factory=dict)
    grid: Dict[str, float] = field(default_factory=dict)
    plan_cache: Dict[str, int] = field(default_factory=dict)
    fault_log: Dict[str, object] = field(default_factory=dict)
    meta: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-serialisable representation."""
        return asdict(self)


def write_bench_report(
    report: BenchReport, path: Union[str, Path, None] = None
) -> Path:
    """Write the report as indented JSON; returns the path written."""
    if path is None:
        path = Path.cwd() / DEFAULT_REPORT_NAME
    path = Path(path)
    payload = report.to_dict()
    for key, value in environment_fingerprint().items():
        payload["meta"].setdefault(key, value)
    revision = git_revision()
    if revision is not None:
        payload["meta"].setdefault("git_revision", revision)
    atomic_write_text(path, json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def read_bench_report(path: Union[str, Path]) -> Optional[dict]:
    """Load a previously written report, or ``None`` if absent."""
    path = Path(path)
    if not path.exists():
        return None
    return json.loads(path.read_text())
