"""Two-step rendered-video scheduler: cutting crowdsourcing cost (§4.3).

Step 1 renders the source video with a single 1-second rebuffering event at
every chunk and asks ``M1`` participants to rate each rendering.  The
weights inferred from these ratings are noisy but good enough to identify
the chunks whose sensitivity clearly deviates from the average.  Step 2
re-probes only those chunks (weights more than ``α`` away from the mean)
with additional incident types — ``B`` reduced bitrate levels and ``F``
rebuffering durations — rated by ``M2`` participants each.

The paper's empirically chosen sweet spot is B=2, F=1, M1=10, M2=5, α=6%
(Figure 16); those are the defaults here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.utils.validation import require, require_probability
from repro.video.encoder import EncodedVideo
from repro.video.rendering import (
    QualityIncident,
    RenderedVideo,
    inject_incident,
    render_pristine,
)


@dataclass(frozen=True)
class SchedulerConfig:
    """Knobs of the two-step scheduler (the axes of Figure 16).

    Attributes
    ----------
    step1_ratings: participants per rendering in step 1 (M1).
    step2_ratings: participants per rendering in step 2 (M2).
    step1_stall_s: the probe incident used in step 1 (1-s rebuffering).
    step2_num_bitrate_levels: how many reduced bitrate levels step 2 probes (B).
    step2_num_rebuffer_lengths: how many rebuffering durations step 2 probes (F).
    step2_rebuffer_lengths_s: the pool of stall durations step 2 draws from.
    deviation_threshold: α — relative deviation from the mean weight needed
        for a chunk to be re-probed in step 2.
    include_reference: include the pristine rendering in step 1 (used for
        calibration and as a regression anchor).
    """

    step1_ratings: int = 10
    step2_ratings: int = 5
    step1_stall_s: float = 1.0
    step2_num_bitrate_levels: int = 2
    step2_num_rebuffer_lengths: int = 1
    step2_rebuffer_lengths_s: Sequence[float] = (2.0, 4.0, 3.0, 5.0)
    deviation_threshold: float = 0.06
    include_reference: bool = True

    def __post_init__(self) -> None:
        require(self.step1_ratings >= 1, "step1_ratings must be >= 1")
        require(self.step2_ratings >= 0, "step2_ratings must be >= 0")
        require(self.step1_stall_s > 0, "step1_stall_s must be positive")
        require(
            self.step2_num_bitrate_levels >= 0,
            "step2_num_bitrate_levels must be >= 0",
        )
        require(
            self.step2_num_rebuffer_lengths >= 0,
            "step2_num_rebuffer_lengths must be >= 0",
        )
        require_probability(self.deviation_threshold, "deviation_threshold")


@dataclass
class RenderingSchedule:
    """A batch of renderings to publish, plus the ratings each should get."""

    renderings: List[RenderedVideo] = field(default_factory=list)
    ratings_per_rendering: int = 10
    step: int = 1

    def total_video_seconds(self) -> float:
        """Total rendered-video seconds, counting the rating multiplicity.

        This is the quantity campaign cost is proportional to (§4.3).
        """
        per_view = sum(
            r.num_chunks * r.chunk_duration_s + r.total_stall_s() + r.startup_delay_s
            for r in self.renderings
        )
        return float(per_view * self.ratings_per_rendering)


class TwoStepScheduler:
    """Decides which rendered videos to publish in each profiling step."""

    def __init__(self, config: Optional[SchedulerConfig] = None) -> None:
        self.config = config if config is not None else SchedulerConfig()

    # ---------------------------------------------------------------- step 1

    def step1_schedule(self, encoded: EncodedVideo) -> RenderingSchedule:
        """One rendering per chunk with the probe stall, plus the reference."""
        pristine = render_pristine(encoded)
        renderings: List[RenderedVideo] = []
        if self.config.include_reference:
            renderings.append(pristine.with_render_id(
                f"{encoded.source.video_id}/step1/reference"
            ))
        for chunk_index in range(encoded.num_chunks):
            incident = QualityIncident.rebuffering(
                chunk_index, self.config.step1_stall_s
            )
            renderings.append(
                inject_incident(
                    pristine, incident,
                    render_id=(
                        f"{encoded.source.video_id}/step1/stall@{chunk_index}"
                    ),
                )
            )
        return RenderingSchedule(
            renderings=renderings,
            ratings_per_rendering=self.config.step1_ratings,
            step=1,
        )

    # ---------------------------------------------------------------- step 2

    def select_chunks_to_reprobe(self, step1_weights: np.ndarray) -> np.ndarray:
        """Chunks whose step-1 weight deviates from the mean by more than α."""
        weights = np.asarray(step1_weights, dtype=float)
        require(weights.size >= 1, "step1 weights must be non-empty")
        mean = float(np.mean(weights))
        deviation = np.abs(weights - mean) / max(mean, 1e-9)
        return np.flatnonzero(deviation > self.config.deviation_threshold)

    def step2_schedule(
        self, encoded: EncodedVideo, step1_weights: np.ndarray
    ) -> RenderingSchedule:
        """Renderings probing only the high/low-sensitivity chunks (step 2)."""
        config = self.config
        chunks = self.select_chunks_to_reprobe(step1_weights)
        pristine = render_pristine(encoded)
        renderings: List[RenderedVideo] = []

        drop_levels = list(range(config.step2_num_bitrate_levels))
        extra_stalls = list(
            config.step2_rebuffer_lengths_s[: config.step2_num_rebuffer_lengths]
        )
        for chunk_index in chunks:
            for drop_level in drop_levels:
                incident = QualityIncident.bitrate_drop(
                    int(chunk_index), drop_to_level=drop_level
                )
                renderings.append(
                    inject_incident(
                        pristine, incident,
                        render_id=(
                            f"{encoded.source.video_id}/step2/"
                            f"drop{drop_level}@{chunk_index}"
                        ),
                    )
                )
            for stall_s in extra_stalls:
                incident = QualityIncident.rebuffering(int(chunk_index), stall_s)
                renderings.append(
                    inject_incident(
                        pristine, incident,
                        render_id=(
                            f"{encoded.source.video_id}/step2/"
                            f"stall{stall_s:g}@{chunk_index}"
                        ),
                    )
                )
        return RenderingSchedule(
            renderings=renderings,
            ratings_per_rendering=config.step2_ratings,
            step=2,
        )

    # ------------------------------------------------------------ exhaustive

    def exhaustive_schedule(
        self,
        encoded: EncodedVideo,
        num_bitrate_levels: int = 5,
        rebuffer_lengths_s: Sequence[float] = (1.0, 2.0, 3.0, 4.0, 5.0),
        ratings_per_rendering: int = 30,
    ) -> RenderingSchedule:
        """The un-pruned strawman: every incident type at every chunk.

        This is the "SENSEI w/o cost pruning" arm of Figure 12c, used to
        quantify how much the two-step scheduler saves.
        """
        pristine = render_pristine(encoded)
        renderings: List[RenderedVideo] = [pristine]
        for chunk_index in range(encoded.num_chunks):
            for drop_level in range(num_bitrate_levels - 1):
                renderings.append(
                    inject_incident(
                        pristine,
                        QualityIncident.bitrate_drop(chunk_index, drop_level),
                        render_id=(
                            f"{encoded.source.video_id}/full/"
                            f"drop{drop_level}@{chunk_index}"
                        ),
                    )
                )
            for stall_s in rebuffer_lengths_s:
                renderings.append(
                    inject_incident(
                        pristine,
                        QualityIncident.rebuffering(chunk_index, stall_s),
                        render_id=(
                            f"{encoded.source.video_id}/full/"
                            f"stall{stall_s:g}@{chunk_index}"
                        ),
                    )
                )
        return RenderingSchedule(
            renderings=renderings,
            ratings_per_rendering=ratings_per_rendering,
            step=0,
        )
