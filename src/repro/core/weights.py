"""Per-chunk sensitivity weights: SENSEI's key abstraction (§3, §4.2).

A :class:`SensitivityProfile` holds one positive weight per chunk of a
source video, normalised to mean 1, describing how much more (or less)
sensitive viewers are to quality incidents at that chunk.  Profiles are
inferred from crowdsourced MOS of rendered videos by solving the linear
system ``Q_j = (1/N) Σ_i w_i q_{i,j}`` with a non-negative regression, where
``q_{i,j}`` are the base QoE model's per-chunk scores (KSQI).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Sequence, Union

import numpy as np

from repro.qoe.base import AdditiveQoEModel
from repro.utils.validation import require
from repro.video.rendering import RenderedVideo


@dataclass(frozen=True)
class SensitivityProfile:
    """Per-chunk sensitivity weights of one source video.

    Attributes
    ----------
    video_id: the profiled source video.
    weights: positive weights, one per chunk, normalised to mean 1.
    num_ratings: total accepted ratings used to infer the weights.
    cost_usd: crowdsourcing cost of the profiling campaign.
    """

    video_id: str
    weights: np.ndarray
    num_ratings: int = 0
    cost_usd: float = 0.0

    def __post_init__(self) -> None:
        weights = np.asarray(self.weights, dtype=float)
        object.__setattr__(self, "weights", weights)
        require(weights.ndim == 1 and weights.size >= 1, "weights must be 1-D")
        require(bool(np.all(weights > 0)), "weights must be strictly positive")

    @property
    def num_chunks(self) -> int:
        """Number of chunks covered by the profile."""
        return int(self.weights.size)

    def weight_of(self, chunk_index: int) -> float:
        """Weight of one chunk."""
        require(0 <= chunk_index < self.num_chunks, "chunk index out of range")
        return float(self.weights[chunk_index])

    def high_sensitivity_chunks(self, threshold: float = 1.2) -> np.ndarray:
        """Indices of chunks whose weight exceeds ``threshold`` × mean."""
        return np.flatnonzero(self.weights > threshold * float(np.mean(self.weights)))

    def low_sensitivity_chunks(self, threshold: float = 0.8) -> np.ndarray:
        """Indices of chunks whose weight is below ``threshold`` × mean."""
        return np.flatnonzero(self.weights < threshold * float(np.mean(self.weights)))

    def normalized(self) -> "SensitivityProfile":
        """Profile rescaled so the weights average exactly 1."""
        mean = float(np.mean(self.weights))
        require(mean > 0, "cannot normalise a zero profile")
        return SensitivityProfile(
            video_id=self.video_id,
            weights=self.weights / mean,
            num_ratings=self.num_ratings,
            cost_usd=self.cost_usd,
        )

    # ------------------------------------------------------------ persistence

    def to_dict(self) -> dict:
        """JSON-serialisable representation."""
        return {
            "video_id": self.video_id,
            "weights": self.weights.tolist(),
            "num_ratings": self.num_ratings,
            "cost_usd": self.cost_usd,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SensitivityProfile":
        """Inverse of :meth:`to_dict`."""
        return cls(
            video_id=str(payload["video_id"]),
            weights=np.asarray(payload["weights"], dtype=float),
            num_ratings=int(payload.get("num_ratings", 0)),
            cost_usd=float(payload.get("cost_usd", 0.0)),
        )

    def save(self, path: Union[str, Path]) -> None:
        """Write the profile as JSON."""
        Path(path).write_text(json.dumps(self.to_dict()))

    @classmethod
    def load(cls, path: Union[str, Path]) -> "SensitivityProfile":
        """Load a profile saved with :meth:`save`."""
        return cls.from_dict(json.loads(Path(path).read_text()))

    @classmethod
    def uniform(cls, video_id: str, num_chunks: int) -> "SensitivityProfile":
        """A flat profile (what a weight-unaware system implicitly assumes)."""
        require(num_chunks >= 1, "num_chunks must be >= 1")
        return cls(video_id=video_id, weights=np.ones(num_chunks))


def infer_weights(
    renderings: Sequence[RenderedVideo],
    mos: Sequence[float],
    base_model: AdditiveQoEModel,
    video_id: Optional[str] = None,
    prior_strength: float = 0.3,
    weight_floor: float = 0.2,
    num_ratings: int = 0,
    cost_usd: float = 0.0,
) -> SensitivityProfile:
    """Infer a sensitivity profile from rated renderings of one video (§4.2).

    Solves the linear system ``Q_j = (1/N) Σ_i w_i q_{i,j}`` with a ridge
    penalty that shrinks the weights towards the uniform prior ``w_i = 1``:
    chunks whose sensitivity is not clearly distinguishable from average stay
    near 1 instead of being driven to extremes by rating noise (this also
    keeps the step-2 re-probe set small, §4.3).

    Parameters
    ----------
    renderings:
        Rendered videos of the *same* source video (the rows of the linear
        system); typically one per injected incident position, plus the
        pristine reference.
    mos:
        MOS of each rendering, either on the 1–5 Likert scale or already
        normalised to [0, 1].
    base_model:
        The additive base QoE model providing the per-chunk scores
        ``q_{i,j}`` (KSQI in the paper), typically fitted on the same
        campaign's ratings beforehand.
    prior_strength:
        Relative strength of the shrinkage towards uniform weights, scaled
        by the design matrix's own magnitude (0 disables shrinkage).
    weight_floor:
        Minimum weight after inference (keeps the profile strictly positive).
    """
    require(len(renderings) == len(mos), "renderings and MOS must align")
    require(len(renderings) >= 2, "need at least two rated renderings")
    require(prior_strength >= 0, "prior_strength must be >= 0")
    first = renderings[0]
    resolved_video_id = video_id or first.source.video_id
    num_chunks = first.num_chunks
    for rendering in renderings:
        require(
            rendering.num_chunks == num_chunks,
            "all renderings must come from the same source video",
        )

    mos_arr = np.asarray(list(mos), dtype=float)
    targets = (mos_arr - 1.0) / 4.0 if float(mos_arr.max()) > 1.5 else mos_arr

    # Design matrix: row j holds q_{i,j} / N so that the solution directly
    # plays the role of the weights in Q = (1/N) Σ w_i q_i.
    design = np.stack(
        [base_model.chunk_scores(rendering) for rendering in renderings]
    ) / num_chunks

    # Shrink towards the uniform prior: substitute w = 1 + delta and solve a
    # standard ridge problem for delta.
    gram_scale = float(np.mean(np.sum(design * design, axis=0)))
    alpha = prior_strength * max(gram_scale, 1e-12)
    residual_targets = targets - design @ np.ones(num_chunks)
    gram = design.T @ design + alpha * np.eye(num_chunks)
    delta = np.linalg.solve(gram, design.T @ residual_targets)
    weights = 1.0 + delta

    weights = np.maximum(weights, weight_floor)
    weights = weights / float(np.mean(weights))
    return SensitivityProfile(
        video_id=resolved_video_id,
        weights=weights,
        num_ratings=num_ratings,
        cost_usd=cost_usd,
    )
