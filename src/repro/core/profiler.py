"""End-to-end per-video QoE profiling pipeline (Figure 8).

``source video → rendered-video scheduling → MTurk campaign → MOS →
weight inference → SensitivityProfile``.

The profiler glues together the scheduler (§4.3), the crowdsourcing
substrate (§4.1 / Appendix B) and the weight inference (§4.2), and accounts
for campaign cost so that the cost/accuracy trade-off experiments
(Figures 12c and 16) can sweep its configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.qoe_model import SenseiQoEModel
from repro.core.scheduler import RenderingSchedule, SchedulerConfig, TwoStepScheduler
from repro.core.weights import SensitivityProfile, infer_weights
from repro.crowd.campaign import CampaignConfig, CampaignResult, MTurkCampaign
from repro.crowd.cost import CostModel
from repro.crowd.worker import WorkerPool
from repro.qoe.base import AdditiveQoEModel
from repro.qoe.ground_truth import GroundTruthOracle
from repro.qoe.ksqi import KSQIModel
from repro.utils.validation import require
from repro.video.encoder import EncodedVideo
from repro.video.rendering import RenderedVideo, render_pristine


@dataclass
class ProfilingResult:
    """Everything a profiling run produced for one video.

    Attributes
    ----------
    profile: the inferred sensitivity profile.
    step1_result / step2_result: raw campaign outcomes of the two steps.
    total_cost_usd: total payments across both steps.
    cost_per_source_minute_usd: the paper's headline cost figure.
    num_renderings: rendered videos published across both steps.
    """

    profile: SensitivityProfile
    step1_result: CampaignResult
    step2_result: Optional[CampaignResult]
    total_cost_usd: float
    cost_per_source_minute_usd: float
    num_renderings: int

    @property
    def weights(self) -> np.ndarray:
        """Convenience accessor for the inferred weights."""
        return self.profile.weights


class SenseiProfiler:
    """Runs the per-video profiling pipeline against the simulated crowd.

    Parameters
    ----------
    oracle:
        The ground-truth oracle the simulated raters draw their opinions
        from (plays the role of "real users").
    scheduler_config:
        Two-step scheduler knobs (B, F, M1, M2, α).
    base_model:
        Additive base QoE model reweighted by the profile (KSQI); it is
        re-fitted on each video's campaign ratings before weight inference.
    worker_pool / cost_model / campaign_seed:
        Crowdsourcing configuration shared by both steps.
    use_two_step:
        When False, profile with the exhaustive (un-pruned) schedule instead
        — the "w/o cost pruning" arm of Figure 12c.
    refit_base_model:
        When True, re-fit the base model's coefficients on each campaign's
        ratings before weight inference.  Off by default: the step-1
        renderings keep visual quality constant, which makes that fit
        degenerate; the campaign-independent coefficients are both stable
        and shared with the ABR algorithms' objectives.
    """

    def __init__(
        self,
        oracle: Optional[GroundTruthOracle] = None,
        scheduler_config: Optional[SchedulerConfig] = None,
        base_model: Optional[AdditiveQoEModel] = None,
        worker_pool: Optional[WorkerPool] = None,
        cost_model: Optional[CostModel] = None,
        campaign_seed: int = 37,
        use_two_step: bool = True,
        refit_base_model: bool = False,
    ) -> None:
        self.oracle = oracle if oracle is not None else GroundTruthOracle()
        self.scheduler = TwoStepScheduler(scheduler_config)
        self.base_model = base_model if base_model is not None else KSQIModel()
        self.worker_pool = (
            worker_pool if worker_pool is not None else WorkerPool(seed=campaign_seed)
        )
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.campaign_seed = int(campaign_seed)
        self.use_two_step = bool(use_two_step)
        self.refit_base_model = bool(refit_base_model)

    # ------------------------------------------------------------------ API

    def profile_video(self, encoded: EncodedVideo) -> ProfilingResult:
        """Profile one encoded video end to end."""
        if self.use_two_step:
            return self._profile_two_step(encoded)
        return self._profile_exhaustive(encoded)

    def profile_videos(
        self, videos: Sequence[EncodedVideo]
    ) -> Dict[str, ProfilingResult]:
        """Profile several videos; returns results keyed by video id."""
        return {
            encoded.source.video_id: self.profile_video(encoded)
            for encoded in videos
        }

    def build_qoe_model(
        self, results: Dict[str, ProfilingResult]
    ) -> SenseiQoEModel:
        """Assemble a :class:`SenseiQoEModel` from profiling results."""
        model = SenseiQoEModel(base_model=self.base_model)
        model.add_profiles(result.profile for result in results.values())
        return model

    # ------------------------------------------------------------- internals

    def _run_campaign(
        self, schedule: RenderingSchedule, encoded: EncodedVideo, seed_offset: int
    ) -> CampaignResult:
        campaign = MTurkCampaign(
            oracle=self.oracle,
            worker_pool=self.worker_pool,
            cost_model=self.cost_model,
            config=CampaignConfig(
                ratings_per_rendering=schedule.ratings_per_rendering,
                seed=self.campaign_seed + seed_offset,
            ),
        )
        reference = render_pristine(encoded)
        return campaign.run(schedule.renderings, reference=reference)

    def _fit_base_model(
        self, renderings: Sequence[RenderedVideo], result: CampaignResult
    ) -> None:
        """Optionally fit the base model's coefficients on campaign ratings."""
        if not self.refit_base_model:
            return
        rated = [r for r in renderings if r.render_id in result.mos]
        mos = [result.mos[r.render_id] for r in rated]
        if len(rated) >= 4:
            self.base_model.fit(rated, mos)

    def _profile_two_step(self, encoded: EncodedVideo) -> ProfilingResult:
        video_id = encoded.source.video_id
        # --- Step 1: coarse probing of every chunk.
        step1 = self.scheduler.step1_schedule(encoded)
        step1_result = self._run_campaign(step1, encoded, seed_offset=1)
        self._fit_base_model(step1.renderings, step1_result)
        step1_profile = self._infer_from_results(
            encoded, [ (step1.renderings, step1_result) ]
        )

        # --- Step 2: refined probing of the clearly high/low chunks.
        step2_result: Optional[CampaignResult] = None
        schedules = [(step1.renderings, step1_result)]
        step2 = self.scheduler.step2_schedule(encoded, step1_profile.weights)
        if step2.renderings and step2.ratings_per_rendering > 0:
            step2_result = self._run_campaign(step2, encoded, seed_offset=2)
            schedules.append((step2.renderings, step2_result))

        profile = self._infer_from_results(encoded, schedules)
        total_cost = step1_result.total_paid_usd + (
            step2_result.total_paid_usd if step2_result is not None else 0.0
        )
        num_ratings = sum(
            1 for _, result in schedules for record in result.records if record.accepted
        )
        profile = SensitivityProfile(
            video_id=video_id,
            weights=profile.weights,
            num_ratings=num_ratings,
            cost_usd=total_cost,
        )
        num_renderings = len(step1.renderings) + (
            len(step2.renderings) if step2.renderings else 0
        )
        return ProfilingResult(
            profile=profile,
            step1_result=step1_result,
            step2_result=step2_result,
            total_cost_usd=total_cost,
            cost_per_source_minute_usd=self.cost_model.cost_per_source_minute(
                total_cost, encoded.source.duration_s
            ),
            num_renderings=num_renderings,
        )

    def _profile_exhaustive(self, encoded: EncodedVideo) -> ProfilingResult:
        schedule = self.scheduler.exhaustive_schedule(encoded)
        result = self._run_campaign(schedule, encoded, seed_offset=3)
        self._fit_base_model(schedule.renderings, result)
        profile = self._infer_from_results(encoded, [(schedule.renderings, result)])
        profile = SensitivityProfile(
            video_id=encoded.source.video_id,
            weights=profile.weights,
            num_ratings=sum(1 for record in result.records if record.accepted),
            cost_usd=result.total_paid_usd,
        )
        return ProfilingResult(
            profile=profile,
            step1_result=result,
            step2_result=None,
            total_cost_usd=result.total_paid_usd,
            cost_per_source_minute_usd=self.cost_model.cost_per_source_minute(
                result.total_paid_usd, encoded.source.duration_s
            ),
            num_renderings=len(schedule.renderings),
        )

    def _infer_from_results(
        self,
        encoded: EncodedVideo,
        schedules: Sequence,
    ) -> SensitivityProfile:
        renderings: List[RenderedVideo] = []
        mos: List[float] = []
        for schedule_renderings, result in schedules:
            for rendering in schedule_renderings:
                if rendering.render_id in result.mos:
                    renderings.append(rendering)
                    mos.append(result.mos[rendering.render_id])
        require(len(renderings) >= 2, "not enough rated renderings to infer weights")
        return infer_weights(
            renderings,
            mos,
            base_model=self.base_model,
            video_id=encoded.source.video_id,
        )
