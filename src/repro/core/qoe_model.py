"""SENSEI's QoE model: an existing additive model reweighted per video (Eq. 2).

``Q = (1/N) Σ_i w_i q_i`` where ``q_i`` are the base model's per-chunk scores
(KSQI in the paper) and ``w_i`` the video's sensitivity weights.  The model
keeps a registry of :class:`~repro.core.weights.SensitivityProfile` objects
keyed by video id; videos without a profile fall back to the base model
(uniform weights), so the model degrades gracefully to plain KSQI.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence

import numpy as np

from repro.core.weights import SensitivityProfile
from repro.qoe.base import AdditiveQoEModel, QoEModel
from repro.qoe.ksqi import KSQIModel
from repro.utils.validation import require
from repro.video.rendering import RenderedVideo


class SenseiQoEModel(QoEModel):
    """Per-video reweighted QoE model.

    Parameters
    ----------
    base_model:
        The additive base model providing per-chunk scores (default KSQI).
    profiles:
        Initial sensitivity profiles, keyed by video id.
    """

    name = "SENSEI"

    def __init__(
        self,
        base_model: Optional[AdditiveQoEModel] = None,
        profiles: Optional[Dict[str, SensitivityProfile]] = None,
    ) -> None:
        self.base_model = base_model if base_model is not None else KSQIModel()
        self._profiles: Dict[str, SensitivityProfile] = dict(profiles or {})

    # -------------------------------------------------------------- profiles

    def add_profile(self, profile: SensitivityProfile) -> None:
        """Register (or replace) the profile of one video."""
        self._profiles[profile.video_id] = profile.normalized()

    def add_profiles(self, profiles: Iterable[SensitivityProfile]) -> None:
        """Register several profiles."""
        for profile in profiles:
            self.add_profile(profile)

    def has_profile(self, video_id: str) -> bool:
        """Whether a video has a registered profile."""
        return video_id in self._profiles

    def profile_for(self, video_id: str) -> Optional[SensitivityProfile]:
        """The registered profile of a video, or ``None``."""
        return self._profiles.get(video_id)

    def weights_for(self, rendered: RenderedVideo) -> np.ndarray:
        """Weights applied to a rendering (uniform when unprofiled)."""
        profile = self._profiles.get(rendered.source.video_id)
        if profile is None or profile.num_chunks != rendered.num_chunks:
            return np.ones(rendered.num_chunks)
        return profile.weights

    # ----------------------------------------------------------------- score

    def score(self, rendered: RenderedVideo) -> float:
        """Sensitivity-weighted QoE prediction in [0, 1]."""
        weights = self.weights_for(rendered)
        return self.base_model.weighted_score(rendered, weights)

    def chunk_scores(self, rendered: RenderedVideo) -> np.ndarray:
        """Weighted per-chunk contributions ``w_i q_i``."""
        weights = self.weights_for(rendered)
        return weights * self.base_model.chunk_scores(rendered)

    def fit(
        self, renderings: Sequence[RenderedVideo], mos: Sequence[float]
    ) -> "SenseiQoEModel":
        """Fit the base model's coefficients on (rendering, MOS) pairs.

        The per-video weights themselves come from the profiling pipeline
        (:class:`~repro.core.profiler.SenseiProfiler`), not from this fit.
        """
        require(len(renderings) == len(mos), "renderings and MOS must align")
        self.base_model.fit(renderings, mos)
        return self
