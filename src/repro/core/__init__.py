"""SENSEI core: the paper's primary contribution.

* :mod:`repro.core.weights` — the per-chunk sensitivity-weight abstraction
  and its inference from crowdsourced MOS (§4.2);
* :mod:`repro.core.qoe_model` — the reweighted additive QoE model (Eq. 2);
* :mod:`repro.core.scheduler` — the two-step rendered-video scheduler that
  prunes crowdsourcing cost (§4.3);
* :mod:`repro.core.profiler` — the end-to-end per-video profiling pipeline
  (Figure 8): rendered-video scheduling → MTurk campaign → weight inference;
* :mod:`repro.core.sensei_abr` — SENSEI-Fugu and SENSEI-Pensieve (§5).
"""

from repro.core.weights import SensitivityProfile, infer_weights
from repro.core.qoe_model import SenseiQoEModel
from repro.core.scheduler import SchedulerConfig, RenderingSchedule, TwoStepScheduler
from repro.core.profiler import ProfilingResult, SenseiProfiler
from repro.core.sensei_abr import SenseiFuguABR, SenseiPensieveABR, make_sensei_pensieve

__all__ = [
    "SensitivityProfile",
    "infer_weights",
    "SenseiQoEModel",
    "SchedulerConfig",
    "RenderingSchedule",
    "TwoStepScheduler",
    "ProfilingResult",
    "SenseiProfiler",
    "SenseiFuguABR",
    "SenseiPensieveABR",
    "make_sensei_pensieve",
]
