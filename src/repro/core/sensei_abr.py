"""SENSEI's sensitivity-aware ABR variants (§5).

Both variants take the per-chunk weights of upcoming chunks as an extra
input, reweight the QoE objective (Eq. 4) and gain a new action — scheduling
a short proactive rebuffering at a chunk boundary even when the buffer is
not empty — so quality can be shifted from low- to high-sensitivity chunks.

* :class:`SenseiFuguABR` augments the Fugu/MPC planner: the plan score
  weights each chunk's quality by its sensitivity and the candidate set
  includes {0, 1, 2}-second proactive stalls before the next chunk.
* :class:`SenseiPensieveABR` augments the Pensieve agent: the weights of the
  next ``h`` chunks join the state, stall actions join the action space, and
  the reward is the weighted chunk quality.  It must be (re)trained like
  Pensieve; :func:`make_sensei_pensieve` builds a ready-to-train instance.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.abr.base import ABRAlgorithm, Decision, PlayerObservation
from repro.abr.pensieve import PensieveABR, PensieveConfig
from repro.abr.planner import enumerate_level_sequences, evaluate_candidates
from repro.abr.throughput import ErrorDistributionPredictor
from repro.qoe.ksqi import KSQIModel
from repro.utils.validation import require

#: Rebuffering durations SENSEI may schedule at a chunk boundary (§5.2).
DEFAULT_STALL_OPTIONS_S = (0.0, 1.0, 2.0)


class SenseiFuguABR(ABRAlgorithm):
    """SENSEI applied to Fugu (Eq. 4): weighted objective + proactive stalls.

    Parameters
    ----------
    horizon:
        Planning horizon h (the paper picks 5; gains flatten beyond 4).
    quality_model:
        Per-chunk quality model q(b, t) (KSQI).
    predictor:
        Probabilistic throughput predictor (as in Fugu).
    stall_options_s:
        Proactive stall durations considered before the next chunk.
    max_level_step:
        Optional per-chunk level-change cap pruning the candidate set.
    min_stall_buffer_s:
        Proactive stalls are only considered when the buffer is at least this
        full, so the new action never *creates* an imminent involuntary stall.
    stall_risk_threshold_s:
        Proactive stalls are only considered when the best no-stall plan
        already predicts at least this much involuntary rebuffering over the
        horizon — i.e. the stall is insurance against a stall that is likely
        anyway, shifted to a low-sensitivity moment (Figure 11 c vs d), not
        gratuitous hedging.
    use_fast_planner:
        Use the memoised candidate trees and vectorised evaluator (default).
        ``False`` selects the seed reference paths — kept for equivalence
        tests and the engine perf baseline.
    """

    name = "SENSEI-Fugu"

    def __init__(
        self,
        horizon: int = 4,
        quality_model: Optional[KSQIModel] = None,
        predictor: Optional[ErrorDistributionPredictor] = None,
        stall_options_s: Sequence[float] = DEFAULT_STALL_OPTIONS_S,
        max_level_step: Optional[int] = 2,
        min_stall_buffer_s: float = 4.0,
        stall_risk_threshold_s: float = 0.5,
        max_total_proactive_stall_s: float = 4.0,
        use_fast_planner: bool = True,
    ) -> None:
        require(horizon >= 1, "horizon must be >= 1")
        self.horizon = int(horizon)
        self.quality_model = quality_model if quality_model is not None else KSQIModel()
        self.predictor = (
            predictor if predictor is not None else ErrorDistributionPredictor()
        )
        self.stall_options_s = tuple(float(s) for s in stall_options_s)
        self.max_level_step = max_level_step
        self.min_stall_buffer_s = float(min_stall_buffer_s)
        self.stall_risk_threshold_s = float(stall_risk_threshold_s)
        self.max_total_proactive_stall_s = float(max_total_proactive_stall_s)
        self.use_fast_planner = bool(use_fast_planner)
        self._proactive_spent_s = 0.0

    def reset(self) -> None:
        self.predictor.reset()
        self._proactive_spent_s = 0.0

    def decide(self, observation: PlayerObservation) -> Decision:
        """Plan with the sensitivity-weighted objective (Eq. 4)."""
        horizon = min(self.horizon, observation.horizon)
        scenarios = self.predictor.predict_distribution(observation)
        candidates = enumerate_level_sequences(
            observation.ladder.num_levels,
            horizon,
            max_step=self.max_level_step,
            start_level=observation.last_level,
            use_cache=self.use_fast_planner,
        )
        evaluation = evaluate_candidates(
            observation,
            candidates,
            throughput_scenarios=scenarios,
            quality_model=self.quality_model,
            weights=observation.upcoming_weights,
            stall_options_s=(0.0,),
            vectorized=self.use_fast_planner,
        )
        # The new action (proactive rebuffering) is only worth considering
        # when a stall is likely anyway, shifting it to the present (lower
        # sensitivity) moment actually helps, the buffer can absorb it, and
        # the per-session stall budget is not exhausted.
        weights_ahead = observation.upcoming_weights[:horizon]
        shifting_helps = bool(
            weights_ahead.size > 1
            and float(np.max(weights_ahead[1:])) > float(weights_ahead[0]) * 1.05
        )
        stall_is_plausible = (
            evaluation.expected_rebuffer_s >= self.stall_risk_threshold_s
            and observation.buffer_s >= self.min_stall_buffer_s
            and shifting_helps
            and self._proactive_spent_s < self.max_total_proactive_stall_s
            and len(self.stall_options_s) > 1
        )
        if stall_is_plausible:
            remaining_budget = (
                self.max_total_proactive_stall_s - self._proactive_spent_s
            )
            allowed_stalls = tuple(
                s for s in self.stall_options_s if s <= remaining_budget + 1e-9
            )
            with_stalls = evaluate_candidates(
                observation,
                candidates,
                throughput_scenarios=scenarios,
                quality_model=self.quality_model,
                weights=observation.upcoming_weights,
                stall_options_s=allowed_stalls,
                vectorized=self.use_fast_planner,
            )
            if with_stalls.best_score > evaluation.best_score:
                evaluation = with_stalls
        if evaluation.best_stall_s > 0:
            self._proactive_spent_s += evaluation.best_stall_s
        return Decision(
            level=evaluation.best_level,
            proactive_stall_s=evaluation.best_stall_s,
        )


class SenseiPensieveABR(PensieveABR):
    """SENSEI applied to Pensieve: augmented state, actions and reward.

    The class only changes the default configuration and the name; the
    state/action/reward plumbing in :class:`PensieveABR` already honours
    ``weight_horizon`` and ``stall_actions_s`` when they are non-trivial,
    and :class:`~repro.abr.pensieve.PensieveTrainer` reweights the reward
    whenever per-video weights are supplied.
    """

    name = "SENSEI-Pensieve"
    policy_kind = "sensei-pensieve"

    def __init__(
        self,
        config: Optional[PensieveConfig] = None,
        quality_model: Optional[KSQIModel] = None,
        greedy: bool = True,
    ) -> None:
        if config is None:
            config = PensieveConfig(
                weight_horizon=5,
                stall_actions_s=(1.0, 2.0),
            )
        require(
            config.weight_horizon >= 1,
            "SENSEI-Pensieve needs weights in its state (weight_horizon >= 1)",
        )
        super().__init__(config=config, quality_model=quality_model, greedy=greedy)


def make_sensei_pensieve(
    num_levels: int = 5,
    history_length: int = 8,
    weight_horizon: int = 5,
    stall_actions_s: Tuple[float, ...] = (1.0, 2.0),
    hidden_dims: Tuple[int, ...] = (64, 32),
    seed: int = 47,
    quality_model: Optional[KSQIModel] = None,
) -> SenseiPensieveABR:
    """Build a SENSEI-Pensieve agent with an explicit configuration."""
    config = PensieveConfig(
        history_length=history_length,
        num_levels=num_levels,
        weight_horizon=weight_horizon,
        stall_actions_s=stall_actions_s,
        hidden_dims=hidden_dims,
        seed=seed,
    )
    return SenseiPensieveABR(config=config, quality_model=quality_model)
