"""Unit and property tests for repro.utils."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.rand import derive_seed, rng_from_seed, spawn_rng
from repro.utils.stats import (
    cdf_points,
    discordant_pair_fraction,
    harmonic_mean,
    mean_relative_error,
    normalize_to_unit,
    pearson_correlation,
    percentile,
    relative_error,
    spearman_correlation,
)
from repro.utils.validation import (
    require,
    require_in_range,
    require_non_negative,
    require_positive,
    require_probability,
    require_type,
)


class TestRand:
    def test_rng_from_seed_is_deterministic(self):
        assert rng_from_seed(3).random() == rng_from_seed(3).random()

    def test_rng_from_seed_none_is_fixed_default(self):
        assert rng_from_seed(None).random() == rng_from_seed(None).random()

    def test_rng_from_generator_passthrough(self):
        gen = np.random.default_rng(1)
        assert rng_from_seed(gen) is gen

    def test_derive_seed_depends_on_labels(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_derive_seed_is_stable(self):
        assert derive_seed(7, "video", 3) == derive_seed(7, "video", 3)

    def test_spawn_rng_independent_streams(self):
        a = spawn_rng(1, "x").random()
        b = spawn_rng(1, "y").random()
        assert a != b


class TestValidation:
    def test_require_passes(self):
        require(True, "never raised")

    def test_require_raises(self):
        with pytest.raises(ValueError, match="boom"):
            require(False, "boom")

    def test_require_positive(self):
        assert require_positive(1.5, "x") == 1.5
        with pytest.raises(ValueError):
            require_positive(0.0, "x")

    def test_require_non_negative(self):
        assert require_non_negative(0.0, "x") == 0.0
        with pytest.raises(ValueError):
            require_non_negative(-1e-9, "x")

    def test_require_in_range(self):
        assert require_in_range(0.5, 0, 1, "x") == 0.5
        with pytest.raises(ValueError):
            require_in_range(2.0, 0, 1, "x")

    def test_require_probability(self):
        assert require_probability(1.0, "p") == 1.0
        with pytest.raises(ValueError):
            require_probability(1.1, "p")

    def test_require_type(self):
        assert require_type(3, int, "x") == 3
        with pytest.raises(TypeError):
            require_type("3", int, "x")


class TestCorrelations:
    def test_pearson_perfect(self):
        assert pearson_correlation([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)

    def test_pearson_anticorrelated(self):
        assert pearson_correlation([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_pearson_constant_input_returns_zero(self):
        assert pearson_correlation([1, 1, 1], [1, 2, 3]) == 0.0

    def test_spearman_monotone_nonlinear(self):
        x = [1, 2, 3, 4, 5]
        y = [1, 8, 27, 64, 125]
        assert spearman_correlation(x, y) == pytest.approx(1.0)

    def test_spearman_handles_ties(self):
        assert -1.0 <= spearman_correlation([1, 2, 2, 3], [4, 4, 5, 6]) <= 1.0

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            pearson_correlation([1, 2], [1, 2, 3])

    @given(
        st.lists(st.floats(-100, 100), min_size=3, max_size=30),
    )
    @settings(max_examples=25, deadline=None)
    def test_pearson_bounded(self, xs):
        ys = [x * 2 + 1 for x in xs]
        value = pearson_correlation(xs, ys)
        assert -1.0 - 1e-9 <= value <= 1.0 + 1e-9


class TestDiscordantPairs:
    def test_identical_ordering_has_no_discordant_pairs(self):
        assert discordant_pair_fraction([1, 2, 3], [10, 20, 30]) == 0.0

    def test_fully_reversed_ordering(self):
        assert discordant_pair_fraction([1, 2, 3], [3, 2, 1]) == 1.0

    def test_predicted_tie_counts_as_discordant(self):
        assert discordant_pair_fraction([1, 2], [5, 5]) == 1.0

    def test_true_ties_are_skipped(self):
        assert discordant_pair_fraction([1, 1], [1, 2]) == 0.0


class TestErrorsAndMeans:
    def test_relative_error_basic(self):
        assert relative_error(1.2, 1.0) == pytest.approx(0.2)

    def test_relative_error_protects_small_denominator(self):
        assert np.isfinite(relative_error(1.0, 0.0))

    def test_mean_relative_error(self):
        assert mean_relative_error([1.1, 0.9], [1.0, 1.0]) == pytest.approx(0.1)

    def test_harmonic_mean_known_value(self):
        assert harmonic_mean([1.0, 1.0, 4.0]) == pytest.approx(3 / 2.25)

    def test_harmonic_mean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            harmonic_mean([1.0, 0.0])

    @given(st.lists(st.floats(0.1, 50), min_size=1, max_size=20))
    @settings(max_examples=25, deadline=None)
    def test_harmonic_mean_below_arithmetic(self, values):
        assert harmonic_mean(values) <= np.mean(values) + 1e-9


class TestNormalizeAndCdf:
    def test_normalize_to_unit_range(self):
        out = normalize_to_unit([3, 6, 9])
        assert out.min() == 0.0 and out.max() == 1.0

    def test_normalize_constant_maps_to_half(self):
        assert np.allclose(normalize_to_unit([5, 5, 5]), 0.5)

    def test_cdf_points_monotone(self):
        xs, cdf = cdf_points([3, 1, 2])
        assert list(xs) == [1, 2, 3]
        assert list(cdf) == pytest.approx([1 / 3, 2 / 3, 1.0])

    def test_percentile(self):
        assert percentile([1, 2, 3, 4, 5], 50) == 3.0

    def test_percentile_rejects_bad_q(self):
        with pytest.raises(ValueError):
            percentile([1, 2], 150)
